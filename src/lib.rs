#![warn(missing_docs)]

//! # rsd15k — a full-system Rust reproduction of *RSD-15K* (ICDE 2025)
//!
//! RSD-15K is a large-scale user-level annotated dataset for suicide risk
//! detection on social media. This workspace reproduces the paper as a
//! working system: the data substrate (a synthetic Reddit corpus standing
//! in for the gated crawl), the full annotation pipeline with its quality
//! gates, the dataset itself, and the five-baseline benchmark — all in
//! pure Rust, deterministic from a single seed.
//!
//! This crate is the facade: it re-exports every subsystem and provides
//! [`prelude`] for one-line imports. See `README.md` for the architecture
//! tour and `EXPERIMENTS.md` for paper-vs-measured numbers. Every pipeline
//! stage is instrumented with the [`obs`] telemetry layer — set
//! `RSD_OBS=stderr` (or a `.ndjson` path) to stream span timings, counters
//! and gauges; the default (`RSD_OBS` unset) is zero-overhead off.
//!
//! ## Quickstart
//!
//! ```
//! use rsd15k::prelude::*;
//!
//! // Build a small dataset end-to-end: generate → crawl → preprocess →
//! // select → annotate → assemble.
//! let (dataset, report) = DatasetBuilder::new(BuildConfig::scaled(7, 2_000, 32))
//!     .build()
//!     .unwrap();
//! assert_eq!(dataset.n_users(), 32);
//! assert!(report.campaign.fleiss_kappa > 0.5);
//!
//! // User-disjoint 80/10/10 splits with 5-post windows (the paper's task).
//! let splits = DatasetSplits::new(&dataset, SplitConfig::default()).unwrap();
//! assert!(splits.is_user_disjoint());
//! ```

pub use rsd_annotation as annotation;
pub use rsd_common as common;
pub use rsd_corpus as corpus;
pub use rsd_dataset as dataset;
pub use rsd_eval as eval;
pub use rsd_features as features;
pub use rsd_gbdt as gbdt;
pub use rsd_models as models;
pub use rsd_nn as nn;
pub use rsd_obs as obs;
pub use rsd_text as text;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use rsd_annotation::{Campaign, CampaignConfig, LabelSource};
    pub use rsd_common::{Result, RsdError, Timestamp};
    pub use rsd_corpus::{CorpusConfig, CorpusGenerator, PostId, RiskLevel, UserId};
    pub use rsd_dataset::{
        BuildConfig, DatasetBuilder, DatasetSplits, Post, Rsd15k, SplitConfig, UserRecord,
        UserWindow,
    };
    pub use rsd_eval::{ClassificationReport, ConfusionMatrix};
    pub use rsd_models::{
        BenchData, BiLstmBaseline, BiLstmConfig, HiGruBaseline, HiGruConfig, PlmBaseline,
        PlmConfig, PlmKind, TrainConfig, XgboostBaseline, XgboostConfig,
    };
    pub use rsd_obs::{RunReport, Span};
    pub use rsd_text::Preprocessor;
}
