#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lint on the infrastructure crates, release
# build, full test suite under two thread counts, a smoke-scale telemetry
# run that checks the NDJSON sink and run-report artifacts, and a
# thread-count determinism diff on the smoke run's stdout.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -p rsd-obs -p rsd-par -p rsd-pipeline (-D warnings)"
cargo clippy -p rsd-obs -p rsd-par -p rsd-pipeline --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (default threads)"
cargo test -q

echo "==> cargo test -q (RSD_THREADS=1)"
RSD_THREADS=1 cargo test -q

echo "==> telemetry smoke run (RSD_SCALE=smoke)"
obs_tmp="$(mktemp -d)"
trap 'rm -rf "$obs_tmp"' EXIT
RSD_SCALE=smoke RSD_OBS="$obs_tmp/table1.ndjson" \
    cargo run --release -q -p rsd-bench --bin table1 >"$obs_tmp/table1.out"
test -s "$obs_tmp/table1.ndjson" || { echo "NDJSON sink empty"; exit 1; }
test -s bench_runs/small/table1.report.json || { echo "run report missing"; exit 1; }

echo "==> obs_diff regression gate (fresh smoke report vs committed baseline)"
# Time tolerance is overridable for noisy hosts; quality metrics (kappa,
# accuracy, counts) always compare exactly / to 1e-6.
cargo run --release -q -p rsd-bench --bin obs_diff -- \
    --time-tol "${OBS_DIFF_TIME_TOL:-0.15}" \
    bench_runs/baseline/table1.report.json bench_runs/small/table1.report.json

echo "==> obs_diff self-test (injected regressions must trip the gate)"
cargo run --release -q -p rsd-bench --bin obs_diff -- --self-test \
    bench_runs/baseline/table1.report.json

echo "==> table3 smoke + obs_diff gate (model quality vs committed baseline)"
# Single-threaded to match how the committed baseline was generated;
# quality leaves (accuracy, macro_f1) compare exactly, per-model
# elapsed_ms under the usual time tolerance.
RSD_SCALE=smoke RSD_THREADS=1 RSD_OBS="$obs_tmp/table3.ndjson" \
    cargo run --release -q -p rsd-bench --bin table3 >"$obs_tmp/table3.out" 2>&1
cargo run --release -q -p rsd-bench --bin obs_diff -- \
    --time-tol "${OBS_DIFF_TIME_TOL:-0.15}" \
    bench_runs/baseline/table3.report.json bench_runs/small/table3.report.json
cargo run --release -q -p rsd-bench --bin obs_diff -- --self-test \
    bench_runs/baseline/table3.report.json

echo "==> continuous telemetry smoke (50ms ticks + chrome trace)"
# The series must be well-formed NDJSON with zero ring drops at the
# default capacity, the trace must parse with a non-empty traceEvents,
# and the self-test must trip an injected tail-quantile drift derived
# from the series itself.
rm -f bench_runs/small/build_dataset.series.ndjson \
    bench_runs/small/build_dataset.trace.json
RSD_SCALE=smoke RSD_OBS_TICK_MS=50 RSD_OBS_TRACE=1 \
    RSD_BUILD_OUT="$obs_tmp/telemetry.jsonl" \
    cargo run --release -q -p rsd-bench --bin build_dataset >/dev/null
cargo run --release -q -p rsd-bench --bin obs_top -- --check \
    --trace bench_runs/small/build_dataset.trace.json \
    bench_runs/small/build_dataset.series.ndjson
cargo run --release -q -p rsd-bench --bin obs_diff -- --self-test \
    bench_runs/small/build_dataset.series.ndjson

echo "==> profiling smoke (RSD_OBS_PROFILE=1 emits a folded profile)"
rm -f bench_runs/small/table1.folded
RSD_SCALE=smoke RSD_OBS_PROFILE=1 \
    cargo run --release -q -p rsd-bench --bin table1 >/dev/null
test -s bench_runs/small/table1.folded || { echo "folded profile missing/empty"; exit 1; }

echo "==> thread-count determinism (table1 stdout, RSD_THREADS=1 vs 4)"
RSD_SCALE=smoke RSD_THREADS=1 \
    cargo run --release -q -p rsd-bench --bin table1 >"$obs_tmp/table1.t1.out"
RSD_SCALE=smoke RSD_THREADS=4 \
    cargo run --release -q -p rsd-bench --bin table1 >"$obs_tmp/table1.t4.out"
diff "$obs_tmp/table1.t1.out" "$obs_tmp/table1.t4.out" \
    || { echo "table1 stdout differs across thread counts"; exit 1; }

echo "==> streaming vs batch equivalence (smoke scale, byte diff)"
RSD_SCALE=smoke RSD_BUILD_MODE=batch RSD_BUILD_OUT="$obs_tmp/batch.jsonl" \
    cargo run --release -q -p rsd-bench --bin build_dataset
RSD_SCALE=smoke RSD_BUILD_MODE=stream RSD_CHECKPOINT_DIR=none \
    RSD_SHARD_USERS=512 RSD_BUILD_OUT="$obs_tmp/stream.jsonl" \
    cargo run --release -q -p rsd-bench --bin build_dataset
cmp "$obs_tmp/batch.jsonl" "$obs_tmp/stream.jsonl" \
    || { echo "streaming output differs from batch"; exit 1; }
RSD_SCALE=smoke RSD_BUILD_MODE=stream RSD_CHECKPOINT_DIR=none RSD_THREADS=1 \
    RSD_SHARD_USERS=512 RSD_BUILD_OUT="$obs_tmp/stream.t1.jsonl" \
    cargo run --release -q -p rsd-bench --bin build_dataset
cmp "$obs_tmp/batch.jsonl" "$obs_tmp/stream.t1.jsonl" \
    || { echo "streaming output differs from batch under RSD_THREADS=1"; exit 1; }

echo "==> checkpoint resume smoke (kill after 2 shards, then resume)"
resume_status=0
RSD_SCALE=smoke RSD_BUILD_MODE=stream RSD_CHECKPOINT_DIR="$obs_tmp/ckpt" \
    RSD_SHARD_USERS=512 RSD_INTERRUPT_AFTER_SHARDS=2 \
    RSD_BUILD_OUT="$obs_tmp/killed.jsonl" \
    cargo run --release -q -p rsd-bench --bin build_dataset || resume_status=$?
[ "$resume_status" -eq 9 ] \
    || { echo "interrupted build should exit 9, got $resume_status"; exit 1; }
RSD_SCALE=smoke RSD_BUILD_MODE=stream RSD_CHECKPOINT_DIR="$obs_tmp/ckpt" \
    RSD_SHARD_USERS=512 RSD_BUILD_OUT="$obs_tmp/resumed.jsonl" \
    cargo run --release -q -p rsd-bench --bin build_dataset
cmp "$obs_tmp/batch.jsonl" "$obs_tmp/resumed.jsonl" \
    || { echo "resumed build differs from batch"; exit 1; }

echo "==> serving smoke (loadgen at fixed QPS, clean drain + zero drops)"
# The bin itself asserts a clean drain (every submitted post scored and
# emitted); obs_top --check asserts zero ring drops and a well-formed
# series. Per-level counts in the report are timing-independent and
# compare exactly. Timing leaves get wide noise floors rather than wide
# ratios: a floor skips a leaf only when BOTH sides sit under it, so
# sub-floor scheduler jitter (smoke-scale request latency is sub-ms,
# per-request tails swing several-x run to run) is ignored while a real
# regression that clears the floor still gates at the normal ratios.
rm -f bench_runs/small/loadgen.series.ndjson
RSD_SCALE=smoke RSD_OBS="$obs_tmp/loadgen.ndjson" RSD_OBS_TICK_MS=50 RSD_QPS=500 \
    RSD_SLO_P99_MS=250 RSD_SLO_BUDGET=0.2 \
    cargo run --release -q -p rsd-bench --bin loadgen >"$obs_tmp/loadgen.out"
cargo run --release -q -p rsd-bench --bin obs_top -- --check \
    bench_runs/small/loadgen.series.ndjson
cargo run --release -q -p rsd-bench --bin obs_diff -- \
    --time-tol "${OBS_DIFF_LOADGEN_TIME_TOL:-0.50}" \
    --min-time-ms 500 --min-quantile-ms 5 \
    --quantile-tol p99 0.5 --quantile-tol p999 3.0 \
    bench_runs/baseline/loadgen.report.json bench_runs/small/loadgen.report.json
cargo run --release -q -p rsd-bench --bin obs_diff -- \
    --min-time-ms 500 --min-quantile-ms 5 \
    --quantile-tol p99 0.5 --quantile-tol p999 3.0 \
    bench_runs/baseline/loadgen.series.ndjson bench_runs/small/loadgen.series.ndjson
cargo run --release -q -p rsd-bench --bin obs_diff -- --self-test \
    bench_runs/small/loadgen.series.ndjson

echo "==> introspection endpoint smoke (RSD_OBS_HTTP, /health + /metrics + /snapshot)"
# A soaking loadgen exposes the live endpoint; the dependency-free
# obs_poll example fetches each route. /health must be 200 with status
# ok (503/degraded here means a latched burn or stalled stage),
# /metrics must carry rsd_-prefixed exposition lines, /snapshot the
# latest series tick. Direct binary paths — cargo would contend on the
# build lock with the backgrounded run.
cargo build --release -q --examples
endpoint_port=17893
RSD_SCALE=smoke RSD_OBS="$obs_tmp/endpoint.ndjson" RSD_OBS_TICK_MS=50 \
    RSD_QPS=500 RSD_LOADGEN_SOAK_MS=4000 RSD_OBS_HTTP="$endpoint_port" \
    ./target/release/loadgen >"$obs_tmp/endpoint.out" 2>"$obs_tmp/endpoint.err" &
endpoint_pid=$!
health=""
for _ in $(seq 1 50); do
    health="$(./target/release/examples/obs_poll "$endpoint_port" /health 2>/dev/null || true)"
    [ -n "$health" ] && break
    sleep 0.2
done
echo "$health" | grep -q "200 OK" || { echo "/health not 200: $health"; kill "$endpoint_pid" 2>/dev/null; exit 1; }
echo "$health" | grep -q '"status":"ok"' || { echo "/health degraded: $health"; kill "$endpoint_pid" 2>/dev/null; exit 1; }
./target/release/examples/obs_poll "$endpoint_port" /metrics | grep -q "^rsd_" \
    || { echo "/metrics has no rsd_ exposition lines"; kill "$endpoint_pid" 2>/dev/null; exit 1; }
./target/release/examples/obs_poll "$endpoint_port" /snapshot | grep -q '"kind"' \
    || { echo "/snapshot has no series tick"; kill "$endpoint_pid" 2>/dev/null; exit 1; }
wait "$endpoint_pid" || { echo "endpoint loadgen run failed"; cat "$obs_tmp/endpoint.err"; exit 1; }
grep -q "soak p99" "$obs_tmp/endpoint.out" \
    || { echo "endpoint soak did not report its SLO check"; exit 1; }

echo "==> SLO burn self-test (injected stall must trip the burn monitor)"
# Fault injection: the serve worker sleeps 1500ms after its first
# micro-batch while requests queue against a 50ms p99 target, so the
# burn-rate monitor must latch slo.burn events and loadgen must exit
# non-zero naming them. A passing run here would mean the SLO gate
# can't detect a real stall.
slo_status=0
RSD_SCALE=smoke RSD_OBS="$obs_tmp/slo_selftest.ndjson" RSD_OBS_TICK_MS=50 \
    RSD_QPS=500 RSD_SLO_P99_MS=50 RSD_SLO_BUDGET=0.05 \
    RSD_SERVE_INJECT_STALL_MS=1500 \
    ./target/release/loadgen >"$obs_tmp/slo_selftest.out" 2>&1 || slo_status=$?
[ "$slo_status" -ne 0 ] \
    || { echo "SLO self-test: injected stall did not fail loadgen"; exit 1; }
grep -q "slo.burn" "$obs_tmp/slo_selftest.out" \
    || { echo "SLO self-test: failure did not name slo.burn"; cat "$obs_tmp/slo_selftest.out"; exit 1; }
# The injected-stall series must also trip the obs_top health gate
# (exit 6), proving degraded runs can't sneak past --check.
slo_check=0
./target/release/obs_top --check bench_runs/small/loadgen.series.ndjson \
    >/dev/null 2>&1 || slo_check=$?
[ "$slo_check" -eq 6 ] \
    || { echo "obs_top --check should exit 6 on degraded series, got $slo_check"; exit 1; }

echo "==> int8 inference parity (f32-vs-int8 + partition/quant properties)"
# Targeted re-runs of the quantization contract: the tape-free f32
# engine's bitwise tape parity, int8 quality envelope, kernel SIMD/
# portable agreement, and partition invariance of quantized scoring.
cargo test --release -q -p rsd-nn --test quant_props
cargo test --release -q -p rsd-models --test int8_partition_props
cargo test --release -q -p rsd-models plm_infer

echo "==> int8 serving soak (RSD_SERVE_MODEL=plm-int8, p99 SLO + zero drops)"
# Short sustained soak through the quantized scoring backend: the bin
# asserts the p99 SLO from the serve.request histogram, a clean drain,
# and zero telemetry ring drops. Runs after the loadgen baseline diff
# above because soak reports carry wall-clock-dependent post counts
# that must not feed the committed-baseline comparison.
RSD_SCALE=smoke RSD_OBS="$obs_tmp/soak.ndjson" RSD_OBS_TICK_MS=50 RSD_QPS=500 \
    RSD_SERVE_MODEL=plm-int8 RSD_LOADGEN_SOAK_MS=2000 \
    cargo run --release -q -p rsd-bench --bin loadgen >"$obs_tmp/soak.out"
grep -q "soak p99" "$obs_tmp/soak.out" \
    || { echo "soak run did not report its SLO check"; exit 1; }

echo "==> kernel + inference bench vs committed BENCH_kernels.json"
# bench_kernels hard-gates the quantization quality knobs internally
# (RSD_QUANT_EPS / RSD_QUANT_MIN_AGREE / RSD_QUANT_MIN_SPEEDUP); the
# obs_diff pass then compares against the committed artifact — quality
# leaves (agreement, eps coverage) exactly, speedup/throughput leaves
# under a wide noise tolerance for shared CI hosts.
BENCH_KERNELS_OUT="$obs_tmp/BENCH_kernels.json" \
    cargo run --release -q -p rsd-bench --bin bench_kernels >"$obs_tmp/bench_kernels.out"
cargo run --release -q -p rsd-bench --bin obs_diff -- \
    --time-tol "${OBS_DIFF_KERNELS_TIME_TOL:-0.50}" \
    BENCH_kernels.json "$obs_tmp/BENCH_kernels.json"

echo "==> mid-scale golden equivalence (release, ignored test)"
cargo test --release -q --test streaming_equivalence -- --ignored

echo "CI gate passed."
