#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lint on the telemetry crate, release build,
# full test suite, and a smoke-scale telemetry run that checks the NDJSON
# sink and run-report artifacts are well-formed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -p rsd-obs (-D warnings)"
cargo clippy -p rsd-obs --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> telemetry smoke run (RSD_SCALE=smoke)"
obs_tmp="$(mktemp -d)"
trap 'rm -rf "$obs_tmp"' EXIT
RSD_SCALE=smoke RSD_OBS="$obs_tmp/table1.ndjson" \
    cargo run --release -q -p rsd-bench --bin table1 >"$obs_tmp/table1.out"
test -s "$obs_tmp/table1.ndjson" || { echo "NDJSON sink empty"; exit 1; }
test -s bench_runs/small/table1.report.json || { echo "run report missing"; exit 1; }

echo "CI gate passed."
