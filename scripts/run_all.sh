#!/usr/bin/env bash
# Regenerate every table/figure artifact and store raw outputs under
# bench_runs/<scale>/. Usage: scripts/run_all.sh [paper|mid|small]
set -euo pipefail
SCALE="${1:-mid}"
OUT="bench_runs/$SCALE"
mkdir -p "$OUT"
export RSD_SCALE="$SCALE"
cargo build --release -p rsd-bench
for bin in table1 table2 table3 table4 fig1 fig2 fig3 fig4 kappa trajectories post_level ablations; do
    echo "== $bin ($SCALE) =="
    cargo run --release -q -p rsd-bench --bin "$bin" | tee "$OUT/$bin.txt"
done
echo "all outputs in $OUT/"
