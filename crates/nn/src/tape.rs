//! Reverse-mode autodiff over matrices.
//!
//! One [`Tape`] is built per training example: operations append nodes,
//! [`Tape::backward`] runs the reverse sweep, and parameter gradients are
//! harvested with [`Tape::harvest_grads`]. The op set is exactly what the
//! RNN and transformer baselines require; every op's backward is verified
//! against finite differences in the test module.

use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use rand::rngs::StdRng;
use rand::Rng;

/// Handle to a tape node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug)]
enum Op {
    Leaf {
        param: Option<ParamId>,
    },
    MatMul(Var, Var),
    Add(Var, Var),
    /// `a` (r×c) plus a 1×c row vector broadcast over rows.
    AddRow(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    Tanh(Var),
    Sigmoid(Var),
    Relu(Var),
    Gelu(Var),
    /// Row-wise softmax; the node value caches the output.
    SoftmaxRows(Var),
    /// Row-wise layer norm with 1×c gain and bias. Caches inverse std and
    /// the normalized pre-gain activations.
    LayerNorm {
        x: Var,
        gain: Var,
        bias: Var,
        inv_std: Vec<f32>,
        normed: Matrix,
    },
    /// Embedding row gather: `weight` is V×d, value is ids.len()×d.
    Gather {
        weight: Var,
        ids: Vec<u32>,
    },
    ConcatCols(Vec<Var>),
    NarrowCols {
        x: Var,
        start: usize,
        len: usize,
    },
    ConcatRows(Vec<Var>),
    SelectRow {
        x: Var,
        row: usize,
    },
    Transpose(Var),
    MeanRows(Var),
    Dropout {
        x: Var,
        mask: Vec<f32>,
    },
    /// Fused mean cross-entropy over rows of logits; caches row softmax.
    CrossEntropy {
        logits: Var,
        targets: Vec<usize>,
        probs: Matrix,
    },
    /// Relative-position gather for disentangled attention. From x
    /// (n×(2r+1)) produce (n×n): out[i][j] = x[i][clamp(j-i+r)]
    /// (or x[j][clamp(i-j+r)] when `transposed`).
    RelativeGather {
        x: Var,
        radius: usize,
        transposed: bool,
    },
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

/// The autodiff tape.
pub struct Tape {
    nodes: Vec<Node>,
    /// Training mode (enables dropout).
    pub train: bool,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Fresh tape in training mode.
    pub fn new() -> Self {
        Tape {
            nodes: Vec::with_capacity(256),
            train: true,
        }
    }

    /// Fresh tape in inference mode (dropout disabled).
    pub fn inference() -> Self {
        Tape {
            nodes: Vec::with_capacity(256),
            train: false,
        }
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Borrow a node's value.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Borrow a node's gradient (after `backward`). Zero matrix if the node
    /// never received gradient.
    pub fn grad(&self, v: Var) -> Matrix {
        match &self.nodes[v.0].grad {
            Some(g) => g.clone(),
            None => {
                let val = &self.nodes[v.0].value;
                Matrix::zeros(val.rows, val.cols)
            }
        }
    }

    /// Shape of a node.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        let m = &self.nodes[v.0].value;
        (m.rows, m.cols)
    }

    // ---- graph construction --------------------------------------------

    /// A constant leaf (no parameter attachment).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf { param: None })
    }

    /// Leaf a parameter into the graph (value copied from the store).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(store.value(id).clone(), Op::Leaf { param: Some(id) })
    }

    /// `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(value, Op::MatMul(a, b))
    }

    /// Elementwise `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert!(va.same_shape(vb), "add shape mismatch");
        let mut value = va.clone();
        value.axpy(1.0, vb);
        self.push(value, Op::Add(a, b))
    }

    /// `a + row` with `row` broadcast over `a`'s rows.
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let (va, vr) = (&self.nodes[a.0].value, &self.nodes[row.0].value);
        assert_eq!(vr.rows, 1, "add_row: bias must be 1×c");
        assert_eq!(va.cols, vr.cols, "add_row: column mismatch");
        let mut value = va.clone();
        for r in 0..value.rows {
            for (o, &b) in value.row_mut(r).iter_mut().zip(&vr.data) {
                *o += b;
            }
        }
        self.push(value, Op::AddRow(a, row))
    }

    /// Elementwise `a * b`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert!(va.same_shape(vb), "mul shape mismatch");
        let value = Matrix {
            rows: va.rows,
            cols: va.cols,
            data: va.data.iter().zip(&vb.data).map(|(&x, &y)| x * y).collect(),
        };
        self.push(value, Op::Mul(a, b))
    }

    /// `a * c` for scalar `c`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let value = self.nodes[a.0].value.map(|x| x * c);
        self.push(value, Op::Scale(a, c))
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(f32::tanh);
        self.push(value, Op::Tanh(a))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(value, Op::Sigmoid(a))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(value, Op::Relu(a))
    }

    /// Elementwise GELU (tanh approximation).
    pub fn gelu(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(gelu);
        self.push(value, Op::Gelu(a))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let x = &self.nodes[a.0].value;
        let mut value = x.clone();
        for r in 0..value.rows {
            softmax_in_place(value.row_mut(r));
        }
        self.push(value, Op::SoftmaxRows(a))
    }

    /// Row-wise layer normalization with learned 1×c gain and bias.
    pub fn layer_norm(&mut self, x: Var, gain: Var, bias: Var) -> Var {
        const EPS: f32 = 1e-5;
        let vx = &self.nodes[x.0].value;
        let vg = &self.nodes[gain.0].value;
        let vb = &self.nodes[bias.0].value;
        assert_eq!(vg.rows, 1, "layer_norm: gain must be 1×c");
        assert_eq!(vb.rows, 1, "layer_norm: bias must be 1×c");
        assert_eq!(vx.cols, vg.cols, "layer_norm: gain width");
        assert_eq!(vx.cols, vb.cols, "layer_norm: bias width");

        let mut normed = Matrix::zeros(vx.rows, vx.cols);
        let mut inv_std = Vec::with_capacity(vx.rows);
        let mut value = Matrix::zeros(vx.rows, vx.cols);
        for r in 0..vx.rows {
            let row = vx.row(r);
            let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
            let var: f32 =
                row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / row.len() as f32;
            let istd = 1.0 / (var + EPS).sqrt();
            inv_std.push(istd);
            for (c, &xv) in row.iter().enumerate() {
                let n = (xv - mean) * istd;
                normed.set(r, c, n);
                value.set(r, c, n * vg.data[c] + vb.data[c]);
            }
        }
        self.push(
            value,
            Op::LayerNorm {
                x,
                gain,
                bias,
                inv_std,
                normed,
            },
        )
    }

    /// Gather embedding rows: `weight` (V×d) indexed by `ids`.
    pub fn gather(&mut self, weight: Var, ids: &[u32]) -> Var {
        let w = &self.nodes[weight.0].value;
        let mut value = Matrix::zeros(ids.len(), w.cols);
        for (r, &id) in ids.iter().enumerate() {
            let id = id as usize;
            assert!(id < w.rows, "gather: id {id} out of range ({})", w.rows);
            value.row_mut(r).copy_from_slice(w.row(id));
        }
        self.push(
            value,
            Op::Gather {
                weight,
                ids: ids.to_vec(),
            },
        )
    }

    /// Concatenate along columns (all same row count).
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols: empty");
        let rows = self.nodes[parts[0].0].value.rows;
        let total: usize = parts.iter().map(|v| self.nodes[v.0].value.cols).sum();
        let mut value = Matrix::zeros(rows, total);
        let mut offset = 0;
        for &p in parts {
            let m = &self.nodes[p.0].value;
            assert_eq!(m.rows, rows, "concat_cols: row mismatch");
            for r in 0..rows {
                value.data[r * total + offset..r * total + offset + m.cols]
                    .copy_from_slice(m.row(r));
            }
            offset += m.cols;
        }
        self.push(value, Op::ConcatCols(parts.to_vec()))
    }

    /// Select a column range.
    pub fn narrow_cols(&mut self, x: Var, start: usize, len: usize) -> Var {
        let m = &self.nodes[x.0].value;
        assert!(start + len <= m.cols, "narrow_cols out of range");
        let mut value = Matrix::zeros(m.rows, len);
        for r in 0..m.rows {
            value
                .row_mut(r)
                .copy_from_slice(&m.row(r)[start..start + len]);
        }
        self.push(value, Op::NarrowCols { x, start, len })
    }

    /// Concatenate along rows (all same column count).
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows: empty");
        let cols = self.nodes[parts[0].0].value.cols;
        let total: usize = parts.iter().map(|v| self.nodes[v.0].value.rows).sum();
        let mut value = Matrix::zeros(total, cols);
        let mut offset = 0;
        for &p in parts {
            let m = &self.nodes[p.0].value;
            assert_eq!(m.cols, cols, "concat_rows: column mismatch");
            value.data[offset * cols..(offset + m.rows) * cols].copy_from_slice(&m.data);
            offset += m.rows;
        }
        self.push(value, Op::ConcatRows(parts.to_vec()))
    }

    /// Select one row as a 1×c matrix (CLS pooling).
    pub fn select_row(&mut self, x: Var, row: usize) -> Var {
        let m = &self.nodes[x.0].value;
        assert!(row < m.rows, "select_row out of range");
        let value = Matrix::row_vec(m.row(row).to_vec());
        self.push(value, Op::SelectRow { x, row })
    }

    /// Transposed copy.
    pub fn transpose(&mut self, x: Var) -> Var {
        let value = self.nodes[x.0].value.transpose();
        self.push(value, Op::Transpose(x))
    }

    /// Mean over rows → 1×c (mean pooling).
    pub fn mean_rows(&mut self, x: Var) -> Var {
        let m = &self.nodes[x.0].value;
        let mut value = Matrix::zeros(1, m.cols);
        for r in 0..m.rows {
            for (o, &v) in value.data.iter_mut().zip(m.row(r)) {
                *o += v;
            }
        }
        let n = m.rows.max(1) as f32;
        for o in &mut value.data {
            *o /= n;
        }
        self.push(value, Op::MeanRows(x))
    }

    /// Inverted dropout with keep-prob scaling; identity in inference mode.
    pub fn dropout(&mut self, x: Var, p: f32, rng: &mut StdRng) -> Var {
        if !self.train || p <= 0.0 {
            // Identity via Scale(1.0) keeps graph structure simple.
            return self.scale(x, 1.0);
        }
        let keep = 1.0 - p;
        let m = &self.nodes[x.0].value;
        let mask: Vec<f32> = (0..m.data.len())
            .map(|_| {
                if rng.gen::<f32>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        let value = Matrix {
            rows: m.rows,
            cols: m.cols,
            data: m.data.iter().zip(&mask).map(|(&v, &k)| v * k).collect(),
        };
        self.push(value, Op::Dropout { x, mask })
    }

    /// Fused mean cross-entropy over rows of `logits` (n×C) against
    /// per-row target class indices. Returns a 1×1 loss node.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[usize]) -> Var {
        let m = &self.nodes[logits.0].value;
        assert_eq!(m.rows, targets.len(), "cross_entropy: target count");
        let mut probs = m.clone();
        let mut loss = 0.0f32;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < m.cols, "cross_entropy: target out of range");
            softmax_in_place(probs.row_mut(r));
            loss -= probs.get(r, t).max(1e-12).ln();
        }
        loss /= targets.len().max(1) as f32;
        self.push(
            Matrix::from_vec(1, 1, vec![loss]),
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
                probs,
            },
        )
    }

    /// Relative-position gather (see [`Op::RelativeGather`]): from
    /// `x` (n×(2·radius+1)) build an n×n score component.
    pub fn relative_gather(&mut self, x: Var, n: usize, radius: usize, transposed: bool) -> Var {
        let m = &self.nodes[x.0].value;
        assert_eq!(m.cols, 2 * radius + 1, "relative_gather: width");
        assert_eq!(m.rows, n, "relative_gather: rows");
        let mut value = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let (src_row, offset) = if transposed {
                    (j, i as i64 - j as i64)
                } else {
                    (i, j as i64 - i as i64)
                };
                let col = (offset + radius as i64).clamp(0, 2 * radius as i64) as usize;
                value.set(i, j, m.get(src_row, col));
            }
        }
        self.push(
            value,
            Op::RelativeGather {
                x,
                radius,
                transposed,
            },
        )
    }

    // ---- backward --------------------------------------------------------

    fn add_grad(&mut self, v: Var, g: Matrix) {
        match &mut self.nodes[v.0].grad {
            Some(existing) => existing.axpy(1.0, &g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Run the reverse sweep from `output` (seeded with ∂out/∂out = 1).
    pub fn backward(&mut self, output: Var) {
        let out_val = &self.nodes[output.0].value;
        let seed = Matrix::full(out_val.rows, out_val.cols, 1.0);
        self.add_grad(output, seed);

        for idx in (0..=output.0).rev() {
            let Some(grad) = self.nodes[idx].grad.clone() else {
                continue;
            };
            // Take op apart immutably first; accumulate into parents after.
            match &self.nodes[idx].op {
                Op::Leaf { .. } => {}
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    let da = grad.matmul_nt(&self.nodes[b.0].value);
                    let db = self.nodes[a.0].value.matmul_tn(&grad);
                    self.add_grad(a, da);
                    self.add_grad(b, db);
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    self.add_grad(a, grad.clone());
                    self.add_grad(b, grad);
                }
                Op::AddRow(a, row) => {
                    let (a, row) = (*a, *row);
                    let mut drow = Matrix::zeros(1, grad.cols);
                    for r in 0..grad.rows {
                        for (o, &g) in drow.data.iter_mut().zip(grad.row(r)) {
                            *o += g;
                        }
                    }
                    self.add_grad(a, grad);
                    self.add_grad(row, drow);
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    let va = self.nodes[a.0].value.clone();
                    let vb = self.nodes[b.0].value.clone();
                    let da = Matrix {
                        rows: grad.rows,
                        cols: grad.cols,
                        data: grad
                            .data
                            .iter()
                            .zip(&vb.data)
                            .map(|(&g, &v)| g * v)
                            .collect(),
                    };
                    let db = Matrix {
                        rows: grad.rows,
                        cols: grad.cols,
                        data: grad
                            .data
                            .iter()
                            .zip(&va.data)
                            .map(|(&g, &v)| g * v)
                            .collect(),
                    };
                    self.add_grad(a, da);
                    self.add_grad(b, db);
                }
                Op::Scale(a, c) => {
                    let (a, c) = (*a, *c);
                    self.add_grad(a, grad.map(|g| g * c));
                }
                Op::Tanh(a) => {
                    let a = *a;
                    let y = &self.nodes[idx].value;
                    let da = Matrix {
                        rows: grad.rows,
                        cols: grad.cols,
                        data: grad
                            .data
                            .iter()
                            .zip(&y.data)
                            .map(|(&g, &y)| g * (1.0 - y * y))
                            .collect(),
                    };
                    self.add_grad(a, da);
                }
                Op::Sigmoid(a) => {
                    let a = *a;
                    let y = &self.nodes[idx].value;
                    let da = Matrix {
                        rows: grad.rows,
                        cols: grad.cols,
                        data: grad
                            .data
                            .iter()
                            .zip(&y.data)
                            .map(|(&g, &y)| g * y * (1.0 - y))
                            .collect(),
                    };
                    self.add_grad(a, da);
                }
                Op::Relu(a) => {
                    let a = *a;
                    let x = &self.nodes[a.0].value;
                    let da = Matrix {
                        rows: grad.rows,
                        cols: grad.cols,
                        data: grad
                            .data
                            .iter()
                            .zip(&x.data)
                            .map(|(&g, &x)| if x > 0.0 { g } else { 0.0 })
                            .collect(),
                    };
                    self.add_grad(a, da);
                }
                Op::Gelu(a) => {
                    let a = *a;
                    let x = &self.nodes[a.0].value;
                    let da = Matrix {
                        rows: grad.rows,
                        cols: grad.cols,
                        data: grad
                            .data
                            .iter()
                            .zip(&x.data)
                            .map(|(&g, &x)| g * gelu_grad(x))
                            .collect(),
                    };
                    self.add_grad(a, da);
                }
                Op::SoftmaxRows(a) => {
                    let a = *a;
                    let y = self.nodes[idx].value.clone();
                    let mut da = Matrix::zeros(grad.rows, grad.cols);
                    for r in 0..grad.rows {
                        let g_row = grad.row(r);
                        let y_row = y.row(r);
                        let dot: f32 = g_row.iter().zip(y_row).map(|(&g, &y)| g * y).sum();
                        for c in 0..grad.cols {
                            da.set(r, c, y_row[c] * (g_row[c] - dot));
                        }
                    }
                    self.add_grad(a, da);
                }
                Op::LayerNorm {
                    x,
                    gain,
                    bias,
                    inv_std,
                    normed,
                } => {
                    let (x, gain, bias) = (*x, *gain, *bias);
                    let inv_std = inv_std.clone();
                    let normed = normed.clone();
                    let vg = self.nodes[gain.0].value.clone();
                    let n = grad.cols as f32;

                    let mut dgain = Matrix::zeros(1, grad.cols);
                    let mut dbias = Matrix::zeros(1, grad.cols);
                    let mut dx = Matrix::zeros(grad.rows, grad.cols);
                    for (r, &istd) in inv_std.iter().enumerate().take(grad.rows) {
                        let g_row = grad.row(r);
                        let n_row = normed.row(r);
                        for c in 0..grad.cols {
                            dgain.data[c] += g_row[c] * n_row[c];
                            dbias.data[c] += g_row[c];
                        }
                        // dnormed = g * gain
                        let dn: Vec<f32> =
                            g_row.iter().zip(&vg.data).map(|(&g, &w)| g * w).collect();
                        let sum_dn: f32 = dn.iter().sum();
                        let sum_dn_n: f32 = dn.iter().zip(n_row).map(|(&d, &m)| d * m).sum();
                        for c in 0..grad.cols {
                            let v = istd * (dn[c] - sum_dn / n - n_row[c] * sum_dn_n / n);
                            dx.set(r, c, v);
                        }
                    }
                    self.add_grad(x, dx);
                    self.add_grad(gain, dgain);
                    self.add_grad(bias, dbias);
                }
                Op::Gather { weight, ids } => {
                    let weight = *weight;
                    let ids = ids.clone();
                    let w_shape = {
                        let w = &self.nodes[weight.0].value;
                        (w.rows, w.cols)
                    };
                    let mut dw = Matrix::zeros(w_shape.0, w_shape.1);
                    for (r, &id) in ids.iter().enumerate() {
                        let dst = dw.row_mut(id as usize);
                        for (o, &g) in dst.iter_mut().zip(grad.row(r)) {
                            *o += g;
                        }
                    }
                    self.add_grad(weight, dw);
                }
                Op::ConcatCols(parts) => {
                    let parts = parts.clone();
                    let mut offset = 0;
                    for p in parts {
                        let cols = self.nodes[p.0].value.cols;
                        let mut dp = Matrix::zeros(grad.rows, cols);
                        for r in 0..grad.rows {
                            dp.row_mut(r)
                                .copy_from_slice(&grad.row(r)[offset..offset + cols]);
                        }
                        offset += cols;
                        self.add_grad(p, dp);
                    }
                }
                Op::NarrowCols { x, start, len } => {
                    let (x, start, len) = (*x, *start, *len);
                    let full = {
                        let m = &self.nodes[x.0].value;
                        (m.rows, m.cols)
                    };
                    let mut dx = Matrix::zeros(full.0, full.1);
                    for r in 0..grad.rows {
                        dx.row_mut(r)[start..start + len].copy_from_slice(grad.row(r));
                    }
                    self.add_grad(x, dx);
                }
                Op::ConcatRows(parts) => {
                    let parts = parts.clone();
                    let mut offset = 0;
                    for p in parts {
                        let rows = self.nodes[p.0].value.rows;
                        let mut dp = Matrix::zeros(rows, grad.cols);
                        dp.data.copy_from_slice(
                            &grad.data[offset * grad.cols..(offset + rows) * grad.cols],
                        );
                        offset += rows;
                        self.add_grad(p, dp);
                    }
                }
                Op::SelectRow { x, row } => {
                    let (x, row) = (*x, *row);
                    let full = {
                        let m = &self.nodes[x.0].value;
                        (m.rows, m.cols)
                    };
                    let mut dx = Matrix::zeros(full.0, full.1);
                    dx.row_mut(row).copy_from_slice(grad.row(0));
                    self.add_grad(x, dx);
                }
                Op::Transpose(x) => {
                    let x = *x;
                    self.add_grad(x, grad.transpose());
                }
                Op::MeanRows(x) => {
                    let x = *x;
                    let rows = self.nodes[x.0].value.rows;
                    let scale = 1.0 / rows.max(1) as f32;
                    let mut dx = Matrix::zeros(rows, grad.cols);
                    for r in 0..rows {
                        for (o, &g) in dx.row_mut(r).iter_mut().zip(grad.row(0)) {
                            *o = g * scale;
                        }
                    }
                    self.add_grad(x, dx);
                }
                Op::Dropout { x, mask } => {
                    let x = *x;
                    let mask = mask.clone();
                    let dx = Matrix {
                        rows: grad.rows,
                        cols: grad.cols,
                        data: grad.data.iter().zip(&mask).map(|(&g, &m)| g * m).collect(),
                    };
                    self.add_grad(x, dx);
                }
                Op::CrossEntropy {
                    logits,
                    targets,
                    probs,
                } => {
                    let logits = *logits;
                    let targets = targets.clone();
                    let probs = probs.clone();
                    let upstream = grad.data[0];
                    let n = targets.len().max(1) as f32;
                    let mut dl = probs;
                    for (r, &t) in targets.iter().enumerate() {
                        let row = dl.row_mut(r);
                        row[t] -= 1.0;
                        for v in row.iter_mut() {
                            *v *= upstream / n;
                        }
                    }
                    // (loop above indexes by target, not position — fine)
                    self.add_grad(logits, dl);
                }
                Op::RelativeGather {
                    x,
                    radius,
                    transposed,
                } => {
                    let (x, radius, transposed) = (*x, *radius, *transposed);
                    let n = grad.rows;
                    let mut dx = Matrix::zeros(n, 2 * radius + 1);
                    for i in 0..n {
                        for j in 0..n {
                            let (src_row, offset) = if transposed {
                                (j, i as i64 - j as i64)
                            } else {
                                (i, j as i64 - i as i64)
                            };
                            let col = (offset + radius as i64).clamp(0, 2 * radius as i64) as usize;
                            dx.data[src_row * (2 * radius + 1) + col] += grad.get(i, j);
                        }
                    }
                    self.add_grad(x, dx);
                }
            }
        }
    }

    /// After `backward`, push every parameter leaf's gradient into the
    /// store.
    pub fn harvest_grads(&self, store: &mut ParamStore) {
        for node in &self.nodes {
            if let Op::Leaf { param: Some(id) } = node.op {
                if let Some(g) = &node.grad {
                    store.accumulate(id, g);
                }
            }
        }
    }

    /// Number of nodes on the tape (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes were recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Stable in-place softmax over a slice.
fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

/// GELU, tanh approximation.
fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// d/dx of the tanh-approximated GELU.
fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (x + 0.044715 * x * x * x);
    let t = inner.tanh();
    let dinner = C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Finite-difference check: builds the graph twice per perturbed input
    /// entry and compares ∂loss/∂x with the tape's gradient.
    fn check_grad(build: impl Fn(&mut Tape, Var) -> Var, input: Matrix, tol: f32) {
        // Analytic gradient.
        let mut tape = Tape::new();
        let x = tape.constant(input.clone());
        let out = build(&mut tape, x);
        // Reduce to scalar by summing (seeding with ones does this).
        tape.backward(out);
        let analytic = tape.grad(x);

        // Numeric gradient.
        let eps = 1e-2f32;
        let eval = |m: &Matrix| -> f32 {
            let mut t = Tape::new();
            let v = t.constant(m.clone());
            let o = build(&mut t, v);
            t.value(o).data.iter().sum()
        };
        for i in 0..input.data.len() {
            let mut plus = input.clone();
            plus.data[i] += eps;
            let mut minus = input.clone();
            minus.data[i] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let got = analytic.data[i];
            assert!(
                (numeric - got).abs() < tol * (1.0 + numeric.abs()),
                "grad mismatch at {i}: numeric {numeric}, analytic {got}"
            );
        }
    }

    fn test_input() -> Matrix {
        Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 0.1, 0.7, -0.3])
    }

    #[test]
    fn grad_matmul() {
        let w = Matrix::from_vec(3, 2, vec![0.2, -0.4, 1.0, 0.3, -0.6, 0.9]);
        check_grad(
            move |t, x| {
                let w = t.constant(w.clone());
                t.matmul(x, w)
            },
            test_input(),
            1e-2,
        );
    }

    #[test]
    fn grad_add_and_mul() {
        let other = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.5, 0.25]);
        let o2 = other.clone();
        check_grad(
            move |t, x| {
                let o = t.constant(other.clone());
                t.add(x, o)
            },
            test_input(),
            1e-2,
        );
        check_grad(
            move |t, x| {
                let o = t.constant(o2.clone());
                t.mul(x, o)
            },
            test_input(),
            1e-2,
        );
    }

    #[test]
    fn grad_add_row() {
        let bias = Matrix::row_vec(vec![0.3, -0.2, 0.8]);
        check_grad(
            move |t, x| {
                let b = t.constant(bias.clone());
                t.add_row(x, b)
            },
            test_input(),
            1e-2,
        );
        // Bias side.
        let base = test_input();
        check_grad(
            move |t, b| {
                let x = t.constant(base.clone());
                t.add_row(x, b)
            },
            Matrix::row_vec(vec![0.3, -0.2, 0.8]),
            1e-2,
        );
    }

    #[test]
    fn grad_activations() {
        check_grad(|t, x| t.tanh(x), test_input(), 2e-2);
        check_grad(|t, x| t.sigmoid(x), test_input(), 2e-2);
        check_grad(|t, x| t.gelu(x), test_input(), 3e-2);
        // ReLU away from the kink.
        check_grad(|t, x| t.relu(x), test_input(), 2e-2);
    }

    #[test]
    fn grad_softmax_rows() {
        // Compose with a weighting so the gradient isn't identically zero
        // (softmax rows sum to 1, so a plain sum has zero gradient).
        let weights = Matrix::from_vec(2, 3, vec![1.0, -2.0, 0.5, 0.3, 2.0, -1.0]);
        check_grad(
            move |t, x| {
                let s = t.softmax_rows(x);
                let w = t.constant(weights.clone());
                t.mul(s, w)
            },
            test_input(),
            2e-2,
        );
    }

    #[test]
    fn grad_layer_norm() {
        let gain = Matrix::row_vec(vec![1.2, 0.8, 1.0]);
        let bias = Matrix::row_vec(vec![0.1, -0.1, 0.0]);
        let weights = Matrix::from_vec(2, 3, vec![1.0, -2.0, 0.5, 0.3, 2.0, -1.0]);
        check_grad(
            move |t, x| {
                let g = t.constant(gain.clone());
                let b = t.constant(bias.clone());
                let ln = t.layer_norm(x, g, b);
                let w = t.constant(weights.clone());
                t.mul(ln, w)
            },
            test_input(),
            5e-2,
        );
    }

    #[test]
    fn grad_gather() {
        check_grad(
            |t, w| t.gather(w, &[2, 0, 2]),
            Matrix::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]),
            1e-2,
        );
    }

    #[test]
    fn grad_concat_narrow_select() {
        check_grad(
            |t, x| {
                let a = t.narrow_cols(x, 0, 2);
                let b = t.narrow_cols(x, 1, 2);
                let c = t.concat_cols(&[a, b]);
                t.select_row(c, 1)
            },
            test_input(),
            1e-2,
        );
        check_grad(
            |t, x| {
                let a = t.select_row(x, 0);
                let b = t.select_row(x, 1);
                t.concat_rows(&[a, b])
            },
            test_input(),
            1e-2,
        );
    }

    #[test]
    fn grad_transpose_mean() {
        check_grad(|t, x| t.transpose(x), test_input(), 1e-2);
        check_grad(|t, x| t.mean_rows(x), test_input(), 1e-2);
    }

    #[test]
    fn grad_cross_entropy() {
        check_grad(|t, x| t.cross_entropy(x, &[2, 0]), test_input(), 2e-2);
    }

    #[test]
    fn grad_relative_gather() {
        for transposed in [false, true] {
            check_grad(
                move |t, x| t.relative_gather(x, 3, 2, transposed),
                Matrix::from_vec(3, 5, (0..15).map(|i| (i as f32) * 0.1 - 0.7).collect()),
                1e-2,
            );
        }
    }

    #[test]
    fn dropout_identity_in_inference() {
        let mut tape = Tape::inference();
        let x = tape.constant(test_input());
        let mut rng = StdRng::seed_from_u64(3);
        let y = tape.dropout(x, 0.5, &mut rng);
        assert_eq!(tape.value(y), tape.value(x));
    }

    #[test]
    fn dropout_scales_by_keep_prob() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::full(10, 10, 1.0));
        let mut rng = StdRng::seed_from_u64(4);
        let y = tape.dropout(x, 0.5, &mut rng);
        let vals = &tape.value(y).data;
        assert!(vals.iter().all(|&v| v == 0.0 || v == 2.0));
        let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
        assert!((mean - 1.0).abs() < 0.3, "inverted dropout keeps scale");
    }

    #[test]
    fn cross_entropy_value_matches_manual() {
        let mut tape = Tape::new();
        let logits = tape.constant(Matrix::from_vec(1, 3, vec![0.0, 0.0, 0.0]));
        let loss = tape.cross_entropy(logits, &[1]);
        assert!((tape.value(loss).data[0] - 3.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn param_grads_harvested() {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
        let mut tape = Tape::new();
        let w = tape.param(&store, id);
        let x = tape.constant(Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        let y = tape.matmul(x, w);
        tape.backward(y);
        tape.harvest_grads(&mut store);
        // dL/dw = xᵀ @ ones(1×2)
        assert_eq!(store.grad(id).data, vec![3.0, 3.0, 4.0, 4.0]);
    }

    #[test]
    fn gradients_accumulate_across_paths() {
        // y = x + x → dy/dx = 2
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_vec(1, 1, vec![5.0]));
        let y = tape.add(x, x);
        tape.backward(y);
        assert_eq!(tape.grad(x).data, vec![2.0]);
    }
}
