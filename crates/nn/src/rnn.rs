//! Recurrent cells: LSTM and GRU, plus (bi)directional sequence runners.
//!
//! Cells operate on single-sequence matrices (seq_len × dim): one tape node
//! chain per time step. The BiLSTM baseline composes [`Lstm`] forward and
//! backward; HiGRU stacks two [`Gru`] levels (token-level and post-level).

use rand::rngs::StdRng;

use crate::layers::Linear;
use crate::params::ParamStore;
use crate::tape::{Tape, Var};

/// LSTM cell parameters (fused gate projection: `[i f g o]`).
#[derive(Debug, Clone)]
pub struct Lstm {
    /// Input projection (in → 4·hidden).
    pub wx: Linear,
    /// Recurrent projection (hidden → 4·hidden).
    pub wh: Linear,
    /// Hidden width.
    pub hidden: usize,
}

impl Lstm {
    /// Register an LSTM cell.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input: usize,
        hidden: usize,
        rng: &mut StdRng,
    ) -> Self {
        Lstm {
            wx: Linear::new(store, &format!("{name}.wx"), input, 4 * hidden, rng),
            wh: Linear::new(store, &format!("{name}.wh"), hidden, 4 * hidden, rng),
            hidden,
        }
    }

    /// One step: `(h, c) → (h', c')` for an input row `x` (1×in).
    pub fn step(&self, tape: &mut Tape, store: &ParamStore, x: Var, h: Var, c: Var) -> (Var, Var) {
        let gx = self.wx.forward(tape, store, x);
        let gh = self.wh.forward(tape, store, h);
        let gates = tape.add(gx, gh);
        let hsz = self.hidden;
        let i = tape.narrow_cols(gates, 0, hsz);
        let f = tape.narrow_cols(gates, hsz, hsz);
        let g = tape.narrow_cols(gates, 2 * hsz, hsz);
        let o = tape.narrow_cols(gates, 3 * hsz, hsz);
        let i = tape.sigmoid(i);
        let f = tape.sigmoid(f);
        let g = tape.tanh(g);
        let o = tape.sigmoid(o);
        let fc = tape.mul(f, c);
        let ig = tape.mul(i, g);
        let c_next = tape.add(fc, ig);
        let tc = tape.tanh(c_next);
        let h_next = tape.mul(o, tc);
        (h_next, c_next)
    }

    /// Run over a sequence (seq×in), returning per-step hidden states
    /// (seq×hidden). `reverse` processes the sequence back-to-front but
    /// returns outputs in original order.
    pub fn run(&self, tape: &mut Tape, store: &ParamStore, sequence: Var, reverse: bool) -> Var {
        let (seq_len, _) = tape.shape(sequence);
        let zeros = crate::matrix::Matrix::zeros(1, self.hidden);
        let mut h = tape.constant(zeros.clone());
        let mut c = tape.constant(zeros);
        let mut outputs: Vec<Var> = vec![h; seq_len];
        let order: Vec<usize> = if reverse {
            (0..seq_len).rev().collect()
        } else {
            (0..seq_len).collect()
        };
        for t in order {
            let x = tape.select_row(sequence, t);
            let (h2, c2) = self.step(tape, store, x, h, c);
            h = h2;
            c = c2;
            outputs[t] = h;
        }
        tape.concat_rows(&outputs)
    }
}

/// GRU cell parameters (fused `[z r]` projections plus candidate).
#[derive(Debug, Clone)]
pub struct Gru {
    /// Input projection for the update/reset gates (in → 2·hidden).
    pub wx_zr: Linear,
    /// Recurrent projection for the gates (hidden → 2·hidden).
    pub wh_zr: Linear,
    /// Input projection for the candidate (in → hidden).
    pub wx_n: Linear,
    /// Recurrent projection for the candidate (hidden → hidden).
    pub wh_n: Linear,
    /// Hidden width.
    pub hidden: usize,
}

impl Gru {
    /// Register a GRU cell.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input: usize,
        hidden: usize,
        rng: &mut StdRng,
    ) -> Self {
        Gru {
            wx_zr: Linear::new(store, &format!("{name}.wx_zr"), input, 2 * hidden, rng),
            wh_zr: Linear::new(store, &format!("{name}.wh_zr"), hidden, 2 * hidden, rng),
            wx_n: Linear::new(store, &format!("{name}.wx_n"), input, hidden, rng),
            wh_n: Linear::new(store, &format!("{name}.wh_n"), hidden, hidden, rng),
            hidden,
        }
    }

    /// One step: `h → h'` for an input row `x` (1×in).
    pub fn step(&self, tape: &mut Tape, store: &ParamStore, x: Var, h: Var) -> Var {
        let gx = self.wx_zr.forward(tape, store, x);
        let gh = self.wh_zr.forward(tape, store, h);
        let gates = tape.add(gx, gh);
        let hsz = self.hidden;
        let z = tape.narrow_cols(gates, 0, hsz);
        let r = tape.narrow_cols(gates, hsz, hsz);
        let z = tape.sigmoid(z);
        let r = tape.sigmoid(r);
        let rh = tape.mul(r, h);
        let nx = self.wx_n.forward(tape, store, x);
        let nh = self.wh_n.forward(tape, store, rh);
        let n_pre = tape.add(nx, nh);
        let n = tape.tanh(n_pre);
        // h' = (1 − z)·h + z·n = h − z·h + z·n
        let zh = tape.mul(z, h);
        let zn = tape.mul(z, n);
        let neg_zh = tape.scale(zh, -1.0);
        let partial = tape.add(h, neg_zh);
        tape.add(partial, zn)
    }

    /// Run over a sequence (seq×in) → per-step hidden states (seq×hidden).
    pub fn run(&self, tape: &mut Tape, store: &ParamStore, sequence: Var, reverse: bool) -> Var {
        let (seq_len, _) = tape.shape(sequence);
        let zeros = crate::matrix::Matrix::zeros(1, self.hidden);
        let mut h = tape.constant(zeros);
        let mut outputs: Vec<Var> = vec![h; seq_len];
        let order: Vec<usize> = if reverse {
            (0..seq_len).rev().collect()
        } else {
            (0..seq_len).collect()
        };
        for t in order {
            let x = tape.select_row(sequence, t);
            h = self.step(tape, store, x, h);
            outputs[t] = h;
        }
        tape.concat_rows(&outputs)
    }
}

/// Bidirectional wrapper: concat of forward and backward runs
/// (seq×2·hidden).
pub fn bidirectional<F>(tape: &mut Tape, run: F, sequence: Var) -> Var
where
    F: Fn(&mut Tape, Var, bool) -> Var,
{
    let fwd = run(tape, sequence, false);
    let bwd = run(tape, sequence, true);
    tape.concat_cols(&[fwd, bwd])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::optim::{Adam, Optimizer};
    use rand::SeedableRng;

    fn seq(data: Vec<f32>, dim: usize) -> Matrix {
        let rows = data.len() / dim;
        Matrix::from_vec(rows, dim, data)
    }

    #[test]
    fn lstm_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, "l", 3, 5, &mut rng);
        let mut tape = Tape::new();
        let s = tape.constant(seq(vec![0.1; 12], 3));
        let out = lstm.run(&mut tape, &store, s, false);
        assert_eq!(tape.shape(out), (4, 5));
    }

    #[test]
    fn gru_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "g", 3, 4, &mut rng);
        let mut tape = Tape::new();
        let s = tape.constant(seq(vec![0.1; 9], 3));
        let out = gru.run(&mut tape, &store, s, false);
        assert_eq!(tape.shape(out), (3, 4));
    }

    #[test]
    fn bidirectional_doubles_width() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, "l", 2, 3, &mut rng);
        let mut tape = Tape::new();
        let s = tape.constant(seq(vec![0.5; 8], 2));
        let out = bidirectional(&mut tape, |t, s, rev| lstm.run(t, &store, s, rev), s);
        assert_eq!(tape.shape(out), (4, 6));
    }

    #[test]
    fn reverse_changes_state_order() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "g", 1, 3, &mut rng);
        let mut tape = Tape::new();
        let s = tape.constant(seq(vec![1.0, -1.0, 0.5], 1));
        let fwd = gru.run(&mut tape, &store, s, false);
        let bwd = gru.run(&mut tape, &store, s, true);
        // Forward's first state only saw x0; backward's first state saw all.
        assert_ne!(tape.value(fwd).row(0), tape.value(bwd).row(0));
    }

    /// Finite-difference check of d(sum of outputs)/d(input) through a
    /// full recurrent run — catches any backward-pass error in the cell
    /// compositions.
    fn check_rnn_grad(run: impl Fn(&mut Tape, Var) -> Var, input: Matrix, tol: f32) {
        let mut tape = Tape::new();
        let x = tape.constant(input.clone());
        let out = run(&mut tape, x);
        tape.backward(out);
        let analytic = tape.grad(x);

        let eps = 1e-2f32;
        let eval = |m: &Matrix| -> f32 {
            let mut t = Tape::new();
            let v = t.constant(m.clone());
            let o = run(&mut t, v);
            t.value(o).data.iter().sum()
        };
        for i in 0..input.data.len() {
            let mut plus = input.clone();
            plus.data[i] += eps;
            let mut minus = input.clone();
            minus.data[i] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let got = analytic.data[i];
            assert!(
                (numeric - got).abs() < tol * (1.0 + numeric.abs()),
                "rnn grad mismatch at {i}: numeric {numeric}, analytic {got}"
            );
        }
    }

    #[test]
    fn lstm_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, "l", 2, 3, &mut rng);
        let input = seq(vec![0.3, -0.5, 0.8, 0.1, -0.2, 0.6], 2);
        check_rnn_grad(move |tape, x| lstm.run(tape, &store, x, false), input, 5e-2);
    }

    #[test]
    fn gru_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "g", 2, 3, &mut rng);
        let input = seq(vec![0.3, -0.5, 0.8, 0.1, -0.2, 0.6], 2);
        check_rnn_grad(move |tape, x| gru.run(tape, &store, x, true), input, 5e-2);
    }

    #[test]
    fn lstm_learns_sequence_order() {
        // Task: classify whether the bigger input comes first.
        // Sequences [1,0] → class 0, [0,1] → class 1. An order-blind model
        // cannot separate these (identical bags).
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, "l", 1, 8, &mut rng);
        let head = Linear::new(&mut store, "head", 8, 2, &mut rng);
        let mut opt = Adam::new(0.02);
        let data = [
            (vec![1.0f32, 0.0], 0usize),
            (vec![0.0, 1.0], 1),
            (vec![0.9, 0.1], 0),
            (vec![0.1, 0.9], 1),
        ];
        for _ in 0..150 {
            for (x, y) in &data {
                let mut tape = Tape::new();
                let s = tape.constant(seq(x.clone(), 1));
                let hs = lstm.run(&mut tape, &store, s, false);
                let last = tape.select_row(hs, 1);
                let logits = head.forward(&mut tape, &store, last);
                let loss = tape.cross_entropy(logits, &[*y]);
                tape.backward(loss);
                tape.harvest_grads(&mut store);
                opt.step(&mut store);
            }
        }
        let mut correct = 0;
        for (x, y) in &data {
            let mut tape = Tape::inference();
            let s = tape.constant(seq(x.clone(), 1));
            let hs = lstm.run(&mut tape, &store, s, false);
            let last = tape.select_row(hs, 1);
            let logits = head.forward(&mut tape, &store, last);
            let pred = crate::loss::argmax_rows(tape.value(logits))[0];
            if pred == *y {
                correct += 1;
            }
        }
        assert_eq!(correct, 4, "LSTM must learn order discrimination");
    }

    #[test]
    fn gru_learns_sequence_order() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "g", 1, 8, &mut rng);
        let head = Linear::new(&mut store, "head", 8, 2, &mut rng);
        let mut opt = Adam::new(0.02);
        let data = [(vec![1.0f32, 0.0], 0usize), (vec![0.0, 1.0], 1)];
        for _ in 0..200 {
            for (x, y) in &data {
                let mut tape = Tape::new();
                let s = tape.constant(seq(x.clone(), 1));
                let hs = gru.run(&mut tape, &store, s, false);
                let last = tape.select_row(hs, 1);
                let logits = head.forward(&mut tape, &store, last);
                let loss = tape.cross_entropy(logits, &[*y]);
                tape.backward(loss);
                tape.harvest_grads(&mut store);
                opt.step(&mut store);
            }
        }
        for (x, y) in &data {
            let mut tape = Tape::inference();
            let s = tape.constant(seq(x.clone(), 1));
            let hs = gru.run(&mut tape, &store, s, false);
            let last = tape.select_row(hs, 1);
            let logits = head.forward(&mut tape, &store, last);
            assert_eq!(crate::loss::argmax_rows(tape.value(logits))[0], *y);
        }
    }
}
