//! Parameter store: named parameter registration, gradient accumulation,
//! and (de)serialization of model weights.
//!
//! Models register matrices once (getting a stable [`ParamId`]); every
//! forward pass leafs them into the tape; [`ParamStore::accumulate`] sums
//! per-example gradients; the optimizer consumes and clears them.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::Rng;
use rsd_common::RsdError;

/// Stable handle to a registered parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// One registered parameter with its accumulated gradient.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamSlot {
    /// Human-readable name ("encoder.0.attn.wq").
    pub name: String,
    /// Current weights.
    pub value: Matrix,
    /// Accumulated gradient (same shape).
    pub grad: Matrix,
}

/// The parameter store.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    slots: Vec<ParamSlot>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter with explicit initial weights.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let grad = Matrix::zeros(value.rows, value.cols);
        self.slots.push(ParamSlot {
            name: name.into(),
            value,
            grad,
        });
        ParamId(self.slots.len() - 1)
    }

    /// Register with Xavier/Glorot-uniform initialization.
    pub fn register_xavier(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        rng: &mut StdRng,
    ) -> ParamId {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        self.register(name, Matrix::from_vec(rows, cols, data))
    }

    /// Register a zero-initialized parameter (biases).
    pub fn register_zeros(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        self.register(name, Matrix::zeros(rows, cols))
    }

    /// Register with small-normal initialization (embeddings).
    pub fn register_normal(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        std: f32,
        rng: &mut StdRng,
    ) -> ParamId {
        let data = (0..rows * cols)
            .map(|_| {
                // Box–Muller on f32.
                let u1: f32 = rng.gen::<f32>().max(f32::MIN_POSITIVE);
                let u2: f32 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * std
            })
            .collect();
        self.register(name, Matrix::from_vec(rows, cols, data))
    }

    /// Number of parameters registered.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total scalar parameter count.
    pub fn n_scalars(&self) -> usize {
        self.slots.iter().map(|s| s.value.data.len()).sum()
    }

    /// Borrow a parameter's value.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.slots[id.0].value
    }

    /// Mutably borrow a parameter's value (optimizer use).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.slots[id.0].value
    }

    /// Borrow a parameter's accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.slots[id.0].grad
    }

    /// Accumulate a gradient contribution.
    pub fn accumulate(&mut self, id: ParamId, grad: &Matrix) {
        self.slots[id.0].grad.axpy(1.0, grad);
    }

    /// Zero all gradients.
    pub fn zero_grads(&mut self) {
        for slot in &mut self.slots {
            slot.grad.fill_zero();
        }
    }

    /// Scale all gradients (e.g. 1/batch before the optimizer step).
    pub fn scale_grads(&mut self, factor: f32) {
        for slot in &mut self.slots {
            for g in &mut slot.grad.data {
                *g *= factor;
            }
        }
    }

    /// Global gradient-norm clipping; returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm: f32 = self
            .slots
            .iter()
            .map(|s| s.grad.data.iter().map(|g| g * g).sum::<f32>())
            .sum::<f32>()
            .sqrt();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            self.scale_grads(scale);
        }
        norm
    }

    /// Iterate all ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.slots.len()).map(ParamId)
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.slots[id.0].name
    }

    /// Persist weights (names + values; gradients are not saved) to a JSON
    /// checkpoint file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), RsdError> {
        let file = std::fs::File::create(path)?;
        let writer = std::io::BufWriter::new(file);
        serde_json::to_writer(writer, self).map_err(|e| RsdError::Serde(e.to_string()))
    }

    /// Load a checkpoint saved by [`ParamStore::save`]. Gradients come back
    /// zeroed.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<ParamStore, RsdError> {
        let file = std::fs::File::open(path)?;
        let reader = std::io::BufReader::new(file);
        let mut store: ParamStore =
            serde_json::from_reader(reader).map_err(|e| RsdError::Serde(e.to_string()))?;
        for slot in &mut store.slots {
            if !slot.grad.same_shape(&slot.value) {
                return Err(RsdError::Serde(format!(
                    "checkpoint corrupt: grad/value shape mismatch for {}",
                    slot.name
                )));
            }
            slot.grad.fill_zero();
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        assert_eq!(store.value(id).data, vec![1.0, 2.0]);
        assert_eq!(store.name(id), "w");
        assert_eq!(store.len(), 1);
        assert_eq!(store.n_scalars(), 2);
    }

    #[test]
    fn xavier_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let id = store.register_xavier("w", 10, 20, &mut rng);
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(store.value(id).data.iter().all(|&x| x.abs() <= bound));
        // Not all zero.
        assert!(store.value(id).frobenius() > 0.0);
    }

    #[test]
    fn normal_init_has_requested_spread() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let id = store.register_normal("e", 100, 50, 0.1, &mut rng);
        let data = &store.value(id).data;
        let mean: f32 = data.iter().sum::<f32>() / data.len() as f32;
        let var: f32 = data.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / data.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.01, "std {}", var.sqrt());
    }

    #[test]
    fn gradient_accumulation_and_clearing() {
        let mut store = ParamStore::new();
        let id = store.register_zeros("b", 1, 3);
        store.accumulate(id, &Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]));
        store.accumulate(id, &Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        assert_eq!(store.grad(id).data, vec![2.0, 3.0, 4.0]);
        store.scale_grads(0.5);
        assert_eq!(store.grad(id).data, vec![1.0, 1.5, 2.0]);
        store.zero_grads();
        assert_eq!(store.grad(id).data, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn clip_grad_norm_scales_when_needed() {
        let mut store = ParamStore::new();
        let id = store.register_zeros("w", 1, 2);
        store.accumulate(id, &Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        let norm = store.clip_grad_norm(1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((store.grad(id).frobenius() - 1.0).abs() < 1e-6);
        // Below the threshold: untouched.
        let norm2 = store.clip_grad_norm(10.0);
        assert!((norm2 - 1.0).abs() < 1e-6);
        assert!((store.grad(id).frobenius() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn checkpoint_save_load_round_trip() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let id = store.register_xavier("w", 4, 4, &mut rng);
        store.accumulate(id, &Matrix::full(4, 4, 1.0));
        let path = std::env::temp_dir().join("rsd_nn_ckpt_test.json");
        store.save(&path).unwrap();
        let back = ParamStore::load(&path).unwrap();
        assert_eq!(back.value(id), store.value(id));
        assert_eq!(back.grad(id).frobenius(), 0.0, "grads come back zeroed");
        assert_eq!(back.name(id), "w");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join("rsd_nn_ckpt_bad.json");
        std::fs::write(&path, b"{not json").unwrap();
        assert!(ParamStore::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serde_round_trip() {
        let mut store = ParamStore::new();
        store.register("w", Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let json = serde_json::to_string(&store).unwrap();
        let back: ParamStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.value(ParamId(0)).data, vec![1.0, 2.0, 3.0, 4.0]);
    }
}
