//! Dense row-major f32 matrices with the kernels training needs.
//!
//! Not a general linear-algebra library: exactly the operations the tape
//! ops are built from. The hot kernels (`matmul` family, `transpose`,
//! `axpy`, `map`) are cache-blocked and parallelized over output-row
//! chunks through `rsd-par`; every output element is written by exactly
//! one chunk and chunk boundaries depend only on the shape, so results
//! are bit-identical to serial execution for any `RSD_THREADS`. The
//! matmul dense path accumulates with fused multiply-adds (one rounding
//! per step, via `f32::mul_add` or the AVX2 `vfmaddps` kernel — both
//! produce the same bits), so it is differently rounded than the
//! pre-optimization kernels but deterministic everywhere.
//!
//! The pre-optimization scalar kernels live in [`reference`] so benches
//! and property tests can compare against the original implementations.

use serde::{Deserialize, Serialize};

/// Inner-loop operations per parallel chunk the kernels aim for; rows are
/// grouped so each chunk amortizes scheduling overhead. A pure function
/// of shape — never of thread count — to keep chunking deterministic.
const CHUNK_WORK: usize = 1 << 15;

/// Elementwise kernels (axpy/map) chunk at this many elements.
const ELEM_GRAIN: usize = 1 << 12;

/// Kernels whose total work is below this skip span creation entirely
/// (tiny matmuls inside per-token RNN steps would otherwise drown the
/// telemetry stream).
const SPAN_MIN_WORK: usize = 1 << 20;

fn kernel_span(label: &'static str, work: usize) -> Option<rsd_obs::Span> {
    // Profiling runs (RSD_OBS_PROFILE=1) want every kernel in the call
    // tree, small ones included; ordinary telemetry keeps the work gate.
    (work >= SPAN_MIN_WORK || rsd_obs::profile_enabled()).then(|| rsd_obs::Span::enter(label))
}

/// Rows per parallel chunk for a kernel doing `row_work` operations per
/// output row.
fn row_grain(row_work: usize) -> usize {
    (CHUNK_WORK / row_work.max(1)).max(1)
}

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Matrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from a row-major vector. Panics on length mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "Matrix::from_vec length mismatch");
        Matrix { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row_vec(data: Vec<f32>) -> Self {
        Matrix {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` (NN layout). Panics on shape mismatch.
    ///
    /// Row-parallel: each chunk owns a block of whole output rows.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let n = other.cols;
        let k_dim = self.cols;
        let _span = kernel_span("nn.matmul", 2 * self.rows * k_dim * n);
        let mut out = Matrix::zeros(self.rows, n);
        let grain = row_grain(2 * k_dim * n) * n.max(1);
        let a = &self.data;
        let b = &other.data;
        rsd_par::parallel_chunks_mut(&mut out.data, grain, |start, chunk| {
            let i0 = start / n;
            let mut rows = chunk.chunks_mut(n).enumerate();
            // Pair up output rows so the FMA kernel can amortize each B
            // load over two accumulator rows (register blocking). Falls
            // back to single-row kernels when a row is zero-heavy or the
            // pair kernel is unavailable.
            while let Some((ri, out_row)) = rows.next() {
                let i = i0 + ri;
                let a_row = &a[i * k_dim..(i + 1) * k_dim];
                #[cfg(target_arch = "x86_64")]
                if fma_available() && row_is_dense(a_row) {
                    if let Some((_, out_row2)) = rows.next() {
                        let a_row2 = &a[(i + 1) * k_dim..(i + 2) * k_dim];
                        if row_is_dense(a_row2) {
                            // SAFETY: guarded by the runtime AVX2+FMA check.
                            unsafe {
                                matmul_2rows_dense_fma(a_row, a_row2, b, n, out_row, out_row2)
                            }
                        } else {
                            matmul_row(a_row, b, n, out_row);
                            matmul_row(a_row2, b, n, out_row2);
                        }
                        continue;
                    }
                }
                matmul_row(a_row, b, n, out_row);
            }
        });
        out
    }

    /// `self @ otherᵀ` (NT layout).
    ///
    /// Row-parallel over `self`'s rows; both operands stream row-major, so
    /// each output element is one contiguous-slice dot product.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} @ ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let n = other.rows;
        let _span = kernel_span("nn.matmul_nt", 2 * self.rows * self.cols * n);
        let mut out = Matrix::zeros(self.rows, n);
        let grain = row_grain(2 * self.cols * n) * n.max(1);
        rsd_par::parallel_chunks_mut(&mut out.data, grain, |start, chunk| {
            let i0 = start / n;
            for (ri, out_row) in chunk.chunks_mut(n).enumerate() {
                let a_row = self.row(i0 + ri);
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o = dot4(a_row, other.row(j));
                }
            }
        });
        out
    }

    /// `selfᵀ @ other` (TN layout).
    ///
    /// Transposes `self` once (tiled, parallel) and reuses the row-parallel
    /// `matmul` core, inheriting its k-ascending fused accumulation order.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let _span = kernel_span("nn.matmul_tn", 2 * self.rows * self.cols * other.cols);
        self.transpose().matmul(other)
    }

    /// Transposed copy (tiled to keep both access patterns cache-friendly,
    /// parallel over blocks of output rows).
    pub fn transpose(&self) -> Matrix {
        let _span = kernel_span("nn.transpose", self.rows * self.cols);
        let mut out = Matrix::zeros(self.cols, self.rows);
        if self.rows == 0 || self.cols == 0 {
            return out;
        }
        const TILE: usize = 32;
        let r = self.rows;
        let cols = self.cols;
        let src = &self.data;
        rsd_par::parallel_chunks_mut(&mut out.data, TILE * r, |start, chunk| {
            let c0 = start / r;
            let n_out_rows = chunk.len() / r;
            for rb in (0..r).step_by(TILE) {
                let rend = (rb + TILE).min(r);
                for oc in 0..n_out_rows {
                    let src_col = c0 + oc;
                    let dst = &mut chunk[oc * r..(oc + 1) * r];
                    for rr in rb..rend {
                        dst[rr] = src[rr * cols + src_col];
                    }
                }
            }
        });
        out
    }

    /// `self += alpha * other`. Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        let b = &other.data;
        rsd_par::parallel_chunks_mut(&mut self.data, ELEM_GRAIN, |start, chunk| {
            let src = &b[start..start + chunk.len()];
            for (a, &bv) in chunk.iter_mut().zip(src) {
                *a += alpha * bv;
            }
        });
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut data = vec![0.0f32; self.data.len()];
        let src = &self.data;
        rsd_par::parallel_chunks_mut(&mut data, ELEM_GRAIN, |start, chunk| {
            let from = &src[start..start + chunk.len()];
            for (v, &x) in chunk.iter_mut().zip(from) {
                *v = f(x);
            }
        });
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Fill with zeros in place (for gradient reuse).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Frobenius norm. Chunked sum-of-squares folded in fixed chunk order,
    /// so the value is independent of thread count.
    pub fn frobenius(&self) -> f32 {
        let data = &self.data;
        rsd_par::parallel_reduce(
            data.len(),
            ELEM_GRAIN,
            |r| data[r].iter().map(|x| x * x).sum::<f32>(),
            |a, b| a + b,
        )
        .unwrap_or(0.0)
        .sqrt()
    }

    /// True when shapes match.
    pub fn same_shape(&self, other: &Matrix) -> bool {
        self.rows == other.rows && self.cols == other.cols
    }
}

/// One output row of `matmul`: `out_row += a_row @ b` (`b` row-major with
/// `n` columns). Mostly-zero rows (one-hot embeddings, dropout masks)
/// keep the sparsity skip, but gated behind a cheap O(K) density scan so
/// dense inputs get a branch-free unrolled loop. Both paths accumulate in
/// ascending-k order, so they agree bit-for-bit on finite inputs.
fn matmul_row(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
    if !row_is_dense(a_row) {
        for (k, &a) in a_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (o, &bv) in out_row.iter_mut().zip(&b[k * n..(k + 1) * n]) {
                *o = a.mul_add(bv, *o);
            }
        }
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // SAFETY: guarded by the runtime AVX2+FMA check.
        unsafe { matmul_row_dense_fma(a_row, b, n, out_row) }
        return;
    }
    matmul_row_dense(a_row, b, n, out_row);
}

/// Mostly-nonzero rows take the dense kernels; zero-heavy rows (one-hot
/// embeddings, dropout masks) keep the k-skip path.
#[inline]
fn row_is_dense(a_row: &[f32]) -> bool {
    let zeros = a_row.iter().filter(|&&a| a == 0.0).count();
    zeros * 2 <= a_row.len()
}

/// Portable dense matmul row. Each output element is one fused
/// multiply-add chain in ascending-k order — `mul_add` rounds once per
/// step, so this produces bit-identical results to the AVX2 kernel (and
/// to NEON FMA codegen on aarch64) on every host.
fn matmul_row_dense(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
    for (k, &a) in a_row.iter().enumerate() {
        for (o, &bv) in out_row.iter_mut().zip(&b[k * n..(k + 1) * n]) {
            *o = a.mul_add(bv, *o);
        }
    }
}

/// AVX2+FMA dense row kernel: broadcasts eight consecutive `a`
/// coefficients and fuses their contributions into 8-wide output lanes
/// with `vfmaddps`, ascending-k. Every output element still sees exactly
/// one fused multiply-add per k in the same order as
/// [`matmul_row_dense`], so the two paths agree bit-for-bit; the wide
/// registers and the 8-deep k-unroll (which amortizes the output
/// load/store over eight FMAs) are pure throughput.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn matmul_row_dense_fma(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
    use std::arch::x86_64::{_mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_storeu_ps};
    let k_dim = a_row.len();
    let bp = b.as_ptr();
    let op = out_row.as_mut_ptr();
    let mut k = 0;
    while k + 8 <= k_dim {
        let a = &a_row[k..k + 8];
        let av = [
            _mm256_set1_ps(a[0]),
            _mm256_set1_ps(a[1]),
            _mm256_set1_ps(a[2]),
            _mm256_set1_ps(a[3]),
            _mm256_set1_ps(a[4]),
            _mm256_set1_ps(a[5]),
            _mm256_set1_ps(a[6]),
            _mm256_set1_ps(a[7]),
        ];
        let mut j = 0;
        while j + 8 <= n {
            let mut acc = _mm256_loadu_ps(op.add(j));
            for (dk, &avk) in av.iter().enumerate() {
                acc = _mm256_fmadd_ps(avk, _mm256_loadu_ps(bp.add((k + dk) * n + j)), acc);
            }
            _mm256_storeu_ps(op.add(j), acc);
            j += 8;
        }
        while j < n {
            let mut o = *op.add(j);
            for (dk, &ak) in a.iter().enumerate() {
                o = ak.mul_add(*bp.add((k + dk) * n + j), o);
            }
            *op.add(j) = o;
            j += 1;
        }
        k += 8;
    }
    while k < k_dim {
        let a = a_row[k];
        let bk = &b[k * n..(k + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(bk) {
            *o = a.mul_add(bv, *o);
        }
        k += 1;
    }
}

/// Two-row register-blocked variant of [`matmul_row_dense_fma`]: each
/// broadcast B lane feeds FMAs into two independent accumulator rows, so
/// B traffic per FLOP halves. Each output element's fused chain is still
/// ascending-k, identical to the single-row kernels bit-for-bit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn matmul_2rows_dense_fma(
    a0_row: &[f32],
    a1_row: &[f32],
    b: &[f32],
    n: usize,
    out0: &mut [f32],
    out1: &mut [f32],
) {
    use std::arch::x86_64::{_mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_storeu_ps};
    let k_dim = a0_row.len();
    let bp = b.as_ptr();
    let o0p = out0.as_mut_ptr();
    let o1p = out1.as_mut_ptr();
    let mut k = 0;
    while k + 6 <= k_dim {
        let a0 = &a0_row[k..k + 6];
        let a1 = &a1_row[k..k + 6];
        let a0v = [
            _mm256_set1_ps(a0[0]),
            _mm256_set1_ps(a0[1]),
            _mm256_set1_ps(a0[2]),
            _mm256_set1_ps(a0[3]),
            _mm256_set1_ps(a0[4]),
            _mm256_set1_ps(a0[5]),
        ];
        let a1v = [
            _mm256_set1_ps(a1[0]),
            _mm256_set1_ps(a1[1]),
            _mm256_set1_ps(a1[2]),
            _mm256_set1_ps(a1[3]),
            _mm256_set1_ps(a1[4]),
            _mm256_set1_ps(a1[5]),
        ];
        let mut j = 0;
        while j + 8 <= n {
            let mut acc0 = _mm256_loadu_ps(o0p.add(j));
            let mut acc1 = _mm256_loadu_ps(o1p.add(j));
            for dk in 0..6 {
                let bv = _mm256_loadu_ps(bp.add((k + dk) * n + j));
                acc0 = _mm256_fmadd_ps(a0v[dk], bv, acc0);
                acc1 = _mm256_fmadd_ps(a1v[dk], bv, acc1);
            }
            _mm256_storeu_ps(o0p.add(j), acc0);
            _mm256_storeu_ps(o1p.add(j), acc1);
            j += 8;
        }
        while j < n {
            let mut o0 = *o0p.add(j);
            let mut o1 = *o1p.add(j);
            for dk in 0..6 {
                let bv = *bp.add((k + dk) * n + j);
                o0 = a0[dk].mul_add(bv, o0);
                o1 = a1[dk].mul_add(bv, o1);
            }
            *o0p.add(j) = o0;
            *o1p.add(j) = o1;
            j += 1;
        }
        k += 6;
    }
    while k < k_dim {
        let (c0, c1) = (a0_row[k], a1_row[k]);
        let bk = &b[k * n..(k + 1) * n];
        for j in 0..n {
            out0[j] = c0.mul_add(bk[j], out0[j]);
            out1[j] = c1.mul_add(bk[j], out1[j]);
        }
        k += 1;
    }
}

/// Cached `is_x86_feature_detected!("avx2") && ("fma")`: 0 unknown,
/// 1 no, 2 yes. Public because every SIMD kernel in the crate — the f32
/// matmul rows here and the int8 inference GEMMs in [`crate::quant`] —
/// dispatches through this one check, so a host either takes all the
/// wide paths or none of them.
#[cfg(target_arch = "x86_64")]
pub fn fma_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static FMA: AtomicU8 = AtomicU8::new(0);
    match FMA.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let yes = std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma");
            FMA.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
    }
}

/// Non-x86 hosts have no AVX2/FMA path; the portable kernels are the
/// only (and bit-identical) implementation there.
#[cfg(not(target_arch = "x86_64"))]
pub fn fma_available() -> bool {
    false
}

/// Cached check for the AVX-512 int8 tier: F + BW (16-bit lanes in zmm),
/// VL (masked 256-bit loads for tails) and VNNI (`vpdpwssd`, the fused
/// i16-pair multiply-accumulate). Only the integer inference kernels in
/// [`crate::quant`] dispatch on this — integer accumulation is exact, so
/// the wider tier is bit-identical to both the AVX2 and portable paths.
/// The f32 kernels deliberately stay on the AVX2 tier: reassociating
/// float sums across 16 lanes would shift training numerics.
#[cfg(target_arch = "x86_64")]
pub fn vnni512_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static VNNI: AtomicU8 = AtomicU8::new(0);
    match VNNI.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let yes = std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
                && std::arch::is_x86_feature_detected!("avx512vl")
                && std::arch::is_x86_feature_detected!("avx512vnni");
            VNNI.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
    }
}

/// See [`fma_available`]: no x86, no wide integer tier either.
#[cfg(not(target_arch = "x86_64"))]
pub fn vnni512_available() -> bool {
    false
}

/// 4-accumulator dot product. Accumulator layout is fixed, so the result
/// is deterministic (though differently rounded than a single-accumulator
/// sum).
fn dot4(x: &[f32], y: &[f32]) -> f32 {
    let len = x.len().min(y.len());
    let (x, y) = (&x[..len], &y[..len]);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let mut k = 0;
    while k + 4 <= len {
        s0 += x[k] * y[k];
        s1 += x[k + 1] * y[k + 1];
        s2 += x[k + 2] * y[k + 2];
        s3 += x[k + 3] * y[k + 3];
        k += 4;
    }
    let mut tail = 0.0f32;
    while k < len {
        tail += x[k] * y[k];
        k += 1;
    }
    ((s0 + s1) + (s2 + s3)) + tail
}

/// The pre-optimization scalar kernels, kept verbatim as the baseline for
/// `par_bench` and the determinism property tests. Not used by training.
pub mod reference {
    use super::Matrix;

    /// Scalar ikj matmul with the per-element zero skip.
    pub fn matmul(a: &Matrix, other: &Matrix) -> Matrix {
        assert_eq!(a.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(a.rows, other.cols);
        for i in 0..a.rows {
            let a_row = a.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += av * b;
                }
            }
        }
        out
    }

    /// Scalar NT matmul (single-accumulator dots).
    pub fn matmul_nt(a: &Matrix, other: &Matrix) -> Matrix {
        assert_eq!(a.cols, other.cols, "matmul_nt shape mismatch");
        let mut out = Matrix::zeros(a.rows, other.rows);
        for i in 0..a.rows {
            let a_row = a.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut sum = 0.0;
                for (&x, &y) in a_row.iter().zip(b_row) {
                    sum += x * y;
                }
                out.data[i * other.rows + j] = sum;
            }
        }
        out
    }

    /// Scalar TN matmul (k-outer accumulation).
    pub fn matmul_tn(a: &Matrix, other: &Matrix) -> Matrix {
        assert_eq!(a.rows, other.rows, "matmul_tn shape mismatch");
        let mut out = Matrix::zeros(a.cols, other.cols);
        for k in 0..a.rows {
            let a_row = a.row(k);
            let b_row = other.row(k);
            for (i, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += av * b;
                }
            }
        }
        out
    }

    /// Scalar transpose.
    pub fn transpose(a: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.cols, a.rows);
        for r in 0..a.rows {
            for c in 0..a.cols {
                out.data[c * a.rows + r] = a.data[r * a.cols + c];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    fn b() -> Matrix {
        Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0])
    }

    #[test]
    fn matmul_known_product() {
        let c = a().matmul(&b());
        assert_eq!(c.rows, 2);
        assert_eq!(c.cols, 2);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let bt = b().transpose();
        let via_nt = a().matmul_nt(&bt);
        let direct = a().matmul(&b());
        assert_eq!(via_nt.data, direct.data);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let at = a().transpose();
        let via_tn = at.matmul_tn(&b()); // (atᵀ) @ b = a @ b ... at is 3x2, tn gives 2x?
        let direct = a().matmul(&b());
        assert_eq!(via_tn.rows, direct.rows);
        assert_eq!(via_tn.data, direct.data);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let _ = a().matmul(&a());
    }

    #[test]
    fn transpose_round_trips() {
        let m = a();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), m.get(1, 2));
    }

    #[test]
    fn axpy_accumulates() {
        let mut m = Matrix::zeros(2, 3);
        m.axpy(2.0, &a());
        assert_eq!(m.data, vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0]);
    }

    #[test]
    fn rows_and_indexing() {
        let m = a();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 2), 3.0);
        let mut m = m;
        m.set(0, 0, 9.0);
        assert_eq!(m.get(0, 0), 9.0);
    }

    #[test]
    fn map_and_norm() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(m.frobenius(), 5.0);
        assert_eq!(m.map(|x| x * 2.0).data, vec![6.0, 8.0]);
    }

    #[test]
    fn serde_round_trip() {
        let m = a();
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    /// Deterministic pseudo-random matrix (no RNG dependency needed).
    fn pseudo(rows: usize, cols: usize, salt: u64, sparse: bool) -> Matrix {
        let data = (0..rows * cols)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(salt)
                    .rotate_left(17);
                if sparse && !h.is_multiple_of(3) {
                    0.0
                } else {
                    ((h % 2000) as f32 - 1000.0) * 1e-3
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn kernels_match_reference_on_irregular_shapes() {
        // Odd shapes exercise the unroll tail, the chunk remainder, and
        // both density paths. Matmuls accumulate with fused multiply-adds
        // (rounded once per step), so they are close to — not bitwise
        // equal to — the reference kernels' separate mul-then-add.
        let close = |got: &Matrix, want: &Matrix, what: &str| {
            for (x, y) in got.data.iter().zip(&want.data) {
                assert!(
                    (x - y).abs() <= 1e-4 * (1.0 + y.abs()),
                    "{what}: {x} vs {y}"
                );
            }
        };
        for (m, k, n, sparse) in [(5, 7, 3, false), (33, 65, 17, false), (9, 40, 11, true)] {
            let x = pseudo(m, k, 1, sparse);
            let y = pseudo(k, n, 2, false);
            close(
                &x.matmul(&y),
                &reference::matmul(&x, &y),
                &format!("matmul {m}x{k}@{k}x{n} sparse={sparse}"),
            );
            let xt = pseudo(k, m, 3, sparse);
            close(
                &xt.matmul_tn(&y),
                &reference::matmul_tn(&xt, &y),
                &format!("matmul_tn {k}x{m}@{k}x{n} sparse={sparse}"),
            );
            assert_eq!(x.transpose().data, reference::transpose(&x).data);
        }
    }

    #[test]
    fn parallel_kernels_bitwise_equal_serial() {
        let x = pseudo(70, 64, 4, false);
        let y = pseudo(64, 48, 5, false);
        let yt = pseudo(48, 64, 6, false);
        let (p1, p2, p3, p4) = rsd_par::with_local_pool(4, || {
            (
                x.matmul(&y),
                x.matmul_nt(&yt),
                x.matmul_tn(&pseudo(70, 32, 7, false)),
                x.transpose(),
            )
        });
        let (s1, s2, s3, s4) = rsd_par::run_serial(|| {
            (
                x.matmul(&y),
                x.matmul_nt(&yt),
                x.matmul_tn(&pseudo(70, 32, 7, false)),
                x.transpose(),
            )
        });
        assert_eq!(p1, s1);
        assert_eq!(p2, s2);
        assert_eq!(p3, s3);
        assert_eq!(p4, s4);
    }

    #[test]
    fn degenerate_shapes_are_fine() {
        let e = Matrix::zeros(0, 5);
        let f = Matrix::zeros(5, 0);
        assert_eq!(e.matmul(&f).data.len(), 0);
        assert_eq!(f.matmul(&e).data.len(), 25);
        assert_eq!(e.transpose().rows, 5);
        assert_eq!(Matrix::zeros(0, 0).frobenius(), 0.0);
    }
}
