//! Dense row-major f32 matrices with the kernels training needs.
//!
//! Not a general linear-algebra library: exactly the operations the tape
//! ops are built from, written so the inner loops vectorize (ikj matmul
//! order, slice-based accumulation).

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Matrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from a row-major vector. Panics on length mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "Matrix::from_vec length mismatch");
        Matrix { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row_vec(data: Vec<f32>) -> Self {
        Matrix {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` (NN layout). Panics on shape mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` (NT layout).
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} @ ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut sum = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    sum += a * b;
                }
                out.data[i * other.rows + j] = sum;
            }
        }
        out
    }

    /// `selfᵀ @ other` (TN layout).
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// `self += alpha * other`. Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Fill with zeros in place (for gradient reuse).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True when shapes match.
    pub fn same_shape(&self, other: &Matrix) -> bool {
        self.rows == other.rows && self.cols == other.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    fn b() -> Matrix {
        Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0])
    }

    #[test]
    fn matmul_known_product() {
        let c = a().matmul(&b());
        assert_eq!(c.rows, 2);
        assert_eq!(c.cols, 2);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let bt = b().transpose();
        let via_nt = a().matmul_nt(&bt);
        let direct = a().matmul(&b());
        assert_eq!(via_nt.data, direct.data);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let at = a().transpose();
        let via_tn = at.matmul_tn(&b()); // (atᵀ) @ b = a @ b ... at is 3x2, tn gives 2x?
        let direct = a().matmul(&b());
        assert_eq!(via_tn.rows, direct.rows);
        assert_eq!(via_tn.data, direct.data);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let _ = a().matmul(&a());
    }

    #[test]
    fn transpose_round_trips() {
        let m = a();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), m.get(1, 2));
    }

    #[test]
    fn axpy_accumulates() {
        let mut m = Matrix::zeros(2, 3);
        m.axpy(2.0, &a());
        assert_eq!(m.data, vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0]);
    }

    #[test]
    fn rows_and_indexing() {
        let m = a();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 2), 3.0);
        let mut m = m;
        m.set(0, 0, 9.0);
        assert_eq!(m.get(0, 0), 9.0);
    }

    #[test]
    fn map_and_norm() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(m.frobenius(), 5.0);
        assert_eq!(m.map(|x| x * 2.0).data, vec![6.0, 8.0]);
    }

    #[test]
    fn serde_round_trip() {
        let m = a();
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
