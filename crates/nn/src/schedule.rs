//! Learning-rate schedules.
//!
//! Transformer fine-tuning conventionally uses linear warmup followed by
//! decay; the Table IV "full optimization" arm uses these. A schedule is a
//! pure function `step → lr multiplier` applied on top of an optimizer's
//! base rate.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Schedule {
    /// Constant multiplier 1.
    Constant,
    /// Linear warmup over `warmup` steps, then linear decay to zero at
    /// `total` steps.
    WarmupLinear {
        /// Warmup steps.
        warmup: u64,
        /// Total steps (decay reaches 0 here).
        total: u64,
    },
    /// Linear warmup, then cosine decay to `floor` at `total`.
    WarmupCosine {
        /// Warmup steps.
        warmup: u64,
        /// Total steps.
        total: u64,
        /// Final multiplier in `[0, 1]`.
        floor: f32,
    },
}

impl Schedule {
    /// Multiplier at `step` (0-based).
    pub fn multiplier(&self, step: u64) -> f32 {
        match *self {
            Schedule::Constant => 1.0,
            Schedule::WarmupLinear { warmup, total } => {
                warmup_then(step, warmup, total, |progress| 1.0 - progress)
            }
            Schedule::WarmupCosine {
                warmup,
                total,
                floor,
            } => warmup_then(step, warmup, total, |progress| {
                floor + (1.0 - floor) * 0.5 * (1.0 + (std::f32::consts::PI * progress).cos())
            }),
        }
    }

    /// Learning rate at `step` given a base rate.
    pub fn lr_at(&self, base_lr: f32, step: u64) -> f32 {
        base_lr * self.multiplier(step)
    }
}

fn warmup_then(step: u64, warmup: u64, total: u64, decay: impl Fn(f32) -> f32) -> f32 {
    if warmup > 0 && step < warmup {
        return (step + 1) as f32 / warmup as f32;
    }
    if total <= warmup {
        return 1.0;
    }
    let progress = ((step - warmup) as f32 / (total - warmup) as f32).clamp(0.0, 1.0);
    decay(progress).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat() {
        let s = Schedule::Constant;
        assert_eq!(s.multiplier(0), 1.0);
        assert_eq!(s.multiplier(10_000), 1.0);
        assert_eq!(s.lr_at(0.01, 500), 0.01);
    }

    #[test]
    fn warmup_ramps_then_decays() {
        let s = Schedule::WarmupLinear {
            warmup: 10,
            total: 110,
        };
        assert!(s.multiplier(0) < s.multiplier(5));
        assert!(s.multiplier(5) < s.multiplier(9));
        assert!((s.multiplier(9) - 1.0).abs() < 1e-6);
        // Midpoint of decay ≈ 0.5.
        assert!((s.multiplier(60) - 0.5).abs() < 0.02);
        // End reaches zero and stays there.
        assert!(s.multiplier(110) < 1e-6);
        assert!(s.multiplier(1_000) < 1e-6);
    }

    #[test]
    fn cosine_respects_floor() {
        let s = Schedule::WarmupCosine {
            warmup: 5,
            total: 105,
            floor: 0.1,
        };
        assert!((s.multiplier(4) - 1.0).abs() < 1e-6);
        assert!((s.multiplier(105) - 0.1).abs() < 1e-5);
        // Monotone decreasing after warmup.
        let mut prev = f32::INFINITY;
        for step in (5..105).step_by(10) {
            let m = s.multiplier(step);
            assert!(m <= prev + 1e-6);
            prev = m;
        }
    }

    #[test]
    fn degenerate_totals_are_safe() {
        let s = Schedule::WarmupLinear {
            warmup: 10,
            total: 10,
        };
        assert_eq!(s.multiplier(20), 1.0);
        let s = Schedule::WarmupLinear {
            warmup: 0,
            total: 100,
        };
        assert!((s.multiplier(0) - 1.0).abs() < 1e-6);
    }
}
