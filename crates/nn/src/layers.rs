//! Reusable layers over the tape: Linear, Embedding, LayerNorm.
//!
//! A layer owns [`ParamId`]s into a shared [`ParamStore`] and exposes a
//! `forward(&self, tape, store, input)` that leafs its parameters and
//! builds the graph. Construction is deterministic given the caller's RNG.

use rand::rngs::StdRng;

use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};

/// Fully-connected layer: `y = x @ W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight (in×out).
    pub w: ParamId,
    /// Bias (1×out).
    pub b: ParamId,
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
}

impl Linear {
    /// Register a new linear layer.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        Linear {
            w: store.register_xavier(format!("{name}.w"), in_dim, out_dim, rng),
            b: store.register_zeros(format!("{name}.b"), 1, out_dim),
            in_dim,
            out_dim,
        }
    }

    /// Build `x @ W + b`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let xw = tape.matmul(x, w);
        tape.add_row(xw, b)
    }
}

/// Token/position embedding table.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// Table (vocab×dim).
    pub table: ParamId,
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding width.
    pub dim: usize,
}

impl Embedding {
    /// Register a new embedding with N(0, 0.02) init (transformer
    /// convention).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        Embedding {
            table: store.register_normal(format!("{name}.table"), vocab, dim, 0.02, rng),
            vocab,
            dim,
        }
    }

    /// Gather rows for `ids`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, ids: &[u32]) -> Var {
        let table = tape.param(store, self.table);
        tape.gather(table, ids)
    }
}

/// Learned row-wise layer normalization.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Gain (1×dim), initialized to ones.
    pub gain: ParamId,
    /// Bias (1×dim), initialized to zeros.
    pub bias: ParamId,
    /// Normalized width.
    pub dim: usize,
}

impl LayerNorm {
    /// Register a new layer norm.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        LayerNorm {
            gain: store.register(
                format!("{name}.gain"),
                crate::matrix::Matrix::full(1, dim, 1.0),
            ),
            bias: store.register_zeros(format!("{name}.bias"), 1, dim),
            dim,
        }
    }

    /// Build the normalized output.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let gain = tape.param(store, self.gain);
        let bias = tape.param(store, self.bias);
        tape.layer_norm(x, gain, bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::optim::{Adam, Optimizer};
    use rand::SeedableRng;

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "fc", 3, 2, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_vec(4, 3, vec![0.1; 12]));
        let y = layer.forward(&mut tape, &store, x);
        assert_eq!(tape.shape(y), (4, 2));
    }

    #[test]
    fn embedding_gathers_rows() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "tok", 10, 4, &mut rng);
        let mut tape = Tape::new();
        let e = emb.forward(&mut tape, &store, &[3, 3, 7]);
        assert_eq!(tape.shape(e), (3, 4));
        let v = tape.value(e);
        assert_eq!(v.row(0), v.row(1));
        assert_ne!(v.row(0), v.row(2));
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_vec(
            2,
            4,
            vec![1.0, 2.0, 3.0, 4.0, -5.0, 0.0, 5.0, 10.0],
        ));
        let y = ln.forward(&mut tape, &store, x);
        let v = tape.value(y);
        for r in 0..2 {
            let row = v.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|&x| (x - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn linear_learns_a_mapping() {
        // Fit y = [x0 + x1, x0 - x1] with a single linear layer.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "fc", 2, 2, &mut rng);
        let mut opt = Adam::new(0.05);
        let data = [
            ([1.0f32, 0.0], [1.0f32, 1.0]),
            ([0.0, 1.0], [1.0, -1.0]),
            ([1.0, 1.0], [2.0, 0.0]),
            ([2.0, -1.0], [1.0, 3.0]),
        ];
        for _ in 0..300 {
            for (x, y) in &data {
                let mut tape = Tape::new();
                let xv = tape.constant(Matrix::row_vec(x.to_vec()));
                let pred = layer.forward(&mut tape, &store, xv);
                let t = tape.constant(Matrix::row_vec(y.to_vec()));
                let neg = tape.scale(t, -1.0);
                let diff = tape.add(pred, neg);
                let sq = tape.mul(diff, diff);
                tape.backward(sq);
                tape.harvest_grads(&mut store);
                opt.step(&mut store);
            }
        }
        // Check fit.
        let mut tape = Tape::inference();
        let xv = tape.constant(Matrix::row_vec(vec![3.0, 2.0]));
        let pred = layer.forward(&mut tape, &store, xv);
        let out = tape.value(pred);
        assert!((out.data[0] - 5.0).abs() < 0.1, "{:?}", out.data);
        assert!((out.data[1] - 1.0).abs() < 0.1, "{:?}", out.data);
    }
}
