#![warn(missing_docs)]

//! Minimal neural-network substrate for the RSD-15K baselines.
//!
//! The paper fine-tunes RoBERTa/DeBERTa and trains BiLSTM/HiGRU models; in
//! this reproduction those are built from scratch on a small, deterministic
//! f32 stack:
//!
//! * [`matrix`] — a dense row-major matrix with the handful of BLAS-like
//!   kernels training needs (`matmul` in NN/NT/TN layouts, axpy, etc.).
//! * [`tape`] — reverse-mode autodiff over matrices: build a graph per
//!   example, call [`tape::Tape::backward`], read gradients off leaf nodes.
//!   Covers the op set transformers and RNNs need (matmul, broadcasts,
//!   activations, row-softmax with additive masks, layer norm, embedding
//!   gather, column narrow/concat, pooling, dropout).
//! * [`params`] — a parameter store with named registration, gradient
//!   accumulation and serialization.
//! * [`layers`] — Linear / Embedding / LayerNorm modules over the tape.
//! * [`rnn`] — LSTM and GRU cells and bidirectional runners.
//! * [`attention`] — multi-head self-attention, in both the absolute-
//!   position (RoBERTa-style) and disentangled content/position
//!   (DeBERTa-style) variants.
//! * [`transformer`] — pre-norm encoder blocks and the small encoder stack
//!   used by the PLM baselines, plus the MLM pretraining head.
//! * [`optim`] — SGD and Adam; [`schedule`] — warmup/decay LR schedules.
//! * [`loss`] — cross-entropy from logits.
//! * [`infer`] — frozen-weight inference: [`infer::InferenceModel`]
//!   snapshots a trained store with no tape or optimizer state, and the
//!   tape-free op helpers replicate the training forward bit-for-bit.
//! * [`quant`] — per-channel symmetric int8 quantization and the
//!   i8×i8→i32 GEMM kernels behind the inference fast path.
//!
//! Everything is seed-deterministic and single-threaded (the reproduction
//! environment is a single-core machine); sizes are chosen so the full
//! Table III benchmark trains on CPU in minutes.

pub mod attention;
pub mod infer;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod optim;
pub mod params;
pub mod quant;
pub mod rnn;
pub mod schedule;
pub mod tape;
pub mod transformer;

pub use infer::{FrozenParams, InferenceModel};
pub use matrix::Matrix;
pub use optim::{Adam, Optimizer, Sgd};
pub use params::{ParamId, ParamStore};
pub use quant::QuantizedMatrix;
pub use tape::{Tape, Var};
