//! Inference-only execution: frozen weight snapshots and tape-free f32
//! ops.
//!
//! Training runs every forward through [`crate::tape::Tape`], which
//! allocates a node per op and clones intermediate values so the
//! backward sweep can read them. Serving needs none of that: an
//! [`InferenceModel`] snapshots a trained [`ParamStore`] — names and
//! values only, no gradients, no tape, no optimizer state — and the op
//! helpers here replicate the tape's forward arithmetic *exactly*
//! (same accumulation order, same `libm` calls), so a no-tape forward
//! is bit-identical to `Tape::inference` on the same weights. The
//! parity tests in `rsd-models` pin that equivalence.
//!
//! The export is name/value generic: it covers the PLM encoders as
//! well as the BiLSTM/HiGRU recurrent baselines, since all of them
//! register through the same store. Quantized views (per-channel int8,
//! see [`crate::quant`]) are derived from the same snapshot.
//!
//! The `fast_*` functions are *approximate* transcendentals for the
//! int8 path only: polynomial `exp`/`tanh` with relative error around
//! `1e-6` — far below the int8 quantization noise the quality gate
//! budgets for — implemented in plain deterministic f32 arithmetic so
//! results stay identical across hosts and thread counts. The f32
//! reference path never uses them.

use std::collections::HashMap;

use crate::matrix::Matrix;
use crate::params::ParamStore;
use crate::quant::QuantizedMatrix;

/// An immutable name→value snapshot of trained parameters.
#[derive(Debug, Clone)]
pub struct FrozenParams {
    names: Vec<String>,
    values: Vec<Matrix>,
    index: HashMap<String, usize>,
}

impl FrozenParams {
    /// Snapshot every parameter value in `store` (gradients and any
    /// optimizer state are left behind).
    pub fn from_store(store: &ParamStore) -> FrozenParams {
        let mut names = Vec::with_capacity(store.len());
        let mut values = Vec::with_capacity(store.len());
        let mut index = HashMap::with_capacity(store.len());
        for id in store.ids() {
            index.insert(store.name(id).to_string(), names.len());
            names.push(store.name(id).to_string());
            values.push(store.value(id).clone());
        }
        FrozenParams {
            names,
            values,
            index,
        }
    }

    /// Look up a parameter by registration name.
    pub fn get(&self, name: &str) -> Option<&Matrix> {
        self.index.get(name).map(|&i| &self.values[i])
    }

    /// Like [`FrozenParams::get`] but panics naming the missing
    /// parameter — an export wired to the wrong prefix should fail
    /// loudly, not score garbage.
    pub fn require(&self, name: &str) -> &Matrix {
        self.get(name)
            .unwrap_or_else(|| panic!("frozen params: missing parameter {name:?}"))
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Total scalar count across all values.
    pub fn n_scalars(&self) -> usize {
        self.values.iter().map(|m| m.data.len()).sum()
    }

    /// Iterate over parameter names in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|s| s.as_str())
    }
}

/// A frozen-weight inference artifact: the snapshot plus helpers for
/// deriving per-channel int8 views of individual weights.
#[derive(Debug, Clone)]
pub struct InferenceModel {
    params: FrozenParams,
}

impl InferenceModel {
    /// Export the trained parameters of `store`.
    pub fn export(store: &ParamStore) -> InferenceModel {
        InferenceModel {
            params: FrozenParams::from_store(store),
        }
    }

    /// The underlying snapshot.
    pub fn params(&self) -> &FrozenParams {
        &self.params
    }

    /// A weight by name (panics naming it when absent).
    pub fn weight(&self, name: &str) -> &Matrix {
        self.params.require(name)
    }

    /// Per-output-channel int8 view of a `Linear` weight (`in × out`),
    /// stored transposed for the fused NT GEMM.
    pub fn quantized_weight(&self, name: &str) -> QuantizedMatrix {
        QuantizedMatrix::from_weight(self.params.require(name))
    }

    /// Per-row int8 view of an embedding-style table.
    pub fn quantized_rows(&self, name: &str) -> QuantizedMatrix {
        QuantizedMatrix::from_rows(self.params.require(name))
    }

    /// Total scalar count (sanity-check against the training store).
    pub fn n_scalars(&self) -> usize {
        self.params.n_scalars()
    }
}

// ---- tape-exact f32 ops ---------------------------------------------------
//
// Each helper mirrors the forward arithmetic of the corresponding
// `Tape` op (crates/nn/src/tape.rs) line for line: same iteration
// order, same intermediate precision. Changing one without the other
// breaks the bitwise parity tests in rsd-models.

/// `x @ w + b` with `b` broadcast over rows (tape `matmul` + `add_row`).
pub fn linear(x: &Matrix, w: &Matrix, b: &Matrix) -> Matrix {
    let mut out = x.matmul(w);
    add_row_in_place(&mut out, b);
    out
}

/// Add a `1×c` bias row to every row of `x` (tape `add_row`).
pub fn add_row_in_place(x: &mut Matrix, bias: &Matrix) {
    debug_assert_eq!(bias.rows, 1);
    debug_assert_eq!(x.cols, bias.cols);
    for r in 0..x.rows {
        for (o, &b) in x.row_mut(r).iter_mut().zip(&bias.data) {
            *o += b;
        }
    }
}

/// Row-wise layer norm with learned `1×c` gain/bias (tape
/// `layer_norm`, EPS `1e-5`, biased variance).
pub fn layer_norm(x: &Matrix, gain: &Matrix, bias: &Matrix) -> Matrix {
    const EPS: f32 = 1e-5;
    let mut out = Matrix::zeros(x.rows, x.cols);
    for r in 0..x.rows {
        let row = x.row(r);
        let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / row.len() as f32;
        let istd = 1.0 / (var + EPS).sqrt();
        for (c, &xv) in row.iter().enumerate() {
            out.set(r, c, (xv - mean) * istd * gain.data[c] + bias.data[c]);
        }
    }
    out
}

/// Scalar GELU, tanh approximation (tape `gelu`).
pub fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Elementwise GELU over a matrix.
pub fn gelu(x: &Matrix) -> Matrix {
    x.map(gelu_scalar)
}

/// Stable in-place softmax over one slice (tape `softmax_in_place`).
pub fn softmax_slice(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

/// Row-wise softmax in place (tape `softmax_rows`).
pub fn softmax_rows_in_place(x: &mut Matrix) {
    for r in 0..x.rows {
        softmax_slice(x.row_mut(r));
    }
}

/// Mean over rows → `1×c` (tape `mean_rows`).
pub fn mean_rows(x: &Matrix) -> Matrix {
    let mut value = Matrix::zeros(1, x.cols);
    for r in 0..x.rows {
        for (o, &v) in value.data.iter_mut().zip(x.row(r)) {
            *o += v;
        }
    }
    let n = x.rows.max(1) as f32;
    for o in &mut value.data {
        *o /= n;
    }
    value
}

/// Relative-position gather (tape `relative_gather`): from `x`
/// (`n×(2·radius+1)`) build an `n×n` score component.
pub fn relative_gather(x: &Matrix, n: usize, radius: usize, transposed: bool) -> Matrix {
    debug_assert_eq!(x.cols, 2 * radius + 1);
    debug_assert_eq!(x.rows, n);
    let mut value = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let (src_row, offset) = if transposed {
                (j, i as i64 - j as i64)
            } else {
                (i, j as i64 - i as i64)
            };
            let col = (offset + radius as i64).clamp(0, 2 * radius as i64) as usize;
            value.set(i, j, x.get(src_row, col));
        }
    }
    value
}

// ---- fast approximate transcendentals (int8 path only) --------------------

/// Fast `exp` approximation: range-reduce to `2^n · e^g` with
/// `|g| ≤ ln(2)/2`, evaluate a degree-5 Taylor polynomial (relative
/// error ≲ 3e-6), and scale by the bit-cast power of two. Plain f32
/// arithmetic — no tables, no branches beyond the clamp — so it is
/// deterministic everywhere.
#[inline]
pub fn fast_exp(x: f32) -> f32 {
    let y = (x * std::f32::consts::LOG2_E).clamp(-125.0, 125.0);
    let n = (y + 0.5).floor();
    let g = (y - n) * std::f32::consts::LN_2;
    // e^g via Horner: 1 + g(1 + g/2(1 + g/3(1 + g/4(1 + g/5))))
    let p =
        1.0 + g * (1.0 + g * 0.5 * (1.0 + g * (1.0 / 3.0) * (1.0 + g * 0.25 * (1.0 + g * 0.2))));
    let scale = f32::from_bits((((n as i32) + 127) as u32) << 23);
    scale * p
}

/// Eight-lane [`fast_exp`]: the same range reduction and Horner
/// polynomial with the exact scalar operation order, so every lane is
/// IEEE-identical to the scalar function.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn fast_exp_lanes(x: std::arch::x86_64::__m256) -> std::arch::x86_64::__m256 {
    use std::arch::x86_64::*;
    let one = _mm256_set1_ps(1.0);
    let half = _mm256_set1_ps(0.5);
    let y = _mm256_mul_ps(x, _mm256_set1_ps(std::f32::consts::LOG2_E));
    let y = _mm256_max_ps(
        _mm256_min_ps(y, _mm256_set1_ps(125.0)),
        _mm256_set1_ps(-125.0),
    );
    let n = _mm256_floor_ps(_mm256_add_ps(y, half));
    let g = _mm256_mul_ps(_mm256_sub_ps(y, n), _mm256_set1_ps(std::f32::consts::LN_2));
    let t5 = _mm256_add_ps(one, _mm256_mul_ps(g, _mm256_set1_ps(0.2)));
    let t4 = _mm256_add_ps(
        one,
        _mm256_mul_ps(_mm256_mul_ps(g, _mm256_set1_ps(0.25)), t5),
    );
    let t3 = _mm256_add_ps(
        one,
        _mm256_mul_ps(_mm256_mul_ps(g, _mm256_set1_ps(1.0 / 3.0)), t4),
    );
    let t2 = _mm256_add_ps(one, _mm256_mul_ps(_mm256_mul_ps(g, half), t3));
    let p = _mm256_add_ps(one, _mm256_mul_ps(g, t2));
    let scale = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
        _mm256_cvtps_epi32(n),
        _mm256_set1_epi32(127),
    )));
    _mm256_mul_ps(scale, p)
}

/// Fast `tanh` via `1 - 2/(e^{2x}+1)` on [`fast_exp`].
#[inline]
pub fn fast_tanh(x: f32) -> f32 {
    if x >= 9.0 {
        return 1.0;
    }
    if x <= -9.0 {
        return -1.0;
    }
    1.0 - 2.0 / (fast_exp(2.0 * x) + 1.0)
}

/// GELU on [`fast_tanh`] — the int8 path's activation.
#[inline]
pub fn gelu_fast(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    0.5 * x * (1.0 + fast_tanh(C * (x + 0.044715 * x * x * x)))
}

/// Apply [`gelu_fast`] across a slice, vectorized when the host has
/// AVX2. Division and every polynomial step are per-element IEEE ops in
/// the scalar order, so SIMD and portable agree bitwise.
pub fn gelu_fast_slice(xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::matrix::fma_available() {
        // SAFETY: guarded by the runtime AVX2 check.
        unsafe { gelu_fast_slice_avx2(xs) };
        return;
    }
    for v in xs.iter_mut() {
        *v = gelu_fast(*v);
    }
}

/// AVX2 [`gelu_fast_slice`]: the tanh saturation branches become
/// blends; everything else mirrors the scalar expression op for op.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gelu_fast_slice_avx2(xs: &mut [f32]) {
    use std::arch::x86_64::*;
    let one = _mm256_set1_ps(1.0);
    let half = _mm256_set1_ps(0.5);
    let two = _mm256_set1_ps(2.0);
    let c = _mm256_set1_ps(0.797_884_6);
    let c3 = _mm256_set1_ps(0.044715);
    let nine = _mm256_set1_ps(9.0);
    let neg_nine = _mm256_set1_ps(-9.0);
    let len = xs.len();
    let ptr = xs.as_mut_ptr();
    let mut k = 0;
    while k + 8 <= len {
        let x = _mm256_loadu_ps(ptr.add(k));
        let x3 = _mm256_mul_ps(_mm256_mul_ps(_mm256_mul_ps(c3, x), x), x);
        let a = _mm256_mul_ps(c, _mm256_add_ps(x, x3));
        let e = fast_exp_lanes(_mm256_mul_ps(two, a));
        let t = _mm256_sub_ps(one, _mm256_div_ps(two, _mm256_add_ps(e, one)));
        let t = _mm256_blendv_ps(t, one, _mm256_cmp_ps::<_CMP_GE_OQ>(a, nine));
        let t = _mm256_blendv_ps(
            t,
            _mm256_set1_ps(-1.0),
            _mm256_cmp_ps::<_CMP_LE_OQ>(a, neg_nine),
        );
        let out = _mm256_mul_ps(_mm256_mul_ps(half, x), _mm256_add_ps(one, t));
        _mm256_storeu_ps(ptr.add(k), out);
        k += 8;
    }
    while k < len {
        *ptr.add(k) = gelu_fast(*ptr.add(k));
        k += 1;
    }
}

/// Stable softmax over a slice using [`fast_exp`] (int8 path).
pub fn softmax_slice_fast(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = fast_exp(*v - max);
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn frozen_params_snapshot_and_lookup() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let w = store.register_xavier("m.w", 4, 3, &mut rng);
        store.register_zeros("m.b", 1, 3);
        let frozen = FrozenParams::from_store(&store);
        assert_eq!(frozen.len(), 2);
        assert_eq!(frozen.n_scalars(), 15);
        assert_eq!(frozen.require("m.w").data, store.value(w).data);
        assert!(frozen.get("m.absent").is_none());
    }

    #[test]
    #[should_panic(expected = "m.missing")]
    fn require_names_the_missing_param() {
        let store = ParamStore::new();
        FrozenParams::from_store(&store).require("m.missing");
    }

    #[test]
    fn fast_exp_close_to_libm_over_softmax_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2000 {
            let x: f32 = rng.gen_range(-30.0f32..5.0);
            let (fast, exact) = (fast_exp(x), x.exp());
            let rel = (fast - exact).abs() / exact.max(f32::MIN_POSITIVE);
            assert!(rel < 1e-5, "x={x}: fast {fast} vs {exact} (rel {rel})");
        }
        assert_eq!(fast_exp(-200.0), fast_exp(-180.0).min(fast_exp(-200.0)));
    }

    #[test]
    fn gelu_slice_matches_scalar_bitwise() {
        let mut rng = StdRng::seed_from_u64(5);
        for len in [0usize, 1, 7, 8, 9, 17, 96, 97] {
            let src: Vec<f32> = (0..len).map(|_| rng.gen_range(-14.0f32..14.0)).collect();
            let mut vec_out = src.clone();
            gelu_fast_slice(&mut vec_out);
            for (j, (&x, &got)) in src.iter().zip(&vec_out).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    gelu_fast(x).to_bits(),
                    "len {len} j {j}: x={x}"
                );
            }
        }
    }

    #[test]
    fn fast_tanh_close_to_libm() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let x: f32 = rng.gen_range(-12.0f32..12.0);
            assert!(
                (fast_tanh(x) - x.tanh()).abs() < 2e-6,
                "x={x}: {} vs {}",
                fast_tanh(x),
                x.tanh()
            );
        }
    }

    #[test]
    fn softmax_fast_close_and_normalized() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut a: Vec<f32> = (0..64).map(|_| rng.gen_range(-8.0f32..8.0)).collect();
        let mut b = a.clone();
        softmax_slice(&mut a);
        softmax_slice_fast(&mut b);
        let sum: f32 = b.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}
