//! Optimizers: SGD (with momentum) and Adam.
//!
//! Both consume the accumulated gradients in a [`ParamStore`] and zero them
//! after stepping, so the training loop is:
//! forward → backward → harvest → (scale by 1/batch) → `step` → repeat.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::params::ParamStore;

/// Common optimizer interface.
pub trait Optimizer {
    /// Apply one update using the store's accumulated gradients, then zero
    /// them.
    fn step(&mut self, store: &mut ParamStore);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Override the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<_> = store.ids().collect();
        if self.velocity.len() < ids.len() {
            for id in &ids[self.velocity.len()..] {
                let v = store.value(*id);
                self.velocity.push(Matrix::zeros(v.rows, v.cols));
            }
        }
        for id in ids {
            let grad = store.grad(id).clone();
            if self.momentum > 0.0 {
                let vel = &mut self.velocity[id.0];
                for (v, &g) in vel.data.iter_mut().zip(&grad.data) {
                    *v = self.momentum * *v + g;
                }
                let update = vel.clone();
                store.value_mut(id).axpy(-self.lr, &update);
            } else {
                store.value_mut(id).axpy(-self.lr, &grad);
            }
        }
        store.zero_grads();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction and optional decoupled
/// weight decay (AdamW-style).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    /// Decoupled weight decay (0 disables).
    pub weight_decay: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with standard betas.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// AdamW: Adam with decoupled weight decay.
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        Adam {
            weight_decay,
            ..Adam::new(lr)
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<_> = store.ids().collect();
        while self.m.len() < ids.len() {
            let v = store.value(ids[self.m.len()]);
            self.m.push(Matrix::zeros(v.rows, v.cols));
            self.v.push(Matrix::zeros(v.rows, v.cols));
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for id in ids {
            let grad = store.grad(id).clone();
            let m = &mut self.m[id.0];
            let v = &mut self.v[id.0];
            for ((m, v), &g) in m.data.iter_mut().zip(&mut v.data).zip(&grad.data) {
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            }
            let (lr, eps, wd) = (self.lr, self.eps, self.weight_decay);
            let m = &self.m[id.0];
            let v = &self.v[id.0];
            let value = store.value_mut(id);
            for ((w, &m), &v) in value.data.iter_mut().zip(&m.data).zip(&v.data) {
                let m_hat = m / bc1;
                let v_hat = v / bc2;
                *w -= lr * (m_hat / (v_hat.sqrt() + eps) + wd * *w);
            }
        }
        store.zero_grads();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;
    use crate::tape::Tape;

    /// Minimize (2w + 6)² over scalar w; both optimizers must converge to
    /// w = −3.
    fn optimize(mut opt: impl Optimizer, iters: usize) -> f32 {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(1, 1, vec![0.0]));
        for _ in 0..iters {
            let mut tape = Tape::new();
            let wv = tape.param(&store, w);
            let x = tape.constant(Matrix::from_vec(1, 1, vec![2.0]));
            let pred = tape.matmul(x, wv); // 2w
            let target = tape.constant(Matrix::from_vec(1, 1, vec![-6.0]));
            let neg_t = tape.scale(target, -1.0);
            let diff = tape.add(pred, neg_t); // 2w + 6
            let sq = tape.mul(diff, diff);
            tape.backward(sq);
            tape.harvest_grads(&mut store);
            opt.step(&mut store);
        }
        store.value(w).data[0]
    }

    #[test]
    fn sgd_converges_to_minimum() {
        let w = optimize(Sgd::new(0.02), 200);
        assert!((w + 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = optimize(Sgd::with_momentum(0.01, 0.9), 200);
        assert!((w + 3.0).abs() < 1e-1, "w = {w}");
    }

    #[test]
    fn adam_converges_to_minimum() {
        let w = optimize(Adam::new(0.1), 300);
        assert!((w + 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn step_zeros_gradients() {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::from_vec(1, 1, vec![1.0]));
        store.accumulate(id, &Matrix::from_vec(1, 1, vec![5.0]));
        let mut opt = Sgd::new(0.1);
        opt.step(&mut store);
        assert_eq!(store.grad(id).data, vec![0.0]);
        assert!((store.value(id).data[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::from_vec(1, 1, vec![10.0]));
        let mut opt = Adam::with_weight_decay(0.1, 0.5);
        // Zero gradient: only decay acts.
        opt.step(&mut store);
        assert!(store.value(id).data[0] < 10.0);
    }

    #[test]
    fn learning_rate_settable() {
        let mut opt = Adam::new(0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    fn adam_counts_steps() {
        let mut store = ParamStore::new();
        store.register("w", Matrix::from_vec(1, 1, vec![1.0]));
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.steps(), 0);
        opt.step(&mut store);
        opt.step(&mut store);
        assert_eq!(opt.steps(), 2);
    }
}
