//! Per-channel symmetric int8 quantization and the i8×i8→i32 kernels
//! behind the inference fast path.
//!
//! Weights are quantized offline, once, per output channel: each channel
//! stores `q[k] = round(w[k] / scale)` with `scale = max_abs / 127` as a
//! contiguous `i8` row, so the inner product over `k` is a straight run
//! of byte loads. Activations are quantized dynamically per row at the
//! same symmetric scale convention. The integer GEMM accumulates in
//! `i32` — exact integer arithmetic, so the AVX-512 VNNI kernels
//! (`vpdpwssd`, fused 16-lane multiply-accumulate), the AVX2 kernels
//! (`vpmaddwd` on sign-extended 16-bit lanes) and the portable fallback
//! all agree bit-for-bit, and results cannot depend on thread counts or
//! batch partitionings. Dispatch tiers through
//! [`crate::matrix::vnni512_available`] then
//! [`crate::matrix::fma_available`].
//!
//! Dequantization multiplies the `i32` dot by `x_scale * w_scale` in
//! f32 and adds the (never-quantized) f32 bias. With per-channel scales
//! the worst-case round-trip error of a single weight is `scale / 2`,
//! the bound the proptests pin.

use crate::matrix::{fma_available, vnni512_available, Matrix};

/// Quantized two-dimensional tensor: `rows × cols` of `i8` row-major
/// with one f32 scale per row.
///
/// For linear-layer weights the tensor is stored *transposed* relative
/// to [`crate::layers::Linear`]'s `in × out` layout — one row per
/// output channel — so [`qgemm_nt`] reads both operands contiguously.
/// For embedding tables the storage matches the table layout (one row
/// per vocabulary id) and rows are dequantized on gather.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
    /// GEMM weights additionally keep a pair-interleaved copy
    /// (`⌈cols/2⌉` rows of `2·rows` bytes) so [`qgemm_nt`] can sweep
    /// the *output* axis with [`gemv_i8_pairs`] instead of issuing one
    /// short dot per channel. Empty for row-layout tables.
    packed: Vec<i8>,
}

impl QuantizedMatrix {
    /// Quantize a `Linear` weight (`in_dim × out_dim`) per output
    /// channel, storing it transposed (`out_dim × in_dim`).
    pub fn from_weight(w: &Matrix) -> QuantizedMatrix {
        let (in_dim, out_dim) = (w.rows, w.cols);
        let mut col = vec![0.0f32; in_dim];
        let mut data = vec![0i8; in_dim * out_dim];
        let mut scales = vec![0.0f32; out_dim];
        for o in 0..out_dim {
            for k in 0..in_dim {
                col[k] = w.get(k, o);
            }
            scales[o] = quantize_row_i8(&col, &mut data[o * in_dim..(o + 1) * in_dim]);
        }
        let pairs = in_dim.div_ceil(2);
        let mut packed = vec![0i8; pairs * 2 * out_dim];
        for p in 0..pairs {
            let row = &mut packed[p * 2 * out_dim..(p + 1) * 2 * out_dim];
            for o in 0..out_dim {
                row[2 * o] = data[o * in_dim + 2 * p];
                row[2 * o + 1] = if 2 * p + 1 < in_dim {
                    data[o * in_dim + 2 * p + 1]
                } else {
                    0
                };
            }
        }
        QuantizedMatrix {
            rows: out_dim,
            cols: in_dim,
            data,
            scales,
            packed,
        }
    }

    /// Quantize a matrix row-by-row in its own layout (embedding
    /// tables: one row per id, dequantized on gather).
    pub fn from_rows(m: &Matrix) -> QuantizedMatrix {
        let mut data = vec![0i8; m.rows * m.cols];
        let mut scales = vec![0.0f32; m.rows];
        for r in 0..m.rows {
            scales[r] = quantize_row_i8(m.row(r), &mut data[r * m.cols..(r + 1) * m.cols]);
        }
        QuantizedMatrix {
            rows: m.rows,
            cols: m.cols,
            data,
            scales,
            packed: Vec::new(),
        }
    }

    /// Number of quantized rows (output channels / table entries).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row length (the contraction dimension `k`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-row scale.
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }

    /// One quantized row.
    pub fn row(&self, r: usize) -> &[i8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Dequantize row `r` into `out` (`out.len() == cols`).
    pub fn dequantize_row_into(&self, r: usize, out: &mut [f32]) {
        let s = self.scales[r];
        for (o, &q) in out.iter_mut().zip(self.row(r)) {
            *o = q as f32 * s;
        }
    }

    /// Full f32 reconstruction (tests and the round-trip proptest).
    pub fn dequantize(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let s = self.scales[r];
            for c in 0..self.cols {
                m.set(r, c, self.data[r * self.cols + c] as f32 * s);
            }
        }
        m
    }
}

/// Symmetric per-row quantization: `scale = max_abs / 127`,
/// `q = round(x / scale)` (ties to even, the hardware rounding mode)
/// clamped to `[-127, 127]`. An all-zero row gets scale 0 and all-zero
/// codes. Returns the scale. SIMD and portable agree bitwise: `max` is
/// order-independent and every remaining op is per-element IEEE.
#[inline]
pub fn quantize_row_i8(src: &[f32], dst: &mut [i8]) -> f32 {
    debug_assert_eq!(src.len(), dst.len());
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // SAFETY: guarded by the runtime AVX2 check.
        return unsafe { quantize_row_i8_avx2(src, dst) };
    }
    quantize_row_i8_portable(src, dst)
}

/// Portable reference for [`quantize_row_i8`].
pub fn quantize_row_i8_portable(src: &[f32], dst: &mut [i8]) -> f32 {
    let mut max_abs = 0.0f32;
    for &x in src {
        max_abs = max_abs.max(x.abs());
    }
    if max_abs == 0.0 {
        dst.fill(0);
        return 0.0;
    }
    let inv = 127.0 / max_abs;
    for (d, &x) in dst.iter_mut().zip(src) {
        let q = (x * inv).round_ties_even();
        *d = q.clamp(-127.0, 127.0) as i8;
    }
    max_abs / 127.0
}

/// AVX2 [`quantize_row_i8`]: vectorized abs-max reduction, then
/// `cvtps→epi32` (round-to-nearest-even, matching the portable
/// `round_ties_even`), clamp, and a byte-gather shuffle to store 8
/// codes per iteration.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_row_i8_avx2(src: &[f32], dst: &mut [i8]) -> f32 {
    use std::arch::x86_64::*;
    let len = src.len();
    let sp = src.as_ptr();
    let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
    let mut vmax = _mm256_setzero_ps();
    let mut k = 0;
    while k + 8 <= len {
        let v = _mm256_and_ps(_mm256_loadu_ps(sp.add(k)), abs_mask);
        vmax = _mm256_max_ps(vmax, v);
        k += 8;
    }
    let hi = _mm256_extractf128_ps(vmax, 1);
    let mut m = _mm_max_ps(_mm256_castps256_ps128(vmax), hi);
    m = _mm_max_ps(m, _mm_shuffle_ps(m, m, 0b00_01_10_11));
    m = _mm_max_ps(m, _mm_shuffle_ps(m, m, 0b10_11_00_01));
    let mut max_abs = _mm_cvtss_f32(m);
    while k < len {
        max_abs = max_abs.max((*sp.add(k)).abs());
        k += 1;
    }
    if max_abs == 0.0 {
        dst.fill(0);
        return 0.0;
    }
    let inv = 127.0 / max_abs;
    let vinv = _mm256_set1_ps(inv);
    let lo_clamp = _mm256_set1_epi32(-127);
    let hi_clamp = _mm256_set1_epi32(127);
    // Byte 0 of each i32 lane, packed to the low u32 of each 128 half.
    let gather = _mm256_setr_epi8(
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, //
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
    );
    let dp = dst.as_mut_ptr();
    k = 0;
    while k + 8 <= len {
        let q = _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(sp.add(k)), vinv));
        let q = _mm256_min_epi32(_mm256_max_epi32(q, lo_clamp), hi_clamp);
        let b = _mm256_shuffle_epi8(q, gather);
        let lo = _mm256_extract_epi32::<0>(b);
        let hi = _mm256_extract_epi32::<4>(b);
        (dp.add(k) as *mut i32).write_unaligned(lo);
        (dp.add(k + 4) as *mut i32).write_unaligned(hi);
        k += 8;
    }
    while k < len {
        let q = (*sp.add(k) * inv).round_ties_even();
        *dp.add(k) = q.clamp(-127.0, 127.0) as i8;
        k += 1;
    }
    max_abs / 127.0
}

/// Fused softmax → 7-bit attention quantization.
///
/// The softmax normalizer and the symmetric quantization scale cancel:
/// with `e_i = exp(x_i − max)` the max exponential is exactly 1, so the
/// quantized attention row is `q_i = round(127·e_i)` — no division, no
/// second max scan — and the dequantization scale is `1 / Σ q_i`.
/// Normalizing by the *quantized* mass keeps the attention weights
/// summing to exactly 1 in integer space, and because the only
/// cross-element operations are a `max` reduction and an integer sum,
/// SIMD and portable agree bitwise. Returns the dequant scale.
#[inline]
pub fn softmax_q7(row: &[f32], q: &mut [i8]) -> f32 {
    debug_assert_eq!(row.len(), q.len());
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // SAFETY: guarded by the runtime AVX2 check.
        return unsafe { softmax_q7_avx2(row, q) };
    }
    softmax_q7_portable(row, q)
}

/// Portable reference for [`softmax_q7`].
pub fn softmax_q7_portable(row: &[f32], q: &mut [i8]) -> f32 {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0i32;
    for (d, &x) in q.iter_mut().zip(row) {
        let v = (127.0 * crate::infer::fast_exp(x - max)).round_ties_even() as i32;
        sum += v;
        *d = v as i8;
    }
    1.0 / sum as f32
}

/// AVX2 [`softmax_q7`]: the [`crate::infer::fast_exp`] range reduction
/// and Horner polynomial evaluated lane-wise with the exact scalar
/// operation order, so every lane is IEEE-identical to the portable
/// path.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn softmax_q7_avx2(row: &[f32], q: &mut [i8]) -> f32 {
    use std::arch::x86_64::*;
    let len = row.len();
    let sp = row.as_ptr();
    let mut vmax = _mm256_set1_ps(f32::NEG_INFINITY);
    let mut k = 0;
    while k + 8 <= len {
        vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(sp.add(k)));
        k += 8;
    }
    let hi = _mm256_extractf128_ps(vmax, 1);
    let mut m = _mm_max_ps(_mm256_castps256_ps128(vmax), hi);
    m = _mm_max_ps(m, _mm_shuffle_ps(m, m, 0b00_01_10_11));
    m = _mm_max_ps(m, _mm_shuffle_ps(m, m, 0b10_11_00_01));
    let mut max = _mm_cvtss_f32(m);
    while k < len {
        max = max.max(*sp.add(k));
        k += 1;
    }

    let vmaxb = _mm256_set1_ps(max);
    let c127f = _mm256_set1_ps(127.0);
    let gather = _mm256_setr_epi8(
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, //
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
    );
    let mut vsum = _mm256_setzero_si256();
    let dp = q.as_mut_ptr();
    k = 0;
    while k + 8 <= len {
        let x = _mm256_sub_ps(_mm256_loadu_ps(sp.add(k)), vmaxb);
        let e = crate::infer::fast_exp_lanes(x);
        let qi = _mm256_cvtps_epi32(_mm256_mul_ps(c127f, e));
        vsum = _mm256_add_epi32(vsum, qi);
        let b = _mm256_shuffle_epi8(qi, gather);
        (dp.add(k) as *mut i32).write_unaligned(_mm256_extract_epi32::<0>(b));
        (dp.add(k + 4) as *mut i32).write_unaligned(_mm256_extract_epi32::<4>(b));
        k += 8;
    }
    let shi = _mm256_extracti128_si256(vsum, 1);
    let mut s = _mm_add_epi32(_mm256_castsi256_si128(vsum), shi);
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_01_10_11));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b10_11_00_01));
    let mut sum = _mm_cvtsi128_si32(s);
    while k < len {
        let v = (127.0 * crate::infer::fast_exp(*sp.add(k) - max)).round_ties_even() as i32;
        sum += v;
        *dp.add(k) = v as i8;
        k += 1;
    }
    1.0 / sum as f32
}

/// i8 dot product with `i32` accumulation; dispatches to the AVX2
/// `vpmaddwd` kernel when the host has it. Integer arithmetic is exact,
/// so both paths return the same value for every input.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    #[cfg(target_arch = "x86_64")]
    {
        if vnni512_available() {
            // SAFETY: guarded by the runtime AVX-512 VNNI check.
            return unsafe { dot_i8_vnni512(a, b) };
        }
        if fma_available() {
            // SAFETY: guarded by the runtime AVX2 check.
            return unsafe { dot_i8_avx2(a, b) };
        }
    }
    dot_i8_portable(a, b)
}

/// Portable scalar i8 dot product — the reference the SIMD kernel must
/// match exactly.
pub fn dot_i8_portable(a: &[i8], b: &[i8]) -> i32 {
    let len = a.len().min(b.len());
    let mut acc = 0i32;
    for k in 0..len {
        acc += a[k] as i32 * b[k] as i32;
    }
    acc
}

/// AVX2 i8 dot: sign-extend 16-byte halves to i16 lanes and fuse
/// multiply + pairwise-add with `vpmaddwd` (16 multiply-accumulates per
/// instruction). Products of two i8 values fit i16 pairs into i32
/// exactly, so this is the same integer sum as the scalar loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    let len = a.len().min(b.len());
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc = _mm256_setzero_si256();
    let mut k = 0;
    while k + 32 <= len {
        let va = _mm256_loadu_si256(ap.add(k) as *const __m256i);
        let vb = _mm256_loadu_si256(bp.add(k) as *const __m256i);
        let a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
        let a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
        let b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
        let b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
        k += 32;
    }
    if k + 16 <= len {
        let va = _mm_loadu_si128(ap.add(k) as *const __m128i);
        let vb = _mm_loadu_si128(bp.add(k) as *const __m128i);
        let a16 = _mm256_cvtepi8_epi16(va);
        let b16 = _mm256_cvtepi8_epi16(vb);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a16, b16));
        k += 16;
    }
    let hi = _mm256_extracti128_si256(acc, 1);
    let mut q = _mm_add_epi32(_mm256_castsi256_si128(acc), hi);
    q = _mm_add_epi32(q, _mm_shuffle_epi32(q, 0b00_01_10_11));
    q = _mm_add_epi32(q, _mm_shuffle_epi32(q, 0b10_11_00_01));
    let mut sum = _mm_cvtsi128_si32(q);
    while k < len {
        sum += *ap.add(k) as i32 * *bp.add(k) as i32;
        k += 1;
    }
    sum
}

/// AVX-512 VNNI i8 dot: 32 elements per `vpdpwssd` (the fused
/// multiply-accumulate `vpmaddwd + vpaddd` in one instruction), with a
/// masked load covering the tail so the whole dot is branch-light.
/// Same exact integer sum as the scalar loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vl,avx512vnni")]
unsafe fn dot_i8_vnni512(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    let len = a.len().min(b.len());
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc = _mm512_setzero_si512();
    let mut k = 0;
    while k + 32 <= len {
        let va = _mm512_cvtepi8_epi16(_mm256_loadu_si256(ap.add(k) as *const __m256i));
        let vb = _mm512_cvtepi8_epi16(_mm256_loadu_si256(bp.add(k) as *const __m256i));
        acc = _mm512_dpwssd_epi32(acc, va, vb);
        k += 32;
    }
    if k < len {
        // rem < 32, so the mask shift cannot overflow; masked-out lanes
        // load as zero and contribute nothing.
        let m: __mmask32 = (1u32 << (len - k)) - 1;
        let va = _mm512_cvtepi8_epi16(_mm256_maskz_loadu_epi8(m, ap.add(k)));
        let vb = _mm512_cvtepi8_epi16(_mm256_maskz_loadu_epi8(m, bp.add(k)));
        acc = _mm512_dpwssd_epi32(acc, va, vb);
    }
    _mm512_reduce_add_epi32(acc)
}

/// Fused int8 GEMM against a pre-transposed quantized weight:
/// `out[r][o] = x_scales[r] * w.scale(o) * dot_i8(x_row_r, w_row_o)
/// (+ bias[o])` for `rows` quantized activation rows of length `k`.
///
/// Serial by design: callers batch at the window level on the rsd-par
/// pool (one window per task), which keeps results trivially
/// independent of thread count and partitioning.
pub fn qgemm_nt(
    x: &[i8],
    x_scales: &[f32],
    rows: usize,
    k: usize,
    w: &QuantizedMatrix,
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    assert_eq!(w.cols, k, "contraction dim mismatch");
    assert!(x.len() >= rows * k && out.len() >= rows * w.rows);
    if !w.packed.is_empty() {
        // Pair-packed route: gemv sweeps over the output axis, two
        // activation rows at a time so each weight load and
        // sign-extension is amortized across both. The integer
        // accumulators are exactly the per-channel dots, so this is
        // bit-identical to the dot route.
        let n = w.rows;
        let pairs = k.div_ceil(2);
        return QGEMM_SCRATCH.with(|cell| {
            let (pair_buf, acc) = &mut *cell.borrow_mut();
            if pair_buf.len() < 2 * pairs {
                pair_buf.resize(2 * pairs, 0);
            }
            if acc.len() < 2 * n {
                acc.resize(2 * n, 0);
            }
            let epilogue = |r: usize, acc: &[i32], out_row: &mut [f32]| {
                let sx = x_scales[r];
                match bias {
                    Some(b) => {
                        for o in 0..n {
                            out_row[o] = sx * w.scales[o] * acc[o] as f32 + b[o];
                        }
                    }
                    None => {
                        for o in 0..n {
                            out_row[o] = sx * w.scales[o] * acc[o] as f32;
                        }
                    }
                }
            };
            let pack_row = |r: usize, buf: &mut [i32]| {
                let x_row = &x[r * k..(r + 1) * k];
                for (p, slot) in buf.iter_mut().enumerate() {
                    let odd = if 2 * p + 1 < k { x_row[2 * p + 1] } else { 0 };
                    *slot = pack_pair(x_row[2 * p], odd);
                }
            };
            let mut r = 0;
            while r + 2 <= rows {
                let (p0, p1) = pair_buf.split_at_mut(pairs);
                pack_row(r, &mut p0[..pairs]);
                pack_row(r + 1, &mut p1[..pairs]);
                let (a0, a1) = acc.split_at_mut(n);
                gemv2_i8_pairs(&p0[..pairs], &p1[..pairs], &w.packed, n, a0, &mut a1[..n]);
                let (o0, rest) = out[r * n..].split_at_mut(n);
                epilogue(r, a0, o0);
                epilogue(r + 1, &a1[..n], &mut rest[..n]);
                r += 2;
            }
            if r < rows {
                pack_row(r, &mut pair_buf[..pairs]);
                gemv_i8_pairs(&pair_buf[..pairs], &w.packed, n, acc);
                epilogue(r, &acc[..n], &mut out[r * n..(r + 1) * n]);
            }
        });
    }
    for r in 0..rows {
        let x_row = &x[r * k..(r + 1) * k];
        let sx = x_scales[r];
        let out_row = &mut out[r * w.rows..(r + 1) * w.rows];
        for o in 0..w.rows {
            let acc = dot_i8(x_row, w.row(o));
            let mut v = sx * w.scales[o] * acc as f32;
            if let Some(b) = bias {
                v += b[o];
            }
            out_row[o] = v;
        }
    }
}

std::thread_local! {
    /// Reusable pack/accumulate buffers for the packed [`qgemm_nt`]
    /// route — keeps the public signature scratch-free while steady
    /// state allocates nothing (pool threads are long-lived).
    static QGEMM_SCRATCH: std::cell::RefCell<(Vec<i32>, Vec<i32>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// Pack the low/high halves of a d-pair into the `i32` broadcast word
/// [`gemv_i8_pairs`] consumes: lane layout `[q_even, q_odd]` as two
/// `i16`s, matching `vpmaddwd` against byte-interleaved columns.
#[inline]
pub fn pack_pair(q_even: i8, q_odd: i8) -> i32 {
    ((q_odd as i32) << 16) | (q_even as i32 as u16 as i32)
}

/// Short-contraction int8 GEMV: `out[j] = Σ_p pair_p · col_j` where the
/// contraction axis is pre-packed into d-pairs.
///
/// `q_pairs[p]` holds `(q[2p], q[2p+1])` via [`pack_pair`] (zero-pad an
/// odd axis). `kt` holds the matrix column-major, byte-interleaved by
/// pair: row `p` is `[k[2p][0], k[2p+1][0], k[2p][1], k[2p+1][1], ...]`,
/// `2*n` bytes. This turns the attention-score shape — tiny head_dim
/// contraction, long `j` axis — into full-width `vpmaddwd` over `j`,
/// where a plain per-`j` dot of 12 elements would run scalar.
/// Integer accumulation is exact: SIMD and portable agree bitwise.
#[inline]
pub fn gemv_i8_pairs(q_pairs: &[i32], kt: &[i8], n: usize, out: &mut [i32]) {
    debug_assert!(kt.len() >= q_pairs.len() * 2 * n);
    debug_assert!(out.len() >= n);
    #[cfg(target_arch = "x86_64")]
    {
        if vnni512_available() {
            // SAFETY: guarded by the runtime AVX-512 VNNI check.
            unsafe { gemv_i8_pairs_vnni512(q_pairs, kt, n, out) };
            return;
        }
        if fma_available() {
            // SAFETY: guarded by the runtime AVX2 check.
            unsafe { gemv_i8_pairs_avx2(q_pairs, kt, n, out) };
            return;
        }
    }
    gemv_i8_pairs_portable(q_pairs, kt, n, out)
}

/// Portable reference for [`gemv_i8_pairs`].
pub fn gemv_i8_pairs_portable(q_pairs: &[i32], kt: &[i8], n: usize, out: &mut [i32]) {
    let stride = 2 * n;
    for (j, slot) in out[..n].iter_mut().enumerate() {
        let mut acc = 0i32;
        for (p, &qp) in q_pairs.iter().enumerate() {
            let q0 = (qp as i16) as i32;
            let q1 = qp >> 16;
            let k0 = kt[p * stride + 2 * j] as i32;
            let k1 = kt[p * stride + 2 * j + 1] as i32;
            acc += q0 * k0 + q1 * k1;
        }
        *slot = acc;
    }
}

/// AVX2 [`gemv_i8_pairs`]: per pair, broadcast the packed `(q0, q1)`
/// word, sign-extend 16 interleaved bytes (8 `j` columns) to i16, and
/// let `vpmaddwd` produce `q0*k0 + q1*k1` per i32 lane — 8 outputs per
/// instruction down the long axis.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemv_i8_pairs_avx2(q_pairs: &[i32], kt: &[i8], n: usize, out: &mut [i32]) {
    use std::arch::x86_64::*;
    let stride = 2 * n;
    let base = kt.as_ptr();
    let mut j = 0;
    while j + 8 <= n {
        let mut acc = _mm256_setzero_si256();
        for (p, &qp) in q_pairs.iter().enumerate() {
            let bytes = _mm_loadu_si128(base.add(p * stride + 2 * j) as *const __m128i);
            let k16 = _mm256_cvtepi8_epi16(bytes);
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(k16, _mm256_set1_epi32(qp)));
        }
        _mm256_storeu_si256(out.as_mut_ptr().add(j) as *mut __m256i, acc);
        j += 8;
    }
    while j < n {
        let mut acc = 0i32;
        for (p, &qp) in q_pairs.iter().enumerate() {
            let q0 = (qp as i16) as i32;
            let q1 = qp >> 16;
            acc += q0 * (*base.add(p * stride + 2 * j) as i32)
                + q1 * (*base.add(p * stride + 2 * j + 1) as i32);
        }
        out[j] = acc;
        j += 1;
    }
}

/// AVX-512 VNNI [`gemv_i8_pairs`]: 16 `j` columns per `vpdpwssd`
/// (32 interleaved bytes sign-extended to a zmm of i16), with masked
/// load/store covering the sub-16 tail. Twice the AVX2 width and one
/// fused instruction where AVX2 needs `vpmaddwd + vpaddd`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vl,avx512vnni")]
unsafe fn gemv_i8_pairs_vnni512(q_pairs: &[i32], kt: &[i8], n: usize, out: &mut [i32]) {
    use std::arch::x86_64::*;
    let stride = 2 * n;
    let base = kt.as_ptr();
    let mut j = 0;
    while j + 16 <= n {
        let mut acc = _mm512_setzero_si512();
        for (p, &qp) in q_pairs.iter().enumerate() {
            let bytes = _mm256_loadu_si256(base.add(p * stride + 2 * j) as *const __m256i);
            acc = _mm512_dpwssd_epi32(acc, _mm512_cvtepi8_epi16(bytes), _mm512_set1_epi32(qp));
        }
        _mm512_storeu_si512(out.as_mut_ptr().add(j) as *mut __m512i, acc);
        j += 16;
    }
    if j < n {
        // rem < 16: byte mask covers 2·rem interleaved bytes, lane mask
        // rem i32 outputs; masked lanes read/write nothing.
        let rem = n - j;
        let bm: __mmask32 = (1u32 << (2 * rem)) - 1;
        let sm: __mmask16 = (1u16 << rem) - 1;
        let mut acc = _mm512_setzero_si512();
        for (p, &qp) in q_pairs.iter().enumerate() {
            let bytes = _mm256_maskz_loadu_epi8(bm, base.add(p * stride + 2 * j));
            acc = _mm512_dpwssd_epi32(acc, _mm512_cvtepi8_epi16(bytes), _mm512_set1_epi32(qp));
        }
        _mm512_mask_storeu_epi32(out.as_mut_ptr().add(j), sm, acc);
    }
}

/// Two-row [`gemv_i8_pairs`]: both activation rows sweep the same
/// packed weight panel, so each 16-byte column load and sign-extension
/// feeds two `vpmaddwd`s. Bit-identical to two independent gemvs.
#[inline]
pub fn gemv2_i8_pairs(
    q0: &[i32],
    q1: &[i32],
    kt: &[i8],
    n: usize,
    out0: &mut [i32],
    out1: &mut [i32],
) {
    debug_assert_eq!(q0.len(), q1.len());
    #[cfg(target_arch = "x86_64")]
    {
        if vnni512_available() {
            // SAFETY: guarded by the runtime AVX-512 VNNI check.
            unsafe { gemv2_i8_pairs_vnni512(q0, q1, kt, n, out0, out1) };
            return;
        }
        if fma_available() {
            // SAFETY: guarded by the runtime AVX2 check.
            unsafe { gemv2_i8_pairs_avx2(q0, q1, kt, n, out0, out1) };
            return;
        }
    }
    gemv_i8_pairs_portable(q0, kt, n, out0);
    gemv_i8_pairs_portable(q1, kt, n, out1);
}

/// AVX2 [`gemv2_i8_pairs`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemv2_i8_pairs_avx2(
    q0: &[i32],
    q1: &[i32],
    kt: &[i8],
    n: usize,
    out0: &mut [i32],
    out1: &mut [i32],
) {
    use std::arch::x86_64::*;
    let stride = 2 * n;
    let base = kt.as_ptr();
    let pairs = q0.len();
    let mut j = 0;
    while j + 8 <= n {
        let mut a0 = _mm256_setzero_si256();
        let mut a1 = _mm256_setzero_si256();
        for p in 0..pairs {
            let bytes = _mm_loadu_si128(base.add(p * stride + 2 * j) as *const __m128i);
            let k16 = _mm256_cvtepi8_epi16(bytes);
            a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(k16, _mm256_set1_epi32(q0[p])));
            a1 = _mm256_add_epi32(a1, _mm256_madd_epi16(k16, _mm256_set1_epi32(q1[p])));
        }
        _mm256_storeu_si256(out0.as_mut_ptr().add(j) as *mut __m256i, a0);
        _mm256_storeu_si256(out1.as_mut_ptr().add(j) as *mut __m256i, a1);
        j += 8;
    }
    while j < n {
        let mut a0 = 0i32;
        let mut a1 = 0i32;
        for p in 0..pairs {
            let k0 = *base.add(p * stride + 2 * j) as i32;
            let k1 = *base.add(p * stride + 2 * j + 1) as i32;
            a0 += ((q0[p] as i16) as i32) * k0 + (q0[p] >> 16) * k1;
            a1 += ((q1[p] as i16) as i32) * k0 + (q1[p] >> 16) * k1;
        }
        out0[j] = a0;
        out1[j] = a1;
        j += 1;
    }
}

/// AVX-512 VNNI [`gemv2_i8_pairs`]: one 32-byte column load and
/// sign-extension feeds two fused `vpdpwssd` accumulations, 16 outputs
/// per row per pair iteration.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vl,avx512vnni")]
unsafe fn gemv2_i8_pairs_vnni512(
    q0: &[i32],
    q1: &[i32],
    kt: &[i8],
    n: usize,
    out0: &mut [i32],
    out1: &mut [i32],
) {
    use std::arch::x86_64::*;
    let stride = 2 * n;
    let base = kt.as_ptr();
    let pairs = q0.len();
    let mut j = 0;
    while j + 16 <= n {
        let mut a0 = _mm512_setzero_si512();
        let mut a1 = _mm512_setzero_si512();
        for p in 0..pairs {
            let bytes = _mm256_loadu_si256(base.add(p * stride + 2 * j) as *const __m256i);
            let k16 = _mm512_cvtepi8_epi16(bytes);
            a0 = _mm512_dpwssd_epi32(a0, k16, _mm512_set1_epi32(q0[p]));
            a1 = _mm512_dpwssd_epi32(a1, k16, _mm512_set1_epi32(q1[p]));
        }
        _mm512_storeu_si512(out0.as_mut_ptr().add(j) as *mut __m512i, a0);
        _mm512_storeu_si512(out1.as_mut_ptr().add(j) as *mut __m512i, a1);
        j += 16;
    }
    if j < n {
        let rem = n - j;
        let bm: __mmask32 = (1u32 << (2 * rem)) - 1;
        let sm: __mmask16 = (1u16 << rem) - 1;
        let mut a0 = _mm512_setzero_si512();
        let mut a1 = _mm512_setzero_si512();
        for p in 0..pairs {
            let bytes = _mm256_maskz_loadu_epi8(bm, base.add(p * stride + 2 * j));
            let k16 = _mm512_cvtepi8_epi16(bytes);
            a0 = _mm512_dpwssd_epi32(a0, k16, _mm512_set1_epi32(q0[p]));
            a1 = _mm512_dpwssd_epi32(a1, k16, _mm512_set1_epi32(q1[p]));
        }
        _mm512_mask_storeu_epi32(out0.as_mut_ptr().add(j), sm, a0);
        _mm512_mask_storeu_epi32(out1.as_mut_ptr().add(j), sm, a1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, rng.gen_range(-2.0f32..2.0));
            }
        }
        m
    }

    #[test]
    fn round_trip_error_within_per_channel_bound() {
        let w = pseudo(48, 32, 7);
        let q = QuantizedMatrix::from_weight(&w);
        let deq = q.dequantize();
        for o in 0..q.rows() {
            let s = q.scale(o);
            for k in 0..q.cols() {
                let err = (w.get(k, o) - deq.get(o, k)).abs();
                assert!(
                    err <= s * 0.5 + s * 1e-4,
                    "channel {o} k {k}: err {err} vs scale {s}"
                );
            }
        }
    }

    #[test]
    fn zero_row_quantizes_to_zero_scale() {
        let m = Matrix::zeros(3, 8);
        let q = QuantizedMatrix::from_rows(&m);
        for r in 0..3 {
            assert_eq!(q.scale(r), 0.0);
            assert!(q.row(r).iter().all(|&v| v == 0));
        }
    }

    #[test]
    fn simd_dot_matches_portable_on_awkward_lengths() {
        let mut rng = StdRng::seed_from_u64(11);
        for len in [0, 1, 7, 15, 16, 17, 31, 32, 33, 48, 96, 127, 257] {
            let a: Vec<i8> = (0..len)
                .map(|_| rng.gen_range(-127i32..=127) as i8)
                .collect();
            let b: Vec<i8> = (0..len)
                .map(|_| rng.gen_range(-127i32..=127) as i8)
                .collect();
            assert_eq!(dot_i8(&a, &b), dot_i8_portable(&a, &b), "len {len}");
        }
    }

    #[test]
    fn pair_gemv_matches_naive_dots_on_awkward_shapes() {
        let mut rng = StdRng::seed_from_u64(13);
        // (head_dim, n): even and odd contractions, n below/at/past the
        // 8-wide SIMD step — the attention-score and rel-table shapes.
        for (hd, n) in [
            (12usize, 96usize),
            (12, 17),
            (11, 17),
            (2, 8),
            (6, 5),
            (16, 33),
        ] {
            let q: Vec<i8> = (0..hd)
                .map(|_| rng.gen_range(-127i32..=127) as i8)
                .collect();
            let k: Vec<Vec<i8>> = (0..n)
                .map(|_| {
                    (0..hd)
                        .map(|_| rng.gen_range(-127i32..=127) as i8)
                        .collect()
                })
                .collect();
            let pairs = hd.div_ceil(2);
            let mut q_pairs = vec![0i32; pairs];
            let mut kt = vec![0i8; pairs * 2 * n];
            for p in 0..pairs {
                let odd = if 2 * p + 1 < hd { q[2 * p + 1] } else { 0 };
                q_pairs[p] = pack_pair(q[2 * p], odd);
                for (j, krow) in k.iter().enumerate() {
                    kt[p * 2 * n + 2 * j] = krow[2 * p];
                    kt[p * 2 * n + 2 * j + 1] = if 2 * p + 1 < hd { krow[2 * p + 1] } else { 0 };
                }
            }
            let mut out = vec![0i32; n];
            gemv_i8_pairs(&q_pairs, &kt, n, &mut out);
            let mut portable = vec![0i32; n];
            gemv_i8_pairs_portable(&q_pairs, &kt, n, &mut portable);
            assert_eq!(out, portable, "hd {hd} n {n}: SIMD vs portable");
            // The two-row kernel must match independent gemvs exactly.
            let q2: Vec<i32> = q_pairs.iter().map(|&w| w.wrapping_mul(-1)).collect();
            let mut two_a = vec![0i32; n];
            let mut two_b = vec![0i32; n];
            gemv2_i8_pairs(&q_pairs, &q2, &kt, n, &mut two_a, &mut two_b);
            assert_eq!(two_a, out, "hd {hd} n {n}: 2-row row0");
            let mut solo_b = vec![0i32; n];
            gemv_i8_pairs_portable(&q2, &kt, n, &mut solo_b);
            assert_eq!(two_b, solo_b, "hd {hd} n {n}: 2-row row1");
            for (j, krow) in k.iter().enumerate() {
                let naive: i32 = q.iter().zip(krow).map(|(&a, &b)| a as i32 * b as i32).sum();
                assert_eq!(out[j], naive, "hd {hd} n {n} j {j}");
            }
        }
    }

    #[test]
    fn simd_quantize_matches_portable_on_awkward_lengths() {
        let mut rng = StdRng::seed_from_u64(17);
        for len in [0usize, 1, 5, 8, 9, 15, 16, 17, 48, 96, 97] {
            let src: Vec<f32> = (0..len).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
            let mut a = vec![0i8; len];
            let mut b = vec![0i8; len];
            let sa = quantize_row_i8(&src, &mut a);
            let sb = quantize_row_i8_portable(&src, &mut b);
            assert_eq!(sa.to_bits(), sb.to_bits(), "len {len}: scale");
            assert_eq!(a, b, "len {len}: codes");
        }
        // Ties land exactly between codes: .5 multiples must round even
        // identically on both paths.
        let src = [2.0f32, 1.0, 0.5, -0.5, 0.25, -2.0, 1.5, -1.5, 0.75];
        let mut a = vec![0i8; src.len()];
        let mut b = vec![0i8; src.len()];
        assert_eq!(
            quantize_row_i8(&src, &mut a).to_bits(),
            quantize_row_i8_portable(&src, &mut b).to_bits()
        );
        assert_eq!(a, b);
    }

    #[test]
    fn simd_softmax_q7_matches_portable_and_normalizes() {
        let mut rng = StdRng::seed_from_u64(19);
        for len in [1usize, 5, 8, 9, 17, 48, 96, 97] {
            let row: Vec<f32> = (0..len).map(|_| rng.gen_range(-8.0f32..8.0)).collect();
            let mut a = vec![0i8; len];
            let mut b = vec![0i8; len];
            let sa = softmax_q7(&row, &mut a);
            let sb = softmax_q7_portable(&row, &mut b);
            assert_eq!(sa.to_bits(), sb.to_bits(), "len {len}: scale");
            assert_eq!(a, b, "len {len}: codes");
            // The max element dequantizes to 127·scale and the row mass
            // is exactly 1 by construction.
            assert_eq!(*a.iter().max().unwrap(), 127, "len {len}");
            let mass: f32 = a.iter().map(|&q| q as f32 * sa).sum();
            assert!((mass - 1.0).abs() < 1e-5, "len {len}: mass {mass}");
            // Dequantized weights track the exact softmax within the
            // 7-bit step.
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exact: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
            let denom: f32 = exact.iter().sum();
            for (j, &q) in a.iter().enumerate() {
                let err = (q as f32 * sa - exact[j] / denom).abs();
                assert!(err < 1.0 / 127.0, "len {len} j {j}: err {err}");
            }
        }
    }

    #[test]
    fn qgemm_matches_f32_reference_within_quant_error() {
        let x = pseudo(5, 48, 3);
        let w = pseudo(48, 12, 4); // in × out, Linear layout
        let bias: Vec<f32> = (0..12).map(|i| i as f32 * 0.01).collect();
        let q = QuantizedMatrix::from_weight(&w);

        let mut xq = vec![0i8; 5 * 48];
        let mut xs = vec![0.0f32; 5];
        for r in 0..5 {
            xs[r] = quantize_row_i8(x.row(r), &mut xq[r * 48..(r + 1) * 48]);
        }
        let mut out = vec![0.0f32; 5 * 12];
        qgemm_nt(&xq, &xs, 5, 48, &q, Some(&bias), &mut out);

        for r in 0..5 {
            for o in 0..12 {
                let mut exact = bias[o];
                for k in 0..48 {
                    exact += x.get(r, k) * w.get(k, o);
                }
                let got = out[r * 12 + o];
                // Worst case |err| <= sum_k (|x| * sw/2 + |w| * sx/2 + sx*sw/4);
                // a loose 0.2 envelope is plenty for these magnitudes.
                assert!(
                    (exact - got).abs() < 0.2,
                    "r{r} o{o}: exact {exact} got {got}"
                );
            }
        }
    }
}
