//! Loss helpers on top of the tape's fused cross-entropy.

use crate::matrix::Matrix;
use crate::tape::{Tape, Var};

/// Mean cross-entropy of `logits` (n×C) against class indices; returns the
/// 1×1 loss node.
pub fn cross_entropy(tape: &mut Tape, logits: Var, targets: &[usize]) -> Var {
    tape.cross_entropy(logits, targets)
}

/// Inference-side softmax probabilities for a logits matrix. Rows are
/// normalized independently, in parallel chunks of whole rows; per-row
/// accumulation order is fixed, so output is thread-count independent.
pub fn softmax_probs(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    let cols = out.cols;
    if cols == 0 {
        return out;
    }
    // ~64 rows per chunk, in whole-row units.
    rsd_par::parallel_chunks_mut(&mut out.data, 64 * cols, |_, chunk| {
        for row in chunk.chunks_mut(cols) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    });
    out
}

/// Argmax of each row (predicted class per row).
pub fn argmax_rows(logits: &Matrix) -> Vec<usize> {
    (0..logits.rows)
        .map(|r| {
            logits
                .row(r)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN logits"))
                .map(|(i, _)| i)
                .expect("non-empty row")
        })
        .collect()
}

/// Class weights inversely proportional to class frequency (balanced
/// sampling support for the Table IV "full optimization" configuration).
pub fn inverse_frequency_weights(labels: &[usize], n_classes: usize) -> Vec<f64> {
    let mut counts = vec![0usize; n_classes];
    for &l in labels {
        counts[l] += 1;
    }
    let total = labels.len().max(1) as f64;
    counts
        .iter()
        .map(|&c| {
            if c == 0 {
                0.0
            } else {
                total / (n_classes as f64 * c as f64)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let p = softmax_probs(&m);
        for r in 0..2 {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert!(p.get(0, 2) > p.get(0, 1));
    }

    #[test]
    fn argmax_picks_largest() {
        let m = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.0, 0.5, 0.2, 0.3]);
        assert_eq!(argmax_rows(&m), vec![1, 0]);
    }

    #[test]
    fn inverse_weights_balance() {
        let labels = vec![0, 0, 0, 1];
        let w = inverse_frequency_weights(&labels, 2);
        assert!(w[1] > w[0]);
        assert!((w[0] - 4.0 / 6.0).abs() < 1e-12);
        assert!((w[1] - 2.0).abs() < 1e-12);
        let w = inverse_frequency_weights(&[0], 2);
        assert_eq!(w[1], 0.0, "absent class gets zero weight");
    }

    #[test]
    fn cross_entropy_decreases_with_confidence() {
        let mut tape = Tape::new();
        let weak = tape.constant(Matrix::from_vec(1, 2, vec![0.1, 0.0]));
        let strong = tape.constant(Matrix::from_vec(1, 2, vec![5.0, 0.0]));
        let l_weak = cross_entropy(&mut tape, weak, &[0]);
        let l_strong = cross_entropy(&mut tape, strong, &[0]);
        assert!(tape.value(l_strong).data[0] < tape.value(l_weak).data[0]);
    }
}
