//! Transformer encoder stack and MLM pretraining head.
//!
//! Two position regimes, matching the two PLM baselines:
//!
//! * [`PositionMode::Absolute`] — learned absolute position embeddings
//!   added to token embeddings, standard attention (RoBERTa-style).
//! * [`PositionMode::Relative`] — no absolute embeddings; disentangled
//!   attention with relative position embeddings in every block
//!   (DeBERTa-style).
//!
//! Blocks are pre-norm (`x + attn(ln(x))`, `x + ffn(ln(x))`) — the stable
//! choice for small models trained from scratch.

use rand::rngs::StdRng;

use crate::attention::{DisentangledAttention, MultiHeadAttention};
use crate::layers::{Embedding, LayerNorm, Linear};
use crate::params::ParamStore;
use crate::tape::{Tape, Var};

/// Positional-information regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PositionMode {
    /// Learned absolute positions added to the input (RoBERTa-style).
    Absolute,
    /// Disentangled relative attention (DeBERTa-style) with the given
    /// maximum relative distance.
    Relative {
        /// Maximum relative offset represented exactly.
        radius: usize,
    },
}

/// Encoder hyperparameters.
#[derive(Debug, Clone)]
pub struct EncoderConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Model width.
    pub dim: usize,
    /// Number of blocks.
    pub layers: usize,
    /// Attention heads per block.
    pub heads: usize,
    /// FFN inner width.
    pub ffn_dim: usize,
    /// Maximum sequence length (for absolute position tables).
    pub max_len: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Position regime.
    pub positions: PositionMode,
}

enum BlockAttention {
    Absolute(MultiHeadAttention),
    Disentangled(DisentangledAttention),
}

/// One pre-norm encoder block.
struct EncoderBlock {
    ln1: LayerNorm,
    attn: BlockAttention,
    ln2: LayerNorm,
    ffn1: Linear,
    ffn2: Linear,
}

impl EncoderBlock {
    fn new(store: &mut ParamStore, name: &str, cfg: &EncoderConfig, rng: &mut StdRng) -> Self {
        let attn = match cfg.positions {
            PositionMode::Absolute => BlockAttention::Absolute(MultiHeadAttention::new(
                store,
                &format!("{name}.attn"),
                cfg.dim,
                cfg.heads,
                rng,
            )),
            PositionMode::Relative { radius } => {
                BlockAttention::Disentangled(DisentangledAttention::new(
                    store,
                    &format!("{name}.attn"),
                    cfg.dim,
                    cfg.heads,
                    radius,
                    rng,
                ))
            }
        };
        EncoderBlock {
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), cfg.dim),
            attn,
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), cfg.dim),
            ffn1: Linear::new(store, &format!("{name}.ffn1"), cfg.dim, cfg.ffn_dim, rng),
            ffn2: Linear::new(store, &format!("{name}.ffn2"), cfg.ffn_dim, cfg.dim, rng),
        }
    }

    fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        dropout: f32,
        rng: &mut StdRng,
    ) -> Var {
        let normed = self.ln1.forward(tape, store, x);
        let attn_out = match &self.attn {
            BlockAttention::Absolute(a) => a.forward(tape, store, normed),
            BlockAttention::Disentangled(a) => a.forward(tape, store, normed),
        };
        let attn_out = tape.dropout(attn_out, dropout, rng);
        let x = tape.add(x, attn_out);

        let normed = self.ln2.forward(tape, store, x);
        let h = self.ffn1.forward(tape, store, normed);
        let h = tape.gelu(h);
        let h = self.ffn2.forward(tape, store, h);
        let h = tape.dropout(h, dropout, rng);
        tape.add(x, h)
    }
}

/// The encoder stack.
pub struct Encoder {
    /// Hyperparameters.
    pub cfg: EncoderConfig,
    token_emb: Embedding,
    pos_emb: Option<Embedding>,
    blocks: Vec<EncoderBlock>,
    final_ln: LayerNorm,
}

impl Encoder {
    /// Register a full encoder in `store`.
    pub fn new(store: &mut ParamStore, name: &str, cfg: EncoderConfig, rng: &mut StdRng) -> Self {
        let token_emb = Embedding::new(store, &format!("{name}.tok"), cfg.vocab, cfg.dim, rng);
        let pos_emb = match cfg.positions {
            PositionMode::Absolute => Some(Embedding::new(
                store,
                &format!("{name}.pos"),
                cfg.max_len,
                cfg.dim,
                rng,
            )),
            PositionMode::Relative { .. } => None,
        };
        let blocks = (0..cfg.layers)
            .map(|i| EncoderBlock::new(store, &format!("{name}.block{i}"), &cfg, rng))
            .collect();
        let final_ln = LayerNorm::new(store, &format!("{name}.ln_f"), cfg.dim);
        Encoder {
            cfg,
            token_emb,
            pos_emb,
            blocks,
            final_ln,
        }
    }

    /// Encode token ids into contextual states (seq×dim).
    ///
    /// `extra` — optional per-token feature rows (seq×dim) added to the
    /// embeddings before the first block; the temporal-feature fusion path
    /// the paper's PLM baselines use.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        ids: &[u32],
        extra: Option<Var>,
        rng: &mut StdRng,
    ) -> Var {
        assert!(!ids.is_empty(), "Encoder::forward: empty sequence");
        assert!(
            ids.len() <= self.cfg.max_len,
            "sequence longer than max_len"
        );
        let mut x = self.token_emb.forward(tape, store, ids);
        if let Some(pos) = &self.pos_emb {
            let positions: Vec<u32> = (0..ids.len() as u32).collect();
            let p = pos.forward(tape, store, &positions);
            x = tape.add(x, p);
        }
        if let Some(extra) = extra {
            x = tape.add(x, extra);
        }
        let x = tape.dropout(x, self.cfg.dropout, rng);
        let mut h = x;
        for block in &self.blocks {
            h = block.forward(tape, store, h, self.cfg.dropout, rng);
        }
        self.final_ln.forward(tape, store, h)
    }
}

/// Masked-language-model head: projects contextual states back to vocab
/// logits. Used for the in-domain pretraining that substitutes for public
/// PLM checkpoints.
pub struct MlmHead {
    proj: Linear,
}

impl MlmHead {
    /// Register the head.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        vocab: usize,
        rng: &mut StdRng,
    ) -> Self {
        MlmHead {
            proj: Linear::new(store, &format!("{name}.proj"), dim, vocab, rng),
        }
    }

    /// Logits (seq×vocab) from encoder states.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, states: Var) -> Var {
        self.proj.forward(tape, store, states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg(positions: PositionMode) -> EncoderConfig {
        EncoderConfig {
            vocab: 50,
            dim: 16,
            layers: 2,
            heads: 2,
            ffn_dim: 32,
            max_len: 12,
            dropout: 0.0,
            positions,
        }
    }

    #[test]
    fn absolute_encoder_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let enc = Encoder::new(&mut store, "e", cfg(PositionMode::Absolute), &mut rng);
        let mut tape = Tape::inference();
        let h = enc.forward(&mut tape, &store, &[1, 2, 3, 4], None, &mut rng);
        assert_eq!(tape.shape(h), (4, 16));
    }

    #[test]
    fn relative_encoder_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let enc = Encoder::new(
            &mut store,
            "e",
            cfg(PositionMode::Relative { radius: 4 }),
            &mut rng,
        );
        let mut tape = Tape::inference();
        let h = enc.forward(&mut tape, &store, &[1, 2, 3], None, &mut rng);
        assert_eq!(tape.shape(h), (3, 16));
    }

    #[test]
    fn position_information_differentiates_orders() {
        // Same bag of tokens, different order → different CLS state, in
        // both position regimes.
        for mode in [PositionMode::Absolute, PositionMode::Relative { radius: 4 }] {
            let mut rng = StdRng::seed_from_u64(3);
            let mut store = ParamStore::new();
            let enc = Encoder::new(&mut store, "e", cfg(mode), &mut rng);
            let encode = |ids: &[u32]| {
                let mut t = Tape::inference();
                let mut r = StdRng::seed_from_u64(0);
                let h = enc.forward(&mut t, &store, ids, None, &mut r);
                t.value(h).row(0).to_vec()
            };
            let a = encode(&[5, 6, 7, 8]);
            let b = encode(&[5, 8, 7, 6]);
            let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
            assert!(diff > 1e-4, "{mode:?} must be order-sensitive");
        }
    }

    #[test]
    fn mlm_head_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let enc = Encoder::new(&mut store, "e", cfg(PositionMode::Absolute), &mut rng);
        let head = MlmHead::new(&mut store, "mlm", 16, 50, &mut rng);
        let mut tape = Tape::new();
        let h = enc.forward(&mut tape, &store, &[1, 2, 3], None, &mut rng);
        let logits = head.forward(&mut tape, &store, h);
        assert_eq!(tape.shape(logits), (3, 50));
    }

    #[test]
    fn encoder_trains_on_a_toy_task() {
        // Distinguish sequences by their first token (needs positions).
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let enc = Encoder::new(&mut store, "e", cfg(PositionMode::Absolute), &mut rng);
        let head = crate::layers::Linear::new(&mut store, "cls", 16, 2, &mut rng);
        let mut opt = crate::optim::Adam::new(0.01);
        use crate::optim::Optimizer;
        let data: Vec<(Vec<u32>, usize)> = vec![
            (vec![10, 20, 30], 0),
            (vec![11, 20, 30], 1),
            (vec![10, 21, 31], 0),
            (vec![11, 21, 31], 1),
        ];
        for _ in 0..60 {
            for (ids, y) in &data {
                let mut tape = Tape::new();
                let h = enc.forward(&mut tape, &store, ids, None, &mut rng);
                let cls = tape.select_row(h, 0);
                let logits = head.forward(&mut tape, &store, cls);
                let loss = tape.cross_entropy(logits, &[*y]);
                tape.backward(loss);
                tape.harvest_grads(&mut store);
                opt.step(&mut store);
            }
        }
        let mut correct = 0;
        for (ids, y) in &data {
            let mut tape = Tape::inference();
            let h = enc.forward(&mut tape, &store, ids, None, &mut rng);
            let cls = tape.select_row(h, 0);
            let logits = head.forward(&mut tape, &store, cls);
            if crate::loss::argmax_rows(tape.value(logits))[0] == *y {
                correct += 1;
            }
        }
        assert_eq!(correct, 4);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let enc = Encoder::new(&mut store, "e", cfg(PositionMode::Absolute), &mut rng);
        let mut tape = Tape::new();
        enc.forward(&mut tape, &store, &[], None, &mut rng);
    }
}
