//! Multi-head self-attention: absolute (RoBERTa-style) and disentangled
//! content/position (DeBERTa-style) variants.
//!
//! Both operate on a single sequence (seq_len × dim) and split heads by
//! column ranges. The disentangled variant implements the DeBERTa scoring
//! decomposition
//!
//! ```text
//! score(i,j) = Qc_i·Kc_j  +  Qc_i·Kr_{δ(i,j)}  +  Kc_j·Qr_{δ(j,i)}
//! ```
//!
//! with `δ` the clamped relative offset and `Kr`/`Qr` projections of a
//! learned relative-position embedding table — the paper's "debiased
//! attention mechanism and relative position encoding" (§III-A5).

use rand::rngs::StdRng;

use crate::layers::{Embedding, Linear};
use crate::params::ParamStore;
use crate::tape::{Tape, Var};

/// Standard multi-head self-attention with absolute positions handled by
/// the caller's position embeddings.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    /// Query projection.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    /// Number of heads.
    pub n_heads: usize,
    /// Model width.
    pub dim: usize,
}

impl MultiHeadAttention {
    /// Register an attention block. `dim` must be divisible by `n_heads`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        n_heads: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(dim % n_heads, 0, "dim must divide by heads");
        MultiHeadAttention {
            wq: Linear::new(store, &format!("{name}.wq"), dim, dim, rng),
            wk: Linear::new(store, &format!("{name}.wk"), dim, dim, rng),
            wv: Linear::new(store, &format!("{name}.wv"), dim, dim, rng),
            wo: Linear::new(store, &format!("{name}.wo"), dim, dim, rng),
            n_heads,
            dim,
        }
    }

    /// Self-attention over `x` (seq×dim).
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let head_dim = self.dim / self.n_heads;
        let scale = 1.0 / (head_dim as f32).sqrt();
        let q = self.wq.forward(tape, store, x);
        let k = self.wk.forward(tape, store, x);
        let v = self.wv.forward(tape, store, x);

        let mut heads = Vec::with_capacity(self.n_heads);
        for h in 0..self.n_heads {
            let start = h * head_dim;
            let qh = tape.narrow_cols(q, start, head_dim);
            let kh = tape.narrow_cols(k, start, head_dim);
            let vh = tape.narrow_cols(v, start, head_dim);
            let kt = tape.transpose(kh);
            let scores = tape.matmul(qh, kt);
            let scaled = tape.scale(scores, scale);
            let attn = tape.softmax_rows(scaled);
            heads.push(tape.matmul(attn, vh));
        }
        let ctx = tape.concat_cols(&heads);
        self.wo.forward(tape, store, ctx)
    }
}

/// DeBERTa-style disentangled attention with relative position embeddings.
#[derive(Debug, Clone)]
pub struct DisentangledAttention {
    /// Content query projection.
    pub wq: Linear,
    /// Content key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    /// Relative-position embedding table ((2·radius+1) × dim).
    pub rel: Embedding,
    /// Maximum relative distance.
    pub radius: usize,
    /// Number of heads.
    pub n_heads: usize,
    /// Model width.
    pub dim: usize,
}

impl DisentangledAttention {
    /// Register a disentangled attention block.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        n_heads: usize,
        radius: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(dim % n_heads, 0, "dim must divide by heads");
        DisentangledAttention {
            wq: Linear::new(store, &format!("{name}.wq"), dim, dim, rng),
            wk: Linear::new(store, &format!("{name}.wk"), dim, dim, rng),
            wv: Linear::new(store, &format!("{name}.wv"), dim, dim, rng),
            wo: Linear::new(store, &format!("{name}.wo"), dim, dim, rng),
            rel: Embedding::new(store, &format!("{name}.rel"), 2 * radius + 1, dim, rng),
            radius,
            n_heads,
            dim,
        }
    }

    /// Disentangled self-attention over `x` (seq×dim).
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let head_dim = self.dim / self.n_heads;
        // DeBERTa scales by √(3d) since three score terms are summed.
        let scale = 1.0 / (3.0 * head_dim as f32).sqrt();
        let (seq_len, _) = tape.shape(x);

        let q = self.wq.forward(tape, store, x);
        let k = self.wk.forward(tape, store, x);
        let v = self.wv.forward(tape, store, x);

        // Project the relative table through the content projections
        // (DeBERTa shares projections between content and position).
        let all_rel: Vec<u32> = (0..(2 * self.radius + 1) as u32).collect();
        let rel_rows = self.rel.forward(tape, store, &all_rel);
        let qr = self.wq.forward(tape, store, rel_rows);
        let kr = self.wk.forward(tape, store, rel_rows);

        let mut heads = Vec::with_capacity(self.n_heads);
        for h in 0..self.n_heads {
            let start = h * head_dim;
            let qh = tape.narrow_cols(q, start, head_dim);
            let kh = tape.narrow_cols(k, start, head_dim);
            let vh = tape.narrow_cols(v, start, head_dim);
            let qrh = tape.narrow_cols(qr, start, head_dim);
            let krh = tape.narrow_cols(kr, start, head_dim);

            // Content-to-content.
            let kt = tape.transpose(kh);
            let c2c = tape.matmul(qh, kt);

            // Content-to-position: Qc @ Krᵀ gathered by relative offset.
            let krt = tape.transpose(krh);
            let c2p_full = tape.matmul(qh, krt); // seq × (2r+1)
            let c2p = tape.relative_gather(c2p_full, seq_len, self.radius, false);

            // Position-to-content: Kc @ Qrᵀ gathered (transposed flavour).
            let qrt = tape.transpose(qrh);
            let p2c_full = tape.matmul(kh, qrt); // seq × (2r+1)
            let p2c = tape.relative_gather(p2c_full, seq_len, self.radius, true);

            let sum1 = tape.add(c2c, c2p);
            let scores = tape.add(sum1, p2c);
            let scaled = tape.scale(scores, scale);
            let attn = tape.softmax_rows(scaled);
            heads.push(tape.matmul(attn, vh));
        }
        let ctx = tape.concat_cols(&heads);
        self.wo.forward(tape, store, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use rand::SeedableRng;

    fn input(seq: usize, dim: usize) -> Matrix {
        Matrix::from_vec(
            seq,
            dim,
            (0..seq * dim)
                .map(|i| ((i * 7 % 13) as f32) * 0.1 - 0.6)
                .collect(),
        )
    }

    #[test]
    fn mha_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, "a", 8, 2, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(input(5, 8));
        let y = attn.forward(&mut tape, &store, x);
        assert_eq!(tape.shape(y), (5, 8));
    }

    #[test]
    fn disentangled_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let attn = DisentangledAttention::new(&mut store, "d", 8, 2, 4, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(input(6, 8));
        let y = attn.forward(&mut tape, &store, x);
        assert_eq!(tape.shape(y), (6, 8));
    }

    #[test]
    #[should_panic(expected = "dim must divide")]
    fn rejects_indivisible_heads() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        MultiHeadAttention::new(&mut store, "a", 9, 2, &mut rng);
    }

    #[test]
    fn absolute_attention_is_permutation_blind_without_positions() {
        // Plain self-attention is permutation-equivariant: permuting input
        // rows permutes output rows identically. (This is exactly why
        // positional information must be injected.)
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, "a", 4, 1, &mut rng);
        let x = input(3, 4);
        let mut permuted = x.clone();
        // Swap rows 0 and 2.
        for c in 0..4 {
            let tmp = permuted.get(0, c);
            permuted.set(0, c, permuted.get(2, c));
            permuted.set(2, c, tmp);
        }
        let run = |m: Matrix| {
            let mut tape = Tape::inference();
            let v = tape.constant(m);
            let y = attn.forward(&mut tape, &store, v);
            tape.value(y).clone()
        };
        let y1 = run(x);
        let y2 = run(permuted);
        for c in 0..4 {
            assert!((y1.get(0, c) - y2.get(2, c)).abs() < 1e-5);
            assert!((y1.get(1, c) - y2.get(1, c)).abs() < 1e-5);
        }
    }

    #[test]
    fn disentangled_attention_is_position_sensitive() {
        // The disentangled variant embeds relative positions directly in
        // the scores, so permutation equivariance must break.
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let attn = DisentangledAttention::new(&mut store, "d", 4, 1, 3, &mut rng);
        let x = input(3, 4);
        let mut permuted = x.clone();
        for c in 0..4 {
            let tmp = permuted.get(0, c);
            permuted.set(0, c, permuted.get(2, c));
            permuted.set(2, c, tmp);
        }
        let run = |m: Matrix| {
            let mut tape = Tape::inference();
            let v = tape.constant(m);
            let y = attn.forward(&mut tape, &store, v);
            tape.value(y).clone()
        };
        let y1 = run(x);
        let y2 = run(permuted);
        let mut max_diff = 0.0f32;
        for c in 0..4 {
            max_diff = max_diff.max((y1.get(0, c) - y2.get(2, c)).abs());
        }
        assert!(
            max_diff > 1e-4,
            "relative positions must break permutation equivariance"
        );
    }

    #[test]
    fn attention_gradients_flow_to_all_projections() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let attn = DisentangledAttention::new(&mut store, "d", 8, 2, 2, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(input(4, 8));
        let y = attn.forward(&mut tape, &store, x);
        let loss = tape.mean_rows(y);
        tape.backward(loss);
        tape.harvest_grads(&mut store);
        for id in store.ids() {
            assert!(
                store.grad(id).frobenius() > 0.0,
                "no gradient reached {}",
                store.name(id)
            );
        }
    }
}
