//! Property tests for the parallel kernel determinism contract: for any
//! shape, the blocked parallel kernels must be byte-identical to forced
//! serial execution and to a 4-thread local pool, and close to the
//! pre-optimization reference kernels (the fused-multiply-add matmuls
//! and the multi-accumulator NT dot round differently; `transpose` is
//! order-preserving and stays bitwise equal).

use proptest::prelude::*;
use rsd_nn::matrix::{reference, Matrix};

fn close_to(got: &Matrix, want: &Matrix) -> bool {
    got.data
        .iter()
        .zip(&want.data)
        .all(|(x, y)| (x - y).abs() <= 1e-3 * (1.0 + y.abs()))
}

fn matrix_from(rows: usize, cols: usize, vals: &[f32], sparse: bool) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let v = vals[i % vals.len()];
            if sparse && i % 3 != 0 {
                0.0
            } else {
                v
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.data.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    fn matmul_parallel_equals_serial_and_reference(
        m in 1usize..40,
        k in 1usize..48,
        n in 1usize..40,
        vals in collection::vec(-2.0f32..2.0, 8..32),
        sparse in 0u32..2,
    ) {
        let a = matrix_from(m, k, &vals, sparse == 1);
        let b = matrix_from(k, n, &vals, false);
        let par = rsd_par::with_local_pool(4, || a.matmul(&b));
        let ser = rsd_par::run_serial(|| a.matmul(&b));
        prop_assert_eq!(bits(&par), bits(&ser));
        prop_assert!(close_to(&par, &reference::matmul(&a, &b)));
    }

    fn matmul_tn_parallel_equals_serial_and_reference(
        m in 1usize..40,
        k in 1usize..48,
        n in 1usize..40,
        vals in collection::vec(-2.0f32..2.0, 8..32),
    ) {
        let a = matrix_from(k, m, &vals, false);
        let b = matrix_from(k, n, &vals, false);
        let par = rsd_par::with_local_pool(4, || a.matmul_tn(&b));
        let ser = rsd_par::run_serial(|| a.matmul_tn(&b));
        prop_assert_eq!(bits(&par), bits(&ser));
        prop_assert!(close_to(&par, &reference::matmul_tn(&a, &b)));
    }

    fn matmul_nt_parallel_equals_serial(
        m in 1usize..40,
        k in 1usize..48,
        n in 1usize..40,
        vals in collection::vec(-2.0f32..2.0, 8..32),
    ) {
        let a = matrix_from(m, k, &vals, false);
        let b = matrix_from(n, k, &vals, false);
        let par = rsd_par::with_local_pool(4, || a.matmul_nt(&b));
        let ser = rsd_par::run_serial(|| a.matmul_nt(&b));
        prop_assert_eq!(bits(&par), bits(&ser));
        prop_assert!(close_to(&par, &reference::matmul_nt(&a, &b)));
    }

    fn transpose_and_map_parallel_equal_serial(
        m in 1usize..64,
        n in 1usize..64,
        vals in collection::vec(-2.0f32..2.0, 8..32),
    ) {
        let a = matrix_from(m, n, &vals, false);
        let par = rsd_par::with_local_pool(4, || (a.transpose(), a.map(|x| x.tanh())));
        let ser = rsd_par::run_serial(|| (a.transpose(), a.map(|x| x.tanh())));
        prop_assert_eq!(bits(&par.0), bits(&ser.0));
        prop_assert_eq!(bits(&par.0), bits(&reference::transpose(&a)));
        prop_assert_eq!(bits(&par.1), bits(&ser.1));
    }
}
