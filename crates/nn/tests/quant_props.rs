//! Property tests for the int8 quantization contract: the symmetric
//! per-row round-trip error bound (`|x − q·scale| ≤ scale/2`), and
//! exact bitwise agreement between the dispatched kernels (AVX-512
//! VNNI or AVX2 on hosts that have them) and the portable references
//! for arbitrary shapes — including the masked sub-lane tails.

use proptest::collection;
use proptest::prelude::*;
use rsd_nn::quant::{
    dot_i8, dot_i8_portable, gemv2_i8_pairs, gemv_i8_pairs, gemv_i8_pairs_portable, pack_pair,
    quantize_row_i8, quantize_row_i8_portable, softmax_q7, softmax_q7_portable,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    fn quantize_round_trip_within_half_scale(
        row in collection::vec(-16.0f32..16.0, 1..130),
    ) {
        let mut q = vec![0i8; row.len()];
        let scale = quantize_row_i8(&row, &mut q);
        let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        if max_abs == 0.0 {
            prop_assert_eq!(scale, 0.0);
            prop_assert!(q.iter().all(|&v| v == 0));
        } else {
            prop_assert!(
                (scale - max_abs / 127.0).abs() <= max_abs * f32::EPSILON,
                "scale {} vs max_abs/127 {}", scale, max_abs / 127.0
            );
            for (&x, &code) in row.iter().zip(&q) {
                let err = (x - code as f32 * scale).abs();
                prop_assert!(
                    err <= scale * 0.5 + scale * 1e-4,
                    "x {} code {} scale {}: err {}", x, code, scale, err
                );
            }
        }
    }

    fn quantize_simd_matches_portable(
        row in collection::vec(-8.0f32..8.0, 0..130),
    ) {
        let mut a = vec![0i8; row.len()];
        let mut b = vec![0i8; row.len()];
        let sa = quantize_row_i8(&row, &mut a);
        let sb = quantize_row_i8_portable(&row, &mut b);
        prop_assert_eq!(sa.to_bits(), sb.to_bits());
        prop_assert_eq!(a, b);
    }

    fn dot_simd_matches_portable(
        a in collection::vec(-128i8..=127, 0..200),
        b in collection::vec(-128i8..=127, 0..200),
    ) {
        prop_assert_eq!(dot_i8(&a, &b), dot_i8_portable(&a, &b));
    }

    fn softmax_q7_simd_matches_portable_and_normalizes(
        row in collection::vec(-20.0f32..20.0, 1..130),
    ) {
        let mut a = vec![0i8; row.len()];
        let mut b = vec![0i8; row.len()];
        let sa = softmax_q7(&row, &mut a);
        let sb = softmax_q7_portable(&row, &mut b);
        prop_assert_eq!(sa.to_bits(), sb.to_bits());
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(*a.iter().max().unwrap(), 127);
        let mass: f32 = a.iter().map(|&q| q as f32 * sa).sum();
        prop_assert!((mass - 1.0).abs() < 1e-5, "mass {}", mass);
    }

    fn pair_gemv_kernels_match_naive_dots(
        hd in 1usize..22,
        n in 1usize..40,
        seed in 0u64..u64::MAX,
    ) {
        // Deterministic pseudo-codes so shrinking stays meaningful.
        let gen = |i: usize| {
            (((i as u64 ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % 255) as i32 - 127
        };
        let q: Vec<i8> = (0..hd).map(|i| gen(i) as i8).collect();
        let q2: Vec<i8> = (0..hd).map(|i| gen(i + 1000) as i8).collect();
        let k: Vec<Vec<i8>> = (0..n)
            .map(|j| (0..hd).map(|d| gen(2000 + j * hd + d) as i8).collect())
            .collect();
        let pairs = hd.div_ceil(2);
        let pack = |row: &[i8]| -> Vec<i32> {
            (0..pairs)
                .map(|p| pack_pair(row[2 * p], if 2 * p + 1 < hd { row[2 * p + 1] } else { 0 }))
                .collect()
        };
        let mut kt = vec![0i8; pairs * 2 * n];
        for p in 0..pairs {
            for (j, krow) in k.iter().enumerate() {
                kt[p * 2 * n + 2 * j] = krow[2 * p];
                kt[p * 2 * n + 2 * j + 1] =
                    if 2 * p + 1 < hd { krow[2 * p + 1] } else { 0 };
            }
        }
        let (qp, qp2) = (pack(&q), pack(&q2));
        let mut out = vec![0i32; n];
        gemv_i8_pairs(&qp, &kt, n, &mut out);
        let mut portable = vec![0i32; n];
        gemv_i8_pairs_portable(&qp, &kt, n, &mut portable);
        prop_assert_eq!(&out, &portable);
        for (j, krow) in k.iter().enumerate() {
            let naive: i32 = q.iter().zip(krow).map(|(&a, &b)| a as i32 * b as i32).sum();
            prop_assert_eq!(out[j], naive);
        }
        let mut two_a = vec![0i32; n];
        let mut two_b = vec![0i32; n];
        gemv2_i8_pairs(&qp, &qp2, &kt, n, &mut two_a, &mut two_b);
        prop_assert_eq!(&two_a, &out);
        let mut solo_b = vec![0i32; n];
        gemv_i8_pairs_portable(&qp2, &kt, n, &mut solo_b);
        prop_assert_eq!(&two_b, &solo_b);
    }
}
