//! Sequence-dimension features: sliding-window trends and historical
//! cumulative statistics over the user's post sequence.

use rsd_common::stats::linear_trend;
use rsd_text::relevance::theme_hits;
use rsd_text::tokenize::{token_count, tokenize};

/// Names of the sequence features, in output order.
pub const SEQUENCE_FEATURE_NAMES: &[&str] = &[
    "seq.window_size",
    "seq.total_posts",
    "seq.len_trend",
    "seq.theme_trend",
    "seq.last_jaccard",
    "seq.escalation_steps",
];

/// Extract sequence features.
///
/// * `texts` — the window's cleaned texts, chronological.
/// * `total_posts` — the user's full history length (cumulative feature).
pub fn sequence_features(texts: &[&str], total_posts: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(SEQUENCE_FEATURE_NAMES.len());
    sequence_features_into(texts, total_posts, &mut out);
    out
}

/// [`sequence_features`] appended into a caller-owned buffer — the
/// allocation-free variant the serving path's scratch buffers use.
pub fn sequence_features_into(texts: &[&str], total_posts: usize, out: &mut Vec<f32>) {
    let lens: Vec<f64> = texts.iter().map(|t| token_count(t) as f64).collect();
    let hits: Vec<f64> = texts.iter().map(|t| theme_hits(t) as f64).collect();

    // Token-overlap similarity between the last two posts.
    let last_jaccard = if texts.len() >= 2 {
        jaccard(texts[texts.len() - 2], texts[texts.len() - 1])
    } else {
        0.0
    };

    // Number of consecutive increases in theme-hit counts — a cheap proxy
    // for escalating risk language across the window.
    let escalation_steps = hits.windows(2).filter(|w| w[1] > w[0]).count() as f64;

    out.extend_from_slice(&[
        texts.len() as f32,
        total_posts as f32,
        linear_trend(&lens) as f32,
        linear_trend(&hits) as f32,
        last_jaccard as f32,
        escalation_steps as f32,
    ]);
}

/// Token-set Jaccard similarity of two cleaned texts.
fn jaccard(a: &str, b: &str) -> f64 {
    use std::collections::HashSet;
    let sa: HashSet<&str> = tokenize(a).into_iter().collect();
    let sb: HashSet<&str> = tokenize(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_count_matches_names() {
        assert_eq!(
            sequence_features(&["a"], 3).len(),
            SEQUENCE_FEATURE_NAMES.len()
        );
    }

    #[test]
    fn window_and_totals() {
        let f = sequence_features(&["a", "b c"], 12);
        assert_eq!(f[0], 2.0);
        assert_eq!(f[1], 12.0);
    }

    #[test]
    fn trends_detect_growth() {
        let f = sequence_features(&["a", "a b", "a b c"], 3);
        assert!(f[2] > 0.0, "length trend must be positive");
    }

    #[test]
    fn escalation_counts_theme_increases() {
        let f = sequence_features(
            &["nothing here", "i want to die", "i want to die and end it"],
            3,
        );
        assert!(f[5] >= 2.0, "two escalation steps, got {}", f[5]);
    }

    #[test]
    fn jaccard_of_identical_posts_is_one() {
        let f = sequence_features(&["i want to die", "i want to die"], 2);
        assert!((f[4] - 1.0).abs() < 1e-6);
        let f = sequence_features(&["alpha beta", "gamma delta"], 2);
        assert_eq!(f[4], 0.0);
    }

    #[test]
    fn single_post_defaults() {
        let f = sequence_features(&["hello world"], 1);
        assert_eq!(f[4], 0.0);
        assert_eq!(f[5], 0.0);
        assert!(f.iter().all(|x| x.is_finite()));
    }
}
