//! Time-dimension features: posting-interval statistics, circadian and
//! weekly patterns — the features the paper reports as most predictive
//! ("the change pattern of posting time intervals and the proportion of
//! nighttime posts").

use rsd_common::stats::{linear_trend, mean, std_dev};
use rsd_common::Timestamp;

/// Names of the time features, in output order.
pub const TIME_FEATURE_NAMES: &[&str] = &[
    "time.gap_mean_days",
    "time.gap_std_days",
    "time.gap_min_days",
    "time.gap_max_days",
    "time.gap_trend",
    "time.last_gap_ratio",
    "time.night_ratio",
    "time.weekend_ratio",
    "time.hour_mean",
    "time.hour_std",
    "time.span_days",
    "time.posts_per_day",
];

/// Extract time features from the window's timestamps (chronological).
pub fn time_features(timestamps: &[Timestamp]) -> Vec<f32> {
    let mut out = Vec::with_capacity(TIME_FEATURE_NAMES.len());
    time_features_into(timestamps, &mut out);
    out
}

/// [`time_features`] appended into a caller-owned buffer — the
/// allocation-free variant the serving path's scratch buffers use.
pub fn time_features_into(timestamps: &[Timestamp], out: &mut Vec<f32>) {
    let n = timestamps.len();
    let gaps: Vec<f64> = timestamps
        .windows(2)
        .map(|w| w[1].days_since(w[0]))
        .collect();
    let gap_mean = mean(&gaps);
    let last_gap_ratio = if gaps.is_empty() || gap_mean <= 0.0 {
        1.0
    } else {
        gaps.last().copied().unwrap_or(0.0) / gap_mean
    };
    let night_ratio = timestamps.iter().filter(|t| t.is_night()).count() as f64 / n.max(1) as f64;
    let weekend_ratio =
        timestamps.iter().filter(|t| t.is_weekend()).count() as f64 / n.max(1) as f64;
    let hours: Vec<f64> = timestamps.iter().map(|t| f64::from(t.hour())).collect();
    let span_days = if n >= 2 {
        timestamps[n - 1].days_since(timestamps[0])
    } else {
        0.0
    };
    let posts_per_day = if span_days > 0.0 {
        n as f64 / span_days
    } else {
        n as f64
    };

    out.extend_from_slice(&[
        gap_mean as f32,
        std_dev(&gaps) as f32,
        gaps.iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .pipe_zero() as f32,
        gaps.iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_zero() as f32,
        linear_trend(&gaps) as f32,
        last_gap_ratio as f32,
        night_ratio as f32,
        weekend_ratio as f32,
        mean(&hours) as f32,
        std_dev(&hours) as f32,
        span_days as f32,
        posts_per_day as f32,
    ]);
}

trait PipeZero {
    fn pipe_zero(self) -> f64;
}
impl PipeZero for f64 {
    fn pipe_zero(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(hours: &[i64]) -> Vec<Timestamp> {
        hours
            .iter()
            .map(|&h| {
                Timestamp::from_ymd(2020, 6, 1)
                    .unwrap()
                    .plus_seconds(h * 3600)
            })
            .collect()
    }

    #[test]
    fn feature_count_matches_names() {
        let feats = time_features(&ts(&[0, 24, 48]));
        assert_eq!(feats.len(), TIME_FEATURE_NAMES.len());
    }

    #[test]
    fn gap_statistics() {
        // Gaps of 1 day and 2 days.
        let feats = time_features(&ts(&[0, 24, 72]));
        assert!((feats[0] - 1.5).abs() < 1e-5, "mean gap {}", feats[0]);
        assert!((feats[2] - 1.0).abs() < 1e-5, "min gap");
        assert!((feats[3] - 2.0).abs() < 1e-5, "max gap");
        assert!(feats[4] > 0.0, "gaps growing → positive trend");
        assert!((feats[10] - 3.0).abs() < 1e-5, "span 3 days");
    }

    #[test]
    fn night_ratio_counts_late_posts() {
        // 23:00 is night; 12:00 is not.
        let t = vec![
            Timestamp::from_ymd_hms(2020, 6, 1, 23, 0, 0).unwrap(),
            Timestamp::from_ymd_hms(2020, 6, 2, 12, 0, 0).unwrap(),
        ];
        let feats = time_features(&t);
        assert!((feats[6] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn single_post_is_all_finite() {
        let feats = time_features(&ts(&[5]));
        assert!(feats.iter().all(|f| f.is_finite()));
        assert_eq!(feats[0], 0.0, "no gaps");
        assert_eq!(feats[11], 1.0, "1 post, zero span → 1 post/day");
    }

    #[test]
    fn last_gap_ratio_detects_acceleration() {
        // Gaps 10, 10, 1: the last gap collapses → ratio well below 1.
        let feats = time_features(&ts(&[0, 240, 480, 504]));
        assert!(feats[5] < 0.5, "last gap ratio {}", feats[5]);
    }
}
