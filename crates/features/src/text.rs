//! Text-dimension features: statistical and linguistic descriptors of the
//! window's posts (TF-IDF lives in the extractor; these are the dense
//! companions).

use rsd_common::stats::{mean, std_dev};
use rsd_text::relevance::theme_hits;
use rsd_text::tokenize;

/// Names of the dense text features, in output order.
pub const TEXT_FEATURE_NAMES: &[&str] = &[
    "text.len_mean",
    "text.len_std",
    "text.len_last",
    "text.len_change",
    "text.type_token_ratio",
    "text.first_person_rate",
    "text.negation_count",
    "text.theme_hits_total",
    "text.theme_hits_last",
];

/// Negation markers surviving the cleaning pipeline.
const NEGATIONS: &[&str] = &["not", "never", "no", "don't", "cannot", "can't", "won't"];

/// Extract dense text features from the window's cleaned post texts
/// (chronological; last = the labelled post).
pub fn text_features(texts: &[&str]) -> Vec<f32> {
    let mut out = Vec::with_capacity(TEXT_FEATURE_NAMES.len());
    text_features_into(texts, &mut out);
    out
}

/// [`text_features`] appended into a caller-owned buffer — the
/// allocation-free variant the serving path's scratch buffers use.
pub fn text_features_into(texts: &[&str], out: &mut Vec<f32>) {
    let token_lists: Vec<Vec<&str>> = texts.iter().map(|t| tokenize(t)).collect();
    let lens: Vec<f64> = token_lists.iter().map(|t| t.len() as f64).collect();
    let len_mean = mean(&lens);
    let len_last = lens.last().copied().unwrap_or(0.0);
    let len_change = if len_mean > 0.0 {
        len_last / len_mean
    } else {
        1.0
    };

    let all_tokens: Vec<&str> = token_lists.iter().flatten().copied().collect();
    let type_token_ratio = if all_tokens.is_empty() {
        0.0
    } else {
        let mut uniq: Vec<&str> = all_tokens.clone();
        uniq.sort_unstable();
        uniq.dedup();
        uniq.len() as f64 / all_tokens.len() as f64
    };
    let first_person = all_tokens
        .iter()
        .filter(|t| matches!(**t, "i" | "me" | "my" | "myself" | "i'm" | "i've"))
        .count() as f64
        / all_tokens.len().max(1) as f64;
    let negations = all_tokens.iter().filter(|t| NEGATIONS.contains(*t)).count() as f64;
    let theme_total: f64 = texts.iter().map(|t| theme_hits(t) as f64).sum();
    let theme_last = texts.last().map_or(0.0, |t| theme_hits(t) as f64);

    out.extend_from_slice(&[
        len_mean as f32,
        std_dev(&lens) as f32,
        len_last as f32,
        len_change as f32,
        type_token_ratio as f32,
        first_person as f32,
        negations as f32,
        theme_total as f32,
        theme_last as f32,
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_count_matches_names() {
        assert_eq!(
            text_features(&["i want to end it all"]).len(),
            TEXT_FEATURE_NAMES.len()
        );
    }

    #[test]
    fn length_stats() {
        let f = text_features(&["a b c", "a b c d e"]);
        assert!((f[0] - 4.0).abs() < 1e-6, "mean len");
        assert!((f[2] - 5.0).abs() < 1e-6, "last len");
        assert!((f[3] - 1.25).abs() < 1e-6, "change ratio");
    }

    #[test]
    fn first_person_and_negation() {
        let f = text_features(&["i never hurt my friends i am not like that"]);
        assert!(f[5] > 0.2, "first-person rate {}", f[5]);
        assert_eq!(f[6], 2.0, "negations (never, not)");
    }

    #[test]
    fn theme_hits_counted() {
        let f = text_features(&["nothing here", "i want to die tonight"]);
        assert!(f[7] >= 1.0);
        assert!(f[8] >= 1.0, "last post has a hit");
        let f2 = text_features(&["i want to die tonight", "nothing here"]);
        assert_eq!(f2[8], 0.0, "last post has no hit");
    }

    #[test]
    fn empty_input_is_finite_zeros() {
        let f = text_features(&[]);
        assert!(f.iter().all(|x| x.is_finite()));
        assert_eq!(f[0], 0.0);
    }

    #[test]
    fn type_token_ratio_bounds() {
        let f = text_features(&["a a a a"]);
        assert!((f[4] - 0.25).abs() < 1e-6);
        let f = text_features(&["a b c d"]);
        assert!((f[4] - 1.0).abs() < 1e-6);
    }
}
