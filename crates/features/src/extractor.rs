//! The fitted feature extractor: dense time/text/sequence features plus a
//! TF-IDF block over the labelled (latest) post.

use serde::{Deserialize, Serialize};

use crate::sequence::{sequence_features_into, SEQUENCE_FEATURE_NAMES};
use crate::text::{text_features_into, TEXT_FEATURE_NAMES};
use crate::time::{time_features_into, TIME_FEATURE_NAMES};
use rsd_common::{Result, RsdError, Timestamp};
use rsd_dataset::{Rsd15k, UserWindow};
use rsd_text::embeddings::WordEmbeddings;
use rsd_text::TfIdfVectorizer;

/// Which of the paper's three dimensions a feature belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureDimension {
    /// Temporal-pattern features.
    Time,
    /// Text statistics, linguistic features, TF-IDF.
    Text,
    /// Sliding-window / cumulative history features.
    Sequence,
}

/// A fitted extractor (TF-IDF vocabulary frozen on the training split).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureExtractor {
    tfidf: TfIdfVectorizer,
    names: Vec<String>,
    dims: Vec<FeatureDimension>,
    /// Optional dense word-embedding block (fastText-style document mean,
    /// per the paper's XGBoost reference [19]). Off by default.
    embeddings: Option<WordEmbeddings>,
}

impl FeatureExtractor {
    /// Fit on the training windows: the TF-IDF vocabulary is built from
    /// the *latest* post of each training window (the labelled unit),
    /// capped at `max_tfidf` terms.
    pub fn fit(
        dataset: &Rsd15k,
        train: &[UserWindow],
        max_tfidf: usize,
    ) -> Result<FeatureExtractor> {
        if train.is_empty() {
            return Err(RsdError::data("FeatureExtractor::fit: no windows"));
        }
        let docs: Vec<&str> = train.iter().map(|w| last_text(dataset, w)).collect();
        let tfidf = TfIdfVectorizer::fit(docs, 2, Some(max_tfidf))?;

        let mut names: Vec<String> = Vec::new();
        let mut dims: Vec<FeatureDimension> = Vec::new();
        for n in TIME_FEATURE_NAMES {
            names.push((*n).to_string());
            dims.push(FeatureDimension::Time);
        }
        for n in TEXT_FEATURE_NAMES {
            names.push((*n).to_string());
            dims.push(FeatureDimension::Text);
        }
        for n in SEQUENCE_FEATURE_NAMES {
            names.push((*n).to_string());
            dims.push(FeatureDimension::Sequence);
        }
        for term in tfidf.terms() {
            names.push(format!("text.tfidf[{term}]"));
            dims.push(FeatureDimension::Text);
        }
        Ok(FeatureExtractor {
            tfidf,
            names,
            dims,
            embeddings: None,
        })
    }

    /// Attach a trained skip-gram embedding table: `transform` gains one
    /// dense block of `emb.dim()` features (the mean vector of the
    /// labelled post). This reproduces the fastText + XGBoost feature
    /// design of the paper's reference [19].
    pub fn with_embeddings(mut self, emb: WordEmbeddings) -> Self {
        for i in 0..emb.dim() {
            self.names.push(format!("text.emb_{i}"));
            self.dims.push(FeatureDimension::Text);
        }
        self.embeddings = Some(emb);
        self
    }

    /// Total feature width.
    pub fn dim(&self) -> usize {
        self.names.len()
    }

    /// Feature names, index-aligned with vectors.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Dimension tag per feature.
    pub fn dimensions(&self) -> &[FeatureDimension] {
        &self.dims
    }

    /// Extract the dense feature vector for one window.
    pub fn transform(&self, dataset: &Rsd15k, window: &UserWindow) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.dim());
        self.transform_into(dataset, window, &mut out);
        out
    }

    /// [`transform`](FeatureExtractor::transform) into a caller-owned
    /// buffer (cleared first). Reusing one buffer across calls is what
    /// the micro-batched scoring path does to avoid per-request
    /// allocation.
    pub fn transform_into(&self, dataset: &Rsd15k, window: &UserWindow, out: &mut Vec<f32>) {
        let texts: Vec<&str> = window
            .post_indices
            .iter()
            .map(|&i| dataset.posts[i].text.as_str())
            .collect();
        let total_posts = dataset
            .users
            .iter()
            .find(|u| u.id == window.user)
            .map_or(window.post_indices.len(), |u| u.post_indices.len());
        self.transform_stream_into(&texts, &window.timestamps, total_posts, out);
    }

    /// The inference-only entry point: featurize a window given directly
    /// as `(texts, timestamps, total_posts)` — no dataset lookup, no
    /// `UserWindow` materialization. This is what the serving path calls
    /// with state reconstructed from its per-user window store;
    /// `total_posts` is the store's `total_seen` count. Bit-identical to
    /// [`transform`](FeatureExtractor::transform) for the same window.
    pub fn transform_stream_into(
        &self,
        texts: &[&str],
        timestamps: &[Timestamp],
        total_posts: usize,
        out: &mut Vec<f32>,
    ) {
        out.clear();
        time_features_into(timestamps, out);
        text_features_into(texts, out);
        sequence_features_into(texts, total_posts, out);

        let last = texts.last().copied().unwrap_or("");
        let sparse = self.tfidf.transform(last);
        let base = out.len();
        out.resize(base + self.tfidf.dim(), 0.0);
        for (&i, &v) in sparse.indices.iter().zip(&sparse.values) {
            out[base + i as usize] = v;
        }
        if let Some(emb) = &self.embeddings {
            out.extend(emb.embed_document(last));
        }
    }

    /// Batch transform.
    pub fn transform_all(&self, dataset: &Rsd15k, windows: &[UserWindow]) -> Vec<Vec<f32>> {
        windows.iter().map(|w| self.transform(dataset, w)).collect()
    }

    /// Aggregate a per-feature importance vector into per-dimension shares
    /// (sums to 1 when `importance` does).
    pub fn importance_by_dimension(&self, importance: &[f64]) -> [(FeatureDimension, f64); 3] {
        let mut time = 0.0;
        let mut text = 0.0;
        let mut seq = 0.0;
        for (imp, dim) in importance.iter().zip(&self.dims) {
            match dim {
                FeatureDimension::Time => time += imp,
                FeatureDimension::Text => text += imp,
                FeatureDimension::Sequence => seq += imp,
            }
        }
        [
            (FeatureDimension::Time, time),
            (FeatureDimension::Text, text),
            (FeatureDimension::Sequence, seq),
        ]
    }
}

fn last_text<'a>(dataset: &'a Rsd15k, window: &UserWindow) -> &'a str {
    let &last = window.post_indices.last().expect("windows are never empty");
    dataset.posts[last].text.as_str()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsd_dataset::{BuildConfig, DatasetBuilder, DatasetSplits, SplitConfig};

    fn fixture() -> (Rsd15k, DatasetSplits) {
        let (d, _) = DatasetBuilder::new(BuildConfig::scaled(501, 2_500, 40))
            .build()
            .unwrap();
        let s = DatasetSplits::new(&d, SplitConfig::default()).unwrap();
        (d, s)
    }

    #[test]
    fn fit_transform_shapes() {
        let (d, s) = fixture();
        let fx = FeatureExtractor::fit(&d, &s.train, 100).unwrap();
        assert_eq!(fx.dim(), fx.names().len());
        assert_eq!(fx.dim(), fx.dimensions().len());
        for w in &s.test {
            let v = fx.transform(&d, w);
            assert_eq!(v.len(), fx.dim());
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn tfidf_cap_respected() {
        let (d, s) = fixture();
        let fx = FeatureExtractor::fit(&d, &s.train, 50).unwrap();
        let dense_count =
            TIME_FEATURE_NAMES.len() + TEXT_FEATURE_NAMES.len() + SEQUENCE_FEATURE_NAMES.len();
        assert!(fx.dim() <= dense_count + 50);
        assert!(fx.dim() > dense_count, "some TF-IDF terms must survive");
    }

    #[test]
    fn dimension_tags_cover_all_three() {
        let (d, s) = fixture();
        let fx = FeatureExtractor::fit(&d, &s.train, 50).unwrap();
        for dim in [
            FeatureDimension::Time,
            FeatureDimension::Text,
            FeatureDimension::Sequence,
        ] {
            assert!(fx.dimensions().contains(&dim));
        }
    }

    #[test]
    fn importance_aggregation_sums() {
        let (d, s) = fixture();
        let fx = FeatureExtractor::fit(&d, &s.train, 50).unwrap();
        let importance = vec![1.0 / fx.dim() as f64; fx.dim()];
        let by_dim = fx.importance_by_dimension(&importance);
        let total: f64 = by_dim.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn embedding_block_extends_features() {
        use rsd_text::embeddings::{SkipGramConfig, WordEmbeddings};
        let (d, s) = fixture();
        let base = FeatureExtractor::fit(&d, &s.train, 20).unwrap();
        let base_dim = base.dim();
        let texts: Vec<String> = d.posts.iter().take(200).map(|p| p.text.clone()).collect();
        let emb = WordEmbeddings::train(
            &texts,
            &SkipGramConfig {
                dim: 8,
                epochs: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let fx = base.with_embeddings(emb);
        assert_eq!(fx.dim(), base_dim + 8);
        let v = fx.transform(&d, &s.test[0]);
        assert_eq!(v.len(), base_dim + 8);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!(fx.names().iter().any(|n| n == "text.emb_0"));
    }

    #[test]
    fn empty_train_rejected() {
        let (d, _) = fixture();
        assert!(FeatureExtractor::fit(&d, &[], 50).is_err());
    }

    #[test]
    fn night_feature_correlates_with_risk() {
        // The generator couples night posting to risk; the extractor must
        // surface that: mean night_ratio for Attempt windows > Indicator.
        let (d, s) = fixture();
        let fx = FeatureExtractor::fit(&d, &s.train, 10).unwrap();
        let night_idx = fx
            .names()
            .iter()
            .position(|n| n == "time.night_ratio")
            .unwrap();
        let mut high = Vec::new();
        let mut low = Vec::new();
        for w in s.train.iter().chain(&s.valid).chain(&s.test) {
            let v = fx.transform(&d, w)[night_idx] as f64;
            match w.label {
                rsd_corpus::RiskLevel::Attempt | rsd_corpus::RiskLevel::Behavior => high.push(v),
                rsd_corpus::RiskLevel::Indicator => low.push(v),
                _ => {}
            }
        }
        if !high.is_empty() && !low.is_empty() {
            let mh: f64 = high.iter().sum::<f64>() / high.len() as f64;
            let ml: f64 = low.iter().sum::<f64>() / low.len() as f64;
            assert!(mh > ml, "night ratio high {mh} vs low {ml}");
        }
    }
}
