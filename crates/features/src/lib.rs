#![warn(missing_docs)]

//! Multi-level feature engineering for the XGBoost baseline
//! (paper §III-A1).
//!
//! "It covers three dimensions: time, text, and sequence. In the time
//! dimension, we analyze the temporal patterns of user posts ...; in the
//! text dimension, we combine TF-IDF vectorization, text statistical
//! features, and linguistic features; in the sequence dimension, we
//! extract time series statistics, change trends, and historical
//! cumulative features based on the historical post sliding window."
//!
//! Every feature carries a name and a [`FeatureDimension`] tag so the
//! importance analysis can aggregate gain per dimension and reproduce the
//! paper's finding that temporal features dominate.

pub mod extractor;
pub mod sequence;
pub mod text;
pub mod time;

pub use extractor::{FeatureDimension, FeatureExtractor};
pub use sequence::{sequence_features, sequence_features_into, SEQUENCE_FEATURE_NAMES};
pub use text::{text_features, text_features_into, TEXT_FEATURE_NAMES};
pub use time::{time_features, time_features_into, TIME_FEATURE_NAMES};
