//! Per-user behaviour model: risk trajectories and temporal patterns.
//!
//! Each synthetic user draws an **archetype** — a stationary risk profile —
//! and their posts' latent risk levels follow a sticky Markov chain whose
//! stationary distribution *is* that profile (transition matrix
//! `T = α·I + (1-α)·𝟙πᵀ`), so the corpus-level class marginals are exactly
//! the archetype mixture while individual timelines show the persistent
//! runs and transitions ("dynamic evolution of suicide risk") the paper's
//! user-level task is designed around.
//!
//! Temporal behaviour is *coupled to risk*, reproducing the couplings the
//! paper reports as its most predictive features (§III-A1: "the change
//! pattern of posting time intervals and the proportion of nighttime
//! posts"): higher-risk states post more at night, at shorter and more
//! erratic intervals, and write longer posts.

use rand::Rng;

use crate::risk::RiskLevel;
use rsd_common::rng::weighted_index;

/// A user archetype: a stationary distribution over risk levels plus
/// behavioural tendencies. The four archetypes and their mixture weights
/// are calibrated so the corpus marginals land on Table I
/// (IN 31.6 %, ID 48.8 %, BR 14.1 %, AT 5.5 %).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Archetype {
    /// Mostly-Indicator users: concerned relatives, support seekers,
    /// people venting without suicidal intent.
    Concerned,
    /// Ideation-dominant users — the bulk of `r/SuicideWatch`.
    Struggling,
    /// Users oscillating between ideation and preparatory behaviour.
    Escalating,
    /// High-acuity users with behaviour/attempt histories.
    Crisis,
}

impl Archetype {
    /// All archetypes.
    pub const ALL: [Archetype; 4] = [
        Archetype::Concerned,
        Archetype::Struggling,
        Archetype::Escalating,
        Archetype::Crisis,
    ];

    /// Mixture weights over archetypes (sums to 1).
    pub const MIX: [f64; 4] = [0.28, 0.52, 0.13, 0.07];

    /// Stationary distribution over `[IN, ID, BR, AT]`.
    pub fn profile(self) -> [f64; 4] {
        match self {
            Archetype::Concerned => [0.85, 0.12, 0.02, 0.01],
            Archetype::Struggling => [0.15, 0.70, 0.12, 0.03],
            Archetype::Escalating => [0.05, 0.45, 0.40, 0.10],
            Archetype::Crisis => [0.05, 0.30, 0.35, 0.30],
        }
    }

    /// Draw an archetype according to [`Archetype::MIX`].
    pub fn sample(rng: &mut impl Rng) -> Archetype {
        Archetype::ALL[weighted_index(rng, &Archetype::MIX)]
    }
}

/// Stickiness of the per-user risk chain: with probability `PERSISTENCE`
/// the next post keeps the previous level; otherwise it redraws from the
/// archetype profile. Stationarity is unaffected by this value.
pub const PERSISTENCE: f64 = 0.55;

/// Expected corpus-level marginal distribution `[IN, ID, BR, AT]` implied
/// by the archetype mixture — the generator's calibration target
/// (cf. Table I: 31.58 / 48.81 / 14.07 / 5.54 %).
pub fn expected_marginals() -> [f64; 4] {
    let mut out = [0.0; 4];
    for (arch, w) in Archetype::ALL.iter().zip(Archetype::MIX) {
        for (o, p) in out.iter_mut().zip(arch.profile()) {
            *o += w * p;
        }
    }
    out
}

/// Per-risk-level behavioural couplings.
#[derive(Debug, Clone, Copy)]
pub struct RiskCoupling {
    /// Probability a post at this level lands in the 22:00–06:00 window.
    pub night_prob: f64,
    /// Mean gap to the next post, in days.
    pub mean_gap_days: f64,
    /// Mean number of content sentences in a post at this level.
    pub mean_sentences: f64,
}

/// Behavioural couplings per level, indexed by [`RiskLevel::index`].
pub fn coupling(level: RiskLevel) -> RiskCoupling {
    match level {
        RiskLevel::Indicator => RiskCoupling {
            night_prob: 0.22,
            mean_gap_days: 18.0,
            mean_sentences: 3.0,
        },
        RiskLevel::Ideation => RiskCoupling {
            night_prob: 0.33,
            mean_gap_days: 10.0,
            mean_sentences: 3.2,
        },
        RiskLevel::Behavior => RiskCoupling {
            night_prob: 0.42,
            mean_gap_days: 6.0,
            mean_sentences: 4.0,
        },
        RiskLevel::Attempt => RiskCoupling {
            night_prob: 0.50,
            mean_gap_days: 5.0,
            mean_sentences: 4.6,
        },
    }
}

/// The mutable trajectory state of one user while generating their posts.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// The user's archetype.
    pub archetype: Archetype,
    /// Current latent level (level of the most recently generated post).
    pub current: RiskLevel,
    /// Per-user additive night-owl offset in `[-0.1, 0.1]`.
    pub night_owl: f64,
    /// Per-user multiplicative activity factor in `[0.5, 2.0]` — scales
    /// inter-post gaps down for more active users.
    pub activity: f64,
}

impl Trajectory {
    /// Initialize a trajectory: draws the archetype, an initial level from
    /// its profile, and the user's personal tendencies.
    pub fn new(rng: &mut impl Rng) -> Trajectory {
        let archetype = Archetype::sample(rng);
        let current = RiskLevel::ALL[weighted_index(rng, &archetype.profile())];
        Trajectory {
            archetype,
            current,
            night_owl: rng.gen_range(-0.1..0.1),
            activity: rng.gen_range(0.5..2.0),
        }
    }

    /// Advance the chain one step and return the new level.
    pub fn step(&mut self, rng: &mut impl Rng) -> RiskLevel {
        if rng.gen::<f64>() >= PERSISTENCE {
            self.current = RiskLevel::ALL[weighted_index(rng, &self.archetype.profile())];
        }
        self.current
    }

    /// Night-posting probability for the current level, adjusted for this
    /// user's tendency and clamped to `[0.05, 0.9]`.
    pub fn night_prob(&self) -> f64 {
        (coupling(self.current).night_prob + self.night_owl).clamp(0.05, 0.9)
    }

    /// Mean gap (days) to the next post given current level and activity.
    pub fn mean_gap_days(&self) -> f64 {
        coupling(self.current).mean_gap_days / self.activity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mixture_weights_sum_to_one() {
        let sum: f64 = Archetype::MIX.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn profiles_are_distributions() {
        for arch in Archetype::ALL {
            let p = arch.profile();
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12, "{arch:?}");
            assert!(p.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn expected_marginals_match_table1() {
        // Table I: IN 31.58 %, ID 48.81 %, BR 14.07 %, AT 5.54 %.
        let m = expected_marginals();
        let table1 = [0.3158, 0.4881, 0.1407, 0.0554];
        for (got, want) in m.iter().zip(table1) {
            assert!(
                (got - want).abs() < 0.03,
                "marginal calibration off: got {m:?}, want {table1:?}"
            );
        }
    }

    #[test]
    fn chain_stationary_distribution_matches_profile() {
        // Long-run frequencies of a single sticky chain converge to the
        // archetype profile (T = αI + (1-α)𝟙πᵀ keeps π stationary).
        let mut rng = StdRng::seed_from_u64(11);
        let mut traj = Trajectory::new(&mut rng);
        traj.archetype = Archetype::Struggling;
        let mut counts = [0usize; 4];
        let n = 60_000;
        for _ in 0..n {
            counts[traj.step(&mut rng).index()] += 1;
        }
        let profile = Archetype::Struggling.profile();
        for (c, p) in counts.iter().zip(profile) {
            let freq = *c as f64 / n as f64;
            assert!((freq - p).abs() < 0.02, "freq {freq} vs profile {p}");
        }
    }

    #[test]
    fn persistence_creates_runs() {
        // Consecutive repeats should exceed the iid rate.
        let mut rng = StdRng::seed_from_u64(12);
        let mut traj = Trajectory::new(&mut rng);
        traj.archetype = Archetype::Struggling;
        let levels: Vec<RiskLevel> = (0..20_000).map(|_| traj.step(&mut rng)).collect();
        let repeats = levels.windows(2).filter(|w| w[0] == w[1]).count();
        let rate = repeats as f64 / (levels.len() - 1) as f64;
        // iid repeat rate for Struggling ≈ Σ p² = 0.0225+0.49+0.0144+0.0009 ≈ 0.53;
        // with persistence 0.55 the sticky rate is ≈ 0.55 + 0.45·0.53 ≈ 0.79.
        assert!(rate > 0.7, "repeat rate {rate} too low for sticky chain");
    }

    #[test]
    fn couplings_monotone_in_severity() {
        let mut last_night = 0.0;
        let mut last_gap = f64::INFINITY;
        for level in RiskLevel::ALL {
            let c = coupling(level);
            assert!(c.night_prob > last_night, "night_prob must escalate");
            assert!(c.mean_gap_days < last_gap, "gaps must shrink with risk");
            last_night = c.night_prob;
            last_gap = c.mean_gap_days;
        }
    }

    #[test]
    fn night_prob_clamped() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            let traj = Trajectory::new(&mut rng);
            let p = traj.night_prob();
            assert!((0.05..=0.9).contains(&p));
        }
    }
}
