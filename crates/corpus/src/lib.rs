#![warn(missing_docs)]

//! Synthetic Reddit substrate and generative corpus model for RSD-15K.
//!
//! The real RSD-15K is built from a gated crawl of `r/SuicideWatch`
//! (139,455 posts / 76,186 users, 01/2020–12/2021), of which 1,265 users'
//! 14,613 posts were selected for annotation. This crate substitutes that
//! gated resource with a fully deterministic generative model that
//! reproduces the corpus's *published statistical structure*:
//!
//! * the four-level risk taxonomy (Indicator / Ideation / Behavior /
//!   Attempt) with Table I's marginal distribution;
//! * heavy-tailed posts-per-user counts (Fig. 1: most users < 20 posts);
//! * per-user **risk trajectories** — a Markov chain over risk levels so a
//!   user's posting history exhibits the dynamic evolution the paper's
//!   user-level task is designed to capture;
//! * risk-coupled temporal behaviour (night-posting ratio, inter-post
//!   intervals, burstiness) exploited by the paper's temporal features;
//! * class-conditional language with realistic confusions — Indicator
//!   posts reuse high-risk vocabulary inside negated or third-person
//!   frames, so surface bag-of-words models genuinely struggle while
//!   order- and context-aware models do better (the paper's Table III
//!   performance ladder).
//!
//! Layered on top is a faithful miniature of the collection pathway:
//! [`reddit`] models a subreddit store with the official API's paginated
//! listing semantics and a rate-limited [`reddit::CrawlClient`], and
//! [`selection`] reimplements the paper's "select 1,265 active users for
//! annotation" step. Downstream crates never see generator internals —
//! only crawled [`RawPost`]s, exactly as the authors' pipeline saw Reddit.

pub mod behavior;
pub mod generator;
pub mod lexicon;
pub mod reddit;
pub mod risk;
pub mod selection;
pub mod source;
pub mod textgen;
pub mod types;

pub use generator::{CorpusConfig, CorpusGenerator, RawCorpus, ShardCorpus};
pub use risk::RiskLevel;
pub use selection::{select_users_for_annotation, SelectionConfig};
pub use source::{CorpusShardSource, CrawledShard};
pub use types::{PostId, RawPost, RawUser, UserId};
