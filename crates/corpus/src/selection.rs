//! Annotation-pool selection — the paper's "1,265 users / 14,613 posts"
//! step.
//!
//! From the raw pool the authors selected a subset of users whose complete
//! timelines were manually annotated. Because timelines must stay intact
//! (the dataset's key asset is complete posting sequences), selection is at
//! user granularity and the post total is an emergent sum. The greedy
//! balance below picks users so the running mean posts-per-user tracks the
//! target mean (14,613 / 1,265 ≈ 11.55), favouring active users exactly the
//! way a user-level temporal dataset requires, while still admitting
//! lighter users for coverage.

use crate::types::{RawUser, UserId};
use rsd_common::rng::{shuffle, stream_rng};
use rsd_common::{Result, RsdError};

/// Selection parameters.
#[derive(Debug, Clone)]
pub struct SelectionConfig {
    /// Seed for tie-breaking shuffles.
    pub seed: u64,
    /// How many users to select (paper: 1,265).
    pub target_users: usize,
    /// Desired total posts across selected users (paper: 14,613).
    pub target_posts: usize,
    /// Users with fewer posts than this are never selected (a user-level
    /// temporal dataset needs at least a minimal history).
    pub min_posts: usize,
}

impl SelectionConfig {
    /// Paper-scale target.
    pub fn paper(seed: u64) -> Self {
        SelectionConfig {
            seed,
            target_users: 1_265,
            target_posts: 14_613,
            min_posts: 2,
        }
    }

    /// Scaled-down target preserving the ≈11.55 posts/user mean.
    pub fn scaled(seed: u64, target_users: usize) -> Self {
        SelectionConfig {
            seed,
            target_users,
            target_posts: (target_users as f64 * 11.55).round() as usize,
            min_posts: 2,
        }
    }
}

/// Select users for annotation from the (cleaned) pool.
///
/// `users` should carry post counts *after* preprocessing. Returns the
/// selected user ids. Errors if the pool cannot satisfy the request.
pub fn select_users_for_annotation(
    users: &[RawUser],
    cfg: &SelectionConfig,
) -> Result<Vec<UserId>> {
    if cfg.target_users == 0 {
        return Err(RsdError::config("target_users", "must be positive"));
    }
    let mut eligible: Vec<&RawUser> = users
        .iter()
        .filter(|u| u.post_count() >= cfg.min_posts)
        .collect();
    if eligible.len() < cfg.target_users {
        return Err(RsdError::data(format!(
            "only {} users have ≥{} posts; need {}",
            eligible.len(),
            cfg.min_posts,
            cfg.target_users
        )));
    }

    // Deterministic shuffle then a stable sort by activity: users of equal
    // count stay in seeded-random order, so ties don't bias toward low ids.
    let mut rng = stream_rng(cfg.seed, "selection.shuffle");
    shuffle(&mut rng, &mut eligible);
    eligible.sort_by_key(|u| std::cmp::Reverse(u.post_count()));

    // Two pointers: heaviest-first and lightest-first. At each step take
    // from whichever end keeps the running mean closest to the target mean.
    let target_mean = cfg.target_posts as f64 / cfg.target_users as f64;
    let mut lo = 0usize; // heavy end
    let mut hi = eligible.len() - 1; // light end
    let mut picked: Vec<UserId> = Vec::with_capacity(cfg.target_users);
    let mut total_posts = 0usize;

    while picked.len() < cfg.target_users {
        let remaining = cfg.target_users - picked.len();
        let deficit = cfg.target_posts as f64 - total_posts as f64;
        let needed_mean = deficit / remaining as f64;
        // Take a heavy user while we're behind the target mean, else light.
        let take_heavy = needed_mean >= target_mean && lo <= hi;
        let user = if take_heavy {
            let user = eligible[lo];
            lo += 1;
            user
        } else {
            let user = eligible[hi];
            hi = hi.saturating_sub(1);
            user
        };
        total_posts += user.post_count();
        picked.push(user.id);
        if lo > hi && picked.len() < cfg.target_users {
            return Err(RsdError::data(
                "selection exhausted the eligible pool".to_string(),
            ));
        }
    }
    Ok(picked)
}

/// Total posts contributed by a selection.
pub fn selected_post_total(users: &[RawUser], picked: &[UserId]) -> usize {
    let mut total = 0;
    for id in picked {
        if let Some(u) = users.iter().find(|u| u.id == *id) {
            total += u.post_count();
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, CorpusGenerator};

    fn users_with_counts(counts: &[usize]) -> Vec<RawUser> {
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| RawUser {
                id: UserId(i as u32),
                post_ids: (0..c as u32).map(crate::types::PostId).collect(),
            })
            .collect()
    }

    #[test]
    fn rejects_insufficient_pool() {
        let users = users_with_counts(&[1, 1, 5, 5]);
        let cfg = SelectionConfig {
            seed: 1,
            target_users: 3,
            target_posts: 30,
            min_posts: 2,
        };
        assert!(select_users_for_annotation(&users, &cfg).is_err());
    }

    #[test]
    fn respects_min_posts() {
        let users = users_with_counts(&[1, 3, 4, 5, 6, 1]);
        let cfg = SelectionConfig {
            seed: 1,
            target_users: 4,
            target_posts: 18,
            min_posts: 2,
        };
        let picked = select_users_for_annotation(&users, &cfg).unwrap();
        assert_eq!(picked.len(), 4);
        assert!(!picked.contains(&UserId(0)));
        assert!(!picked.contains(&UserId(5)));
    }

    #[test]
    fn hits_target_totals_on_generated_pool() {
        let corpus = CorpusGenerator::new(CorpusConfig::small(9, 8_000))
            .unwrap()
            .generate();
        let cfg = SelectionConfig::scaled(9, 120);
        let picked = select_users_for_annotation(&corpus.users, &cfg).unwrap();
        assert_eq!(picked.len(), 120);
        let total = selected_post_total(&corpus.users, &picked);
        let target = cfg.target_posts as f64;
        assert!(
            (total as f64 - target).abs() / target < 0.10,
            "post total {total} should land within 10% of {target}"
        );
    }

    #[test]
    fn no_duplicate_users() {
        let corpus = CorpusGenerator::new(CorpusConfig::small(10, 5_000))
            .unwrap()
            .generate();
        let cfg = SelectionConfig::scaled(10, 80);
        let picked = select_users_for_annotation(&corpus.users, &cfg).unwrap();
        let mut sorted = picked.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), picked.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = CorpusGenerator::new(CorpusConfig::small(11, 5_000))
            .unwrap()
            .generate();
        let cfg = SelectionConfig::scaled(11, 60);
        let a = select_users_for_annotation(&corpus.users, &cfg).unwrap();
        let b = select_users_for_annotation(&corpus.users, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn selected_users_more_active_than_pool() {
        let corpus = CorpusGenerator::new(CorpusConfig::small(12, 8_000))
            .unwrap()
            .generate();
        let cfg = SelectionConfig::scaled(12, 100);
        let picked = select_users_for_annotation(&corpus.users, &cfg).unwrap();
        let pool_mean = corpus.posts.len() as f64 / corpus.users.len() as f64;
        let sel_mean = selected_post_total(&corpus.users, &picked) as f64 / picked.len() as f64;
        assert!(
            sel_mean > pool_mean * 2.0,
            "selection must favour active users (pool {pool_mean:.2}, selected {sel_mean:.2})"
        );
    }
}
