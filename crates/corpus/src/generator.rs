//! The corpus generator: produces the raw `r/SuicideWatch`-like pool.
//!
//! The generator emits the *unannotated raw collection* the paper starts
//! from (139,455 posts / 76,186 users at paper scale), including the
//! blemishes preprocessing must handle: off-topic posts and reposts. Each
//! user is generated independently from a seeded substream, so the corpus
//! is reproducible and users can be regenerated in isolation.

use rand::rngs::StdRng;
use rand::Rng;

use crate::behavior::{coupling, Trajectory};
use crate::lexicon::OFF_TOPIC_SENTENCES;
use crate::reddit::RedditStore;
use crate::risk::RiskLevel;
use crate::textgen::{render_post, TextGenConfig};
use crate::types::{PostId, RawPost, RawUser, UserId};
use rsd_common::rng::{exponential, stream_rng, truncated_log_normal};
use rsd_common::{Result, RsdError, Timestamp};

/// Configuration for corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Master seed; every stochastic decision derives from it.
    pub seed: u64,
    /// Number of users to generate.
    pub n_users: usize,
    /// Inclusive start of the collection window.
    pub window_start: Timestamp,
    /// Exclusive end of the collection window.
    pub window_end: Timestamp,
    /// Posts-per-user log-normal location parameter.
    pub posts_mu: f64,
    /// Posts-per-user log-normal scale parameter.
    pub posts_sigma: f64,
    /// Hard cap on posts per user.
    pub max_posts_per_user: usize,
    /// Fraction of posts that are off-topic noise.
    pub off_topic_rate: f64,
    /// Fraction of posts that are reposts of an earlier post by the same
    /// user (dedup work for preprocessing).
    pub repost_rate: f64,
    /// Text rendering controls.
    pub textgen: TextGenConfig,
}

impl CorpusConfig {
    /// Paper-scale configuration: ≈76,186 users over 01/2020–12/2021,
    /// yielding ≈139k posts (the raw pool of [3] the paper draws from).
    pub fn paper(seed: u64) -> Self {
        CorpusConfig {
            seed,
            n_users: 76_186,
            window_start: Timestamp::from_ymd(2020, 1, 1).expect("valid date"),
            window_end: Timestamp::from_ymd(2022, 1, 1).expect("valid date"),
            posts_mu: 0.0,
            posts_sigma: 1.05,
            max_posts_per_user: 120,
            off_topic_rate: 0.06,
            repost_rate: 0.02,
            textgen: TextGenConfig::default(),
        }
    }

    /// A scaled-down configuration for tests and debug builds: same window
    /// and distributional shape, ~`n_users` users.
    pub fn small(seed: u64, n_users: usize) -> Self {
        CorpusConfig {
            n_users,
            ..Self::paper(seed)
        }
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if self.n_users == 0 {
            return Err(RsdError::config("n_users", "must be positive"));
        }
        if self.window_end <= self.window_start {
            return Err(RsdError::config("window_end", "must be after window_start"));
        }
        if !(0.0..1.0).contains(&self.off_topic_rate) {
            return Err(RsdError::config("off_topic_rate", "must be in [0, 1)"));
        }
        if !(0.0..1.0).contains(&self.repost_rate) {
            return Err(RsdError::config("repost_rate", "must be in [0, 1)"));
        }
        if self.max_posts_per_user == 0 {
            return Err(RsdError::config("max_posts_per_user", "must be positive"));
        }
        Ok(())
    }
}

/// The generated raw pool: users plus their posts, in crawl order.
#[derive(Debug, Clone)]
pub struct RawCorpus {
    /// All users with their chronological post ids.
    pub users: Vec<RawUser>,
    /// All posts; `posts[i].id == PostId(i)`.
    pub posts: Vec<RawPost>,
}

impl RawCorpus {
    /// Look up a post by id.
    pub fn post(&self, id: PostId) -> Result<&RawPost> {
        self.posts
            .get(id.0 as usize)
            .ok_or_else(|| RsdError::not_found("post", id))
    }

    /// Look up a user by id.
    pub fn user(&self, id: UserId) -> Result<&RawUser> {
        self.users
            .get(id.0 as usize)
            .ok_or_else(|| RsdError::not_found("user", id))
    }

    /// Total number of posts.
    pub fn post_count(&self) -> usize {
        self.posts.len()
    }

    /// Class marginals over on-topic, non-duplicate posts: fraction of
    /// posts at each risk level, indexed by [`RiskLevel::index`].
    pub fn risk_marginals(&self) -> [f64; 4] {
        let mut counts = [0usize; 4];
        let mut total = 0usize;
        for p in &self.posts {
            if p.off_topic || p.duplicate_of.is_some() {
                continue;
            }
            counts[p.latent_risk.index()] += 1;
            total += 1;
        }
        let mut out = [0.0; 4];
        if total > 0 {
            for (o, c) in out.iter_mut().zip(counts) {
                *o = c as f64 / total as f64;
            }
        }
        out
    }

    /// Publish the whole corpus into a [`RedditStore`] under
    /// `r/SuicideWatch`, ready for a [`crate::reddit::CrawlClient`].
    pub fn into_store(self) -> RedditStore {
        let mut store = RedditStore::new();
        store.publish("SuicideWatch", self.posts);
        store
    }
}

/// One generated user shard: a contiguous range of users with their
/// posts. Authors carry **global** user ids; post ids are **shard-local**
/// (`posts[i].id == PostId(i)`), with `duplicate_of` references remapped
/// into the same local space (reposts only ever cite the same user's
/// earlier posts, so they never cross a shard boundary).
#[derive(Debug, Clone)]
pub struct ShardCorpus {
    /// The shard's users with their chronological (shard-local) post ids.
    pub users: Vec<RawUser>,
    /// The shard's posts in user order.
    pub posts: Vec<RawPost>,
}

/// The generator itself. Stateless apart from configuration; call
/// [`CorpusGenerator::generate`].
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    cfg: CorpusConfig,
}

impl CorpusGenerator {
    /// Create a generator, validating the configuration.
    pub fn new(cfg: CorpusConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(CorpusGenerator { cfg })
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &CorpusConfig {
        &self.cfg
    }

    /// Generate the full raw corpus deterministically.
    ///
    /// Users are drafted in parallel — each from its own seeded substream,
    /// with post ids local to the user — then stitched serially in user
    /// order, remapping local ids onto the global sequence. The stitched
    /// corpus is byte-identical to fully serial generation for any thread
    /// count.
    pub fn generate(&self) -> RawCorpus {
        let _span = rsd_obs::Span::enter("corpus.generate");
        let started = rsd_obs::enabled().then(std::time::Instant::now);
        let shard = self.generate_shard(0..self.cfg.n_users as u32);
        let ShardCorpus { users, posts } = shard;

        rsd_obs::counter_add("corpus.users", users.len() as u64);
        rsd_obs::counter_add("corpus.posts", posts.len() as u64);
        if let Some(started) = started {
            let secs = started.elapsed().as_secs_f64().max(1e-9);
            rsd_obs::gauge("corpus.users_per_sec", users.len() as f64 / secs);
            rsd_obs::gauge("corpus.posts_per_sec", posts.len() as f64 / secs);
        }
        RawCorpus { users, posts }
    }

    /// Generate one contiguous user range of the corpus.
    ///
    /// User substreams are seeded by **global** user index, so
    /// `generate_shard(a..b)` drafts exactly the posts those users get in
    /// a full [`CorpusGenerator::generate`] run; only post ids differ —
    /// they are dense within the shard (`PostId(0..)`), and a streaming
    /// merge restores global ids by offsetting with the raw-post counts of
    /// the preceding shards. `generate()` itself is the single-shard case
    /// `generate_shard(0..n_users)`.
    pub fn generate_shard(&self, user_range: std::ops::Range<u32>) -> ShardCorpus {
        let uids: Vec<u32> = user_range.collect();
        let mut users = Vec::with_capacity(uids.len());
        let mut posts: Vec<RawPost> = Vec::new();

        let mut drafts: Vec<Option<Vec<RawPost>>> = uids.iter().map(|_| None).collect();
        rsd_par::parallel_chunks_mut(&mut drafts, 32, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = Some(self.generate_user(uids[start + off] as usize));
            }
        });

        for (&uid, draft) in uids.iter().zip(drafts) {
            let local = draft.expect("user drafted");
            let offset = posts.len() as u32;
            let mut post_ids = Vec::with_capacity(local.len());
            for mut post in local {
                post.id = PostId(offset + post.id.0);
                if let Some(orig) = post.duplicate_of {
                    post.duplicate_of = Some(PostId(offset + orig.0));
                }
                post_ids.push(post.id);
                posts.push(post);
            }
            users.push(RawUser {
                id: UserId(uid),
                post_ids,
            });
        }
        ShardCorpus { users, posts }
    }

    /// Draft one user's posts with ids local to the user (`PostId(0..n)`).
    /// The RNG substream and draw order are exactly those of the original
    /// serial loop; only the id space differs, and reposts can only
    /// reference the user's own earlier posts, so local ids suffice.
    fn generate_user(&self, uidx: usize) -> Vec<RawPost> {
        let cfg = &self.cfg;
        let mut rng = stream_rng(cfg.seed, &format!("corpus.user.{uidx}"));
        let user_id = UserId(uidx as u32);
        let n_posts = truncated_log_normal(
            &mut rng,
            cfg.posts_mu,
            cfg.posts_sigma,
            1.0,
            cfg.max_posts_per_user as f64,
        )
        .round()
        .max(1.0) as usize;

        let mut traj = Trajectory::new(&mut rng);
        let t0 = self.sample_start_time(&mut rng, n_posts, &traj);

        // Pass 1: levels and a strictly increasing timeline with
        // circadian time-of-day structure.
        let mut levels = Vec::with_capacity(n_posts);
        let mut times = Vec::with_capacity(n_posts);
        let mut t = t0;
        for pidx in 0..n_posts {
            let level = if pidx == 0 {
                traj.current
            } else {
                traj.step(&mut rng)
            };
            let created = self.apply_circadian(&mut rng, t, traj.night_prob()).0;
            let created = match times.last() {
                Some(&prev) if created <= prev => prev + rng.gen_range(60..3_600),
                _ => created,
            };
            levels.push(level);
            times.push(created);
            let gap_secs = exponential(&mut rng, traj.mean_gap_days() * Timestamp::DAY as f64);
            t = Timestamp(created + gap_secs.max(60.0) as i64);
        }

        // Pass 2: if the timeline overflowed the collection window,
        // rescale offsets linearly (order-preserving) to fit.
        let last = *times.last().expect("n_posts >= 1");
        let window_last = cfg.window_end.0 - 1;
        if last > window_last && last > t0.0 {
            let scale = (window_last - t0.0) as f64 / (last - t0.0) as f64;
            for time in &mut times {
                *time = t0.0 + ((*time - t0.0) as f64 * scale) as i64;
            }
        }

        // Pass 3: render the posts (local id space).
        let mut local_posts: Vec<RawPost> = Vec::with_capacity(n_posts);
        let mut post_ids = Vec::with_capacity(n_posts);
        for (level, time) in levels.into_iter().zip(times) {
            let id = PostId(local_posts.len() as u32);
            let post = self.render_one(
                &mut rng,
                id,
                user_id,
                Timestamp(time),
                level,
                &local_posts,
                &post_ids,
            );
            post_ids.push(id);
            local_posts.push(post);
        }
        local_posts
    }

    /// Pick the user's first-post time so that the expected span of their
    /// posting history fits inside the window.
    fn sample_start_time(&self, rng: &mut StdRng, n_posts: usize, traj: &Trajectory) -> Timestamp {
        let cfg = &self.cfg;
        let window = (cfg.window_end.0 - cfg.window_start.0) as f64;
        let expected_span = (n_posts as f64 - 1.0) * traj.mean_gap_days() * Timestamp::DAY as f64;
        let slack = (window - expected_span).max(window * 0.05);
        let offset = rng.gen::<f64>() * slack;
        Timestamp(cfg.window_start.0 + offset as i64)
    }

    /// Re-draw the time-of-day component according to the user's current
    /// night-posting probability, keeping the calendar date.
    fn apply_circadian(&self, rng: &mut StdRng, t: Timestamp, night_prob: f64) -> Timestamp {
        let midnight = t.0.div_euclid(Timestamp::DAY) * Timestamp::DAY;
        let is_night = rng.gen::<f64>() < night_prob;
        let secs = if is_night {
            // 22:00–06:00 window: 8 hours spanning midnight.
            let offset = rng.gen_range(0..8 * 3_600);
            (22 * 3_600 + offset) % Timestamp::DAY
        } else {
            // Daytime: 06:00–22:00.
            rng.gen_range(6 * 3_600..22 * 3_600)
        };
        Timestamp(midnight + secs)
    }

    /// Render a single post, possibly replacing it with off-topic noise or
    /// a repost of one of the user's earlier posts.
    #[allow(clippy::too_many_arguments)]
    fn render_one(
        &self,
        rng: &mut StdRng,
        id: PostId,
        author: UserId,
        created: Timestamp,
        level: RiskLevel,
        posts: &[RawPost],
        own_earlier: &[PostId],
    ) -> RawPost {
        let cfg = &self.cfg;
        let roll: f64 = rng.gen();
        if roll < cfg.repost_rate && !own_earlier.is_empty() {
            let orig_id = own_earlier[rng.gen_range(0..own_earlier.len())];
            let orig = &posts[orig_id.0 as usize];
            return RawPost {
                id,
                author,
                created,
                body: orig.body.clone(),
                latent_risk: orig.latent_risk,
                off_topic: orig.off_topic,
                duplicate_of: Some(orig_id),
            };
        }
        if roll < cfg.repost_rate + cfg.off_topic_rate {
            let n = rng.gen_range(1..=3);
            let mut body = (0..n)
                .map(|_| OFF_TOPIC_SENTENCES[rng.gen_range(0..OFF_TOPIC_SENTENCES.len())])
                .collect::<Vec<_>>()
                .join(". ");
            body.push('.');
            return RawPost {
                id,
                author,
                created,
                body,
                latent_risk: RiskLevel::Indicator,
                off_topic: true,
                duplicate_of: None,
            };
        }
        let body = render_post(level, coupling(level).mean_sentences, &cfg.textgen, rng);
        RawPost {
            id,
            author,
            created,
            body,
            latent_risk: level,
            off_topic: false,
            duplicate_of: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::expected_marginals;

    fn small_corpus(seed: u64, users: usize) -> RawCorpus {
        CorpusGenerator::new(CorpusConfig::small(seed, users))
            .unwrap()
            .generate()
    }

    #[test]
    fn validation_catches_bad_config() {
        let mut cfg = CorpusConfig::small(1, 10);
        cfg.n_users = 0;
        assert!(CorpusGenerator::new(cfg).is_err());

        let mut cfg = CorpusConfig::small(1, 10);
        cfg.window_end = cfg.window_start;
        assert!(CorpusGenerator::new(cfg).is_err());

        let mut cfg = CorpusConfig::small(1, 10);
        cfg.off_topic_rate = 1.5;
        assert!(CorpusGenerator::new(cfg).is_err());
    }

    #[test]
    fn deterministic_for_seed() {
        let a = small_corpus(42, 50);
        let b = small_corpus(42, 50);
        assert_eq!(a.posts, b.posts);
        let c = small_corpus(43, 50);
        assert_ne!(a.posts, c.posts);
    }

    #[test]
    fn ids_are_dense_and_consistent() {
        let corpus = small_corpus(1, 100);
        for (i, post) in corpus.posts.iter().enumerate() {
            assert_eq!(post.id.0 as usize, i);
        }
        for user in &corpus.users {
            for pid in &user.post_ids {
                assert_eq!(corpus.post(*pid).unwrap().author, user.id);
            }
        }
    }

    #[test]
    fn timestamps_inside_window_and_sorted_per_user() {
        let corpus = small_corpus(2, 200);
        let cfg = CorpusConfig::small(2, 200);
        for user in &corpus.users {
            let mut prev = Timestamp(i64::MIN);
            for pid in &user.post_ids {
                let p = corpus.post(*pid).unwrap();
                assert!(p.created >= cfg.window_start && p.created < cfg.window_end);
                assert!(p.created >= prev, "per-user posts must be chronological");
                prev = p.created;
            }
        }
    }

    #[test]
    fn posts_per_user_is_heavy_tailed() {
        let corpus = small_corpus(3, 3_000);
        let counts: Vec<usize> = corpus.users.iter().map(RawUser::post_count).collect();
        let under_20 = counts.iter().filter(|&&c| c < 20).count() as f64 / counts.len() as f64;
        assert!(under_20 > 0.9, "Fig 1: vast majority under 20 posts");
        let max = counts.iter().max().copied().unwrap();
        assert!(max >= 20, "but an active tail exists (max {max})");
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(
            (1.4..2.6).contains(&mean),
            "raw pool mean posts/user ≈1.8 (got {mean})"
        );
    }

    #[test]
    fn class_marginals_near_calibration_target() {
        let corpus = small_corpus(4, 4_000);
        let m = corpus.risk_marginals();
        let want = expected_marginals();
        for (i, (got, want)) in m.iter().zip(want).enumerate() {
            assert!(
                (got - want).abs() < 0.03,
                "class {i}: got {got:.3}, want {want:.3}"
            );
        }
    }

    #[test]
    fn off_topic_and_reposts_at_configured_rates() {
        let corpus = small_corpus(5, 3_000);
        let total = corpus.posts.len() as f64;
        let off = corpus.posts.iter().filter(|p| p.off_topic).count() as f64 / total;
        let dup = corpus
            .posts
            .iter()
            .filter(|p| p.duplicate_of.is_some())
            .count() as f64
            / total;
        assert!((off - 0.06).abs() < 0.02, "off-topic rate {off}");
        // Reposts require an earlier post by the same user, so the realized
        // rate sits below the nominal 2 %.
        assert!(dup > 0.001 && dup < 0.04, "repost rate {dup}");
    }

    #[test]
    fn reposts_duplicate_body_of_original() {
        let corpus = small_corpus(6, 2_000);
        for p in corpus.posts.iter().filter(|p| p.duplicate_of.is_some()) {
            let orig = corpus.post(p.duplicate_of.unwrap()).unwrap();
            assert_eq!(p.body, orig.body);
            assert_eq!(p.author, orig.author);
            assert!(orig.created <= p.created);
        }
    }

    #[test]
    fn night_fraction_higher_for_high_risk() {
        let corpus = small_corpus(7, 4_000);
        let frac = |lvl: RiskLevel| {
            let posts: Vec<_> = corpus
                .posts
                .iter()
                .filter(|p| !p.off_topic && p.latent_risk == lvl)
                .collect();
            posts.iter().filter(|p| p.created.is_night()).count() as f64 / posts.len() as f64
        };
        let lo = frac(RiskLevel::Indicator);
        let hi = frac(RiskLevel::Attempt);
        assert!(
            hi > lo + 0.1,
            "attempt night fraction {hi} should exceed indicator {lo}"
        );
    }

    #[test]
    fn into_store_serves_posts() {
        let corpus = small_corpus(8, 100);
        let n = corpus.post_count();
        let store = corpus.into_store();
        assert_eq!(store.subreddit("SuicideWatch").unwrap().len(), n);
    }
}
