//! Miniature Reddit substrate: subreddit store, paginated listing API, and
//! a rate-limited crawl client.
//!
//! The paper's raw data was harvested through the official Reddit API
//! (citation [4]) from `r/SuicideWatch`. This module reproduces the
//! *interface contract* that pathway imposes on a collection pipeline:
//!
//! * posts live in named subreddits, ordered by creation time;
//! * listings are paginated with an opaque `after` cursor and a hard
//!   100-item page cap (the API's `limit` ceiling);
//! * clients are rate-limited (60 requests/simulated-minute) and must
//!   therefore budget their crawl;
//! * time-windowed collection is expressed the way the real crawl was:
//!   walk pages chronologically and stop past the window end.
//!
//! The crawler sees only what the API returns — downstream code cannot
//! reach around the pagination to generator internals.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::types::{PostId, RawPost};
use rsd_common::{Result, RsdError, Timestamp};

/// Hard page-size cap, matching the Reddit API's `limit` ceiling.
pub const MAX_PAGE_SIZE: usize = 100;

/// A single subreddit: posts stored in creation order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Subreddit {
    /// Display name without the `r/` prefix, e.g. `"SuicideWatch"`.
    pub name: String,
    /// Posts sorted ascending by `(created, id)`.
    posts: Vec<RawPost>,
}

impl Subreddit {
    /// Create an empty subreddit.
    pub fn new(name: impl Into<String>) -> Self {
        Subreddit {
            name: name.into(),
            posts: Vec::new(),
        }
    }

    /// Bulk-load posts; sorts them into listing order.
    pub fn ingest(&mut self, mut posts: Vec<RawPost>) {
        self.posts.append(&mut posts);
        self.posts.sort_by_key(|p| (p.created, p.id));
    }

    /// Number of posts stored.
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// True if no posts are stored.
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }

    /// Serve one listing page: posts strictly after the cursor (or from the
    /// beginning), capped at `limit.min(MAX_PAGE_SIZE)`.
    fn page(&self, after: Option<PostId>, limit: usize) -> Listing {
        let start = match after {
            None => 0,
            Some(cursor) => {
                match self.posts.iter().position(|p| p.id == cursor) {
                    Some(idx) => idx + 1,
                    None => self.posts.len(), // stale cursor: empty page
                }
            }
        };
        let limit = limit.clamp(1, MAX_PAGE_SIZE);
        let slice = &self.posts[start.min(self.posts.len())..];
        let page: Vec<RawPost> = slice.iter().take(limit).cloned().collect();
        let after = if page.len() == limit && start + limit < self.posts.len() {
            page.last().map(|p| p.id)
        } else {
            None
        };
        Listing { posts: page, after }
    }
}

/// One page of a listing response.
#[derive(Debug, Clone)]
pub struct Listing {
    /// The page contents in chronological order.
    pub posts: Vec<RawPost>,
    /// Cursor for the next page; `None` when exhausted.
    pub after: Option<PostId>,
}

/// The store backing the simulated API — a set of subreddits.
#[derive(Debug, Clone, Default)]
pub struct RedditStore {
    subs: BTreeMap<String, Subreddit>,
}

impl RedditStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or extend) a subreddit with posts.
    pub fn publish(&mut self, subreddit: &str, posts: Vec<RawPost>) {
        self.subs
            .entry(subreddit.to_string())
            .or_insert_with(|| Subreddit::new(subreddit))
            .ingest(posts);
    }

    /// Look up a subreddit.
    pub fn subreddit(&self, name: &str) -> Result<&Subreddit> {
        self.subs
            .get(name)
            .ok_or_else(|| RsdError::not_found("subreddit", name))
    }

    /// Names of all subreddits.
    pub fn subreddit_names(&self) -> impl Iterator<Item = &str> {
        self.subs.keys().map(String::as_str)
    }
}

/// Crawl statistics — lets tests and benchmarks verify the client stayed
/// within API politeness constraints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlStats {
    /// Total listing requests issued.
    pub requests: u64,
    /// Total posts received.
    pub posts_fetched: u64,
    /// Simulated seconds elapsed (requests are spaced to honour the rate
    /// limit; 60 requests per simulated minute).
    pub simulated_secs: u64,
}

/// Rate-limited, paginated crawl client over a [`RedditStore`].
///
/// Mirrors the collection procedure of the paper's source corpus: page
/// through a subreddit chronologically, keeping posts inside a UTC window.
#[derive(Debug)]
pub struct CrawlClient<'a> {
    store: &'a RedditStore,
    /// Requests allowed per simulated minute.
    pub requests_per_minute: u32,
    stats: CrawlStats,
}

impl<'a> CrawlClient<'a> {
    /// New client with the API's standard 60 req/min budget.
    pub fn new(store: &'a RedditStore) -> Self {
        CrawlClient {
            store,
            requests_per_minute: 60,
            stats: CrawlStats::default(),
        }
    }

    /// Fetch one listing page, accounting for rate limiting in simulated
    /// time.
    pub fn list(
        &mut self,
        subreddit: &str,
        after: Option<PostId>,
        limit: usize,
    ) -> Result<Listing> {
        let sub = self.store.subreddit(subreddit)?;
        self.stats.requests += 1;
        // Simulated pacing: spread requests uniformly over each minute.
        self.stats.simulated_secs = self.stats.requests * 60 / u64::from(self.requests_per_minute);
        let listing = sub.page(after, limit);
        self.stats.posts_fetched += listing.posts.len() as u64;
        Ok(listing)
    }

    /// Crawl every post in `[start, end)` from a subreddit, in order.
    pub fn crawl_window(
        &mut self,
        subreddit: &str,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<RawPost>> {
        let mut out = Vec::new();
        let mut cursor: Option<PostId> = None;
        loop {
            let page = self.list(subreddit, cursor, MAX_PAGE_SIZE)?;
            if page.posts.is_empty() {
                break;
            }
            let mut past_end = false;
            for post in &page.posts {
                if post.created >= end {
                    past_end = true;
                    break;
                }
                if post.created >= start {
                    out.push(post.clone());
                }
            }
            if past_end || page.after.is_none() {
                break;
            }
            cursor = page.after;
        }
        Ok(out)
    }

    /// Accumulated crawl statistics.
    pub fn stats(&self) -> CrawlStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::risk::RiskLevel;
    use crate::types::UserId;

    fn mk_post(id: u32, created: i64) -> RawPost {
        RawPost {
            id: PostId(id),
            author: UserId(id % 7),
            created: Timestamp(created),
            body: format!("post {id}"),
            latent_risk: RiskLevel::Ideation,
            off_topic: false,
            duplicate_of: None,
        }
    }

    fn store_with(n: u32) -> RedditStore {
        let mut store = RedditStore::new();
        let posts: Vec<RawPost> = (0..n).map(|i| mk_post(i, i64::from(i) * 100)).collect();
        store.publish("SuicideWatch", posts);
        store
    }

    #[test]
    fn pagination_walks_everything_in_order() {
        let store = store_with(250);
        let mut client = CrawlClient::new(&store);
        let mut seen = Vec::new();
        let mut cursor = None;
        loop {
            let page = client.list("SuicideWatch", cursor, MAX_PAGE_SIZE).unwrap();
            seen.extend(page.posts.iter().map(|p| p.id.0));
            match page.after {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        assert_eq!(seen, (0..250).collect::<Vec<_>>());
        assert_eq!(client.stats().requests, 3);
    }

    #[test]
    fn page_limit_is_capped() {
        let store = store_with(500);
        let mut client = CrawlClient::new(&store);
        let page = client.list("SuicideWatch", None, 10_000).unwrap();
        assert_eq!(page.posts.len(), MAX_PAGE_SIZE);
    }

    #[test]
    fn stale_cursor_yields_empty_page() {
        let store = store_with(10);
        let mut client = CrawlClient::new(&store);
        let page = client.list("SuicideWatch", Some(PostId(9999)), 50).unwrap();
        assert!(page.posts.is_empty());
        assert!(page.after.is_none());
    }

    #[test]
    fn window_crawl_filters_by_time() {
        let store = store_with(300);
        let mut client = CrawlClient::new(&store);
        let posts = client
            .crawl_window("SuicideWatch", Timestamp(5_000), Timestamp(10_000))
            .unwrap();
        assert!(!posts.is_empty());
        assert!(posts
            .iter()
            .all(|p| p.created >= Timestamp(5_000) && p.created < Timestamp(10_000)));
        assert_eq!(posts.len(), 50);
    }

    #[test]
    fn unknown_subreddit_errors() {
        let store = store_with(1);
        let mut client = CrawlClient::new(&store);
        assert!(client.list("nope", None, 10).is_err());
    }

    #[test]
    fn rate_limit_advances_simulated_time() {
        let store = store_with(10_000);
        let mut client = CrawlClient::new(&store);
        client
            .crawl_window("SuicideWatch", Timestamp(0), Timestamp(i64::MAX))
            .unwrap();
        let stats = client.stats();
        assert_eq!(stats.requests, 100); // 10k posts / 100 per page
        assert_eq!(stats.simulated_secs, 100); // 60 rpm → 1s per request
        assert_eq!(stats.posts_fetched, 10_000);
    }

    #[test]
    fn ingest_sorts_out_of_order_posts() {
        let mut store = RedditStore::new();
        store.publish(
            "SuicideWatch",
            vec![mk_post(2, 300), mk_post(0, 100), mk_post(1, 200)],
        );
        let mut client = CrawlClient::new(&store);
        let page = client.list("SuicideWatch", None, 10).unwrap();
        let ids: Vec<u32> = page.posts.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
