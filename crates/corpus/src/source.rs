//! The streaming pipeline's corpus source: generate one user shard and
//! harvest it through the simulated Reddit API.
//!
//! Each shard gets its own [`RedditStore`] holding only that shard's
//! posts, so crawl pagination and the collection window are exercised
//! per shard without the full raw pool ever being resident. The crawled
//! posts keep their shard-local ids; the downstream merge restores global
//! ids from the per-shard raw-post counts (see `rsd-dataset`).

use crate::generator::CorpusGenerator;
use crate::reddit::{CrawlClient, CrawlStats, RedditStore};
use crate::types::RawPost;
use rsd_common::Result;
use rsd_pipeline::{ResidentGauge, ShardSpec, Source};

/// What one shard looks like after the crawl stage.
#[derive(Debug, Clone)]
pub struct CrawledShard {
    /// Users generated in the shard.
    pub raw_users: usize,
    /// Posts generated in the shard (before window filtering) — the
    /// stride downstream merges use to restore global post ids.
    pub raw_posts: usize,
    /// This shard's crawl-client statistics.
    pub crawl: CrawlStats,
    /// Crawled posts in the subreddit's listing order (`(created, id)`
    /// ascending), ids shard-local.
    pub posts: Vec<RawPost>,
}

/// Per-shard [`Source`]: generate the user range, publish it into a
/// shard-local store, and crawl the configured collection window.
pub struct CorpusShardSource {
    generator: CorpusGenerator,
    subreddit: &'static str,
    resident: ResidentGauge,
}

impl CorpusShardSource {
    /// Build a source over `generator`'s configuration. `resident` is the
    /// build's residency counter; the source adds each shard's raw posts
    /// when materialized (the preprocess stage releases them).
    pub fn new(generator: CorpusGenerator, resident: ResidentGauge) -> Self {
        CorpusShardSource {
            generator,
            subreddit: "SuicideWatch",
            resident,
        }
    }
}

impl Source for CorpusShardSource {
    type Out = CrawledShard;

    fn name(&self) -> &'static str {
        "pipeline.shard.corpus"
    }

    fn load(&self, shard: &ShardSpec) -> Result<CrawledShard> {
        let generated = self.generator.generate_shard(shard.users());
        let raw_users = generated.users.len();
        let raw_posts = generated.posts.len();
        self.resident.add(raw_posts);

        let mut store = RedditStore::new();
        store.publish(self.subreddit, generated.posts);
        let mut client = CrawlClient::new(&store);
        let cfg = self.generator.config();
        let posts = client.crawl_window(self.subreddit, cfg.window_start, cfg.window_end)?;
        Ok(CrawledShard {
            raw_users,
            raw_posts,
            crawl: client.stats(),
            posts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CorpusConfig;
    use rsd_pipeline::ShardPlan;

    #[test]
    fn sharded_crawl_covers_the_full_corpus() {
        let cfg = CorpusConfig::small(11, 300);
        let generator = CorpusGenerator::new(cfg.clone()).unwrap();
        let full = generator.generate();
        let full_posts = full.post_count();

        let resident = ResidentGauge::new();
        let source = CorpusShardSource::new(generator, resident.clone());
        let plan = ShardPlan::new(300, 128).unwrap();
        let mut stitched: Vec<RawPost> = Vec::new();
        let mut offset = 0u32;
        for spec in plan.shards() {
            let mut crawled = source.load(&spec).unwrap();
            assert_eq!(crawled.crawl.posts_fetched as usize, crawled.posts.len());
            for p in &mut crawled.posts {
                p.id.0 += offset;
                if let Some(d) = &mut p.duplicate_of {
                    d.0 += offset;
                }
            }
            offset += crawled.raw_posts as u32;
            stitched.extend(crawled.posts);
        }
        // Stitching with raw-post offsets restores global ids; sorting by
        // listing order reproduces the monolithic crawl exactly.
        stitched.sort_by_key(|p| (p.created, p.id));
        let store = full.into_store();
        let mut client = CrawlClient::new(&store);
        let batch = client
            .crawl_window("SuicideWatch", cfg.window_start, cfg.window_end)
            .unwrap();
        assert_eq!(stitched, batch);
        assert_eq!(resident.peak() as usize, full_posts);
    }

    #[test]
    fn resident_counts_raw_posts_per_shard() {
        let generator = CorpusGenerator::new(CorpusConfig::small(5, 64)).unwrap();
        let resident = ResidentGauge::new();
        let source = CorpusShardSource::new(generator, resident.clone());
        let spec = ShardPlan::new(64, 64).unwrap().shard(0);
        let crawled = source.load(&spec).unwrap();
        assert_eq!(resident.current(), crawled.raw_posts as i64);
    }
}
