//! Post text rendering.
//!
//! Renders a latent risk level into a raw post body: one or two *signal*
//! sentences drawn from the class's frame bank, diluted with neutral filler
//! sentences, then roughened with the surface noise the paper's
//! preprocessing stage removes (links, repeated punctuation, stray special
//! characters, inconsistent casing). The clean/noise split is deliberate —
//! `rsd-text` must have real work to do.

use rand::Rng;

use crate::lexicon::{frames_for, slot_fillers, Frame, Slot, CAMOUFLAGE_FRAMES, FILLERS};
use crate::risk::RiskLevel;

/// Hedge words randomly prefixed to sentences (surface diversity).
const HEDGES: &[&str] = &[
    "honestly",
    "maybe",
    "i guess",
    "idk",
    "tbh",
    "somehow",
    "lately",
    "again tonight",
];

/// Word-level paraphrase map applied stochastically after rendering. The
/// entries deliberately avoid the relevance lexicon's load-bearing crisis
/// terms; distress adjectives map to synonyms that are themselves in the
/// lexicon, so cleaning recall is unaffected. This is what keeps the
/// synthetic language from being memorizable by small from-scratch models:
/// each frame has combinatorially many surface variants, and only models
/// that learned the variant structure (from pretraining or capacity) can
/// generalize across them — the real-world mechanism behind the paper's
/// PLM advantage.
const SYNONYMS: &[(&str, &[&str])] = &[
    ("want", &["want", "need"]),
    ("keep", &["keep", "cannot", "can't"]),
    ("thinking", &["thinking", "obsessing"]),
    ("really", &["really", "rly", "genuinely"]),
    ("about", &["about", "abt"]),
    ("tonight", &["tonight", "rn"]),
    ("feel", &["feel", "feel like"]),
    ("tired", &["tired", "drained"]),
    ("empty", &["empty", "hollow"]),
    ("everyone", &["everyone", "everybody"]),
    ("nothing", &["nothing", "nothin"]),
    ("because", &["because", "cause", "bc"]),
];

/// Probability a sentence gets a hedge prefix.
const HEDGE_PROB: f64 = 0.3;
/// Probability a matched word is replaced by a synonym variant.
const SYNONYM_PROB: f64 = 0.35;

/// Apply the stochastic style layer to one sentence.
fn stylize(sentence: &str, rng: &mut impl Rng) -> String {
    let mut words: Vec<String> = Vec::new();
    if rng.gen::<f64>() < HEDGE_PROB {
        words.push(HEDGES[rng.gen_range(0..HEDGES.len())].to_string());
    }
    for word in sentence.split_whitespace() {
        let mut out = word.to_string();
        if rng.gen::<f64>() < SYNONYM_PROB {
            if let Some((_, variants)) = SYNONYMS.iter().find(|(k, _)| *k == word) {
                out = variants[rng.gen_range(0..variants.len())].to_string();
            }
        }
        words.push(out);
    }
    words.join(" ")
}

/// Controls for the text renderer.
#[derive(Debug, Clone)]
pub struct TextGenConfig {
    /// Probability of appending a URL to a post (noise for preprocessing).
    pub link_prob: f64,
    /// Probability of exclamation/punctuation runs.
    pub punct_run_prob: f64,
    /// Probability of injecting stray special characters.
    pub special_char_prob: f64,
    /// Probability a post carries a *second* signal sentence.
    pub double_signal_prob: f64,
}

impl Default for TextGenConfig {
    fn default() -> Self {
        TextGenConfig {
            link_prob: 0.12,
            punct_run_prob: 0.10,
            special_char_prob: 0.06,
            double_signal_prob: 0.35,
        }
    }
}

/// Render one sentence from a frame, filling open slots from the lexicon
/// and applying the stochastic style layer (hedges, paraphrase variants).
pub fn render_frame(frame: Frame, rng: &mut impl Rng) -> String {
    let mut parts: Vec<&str> = Vec::with_capacity(frame.len());
    for slot in frame {
        match slot {
            Slot::Lit(text) => parts.push(text),
            other => {
                let bank = slot_fillers(*other);
                parts.push(bank[rng.gen_range(0..bank.len())]);
            }
        }
    }
    stylize(&parts.join(" "), rng)
}

/// Render a full raw post body for the given level.
///
/// `mean_sentences` controls filler dilution (risk-coupled; see
/// [`crate::behavior::coupling`]). The result intentionally contains noise;
/// see the module docs.
pub fn render_post(
    level: RiskLevel,
    mean_sentences: f64,
    cfg: &TextGenConfig,
    rng: &mut impl Rng,
) -> String {
    let frames = frames_for(level);
    let mut sentences: Vec<String> = Vec::new();

    // Signal sentence(s).
    sentences.push(render_frame(frames[rng.gen_range(0..frames.len())], rng));
    if rng.gen::<f64>() < cfg.double_signal_prob {
        sentences.push(render_frame(frames[rng.gen_range(0..frames.len())], rng));
    }

    // Filler sentences: geometric-ish count around the mean, at least one.
    let n_fillers = {
        let base = (mean_sentences - 1.0).max(1.0);
        let jitter: f64 = rng.gen_range(-1.0..1.5);
        (base + jitter).round().max(1.0) as usize
    };
    for _ in 0..n_fillers {
        // Most fillers come from the camouflage bank (shared high-value
        // vocabulary in neutral roles); the rest from plain life-context
        // lines.
        if rng.gen::<f64>() < 0.7 {
            let frame = CAMOUFLAGE_FRAMES[rng.gen_range(0..CAMOUFLAGE_FRAMES.len())];
            sentences.push(render_frame(frame, rng));
        } else {
            let filler = FILLERS[rng.gen_range(0..FILLERS.len())];
            sentences.push(stylize(filler, rng));
        }
    }

    // Shuffle so the signal isn't always first — sequence models must find it.
    rsd_common::rng::shuffle(rng, &mut sentences);

    let mut body = sentences.join(". ");
    body.push('.');

    apply_noise(&mut body, cfg, rng);
    body
}

/// Inject the surface noise the preprocessing stage is responsible for
/// removing.
fn apply_noise(body: &mut String, cfg: &TextGenConfig, rng: &mut impl Rng) {
    if rng.gen::<f64>() < cfg.punct_run_prob {
        body.push_str("!!!");
    }
    if rng.gen::<f64>() < cfg.special_char_prob {
        body.push_str(" ~~ #### ");
    }
    if rng.gen::<f64>() < cfg.link_prob {
        let n: u32 = rng.gen_range(100..999);
        body.push_str(&format!(" https://imgur.com/a/{n}"));
    }
    // Occasional SHOUTING of one word (case normalization work).
    if rng.gen::<f64>() < 0.08 {
        if let Some(word) = body.split_whitespace().next().map(str::to_uppercase) {
            let rest = body.split_once(' ').map(|x| x.1).unwrap_or("").to_string();
            *body = if rest.is_empty() {
                word
            } else {
                format!("{word} {rest}")
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn render_frame_fills_all_slots() {
        let mut rng = StdRng::seed_from_u64(1);
        for level in RiskLevel::ALL {
            for frame in frames_for(level) {
                let s = render_frame(frame, &mut rng);
                assert!(!s.is_empty());
                assert!(!s.contains("  "), "no double spaces: {s:?}");
            }
        }
    }

    #[test]
    fn posts_are_nonempty_and_multisentence() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = TextGenConfig::default();
        for level in RiskLevel::ALL {
            for _ in 0..50 {
                let p = render_post(level, 3.5, &cfg, &mut rng);
                assert!(p.split('.').filter(|s| !s.trim().is_empty()).count() >= 2);
            }
        }
    }

    #[test]
    fn noise_appears_at_configured_rates() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = TextGenConfig {
            link_prob: 1.0,
            punct_run_prob: 1.0,
            special_char_prob: 1.0,
            double_signal_prob: 0.0,
        };
        let p = render_post(RiskLevel::Ideation, 3.0, &cfg, &mut rng);
        assert!(p.contains("https://"));
        assert!(p.contains("!!!"));
        assert!(p.contains("####"));
    }

    #[test]
    fn zero_noise_config_produces_clean_text() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = TextGenConfig {
            link_prob: 0.0,
            punct_run_prob: 0.0,
            special_char_prob: 0.0,
            double_signal_prob: 0.0,
        };
        for _ in 0..100 {
            let p = render_post(RiskLevel::Behavior, 3.0, &cfg, &mut rng);
            assert!(!p.contains("https://"));
            assert!(!p.contains("!!!"));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = TextGenConfig::default();
        let a = render_post(
            RiskLevel::Attempt,
            4.0,
            &cfg,
            &mut StdRng::seed_from_u64(99),
        );
        let b = render_post(
            RiskLevel::Attempt,
            4.0,
            &cfg,
            &mut StdRng::seed_from_u64(99),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn higher_mean_sentences_longer_posts() {
        let cfg = TextGenConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        let short: f64 = (0..200)
            .map(|_| render_post(RiskLevel::Ideation, 2.0, &cfg, &mut rng).len() as f64)
            .sum::<f64>()
            / 200.0;
        let long: f64 = (0..200)
            .map(|_| render_post(RiskLevel::Ideation, 6.0, &cfg, &mut rng).len() as f64)
            .sum::<f64>()
            / 200.0;
        assert!(long > short, "long {long} should exceed short {short}");
    }
}
