//! The four-level suicide-risk taxonomy.
//!
//! Adapted (in the paper) from the Columbia Suicide Severity Rating Scale;
//! the four labels and their definitions are quoted from §II-B1:
//!
//! * **Indicator** — no suicidal risk by the author: third-party references,
//!   explicit denial of intent, or concern for someone else.
//! * **Ideation** — suicidal thoughts or desires without concrete action,
//!   passive or active, including unrealistic methods.
//! * **Behavior** — preparatory acts beyond verbalization: acquiring means,
//!   writing a note, preparing for death, or non-fatal self-harm.
//! * **Attempt** — a previous self-inflicted act intended to result in
//!   death that did not succeed.
//!
//! The ordinal ordering `Indicator < Ideation < Behavior < Attempt` matches
//! clinical severity and is what Fig. 4 ("risk level distribution") and the
//! escalation analyses assume.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use rsd_common::RsdError;

/// One of the four RSD-15K risk levels, ordered by clinical severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RiskLevel {
    /// No suicidal risk expressed by the author (abbreviated **IN**).
    Indicator,
    /// Suicidal thoughts or desires without concrete action (**ID**).
    Ideation,
    /// Preparatory acts or self-harm (**BR**).
    Behavior,
    /// A previous suicide attempt (**AT**).
    Attempt,
}

impl RiskLevel {
    /// All levels in severity order.
    pub const ALL: [RiskLevel; 4] = [
        RiskLevel::Indicator,
        RiskLevel::Ideation,
        RiskLevel::Behavior,
        RiskLevel::Attempt,
    ];

    /// Number of classes in the taxonomy.
    pub const COUNT: usize = 4;

    /// Stable class index in `0..4` (severity order).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`RiskLevel::index`].
    pub fn from_index(idx: usize) -> Result<Self, RsdError> {
        Self::ALL
            .get(idx)
            .copied()
            .ok_or_else(|| RsdError::data(format!("risk level index out of range: {idx}")))
    }

    /// Full label as used in Table I ("Indicator", "Ideation", ...).
    pub fn name(self) -> &'static str {
        match self {
            RiskLevel::Indicator => "Indicator",
            RiskLevel::Ideation => "Ideation",
            RiskLevel::Behavior => "Behavior",
            RiskLevel::Attempt => "Attempt",
        }
    }

    /// Two-letter abbreviation as used in Tables II–IV (IN/ID/BR/AT).
    pub fn abbrev(self) -> &'static str {
        match self {
            RiskLevel::Indicator => "IN",
            RiskLevel::Ideation => "ID",
            RiskLevel::Behavior => "BR",
            RiskLevel::Attempt => "AT",
        }
    }

    /// True if the level conveys any degree of suicidal risk by the author
    /// (everything except `Indicator`).
    pub fn is_at_risk(self) -> bool {
        self != RiskLevel::Indicator
    }

    /// One severity step up, saturating at `Attempt`.
    pub fn escalate(self) -> RiskLevel {
        Self::ALL[(self.index() + 1).min(3)]
    }

    /// One severity step down, saturating at `Indicator`.
    pub fn deescalate(self) -> RiskLevel {
        Self::ALL[self.index().saturating_sub(1)]
    }
}

impl fmt::Display for RiskLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for RiskLevel {
    type Err = RsdError;

    /// Parses full names, abbreviations, and lowercase variants.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "indicator" | "in" => Ok(RiskLevel::Indicator),
            "ideation" | "id" => Ok(RiskLevel::Ideation),
            "behavior" | "behaviour" | "br" => Ok(RiskLevel::Behavior),
            "attempt" | "at" => Ok(RiskLevel::Attempt),
            other => Err(RsdError::data(format!("unknown risk level: {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for level in RiskLevel::ALL {
            assert_eq!(RiskLevel::from_index(level.index()).unwrap(), level);
        }
        assert!(RiskLevel::from_index(4).is_err());
    }

    #[test]
    fn severity_order() {
        assert!(RiskLevel::Indicator < RiskLevel::Ideation);
        assert!(RiskLevel::Ideation < RiskLevel::Behavior);
        assert!(RiskLevel::Behavior < RiskLevel::Attempt);
    }

    #[test]
    fn parse_all_spellings() {
        assert_eq!(
            "Indicator".parse::<RiskLevel>().unwrap(),
            RiskLevel::Indicator
        );
        assert_eq!("ID".parse::<RiskLevel>().unwrap(), RiskLevel::Ideation);
        assert_eq!(
            "behaviour".parse::<RiskLevel>().unwrap(),
            RiskLevel::Behavior
        );
        assert_eq!(" at ".parse::<RiskLevel>().unwrap(), RiskLevel::Attempt);
        assert!("severe".parse::<RiskLevel>().is_err());
    }

    #[test]
    fn escalation_saturates() {
        assert_eq!(RiskLevel::Indicator.escalate(), RiskLevel::Ideation);
        assert_eq!(RiskLevel::Attempt.escalate(), RiskLevel::Attempt);
        assert_eq!(RiskLevel::Indicator.deescalate(), RiskLevel::Indicator);
        assert_eq!(RiskLevel::Attempt.deescalate(), RiskLevel::Behavior);
    }

    #[test]
    fn risk_flag() {
        assert!(!RiskLevel::Indicator.is_at_risk());
        assert!(RiskLevel::Ideation.is_at_risk());
        assert!(RiskLevel::Attempt.is_at_risk());
    }

    #[test]
    fn display_and_abbrev() {
        assert_eq!(RiskLevel::Behavior.to_string(), "Behavior");
        assert_eq!(RiskLevel::Behavior.abbrev(), "BR");
    }
}
