//! Raw corpus record types — the schema the (simulated) crawl produces.
//!
//! These mirror what the paper's pipeline received from the Reddit API:
//! pseudonymous author ids, post bodies, and creation timestamps. The one
//! addition is `latent_risk` on [`RawPost`]: the generator's ground-truth
//! label, which plays the role the *expert consensus* plays for real data.
//! The annotation pipeline treats it as the hidden true label its noisy
//! annotators approximate; benchmark code only ever sees annotated output.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::risk::RiskLevel;
use rsd_common::Timestamp;

/// Opaque, pseudonymous user identifier (dense index into the corpus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct UserId(pub u32);

/// Opaque post identifier (dense index into the corpus, in crawl order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PostId(pub u32);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for PostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A single crawled post, before any preprocessing or annotation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawPost {
    /// Dense post id, unique within a corpus.
    pub id: PostId,
    /// Pseudonymous author.
    pub author: UserId,
    /// UTC creation time.
    pub created: Timestamp,
    /// Raw body text, including the noise (links, stray punctuation,
    /// repeated characters) the preprocessing stage must remove.
    pub body: String,
    /// Ground-truth latent risk level (generator-internal; stands in for
    /// the expert consensus label on real data).
    pub latent_risk: RiskLevel,
    /// Ground truth: this post is off-topic for the suicide-risk theme and
    /// should be removed by preprocessing ("removing non-relevant posts").
    /// Preprocessing must *detect* this — it never reads the flag; the flag
    /// exists so tests can measure cleaning precision/recall.
    pub off_topic: bool,
    /// Ground truth: this post is a repost of another post (dedup target).
    /// Same contract as `off_topic`: detection only, never consulted by the
    /// pipeline itself.
    pub duplicate_of: Option<PostId>,
}

impl RawPost {
    /// Whitespace-delimited token count of the raw body (cheap proxy used
    /// by selection heuristics before real tokenization happens).
    pub fn rough_len(&self) -> usize {
        self.body.split_whitespace().count()
    }
}

/// A user together with the ids of their posts, in chronological order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawUser {
    /// Dense user id.
    pub id: UserId,
    /// This user's posts, sorted by `created` ascending.
    pub post_ids: Vec<PostId>,
}

impl RawUser {
    /// Number of posts this user contributed.
    pub fn post_count(&self) -> usize {
        self.post_ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_compactly() {
        assert_eq!(UserId(7).to_string(), "u7");
        assert_eq!(PostId(123).to_string(), "p123");
    }

    #[test]
    fn rough_len_counts_tokens() {
        let p = RawPost {
            id: PostId(0),
            author: UserId(0),
            created: Timestamp(0),
            body: "i cant  sleep   again tonight".to_string(),
            latent_risk: RiskLevel::Ideation,
            off_topic: false,
            duplicate_of: None,
        };
        assert_eq!(p.rough_len(), 5);
    }

    #[test]
    fn serde_round_trip() {
        let p = RawPost {
            id: PostId(1),
            author: UserId(2),
            created: Timestamp(1_600_000_000),
            body: "hello".to_string(),
            latent_risk: RiskLevel::Attempt,
            off_topic: false,
            duplicate_of: None,
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: RawPost = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
