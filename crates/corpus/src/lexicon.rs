//! Class-conditional lexicons and sentence frames.
//!
//! The generator's language model is a frame grammar: each risk level owns a
//! bank of sentence frames with typed slots, plus shared slot fillers. The
//! design goal is *calibrated difficulty*, mirroring why real suicide-risk
//! classification is hard:
//!
//! 1. **Shared surface vocabulary.** High-risk tokens ("kill", "pills",
//!    "die", "attempt") appear in *all four* classes. What differs is the
//!    frame: first-person future/desire (Ideation), preparatory past/
//!    progressive (Behavior), completed past attempt (Attempt), or negated /
//!    third-person (Indicator). A bag-of-words model sees overlapping
//!    unigrams; an order-aware model can read the frame; an attention model
//!    can resolve long-range subject references.
//! 2. **Negation and perspective distractors.** Indicator frames embed the
//!    same risk phrases under "i would never ...", "my brother ...", "asking
//!    for a friend who ...".
//! 3. **Filler dilution.** Every post mixes in neutral life-context
//!    sentences (work, school, sleep, relationships) so the discriminative
//!    signal has realistic sparsity.
//!
//! The word lists are intentionally clinical/neutral paraphrases — detailed
//! method or means language is deliberately excluded; frames reference means
//! only with abstract placeholder nouns. This suffices for benchmark
//! purposes (distributional structure) without reproducing harmful content.

use crate::risk::RiskLevel;

/// A typed slot inside a sentence frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Literal text, emitted verbatim.
    Lit(&'static str),
    /// A neutral "means/tool" noun (abstract: "the pills", "everything i need").
    Means,
    /// A verb phrase expressing dying, first person infinitive ("end it all").
    EndVerb,
    /// An emotion/state adjective ("empty", "exhausted", "numb").
    Feeling,
    /// A third-party relation noun ("brother", "friend", "coworker").
    Relation,
    /// A time reference ("last night", "two months ago").
    TimeRef,
    /// A life-context topic ("work", "school", "my family").
    LifeTopic,
    /// A preparatory action ("wrote the note", "gave away my things").
    PrepAct,
    /// A neutral filler clause.
    Filler,
}

/// A sentence frame: a sequence of slots rendered with spaces in between.
pub type Frame = &'static [Slot];

use Slot::*;

/// Abstract means nouns (no operational detail).
pub const MEANS: &[&str] = &[
    "the pills",
    "what i saved up",
    "everything i would need",
    "the stuff i kept",
    "the bottle",
    "what i bought",
];

/// First-person "end" verb phrases.
pub const END_VERBS: &[&str] = &[
    "end it all",
    "kill myself",
    "end my life",
    "disappear for good",
    "not wake up",
    "stop existing",
    "end things",
    "be done with living",
];

/// Emotional-state fillers.
pub const FEELINGS: &[&str] = &[
    "empty",
    "exhausted",
    "numb",
    "worthless",
    "hopeless",
    "invisible",
    "trapped",
    "broken",
    "tired of everything",
    "so alone",
    "overwhelmed",
    "burned out",
];

/// Third-party relations (Indicator perspective shifts).
pub const RELATIONS: &[&str] = &[
    "brother",
    "sister",
    "best friend",
    "roommate",
    "coworker",
    "classmate",
    "cousin",
    "neighbor",
    "friend from school",
    "mom",
    "dad",
];

/// Time references.
pub const TIME_REFS: &[&str] = &[
    "last night",
    "two months ago",
    "last year",
    "a few weeks ago",
    "back in march",
    "when i was seventeen",
    "over the winter",
    "right before finals",
    "yesterday",
];

/// Neutral life topics.
pub const LIFE_TOPICS: &[&str] = &[
    "work",
    "school",
    "my family",
    "my relationship",
    "money",
    "my health",
    "the job search",
    "my classes",
    "rent",
    "everything at home",
];

/// Preparatory acts (Behavior class).
pub const PREP_ACTS: &[&str] = &[
    "wrote the note",
    "gave away my things",
    "sorted out my passwords",
    "said my goodbyes quietly",
    "put my affairs in order",
    "cleaned my room for the last time",
    "made a list of who gets what",
    "looked up how to write a will",
];

/// Neutral filler clauses shared by every class.
pub const FILLERS: &[&str] = &[
    "i have not been sleeping much lately",
    "things have been hard since the lockdown started",
    "i lost my job in the spring",
    "my grades keep slipping no matter what i do",
    "nobody at home really talks to me anymore",
    "i keep skipping meals without noticing",
    "the days all blur together now",
    "i used to love drawing but i stopped",
    "therapy is too expensive right now",
    "i moved to a new city and know nobody",
    "my parents keep fighting about money",
    "i failed another interview this week",
    "the apartment is a mess and i cannot care",
    "i have been drinking more than i should",
    "everyone seems to be doing fine except me",
    "i scroll my phone until sunrise most nights",
    "my ex blocked me last month",
    "the meds make me feel foggy",
    "i cried in the car again today",
    "i keep canceling plans with my friends",
];

/// Camouflage filler frames: neutral life-context sentences that reuse the
/// *same* high-value vocabulary as the signal frames — relations, "want",
/// "tried", "took", "found", "bought", "survived", "bridge", "hospital",
/// "woke", "note", "gave away" — in innocuous roles. These are mixed into
/// every class's posts, so unigram statistics alone cannot separate the
/// classes: exactly the property that makes real social-media risk text
/// hard for bag-of-words models (the paper's XGBoost sits at 42.5 %
/// accuracy while context models reach 76 %).
pub const CAMOUFLAGE_FRAMES: &[Frame] = &[
    &[
        Lit("my"),
        Relation,
        Lit("called to check on me again today"),
    ],
    &[
        Lit("i had lunch with my"),
        Relation,
        Lit("and barely said a word"),
    ],
    &[
        Lit("my"),
        Relation,
        Lit("keeps asking what is wrong and i say nothing"),
    ],
    &[Lit("i want this week to be over already")],
    &[Lit("i do not even want to get out of bed most days")],
    &[Lit("i tried studying for finals but nothing sticks")],
    &[Lit("i took a long walk around the block to clear my head")],
    &[Lit("i found my old sketchbooks while cleaning my room")],
    &[Lit("i never answer the phone anymore")],
    &[
        Lit("my"),
        Relation,
        Lit("survived another round of layoffs at work"),
    ],
    &[Lit("i bought groceries for the first time in two weeks")],
    &[Lit("i woke up at noon again and hated myself for it")],
    &[Lit("the pharmacy messed up my meds refill again")],
    &[Lit("i keep a list of chores i never start")],
    &[Lit("i wrote three emails today and sent none")],
    &[
        Lit("my"),
        Relation,
        Lit("is in town"),
        TimeRef,
        Lit("and i have to pretend"),
    ],
    &[Lit("i am not hungry lately just tired")],
    &[Lit("i drove past my old school"), TimeRef],
    &[Lit("crossing the bridge on my commute felt endless today")],
    &[Lit("i gave away some old clothes to the charity shop")],
    &[Lit("i stood in line at the hospital pharmacy for an hour")],
    &[
        Lit("my"),
        Relation,
        Lit("left a note on the fridge about rent"),
    ],
    &[Lit("i keep the curtains drawn all day"), TimeRef],
    &[Lit("i attempted the assignment three times and gave up")],
    &[Lit("i just want to sleep for a week straight")],
    &[Lit("all i want is for things to feel normal again")],
    &[Lit("i want my old life back honestly")],
    &[Lit("i keep thinking about quitting my job")],
    &[Lit("i think i failed the midterm"), TimeRef],
    &[Lit("i keep thinking about moving back home")],
    &[
        Lit("my"),
        Relation,
        Lit("wants me to see someone but i keep canceling"),
    ],
    &[
        Lit("my"),
        Relation,
        Lit("keeps sending me job listings i ignore"),
    ],
];

/// Off-topic sentences: content unrelated to the suicide-risk theme that
/// leaks into any real crawl and that preprocessing must filter out. The
/// vocabulary is deliberately disjoint from the support lexicon so a
/// relevance heuristic has a fair signal.
pub const OFF_TOPIC_SENTENCES: &[&str] = &[
    "anyone else hyped for the new console drop this friday",
    "selling my old graphics card dm me for specs",
    "what build are you all running this season",
    "the pizza place downtown finally reopened",
    "my fantasy league is an absolute disaster this year",
    "does anyone have spare beta keys for the expansion",
    "just finished a ten mile ride along the river trail",
    "the finale of that show made zero sense honestly",
    "looking for squadmates in the evening eu timezone",
    "our team blew a twenty point lead again classic",
    "new ramen spot review coming to my blog this weekend",
    "patch notes nerfed my favorite loadout into the ground",
];

/// Ideation frames: first-person desire/thought, no concrete action.
///
/// Every strong content word here ("pills", "note", "bridge", "hospital",
/// "tried", "woke") also appears in at least one other class's bank, so a
/// bag-of-words model sees heavily overlapping unigram distributions; the
/// class signal is the *composition* — first-person present desire without
/// a completed act.
pub const IDEATION_FRAMES: &[Frame] = &[
    &[Lit("i want to"), EndVerb],
    &[
        Lit("i keep thinking about how easy it would be to"),
        EndVerb,
    ],
    &[Lit("i wish i could just"), EndVerb],
    &[Lit("lately i daydream about ways to"), EndVerb],
    &[
        Lit("some days i really want to"),
        EndVerb,
        Lit("and it scares me"),
    ],
    &[Lit("i feel"), Feeling, Lit("and i want to"), EndVerb],
    &[
        Lit("thinking about"),
        LifeTopic,
        Lit("makes me ready to"),
        EndVerb,
    ],
    &[Lit("i do not have a plan but i want to"), EndVerb],
    &[
        Lit("my"),
        Relation,
        Lit("keeps checking on me but i still plan to"),
        EndVerb,
    ],
    &[
        Lit("i told my"),
        Relation,
        Lit("i was fine but honestly i want to"),
        EndVerb,
    ],
    &[
        Lit("i keep imagining taking"),
        Means,
        Lit("but i have not done anything"),
    ],
    &[Lit("i think about the bridge every time we drive over it")],
    &[Lit(
        "i keep drafting the note in my head but i never write it",
    )],
    &[Lit("i have not tried anything yet but i am scared i will")],
    &[Lit("i woke up angry that i am still here again")],
    &[Lit(
        "i keep imagining the hospital and wondering if anyone would even visit",
    )],
];

/// Behavior frames: preparatory acts, acquiring means, self-harm — all
/// first-person *acts* sharing surface vocabulary with the other classes.
pub const BEHAVIOR_FRAMES: &[Frame] = &[
    &[Lit("i bought"), Means, TimeRef],
    &[Lit("i have been collecting"), Means, Lit("for a while now")],
    &[Lit("i"), PrepAct, TimeRef],
    &[Lit("tonight i"), PrepAct],
    &[Lit("i keep"), Means, Lit("in my drawer just in case")],
    &[Lit("i started hurting myself again"), TimeRef],
    &[Lit("i have been cutting again and hiding the scars")],
    &[
        Lit("i stood on the bridge for an hour"),
        TimeRef,
        Lit("before walking home"),
    ],
    &[Lit("i picked a date and i"), PrepAct],
    &[
        Lit("i never told my"),
        Relation,
        Lit("that i bought"),
        Means,
    ],
    &[
        Lit("my"),
        Relation,
        Lit("almost found"),
        Means,
        Lit("hidden in my room"),
    ],
    &[Lit("i am not going to talk about it i just"), PrepAct],
    &[Lit("i wrote the note and put it under my pillow")],
    &[
        Lit("i sat in the hospital parking lot"),
        TimeRef,
        Lit("trying to decide"),
    ],
    &[
        Lit("i took out"),
        Means,
        Lit("again and counted everything twice"),
    ],
    &[
        Lit("i drove out to the bridge again with"),
        Means,
        Lit("in the car"),
    ],
];

/// Attempt frames: a completed (survived) past attempt; past tense and
/// aftermath vocabulary, again deliberately overlapping the other banks.
pub const ATTEMPT_FRAMES: &[Frame] = &[
    &[
        TimeRef,
        Lit("i tried to"),
        EndVerb,
        Lit("and i am still here"),
    ],
    &[Lit("i survived my attempt"), TimeRef],
    &[
        Lit("i took"),
        Means,
        TimeRef,
        Lit("but i woke up in the hospital"),
    ],
    &[
        Lit("this is my second time in the er after trying to"),
        EndVerb,
    ],
    &[TimeRef, Lit("i attempted and my roommate found me")],
    &[
        Lit("after my attempt"),
        TimeRef,
        Lit("everything feels different"),
    ],
    &[
        Lit("i tried once"),
        TimeRef,
        Lit("and i think about trying again"),
    ],
    &[Lit("the doctors said i was lucky after i took"), Means],
    &[Lit("i woke up disappointed that it did not work")],
    &[
        Lit("my attempt"),
        TimeRef,
        Lit("left scars i hide every day"),
    ],
    &[
        Lit("i never told anyone that"),
        TimeRef,
        Lit("i tried to"),
        EndVerb,
    ],
    &[Lit("my"), Relation, Lit("found me after i took"), Means],
    &[Lit("i am not proud of it but"), TimeRef, Lit("i attempted")],
    &[
        Lit("they found the note i left"),
        TimeRef,
        Lit("after i tried"),
    ],
    &[Lit("i still have the bottle from the night i tried")],
    &[
        Lit("i wrote a note said my goodbyes and took"),
        Means,
        TimeRef,
    ],
];

/// Indicator frames: third-party, negation, denial, concern — the class
/// whose surface vocabulary deliberately collides with all three risk
/// classes ("tried", "bought", "survived", "hospital", "note", "scars",
/// "bridge", "drawer"); only the perspective/role resolves the label.
pub const INDICATOR_FRAMES: &[Frame] = &[
    &[
        Lit("my"),
        Relation,
        Lit("tried to"),
        EndVerb,
        TimeRef,
        Lit("and i do not know how to help"),
    ],
    &[
        Lit("my"),
        Relation,
        Lit("keeps talking about wanting to"),
        EndVerb,
    ],
    &[
        Lit("asking for a friend who wants to"),
        EndVerb,
        Lit("what do i say"),
    ],
    &[
        Lit("i would never"),
        EndVerb,
        Lit("but i understand why people think about it"),
    ],
    &[Lit("to be clear i am not suicidal just"), Feeling],
    &[Lit("i am worried my"), Relation, Lit("bought"), Means],
    &[
        Lit("my"),
        Relation,
        Lit("survived an attempt"),
        TimeRef,
        Lit("and i feel so lost"),
    ],
    &[
        Lit("i do not want to"),
        EndVerb,
        Lit("i just want"),
        LifeTopic,
        Lit("to stop hurting"),
    ],
    &[Lit("i am safe i promise but i feel"), Feeling],
    &[
        Lit("i found"),
        Means,
        Lit("in my"),
        Relation,
        Lit("drawer and i am terrified"),
    ],
    &[
        Lit("my"),
        Relation,
        Lit("is in the hospital after an attempt"),
        TimeRef,
    ],
    &[Lit("i saw fresh scars on my"), Relation, Lit("arms again")],
    &[
        Lit("my"),
        Relation,
        Lit("wrote a note"),
        TimeRef,
        Lit("and we found it in time"),
    ],
    &[
        Lit("i took my"),
        Relation,
        Lit("to the er after they tried to"),
        EndVerb,
    ],
    &[
        Lit("my"),
        Relation,
        Lit("keeps standing on the bridge and i am scared for them"),
    ],
    &[Lit("how do i support someone who keeps cutting")],
];

/// Frames for the given class.
pub fn frames_for(level: RiskLevel) -> &'static [Frame] {
    match level {
        RiskLevel::Indicator => INDICATOR_FRAMES,
        RiskLevel::Ideation => IDEATION_FRAMES,
        RiskLevel::Behavior => BEHAVIOR_FRAMES,
        RiskLevel::Attempt => ATTEMPT_FRAMES,
    }
}

/// Fillers for a [`Slot`] kind (the `Lit` and `Filler` variants are handled
/// by the renderer directly).
pub fn slot_fillers(slot: Slot) -> &'static [&'static str] {
    match slot {
        Slot::Means => MEANS,
        Slot::EndVerb => END_VERBS,
        Slot::Feeling => FEELINGS,
        Slot::Relation => RELATIONS,
        Slot::TimeRef => TIME_REFS,
        Slot::LifeTopic => LIFE_TOPICS,
        Slot::PrepAct => PREP_ACTS,
        Slot::Filler => FILLERS,
        Slot::Lit(_) => &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_has_frames() {
        for level in RiskLevel::ALL {
            assert!(
                frames_for(level).len() >= 10,
                "{level} needs a rich frame bank"
            );
        }
    }

    #[test]
    fn frames_are_nonempty() {
        for level in RiskLevel::ALL {
            for frame in frames_for(level) {
                assert!(!frame.is_empty());
            }
        }
    }

    #[test]
    fn slot_fillers_nonempty_for_open_slots() {
        for slot in [
            Means, EndVerb, Feeling, Relation, TimeRef, LifeTopic, PrepAct, Filler,
        ] {
            assert!(!slot_fillers(slot).is_empty());
        }
        assert!(slot_fillers(Lit("x")).is_empty());
    }

    #[test]
    fn vocabulary_collision_exists_between_indicator_and_ideation() {
        // The difficulty calibration depends on Indicator frames reusing
        // EndVerb vocabulary — verify structurally.
        let uses_end_verb = |frames: &[Frame]| {
            frames
                .iter()
                .any(|f| f.iter().any(|s| matches!(s, Slot::EndVerb)))
        };
        assert!(uses_end_verb(INDICATOR_FRAMES));
        assert!(uses_end_verb(IDEATION_FRAMES));
        assert!(uses_end_verb(ATTEMPT_FRAMES));
    }

    #[test]
    fn filler_bank_is_wide() {
        assert!(FILLERS.len() >= 15, "filler dilution needs variety");
        assert!(CAMOUFLAGE_FRAMES.len() >= 20, "camouflage needs variety");
    }

    #[test]
    fn camouflage_covers_signal_vocabulary() {
        // The unigram-neutralization property: key signal tokens must also
        // appear in neutral camouflage contexts.
        let all_text: String = CAMOUFLAGE_FRAMES
            .iter()
            .flat_map(|f| f.iter())
            .filter_map(|s| match s {
                Slot::Lit(t) => Some(*t),
                _ => None,
            })
            .collect::<Vec<_>>()
            .join(" ");
        for word in [
            "want",
            "tried",
            "took",
            "found",
            "bought",
            "survived",
            "bridge",
            "hospital",
            "woke",
            "note",
            "gave away",
            "attempted",
        ] {
            assert!(
                all_text.contains(word),
                "camouflage bank must reuse {word:?}"
            );
        }
        // And relations appear via slots.
        let has_relation = CAMOUFLAGE_FRAMES
            .iter()
            .any(|f| f.iter().any(|s| matches!(s, Slot::Relation)));
        assert!(has_relation);
    }
}
