//! Inter-annotator agreement statistics.
//!
//! The paper's quality evaluation (§II-C1) reports **Fleiss' kappa** over
//! the 30 % triple-annotated subset (4,384 samples, κ = 0.7206). Fleiss'
//! kappa generalizes Cohen's kappa to any fixed number of raters per item;
//! both are implemented here against their standard formulations
//! (Fleiss 1971; Cohen 1960).

use rsd_common::{Result, RsdError};

/// Fleiss' kappa for `items[i][k]` = count of raters assigning item `i` to
/// category `k`. Every item must have the same total number of raters
/// (≥ 2) and at least one item is required.
///
/// Returns κ ∈ [-1, 1]; exactly 1.0 for perfect agreement. If expected
/// agreement is 1 (all raters always choose one category), agreement is
/// trivially perfect and 1.0 is returned.
pub fn fleiss_kappa(items: &[Vec<u64>]) -> Result<f64> {
    if items.is_empty() {
        return Err(RsdError::data("fleiss_kappa: no items"));
    }
    let n_cats = items[0].len();
    if n_cats < 2 {
        return Err(RsdError::data("fleiss_kappa: need at least 2 categories"));
    }
    let n_raters: u64 = items[0].iter().sum();
    if n_raters < 2 {
        return Err(RsdError::data("fleiss_kappa: need at least 2 raters"));
    }
    let n_items = items.len() as f64;
    let n = n_raters as f64;

    let mut category_totals = vec![0.0f64; n_cats];
    let mut p_bar_sum = 0.0f64;

    for (idx, item) in items.iter().enumerate() {
        if item.len() != n_cats {
            return Err(RsdError::data(format!(
                "fleiss_kappa: item {idx} has {} categories, expected {n_cats}",
                item.len()
            )));
        }
        let total: u64 = item.iter().sum();
        if total != n_raters {
            return Err(RsdError::data(format!(
                "fleiss_kappa: item {idx} has {total} ratings, expected {n_raters}"
            )));
        }
        let mut agree = 0.0;
        for (&c, cat_total) in item.iter().zip(category_totals.iter_mut()) {
            let c = c as f64;
            agree += c * (c - 1.0);
            *cat_total += c;
        }
        p_bar_sum += agree / (n * (n - 1.0));
    }

    let p_bar = p_bar_sum / n_items;
    let p_e: f64 = category_totals
        .iter()
        .map(|&t| {
            let p_j = t / (n_items * n);
            p_j * p_j
        })
        .sum();

    if (1.0 - p_e).abs() < 1e-12 {
        // All mass on a single category: agreement is trivially perfect.
        return Ok(1.0);
    }
    Ok((p_bar - p_e) / (1.0 - p_e))
}

/// Convenience: build the Fleiss count table from per-rater label vectors
/// (`raters[r][i]` = category chosen by rater `r` for item `i`).
pub fn fleiss_kappa_from_raters(raters: &[Vec<usize>], n_cats: usize) -> Result<f64> {
    if raters.len() < 2 {
        return Err(RsdError::data("need at least 2 raters"));
    }
    let n_items = raters[0].len();
    if raters.iter().any(|r| r.len() != n_items) {
        return Err(RsdError::data("raters labelled different item counts"));
    }
    if n_items == 0 {
        return Err(RsdError::data("no items"));
    }
    let mut items = vec![vec![0u64; n_cats]; n_items];
    for rater in raters {
        for (i, &label) in rater.iter().enumerate() {
            if label >= n_cats {
                return Err(RsdError::data(format!("label {label} out of range")));
            }
            items[i][label] += 1;
        }
    }
    fleiss_kappa(&items)
}

/// Cohen's kappa between two raters' labels over the same items.
pub fn cohens_kappa(a: &[usize], b: &[usize], n_cats: usize) -> Result<f64> {
    if a.len() != b.len() {
        return Err(RsdError::data("cohens_kappa: length mismatch"));
    }
    if a.is_empty() {
        return Err(RsdError::data("cohens_kappa: no items"));
    }
    let n = a.len() as f64;
    let mut joint = vec![0.0f64; n_cats * n_cats];
    for (&x, &y) in a.iter().zip(b) {
        if x >= n_cats || y >= n_cats {
            return Err(RsdError::data("cohens_kappa: label out of range"));
        }
        joint[x * n_cats + y] += 1.0;
    }
    let p_o: f64 = (0..n_cats).map(|c| joint[c * n_cats + c]).sum::<f64>() / n;
    let p_e: f64 = (0..n_cats)
        .map(|c| {
            let row: f64 = (0..n_cats).map(|j| joint[c * n_cats + j]).sum::<f64>() / n;
            let col: f64 = (0..n_cats).map(|i| joint[i * n_cats + c]).sum::<f64>() / n;
            row * col
        })
        .sum();
    if (1.0 - p_e).abs() < 1e-12 {
        return Ok(1.0);
    }
    Ok((p_o - p_e) / (1.0 - p_e))
}

/// Verbal interpretation bands for kappa (Landis & Koch) — used in audit
/// output ("0.7206 reflects a really good level of agreement").
pub fn interpret_kappa(kappa: f64) -> &'static str {
    match kappa {
        k if k < 0.0 => "poor",
        k if k < 0.2 => "slight",
        k if k < 0.4 => "fair",
        k if k < 0.6 => "moderate",
        k if k < 0.8 => "substantial",
        _ => "almost perfect",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleiss_textbook_example() {
        // Fleiss (1971)-style worked example, 14 raters, 5 categories.
        let items: Vec<Vec<u64>> = vec![
            vec![0, 0, 0, 0, 14],
            vec![0, 2, 6, 4, 2],
            vec![0, 0, 3, 5, 6],
            vec![0, 3, 9, 2, 0],
            vec![2, 2, 8, 1, 1],
            vec![7, 7, 0, 0, 0],
            vec![3, 2, 6, 3, 0],
            vec![2, 5, 3, 2, 2],
            vec![6, 5, 2, 1, 0],
            vec![0, 2, 2, 3, 7],
        ];
        let k = fleiss_kappa(&items).unwrap();
        assert!((k - 0.2099).abs() < 0.001, "got {k}");
    }

    #[test]
    fn perfect_agreement_is_one() {
        let items = vec![vec![3, 0], vec![0, 3], vec![3, 0]];
        assert!((fleiss_kappa(&items).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_category_degenerate_is_one() {
        let items = vec![vec![3, 0], vec![3, 0]];
        assert_eq!(fleiss_kappa(&items).unwrap(), 1.0);
    }

    #[test]
    fn validation_errors() {
        assert!(fleiss_kappa(&[]).is_err());
        assert!(fleiss_kappa(&[vec![2]]).is_err()); // one category
        assert!(fleiss_kappa(&[vec![1, 0]]).is_err()); // one rater
        assert!(fleiss_kappa(&[vec![2, 1], vec![1, 1]]).is_err()); // uneven raters
        assert!(fleiss_kappa(&[vec![2, 1], vec![1, 1, 1]]).is_err()); // ragged
    }

    #[test]
    fn from_raters_matches_table_form() {
        let raters = vec![vec![0, 1, 2, 0], vec![0, 1, 1, 0], vec![0, 1, 2, 1]];
        let k1 = fleiss_kappa_from_raters(&raters, 3).unwrap();
        let items = vec![vec![3, 0, 0], vec![0, 3, 0], vec![0, 1, 2], vec![2, 1, 0]];
        let k2 = fleiss_kappa(&items).unwrap();
        assert!((k1 - k2).abs() < 1e-12);
    }

    #[test]
    fn cohens_known_value() {
        // Classic 2x2 example: po = 0.7, pe = 0.5 → κ = 0.4.
        let a = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        let b = vec![0, 0, 0, 1, 1, 1, 1, 1, 0, 1];
        // po = 7/10; row marginals a: 0.5/0.5; col b: 0.4/0.6 → pe = 0.5
        let k = cohens_kappa(&a, &b, 2).unwrap();
        assert!((k - (0.7 - 0.5) / 0.5).abs() < 1e-12);
    }

    #[test]
    fn cohens_perfect_and_errors() {
        let a = vec![0, 1, 2];
        assert!((cohens_kappa(&a, &a, 3).unwrap() - 1.0).abs() < 1e-12);
        assert!(cohens_kappa(&a, &[0, 1], 3).is_err());
        assert!(cohens_kappa(&[], &[], 3).is_err());
        assert!(cohens_kappa(&[5], &[0], 3).is_err());
    }

    #[test]
    fn interpretation_bands() {
        assert_eq!(interpret_kappa(-0.1), "poor");
        assert_eq!(interpret_kappa(0.1), "slight");
        assert_eq!(interpret_kappa(0.3), "fair");
        assert_eq!(interpret_kappa(0.5), "moderate");
        assert_eq!(interpret_kappa(0.7206), "substantial");
        assert_eq!(interpret_kappa(0.9), "almost perfect");
    }
}
