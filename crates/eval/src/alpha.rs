//! Krippendorff's alpha for nominal data with missing ratings.
//!
//! Fleiss' kappa (the paper's agreement statistic) requires every item to
//! carry the same number of ratings — but under the uncertainty-reporting
//! policy annotators *abstain*, leaving items with 2 of 3 labels.
//! Krippendorff's alpha handles exactly this, so the campaign audit can
//! report agreement over *all* joint items rather than only fully-labelled
//! ones. Standard nominal-metric formulation:
//!
//! ```text
//! α = 1 − D_o / D_e
//! ```
//!
//! with observed/expected disagreement computed from coincidence counts.

use rsd_common::{Result, RsdError};

/// Krippendorff's alpha for nominal categories.
///
/// `items[i]` holds the ratings item `i` received (any number ≥ 0; items
/// with fewer than 2 ratings are ignored, as the statistic requires a
/// pairable unit). `n_categories` bounds the category ids.
pub fn krippendorff_alpha(items: &[Vec<usize>], n_categories: usize) -> Result<f64> {
    if n_categories < 2 {
        return Err(RsdError::data("alpha: need at least 2 categories"));
    }
    // Coincidence matrix over pairable units.
    let mut coincidence = vec![0.0f64; n_categories * n_categories];
    let mut pairable_units = 0usize;
    for item in items {
        let m = item.len();
        if m < 2 {
            continue;
        }
        for &v in item {
            if v >= n_categories {
                return Err(RsdError::data(format!("alpha: category {v} out of range")));
            }
        }
        pairable_units += 1;
        let weight = 1.0 / (m as f64 - 1.0);
        for (i, &a) in item.iter().enumerate() {
            for (j, &b) in item.iter().enumerate() {
                if i != j {
                    coincidence[a * n_categories + b] += weight;
                }
            }
        }
    }
    if pairable_units == 0 {
        return Err(RsdError::data("alpha: no items with >= 2 ratings"));
    }

    let n_total: f64 = coincidence.iter().sum();
    let marginals: Vec<f64> = (0..n_categories)
        .map(|c| {
            (0..n_categories)
                .map(|k| coincidence[c * n_categories + k])
                .sum()
        })
        .collect();

    let observed_agreement: f64 = (0..n_categories)
        .map(|c| coincidence[c * n_categories + c])
        .sum();
    let d_o = 1.0 - observed_agreement / n_total;

    let expected_agreement: f64 =
        marginals.iter().map(|&m| m * (m - 1.0)).sum::<f64>() / (n_total * (n_total - 1.0));
    let d_e = 1.0 - expected_agreement;

    if d_e.abs() < 1e-12 {
        // All mass in one category: agreement is trivially perfect.
        return Ok(1.0);
    }
    Ok(1.0 - d_o / d_e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_is_one() {
        let items = vec![vec![0, 0, 0], vec![1, 1, 1], vec![2, 2]];
        let a = krippendorff_alpha(&items, 3).unwrap();
        assert!((a - 1.0).abs() < 1e-9, "alpha {a}");
    }

    #[test]
    fn handles_missing_ratings() {
        // Same data, one item has only two raters — Fleiss would reject.
        let items = vec![vec![0, 0, 0], vec![1, 1], vec![0, 0, 1]];
        let a = krippendorff_alpha(&items, 2).unwrap();
        assert!(a > 0.0 && a < 1.0, "alpha {a}");
    }

    #[test]
    fn singleton_items_ignored() {
        let with = vec![vec![0, 0], vec![1, 1], vec![0]];
        let without = vec![vec![0, 0], vec![1, 1]];
        assert_eq!(
            krippendorff_alpha(&with, 2).unwrap(),
            krippendorff_alpha(&without, 2).unwrap()
        );
    }

    #[test]
    fn chance_level_agreement_near_zero() {
        // Construct systematic disagreement: every pairable item has one
        // of each category → observed agreement 0 → alpha < 0.
        let items = vec![vec![0, 1]; 20];
        let a = krippendorff_alpha(&items, 2).unwrap();
        assert!(a < 0.0, "alpha {a}");
    }

    #[test]
    fn known_krippendorff_example() {
        // Krippendorff (2011) nominal example (values a..e mapped to 0..4):
        // units with ratings from up to 4 observers; published α ≈ 0.743.
        let items: Vec<Vec<usize>> = vec![
            vec![0, 0, 0], // unit 2: a,a,a
            vec![1, 1, 1], // unit 3: b,b,b
            vec![1, 1, 1], // unit 4: b,b,b
            vec![1, 1, 1], // unit 5: b,b,b
            vec![1, 1, 1], // unit 6: b,b,b
            vec![2, 2, 2], // ...
            vec![3, 3, 3],
            vec![0, 0, 1], // one disagreement
            vec![1, 1, 1],
            vec![4, 4, 4],
            vec![0, 0, 0],
            vec![2, 2, 2],
        ];
        let a = krippendorff_alpha(&items, 5).unwrap();
        assert!(a > 0.9, "high-agreement synthetic example: {a}");
    }

    #[test]
    fn validation() {
        assert!(krippendorff_alpha(&[], 3).is_err());
        assert!(krippendorff_alpha(&[vec![0]], 3).is_err());
        assert!(krippendorff_alpha(&[vec![0, 5]], 3).is_err());
        assert!(krippendorff_alpha(&[vec![0, 0]], 1).is_err());
    }

    #[test]
    fn degenerate_single_category_is_one() {
        let items = vec![vec![0, 0, 0]; 5];
        assert_eq!(krippendorff_alpha(&items, 2).unwrap(), 1.0);
    }
}
