//! Plain-text classification reports.
//!
//! Formats a [`ConfusionMatrix`] the way the paper's tables do: accuracy,
//! macro-F1, then per-class F1 — so bench binaries can print rows directly
//! comparable to Table III.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::confusion::ConfusionMatrix;

/// A rendered classification report for one model run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassificationReport {
    /// Display name of the model.
    pub model: String,
    /// Class display names, index-aligned with the confusion matrix.
    pub class_names: Vec<String>,
    /// Overall accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Macro-averaged F1 in `[0, 1]`.
    pub macro_f1: f64,
    /// Per-class F1 in `[0, 1]`.
    pub class_f1: Vec<f64>,
    /// Per-class support (true-label counts).
    pub support: Vec<u64>,
}

impl ClassificationReport {
    /// Build a report from a confusion matrix.
    ///
    /// Panics if `class_names` does not match the matrix shape — that is a
    /// programming error, not a data error.
    pub fn from_confusion(
        model: impl Into<String>,
        class_names: &[&str],
        m: &ConfusionMatrix,
    ) -> Self {
        assert_eq!(
            class_names.len(),
            m.n_classes(),
            "class names must match matrix shape"
        );
        ClassificationReport {
            model: model.into(),
            class_names: class_names.iter().map(|s| s.to_string()).collect(),
            accuracy: m.accuracy(),
            macro_f1: m.macro_f1(),
            class_f1: (0..m.n_classes()).map(|c| m.f1(c)).collect(),
            support: (0..m.n_classes()).map(|c| m.support(c)).collect(),
        }
    }

    /// One row in the Table III layout:
    /// `model | acc% | mac-f1% | per-class f1% ...`.
    pub fn table_row(&self) -> String {
        let mut row = format!(
            "{:<10} {:>6.1} {:>7.1}",
            self.model,
            self.accuracy * 100.0,
            self.macro_f1 * 100.0
        );
        for f1 in &self.class_f1 {
            row.push_str(&format!(" {:>6.1}", f1 * 100.0));
        }
        row
    }

    /// Header matching [`ClassificationReport::table_row`].
    pub fn table_header(class_names: &[&str]) -> String {
        let mut header = format!("{:<10} {:>6} {:>7}", "Model", "Acc%", "MacF1%");
        for name in class_names {
            let abbrev: String = name.chars().take(2).collect();
            header.push_str(&format!(" {:>5}%", abbrev.to_uppercase()));
        }
        header
    }
}

/// Render a confusion matrix as a fixed-width grid with per-class
/// precision/recall margins — the long-form companion to the Table III
/// rows.
pub fn render_confusion_grid(m: &ConfusionMatrix, class_names: &[&str]) -> String {
    assert_eq!(class_names.len(), m.n_classes(), "class names must match");
    let mut out = String::new();
    out.push_str(&format!("{:>12}", "true/pred"));
    for name in class_names {
        out.push_str(&format!("{:>10}", truncate(name, 9)));
    }
    out.push_str(&format!("{:>9}{:>9}\n", "recall", "support"));
    for (t, name) in class_names.iter().enumerate() {
        out.push_str(&format!("{:>12}", truncate(name, 11)));
        for p in 0..m.n_classes() {
            out.push_str(&format!("{:>10}", m.get(t, p)));
        }
        out.push_str(&format!(
            "{:>8.1}%{:>9}\n",
            m.recall(t) * 100.0,
            m.support(t)
        ));
    }
    out.push_str(&format!("{:>12}", "precision"));
    for p in 0..m.n_classes() {
        out.push_str(&format!("{:>9.1}%", m.precision(p) * 100.0));
    }
    out.push('\n');
    out
}

fn truncate(s: &str, n: usize) -> &str {
    &s[..s.len().min(n)]
}

impl fmt::Display for ClassificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "model: {}", self.model)?;
        writeln!(
            f,
            "accuracy: {:.1}%  macro-F1: {:.1}%",
            self.accuracy * 100.0,
            self.macro_f1 * 100.0
        )?;
        for ((name, f1), sup) in self
            .class_names
            .iter()
            .zip(&self.class_f1)
            .zip(&self.support)
        {
            writeln!(f, "  {name:<10} F1 {:.1}%  (n={sup})", f1 * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ClassificationReport {
        let m = ConfusionMatrix::from_labels(2, &[0, 0, 1, 1], &[0, 1, 1, 1]).unwrap();
        ClassificationReport::from_confusion("TestModel", &["Neg", "Pos"], &m)
    }

    #[test]
    fn fields_derive_from_matrix() {
        let r = report();
        assert!((r.accuracy - 0.75).abs() < 1e-12);
        assert_eq!(r.class_f1.len(), 2);
        assert_eq!(r.support, vec![2, 2]);
    }

    #[test]
    fn table_row_contains_percentages() {
        let r = report();
        let row = r.table_row();
        assert!(row.starts_with("TestModel"));
        assert!(row.contains("75.0"));
    }

    #[test]
    fn header_matches_columns() {
        let h = ClassificationReport::table_header(&["Indicator", "Ideation"]);
        assert!(h.contains("Model"));
        assert!(h.contains("IN"));
        assert!(h.contains("ID"));
    }

    #[test]
    fn display_renders_every_class() {
        let text = report().to_string();
        assert!(text.contains("Neg"));
        assert!(text.contains("Pos"));
        assert!(text.contains("accuracy"));
    }

    #[test]
    #[should_panic(expected = "class names must match")]
    fn shape_mismatch_panics() {
        let m = ConfusionMatrix::new(3);
        ClassificationReport::from_confusion("x", &["a", "b"], &m);
    }

    #[test]
    fn confusion_grid_renders_counts_and_margins() {
        let m = ConfusionMatrix::from_labels(2, &[0, 0, 1, 1], &[0, 1, 1, 1]).unwrap();
        let grid = render_confusion_grid(&m, &["Neg", "Pos"]);
        assert!(grid.contains("true/pred"));
        assert!(grid.contains("precision"));
        assert!(grid.contains("recall"));
        // Row for Neg: 1 correct, 1 confused; recall 50%.
        assert!(grid.contains("50.0%"), "grid:\n{grid}");
        assert!(grid.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "class names must match")]
    fn confusion_grid_shape_checked() {
        render_confusion_grid(&ConfusionMatrix::new(3), &["a"]);
    }
}
