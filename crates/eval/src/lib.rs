#![warn(missing_docs)]

//! Evaluation metrics for the RSD-15K benchmark.
//!
//! * [`confusion`] — n-class confusion matrices with accuracy, per-class
//!   precision/recall/F1, and macro/weighted aggregates (the columns of
//!   the paper's Table III).
//! * [`kappa`] — inter-annotator agreement: Fleiss' kappa (the paper's
//!   §II-C1 reports κ = 0.7206 over the triple-annotated 30 %) and
//!   Cohen's kappa for pairwise checks.
//! * [`report`] — plain-text classification reports for the bench
//!   binaries.
//! * [`bootstrap`] — percentile-bootstrap confidence intervals for
//!   accuracy/macro-F1 (EXPERIMENTS.md quotes these for small test sets).
//! * [`significance`] — exact McNemar tests for paired model comparison
//!   (are adjacent Table III rows distinguishable?).
//! * [`alpha`] — Krippendorff's alpha: agreement with missing ratings,
//!   which the uncertainty-reporting policy produces by design.

pub mod alpha;
pub mod bootstrap;
pub mod confusion;
pub mod kappa;
pub mod report;
pub mod significance;

pub use alpha::krippendorff_alpha;
pub use bootstrap::{bootstrap_metrics, BootstrapInterval};
pub use confusion::ConfusionMatrix;
pub use kappa::{cohens_kappa, fleiss_kappa};
pub use report::ClassificationReport;
pub use significance::{mcnemar, McNemarOutcome};
