//! n-class confusion matrices and derived classification metrics.

use serde::{Deserialize, Serialize};

use rsd_common::{Result, RsdError};

/// A square confusion matrix: `counts[true][pred]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    n_classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Empty matrix for `n_classes` classes.
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes > 0, "ConfusionMatrix: need at least one class");
        ConfusionMatrix {
            n_classes,
            counts: vec![0; n_classes * n_classes],
        }
    }

    /// Build from parallel label slices.
    pub fn from_labels(n_classes: usize, truth: &[usize], pred: &[usize]) -> Result<Self> {
        if truth.len() != pred.len() {
            return Err(RsdError::data(format!(
                "label length mismatch: {} vs {}",
                truth.len(),
                pred.len()
            )));
        }
        let mut m = ConfusionMatrix::new(n_classes);
        for (&t, &p) in truth.iter().zip(pred) {
            m.record(t, p)?;
        }
        Ok(m)
    }

    /// Record one observation.
    pub fn record(&mut self, truth: usize, pred: usize) -> Result<()> {
        if truth >= self.n_classes || pred >= self.n_classes {
            return Err(RsdError::data(format!(
                "label out of range: true {truth}, pred {pred}, classes {}",
                self.n_classes
            )));
        }
        self.counts[truth * self.n_classes + pred] += 1;
        Ok(())
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Count at `(true, pred)`.
    pub fn get(&self, truth: usize, pred: usize) -> u64 {
        self.counts[truth * self.n_classes + pred]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Observations whose true class is `c` (row sum) — the class support.
    pub fn support(&self, c: usize) -> u64 {
        (0..self.n_classes).map(|p| self.get(c, p)).sum()
    }

    /// Observations predicted as `c` (column sum).
    pub fn predicted(&self, c: usize) -> u64 {
        (0..self.n_classes).map(|t| self.get(t, c)).sum()
    }

    /// Overall accuracy; 0.0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.n_classes).map(|c| self.get(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Precision for class `c`; 0.0 when nothing was predicted as `c`.
    pub fn precision(&self, c: usize) -> f64 {
        let pred = self.predicted(c);
        if pred == 0 {
            0.0
        } else {
            self.get(c, c) as f64 / pred as f64
        }
    }

    /// Recall for class `c`; 0.0 when the class has no support.
    pub fn recall(&self, c: usize) -> f64 {
        let sup = self.support(c);
        if sup == 0 {
            0.0
        } else {
            self.get(c, c) as f64 / sup as f64
        }
    }

    /// F1 for class `c`; harmonic mean of precision and recall.
    pub fn f1(&self, c: usize) -> f64 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean of per-class F1 — the paper's "Mac-F1".
    pub fn macro_f1(&self) -> f64 {
        (0..self.n_classes).map(|c| self.f1(c)).sum::<f64>() / self.n_classes as f64
    }

    /// Support-weighted mean of per-class F1.
    pub fn weighted_f1(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (0..self.n_classes)
            .map(|c| self.f1(c) * self.support(c) as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Merge another matrix of the same shape into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) -> Result<()> {
        if self.n_classes != other.n_classes {
            return Err(RsdError::data("confusion matrix shape mismatch"));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3-class example with known metrics.
    fn sample() -> ConfusionMatrix {
        // truth: 0,0,0,1,1,2 ; pred: 0,0,1,1,2,2
        ConfusionMatrix::from_labels(3, &[0, 0, 0, 1, 1, 2], &[0, 0, 1, 1, 2, 2]).unwrap()
    }

    #[test]
    fn counts_and_totals() {
        let m = sample();
        assert_eq!(m.total(), 6);
        assert_eq!(m.get(0, 0), 2);
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.support(0), 3);
        assert_eq!(m.predicted(2), 2);
    }

    #[test]
    fn accuracy_matches_hand_computation() {
        let m = sample();
        assert!((m.accuracy() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn per_class_prf() {
        let m = sample();
        // class 0: precision 2/2 = 1, recall 2/3
        assert!((m.precision(0) - 1.0).abs() < 1e-12);
        assert!((m.recall(0) - 2.0 / 3.0).abs() < 1e-12);
        let f1_0 = 2.0 * 1.0 * (2.0 / 3.0) / (1.0 + 2.0 / 3.0);
        assert!((m.f1(0) - f1_0).abs() < 1e-12);
        // class 1: precision 1/2, recall 1/2 → f1 = 1/2
        assert!((m.f1(1) - 0.5).abs() < 1e-12);
        // class 2: precision 1/2, recall 1 → f1 = 2/3
        assert!((m.f1(2) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn macro_and_weighted_f1() {
        let m = sample();
        let macro_f1 = (m.f1(0) + m.f1(1) + m.f1(2)) / 3.0;
        assert!((m.macro_f1() - macro_f1).abs() < 1e-12);
        let weighted = (m.f1(0) * 3.0 + m.f1(1) * 2.0 + m.f1(2)) / 6.0;
        assert!((m.weighted_f1() - weighted).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let m = ConfusionMatrix::new(2);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(0), 0.0);
        assert_eq!(m.recall(0), 0.0);
        assert_eq!(m.f1(0), 0.0);
        assert_eq!(m.macro_f1(), 0.0);
        assert_eq!(m.weighted_f1(), 0.0);
    }

    #[test]
    fn out_of_range_labels_rejected() {
        let mut m = ConfusionMatrix::new(2);
        assert!(m.record(0, 2).is_err());
        assert!(m.record(2, 0).is_err());
        assert!(ConfusionMatrix::from_labels(2, &[0], &[0, 1]).is_err());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample();
        let b = sample();
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 12);
        assert_eq!(a.get(0, 0), 4);
        let c = ConfusionMatrix::new(2);
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn perfect_predictions() {
        let m = ConfusionMatrix::from_labels(4, &[0, 1, 2, 3], &[0, 1, 2, 3]).unwrap();
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
    }
}
