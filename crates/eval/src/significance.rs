//! Paired significance testing for model comparisons.
//!
//! Adjacent rows of Table III differ by a few points on a 126-user test
//! set; McNemar's test on the paired correct/incorrect outcomes is the
//! standard way to ask whether such a gap is distinguishable from noise.
//! The exact binomial form is used (appropriate for small discordant
//! counts), so no χ² approximation error at benchmark scale.

use serde::{Deserialize, Serialize};

use rsd_common::{Result, RsdError};

/// Outcome of a McNemar comparison between two classifiers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McNemarOutcome {
    /// Instances model A got right and B got wrong.
    pub a_only: u64,
    /// Instances model B got right and A got wrong.
    pub b_only: u64,
    /// Two-sided exact p-value for "A and B have equal error rates".
    pub p_value: f64,
}

impl McNemarOutcome {
    /// True when the difference is significant at `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Exact (binomial) McNemar test from paired predictions.
pub fn mcnemar(truth: &[usize], pred_a: &[usize], pred_b: &[usize]) -> Result<McNemarOutcome> {
    if truth.len() != pred_a.len() || truth.len() != pred_b.len() {
        return Err(RsdError::data("mcnemar: length mismatch"));
    }
    if truth.is_empty() {
        return Err(RsdError::data("mcnemar: empty sample"));
    }
    let mut a_only = 0u64;
    let mut b_only = 0u64;
    for ((&t, &a), &b) in truth.iter().zip(pred_a).zip(pred_b) {
        match (a == t, b == t) {
            (true, false) => a_only += 1,
            (false, true) => b_only += 1,
            _ => {}
        }
    }
    let n = a_only + b_only;
    let p_value = if n == 0 {
        1.0
    } else {
        // Two-sided exact binomial: 2 · P(X ≤ min(a,b)) under p = ½.
        let k = a_only.min(b_only);
        (2.0 * binom_cdf(k, n, 0.5)).min(1.0)
    };
    Ok(McNemarOutcome {
        a_only,
        b_only,
        p_value,
    })
}

/// P(X ≤ k) for X ~ Binomial(n, p), computed in log space for stability.
fn binom_cdf(k: u64, n: u64, p: f64) -> f64 {
    let mut total = 0.0f64;
    for i in 0..=k {
        total += binom_pmf(i, n, p);
    }
    total.min(1.0)
}

fn binom_pmf(k: u64, n: u64, p: f64) -> f64 {
    // ln C(n, k) via lgamma-free accumulation (n is small in practice).
    let mut ln_c = 0.0f64;
    for i in 0..k {
        ln_c += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    (ln_c + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_models_are_not_significant() {
        let truth = vec![0, 1, 2, 3, 0, 1];
        let pred = vec![0, 1, 0, 3, 1, 1];
        let out = mcnemar(&truth, &pred, &pred).unwrap();
        assert_eq!(out.a_only, 0);
        assert_eq!(out.b_only, 0);
        assert_eq!(out.p_value, 1.0);
        assert!(!out.significant(0.05));
    }

    #[test]
    fn one_sided_dominance_is_significant() {
        // B correct everywhere; A wrong on 12 of them — all discordant
        // pairs favour B.
        let n = 40;
        let truth: Vec<usize> = (0..n).map(|i| i % 4).collect();
        let pred_b = truth.clone();
        let pred_a: Vec<usize> = truth
            .iter()
            .enumerate()
            .map(|(i, &t)| if i < 12 { (t + 1) % 4 } else { t })
            .collect();
        let out = mcnemar(&truth, &pred_a, &pred_b).unwrap();
        assert_eq!(out.a_only, 0);
        assert_eq!(out.b_only, 12);
        assert!(out.p_value < 0.001, "p {}", out.p_value);
        assert!(out.significant(0.05));
    }

    #[test]
    fn balanced_disagreement_is_not_significant() {
        let n = 40;
        let truth: Vec<usize> = (0..n).map(|i| i % 2).collect();
        // A wrong on first 5, B wrong on next 5: 5 vs 5 discordant.
        let pred_a: Vec<usize> = truth
            .iter()
            .enumerate()
            .map(|(i, &t)| if i < 5 { 1 - t } else { t })
            .collect();
        let pred_b: Vec<usize> = truth
            .iter()
            .enumerate()
            .map(|(i, &t)| if (5..10).contains(&i) { 1 - t } else { t })
            .collect();
        let out = mcnemar(&truth, &pred_a, &pred_b).unwrap();
        assert_eq!(out.a_only, 5);
        assert_eq!(out.b_only, 5);
        assert!(out.p_value > 0.5);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let total: f64 = (0..=20).map(|k| binom_pmf(k, 20, 0.5)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((binom_cdf(20, 20, 0.5) - 1.0).abs() < 1e-9);
        assert!((binom_cdf(10, 20, 0.5) - 0.588).abs() < 0.01);
    }

    #[test]
    fn validation() {
        assert!(mcnemar(&[0], &[0, 1], &[0]).is_err());
        assert!(mcnemar(&[], &[], &[]).is_err());
    }
}
