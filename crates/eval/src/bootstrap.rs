//! Bootstrap confidence intervals for classification metrics.
//!
//! The paper reports single-run numbers; for honest paper-vs-measured
//! comparisons on small test sets (126 users at paper scale) EXPERIMENTS.md
//! quotes percentile-bootstrap intervals computed here: resample the
//! (truth, prediction) pairs with replacement `B` times and take the
//! empirical quantiles of the metric distribution.

use serde::{Deserialize, Serialize};

use crate::confusion::ConfusionMatrix;
use rand::Rng;
use rsd_common::rng::stream_rng;
use rsd_common::{Result, RsdError};

/// A percentile-bootstrap interval for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapInterval {
    /// Point estimate on the full sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Confidence level (e.g. 0.95).
    pub level: f64,
}

impl BootstrapInterval {
    /// True when another point estimate lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        (self.lo..=self.hi).contains(&value)
    }
}

/// Bootstrap accuracy and macro-F1 for paired labels.
///
/// Returns `(accuracy, macro_f1)` intervals at `level` confidence using
/// `b` resamples.
pub fn bootstrap_metrics(
    n_classes: usize,
    truth: &[usize],
    pred: &[usize],
    b: usize,
    level: f64,
    seed: u64,
) -> Result<(BootstrapInterval, BootstrapInterval)> {
    if truth.len() != pred.len() {
        return Err(RsdError::data("bootstrap: length mismatch"));
    }
    if truth.is_empty() {
        return Err(RsdError::data("bootstrap: empty sample"));
    }
    if b < 10 {
        return Err(RsdError::config("b", "need at least 10 resamples"));
    }
    if !(0.5..1.0).contains(&level) {
        return Err(RsdError::config("level", "must be in [0.5, 1)"));
    }

    let full = ConfusionMatrix::from_labels(n_classes, truth, pred)?;
    let n = truth.len();
    let mut rng = stream_rng(seed, "eval.bootstrap");
    let mut accs = Vec::with_capacity(b);
    let mut f1s = Vec::with_capacity(b);
    for _ in 0..b {
        let mut m = ConfusionMatrix::new(n_classes);
        for _ in 0..n {
            let i = rng.gen_range(0..n);
            m.record(truth[i], pred[i])?;
        }
        accs.push(m.accuracy());
        f1s.push(m.macro_f1());
    }

    let make = |mut samples: Vec<f64>, estimate: f64| {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite metric"));
        let alpha = (1.0 - level) / 2.0;
        let lo_idx = ((samples.len() as f64) * alpha).floor() as usize;
        let hi_idx =
            (((samples.len() as f64) * (1.0 - alpha)).ceil() as usize).min(samples.len() - 1);
        BootstrapInterval {
            estimate,
            lo: samples[lo_idx],
            hi: samples[hi_idx],
            level,
        }
    };
    Ok((make(accs, full.accuracy()), make(f1s, full.macro_f1())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_brackets_point_estimate() {
        let truth: Vec<usize> = (0..200).map(|i| i % 4).collect();
        let pred: Vec<usize> = truth
            .iter()
            .enumerate()
            .map(|(i, &t)| if i % 5 == 0 { (t + 1) % 4 } else { t })
            .collect();
        let (acc, f1) = bootstrap_metrics(4, &truth, &pred, 200, 0.95, 1).unwrap();
        assert!(acc.lo <= acc.estimate && acc.estimate <= acc.hi);
        assert!(f1.lo <= f1.estimate && f1.estimate <= f1.hi);
        assert!((acc.estimate - 0.8).abs() < 1e-9);
        assert!(acc.contains(0.8));
    }

    #[test]
    fn wider_for_smaller_samples() {
        let make = |n: usize| {
            let truth: Vec<usize> = (0..n).map(|i| i % 2).collect();
            let pred: Vec<usize> = truth
                .iter()
                .enumerate()
                .map(|(i, &t)| if i % 4 == 0 { 1 - t } else { t })
                .collect();
            let (acc, _) = bootstrap_metrics(2, &truth, &pred, 300, 0.95, 2).unwrap();
            acc.hi - acc.lo
        };
        assert!(make(40) > make(400), "small samples → wider intervals");
    }

    #[test]
    fn perfect_predictions_are_degenerate() {
        let truth: Vec<usize> = (0..50).map(|i| i % 3).collect();
        let (acc, f1) = bootstrap_metrics(3, &truth, &truth, 100, 0.9, 3).unwrap();
        assert_eq!(acc.estimate, 1.0);
        assert_eq!(acc.lo, 1.0);
        assert_eq!(f1.hi, 1.0);
    }

    #[test]
    fn validation_errors() {
        assert!(bootstrap_metrics(2, &[0], &[0, 1], 100, 0.95, 0).is_err());
        assert!(bootstrap_metrics(2, &[], &[], 100, 0.95, 0).is_err());
        assert!(bootstrap_metrics(2, &[0], &[0], 5, 0.95, 0).is_err());
        assert!(bootstrap_metrics(2, &[0], &[0], 100, 1.5, 0).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let truth: Vec<usize> = (0..80).map(|i| i % 4).collect();
        let pred: Vec<usize> = (0..80).map(|i| (i + 1) % 4).collect();
        let a = bootstrap_metrics(4, &truth, &pred, 100, 0.95, 9).unwrap();
        let b = bootstrap_metrics(4, &truth, &pred, 100, 0.95, 9).unwrap();
        assert_eq!(a.0, b.0);
    }
}
