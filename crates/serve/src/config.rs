//! Serving knobs, resolved from the environment with hard errors on
//! invalid values (the `RSD_SCALE` precedent: a typo'd knob must name
//! itself and abort, never silently fall back to a default).

use rsd_common::{Result, RsdError};
use rsd_models::ServeModel;

/// Configuration for [`RiskService`](crate::RiskService).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of user-state shards (`RSD_SERVE_SHARDS`, default 8).
    pub shards: usize,
    /// Maximum resident users across all shards
    /// (`RSD_SERVE_LRU`, default 65 536).
    pub lru_capacity: usize,
    /// Micro-batch size cap for the scoring worker
    /// (`RSD_SERVE_BATCH`, default 64).
    pub batch_max: usize,
    /// Bounded-channel capacity for ingress and results
    /// (`RSD_SERVE_CHANNEL_CAP`, default 1024).
    pub channel_cap: usize,
    /// Scoring backend the service is expected to run
    /// (`RSD_SERVE_MODEL`: `gbdt | plm-f32 | plm-int8`, default `gbdt`).
    /// The fitting side (loadgen, deployment harness) routes on this to
    /// build the matching [`ScoringModel`](rsd_models::ScoringModel).
    pub model: ServeModel,
    /// Fault injection for the SLO self-test
    /// (`RSD_SERVE_INJECT_STALL_MS`): when set, the scoring worker
    /// sleeps this long once, right after its first micro-batch, so CI
    /// can assert the burn-rate monitor trips on a real stall. Unset
    /// (or `0`/`off`) in every production configuration.
    pub inject_stall_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 8,
            lru_capacity: 65_536,
            batch_max: 64,
            channel_cap: 1024,
            model: ServeModel::Gbdt,
            inject_stall_ms: None,
        }
    }
}

impl ServeConfig {
    /// Resolve from the environment. Unset knobs take their defaults;
    /// set-but-invalid knobs hard-error with the knob named.
    pub fn from_env() -> Result<ServeConfig> {
        let d = ServeConfig::default();
        Ok(ServeConfig {
            shards: positive_env("RSD_SERVE_SHARDS", d.shards)?,
            lru_capacity: positive_env("RSD_SERVE_LRU", d.lru_capacity)?,
            batch_max: positive_env("RSD_SERVE_BATCH", d.batch_max)?,
            channel_cap: positive_env("RSD_SERVE_CHANNEL_CAP", d.channel_cap)?,
            model: model_env(d.model)?,
            inject_stall_ms: optional_ms_env("RSD_SERVE_INJECT_STALL_MS")?,
        })
    }
}

/// Parse `var` as an optional millisecond count: unset, empty, `0`, and
/// `off` all mean disabled; anything else must be a positive integer or
/// the config errors naming the knob.
fn optional_ms_env(var: &'static str) -> Result<Option<u64>> {
    match std::env::var(var) {
        Err(_) => Ok(None),
        Ok(raw) => {
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed == "0" || trimmed == "off" {
                return Ok(None);
            }
            match trimmed.parse::<u64>() {
                Ok(ms) => Ok(Some(ms)),
                Err(_) => Err(RsdError::config(
                    var,
                    format!("expected milliseconds as a positive integer, got {raw:?}"),
                )),
            }
        }
    }
}

/// Parse `RSD_SERVE_MODEL`, defaulting when unset or blank. A set but
/// unknown spelling is a configuration error naming the knob and the
/// valid choices.
fn model_env(default: ServeModel) -> Result<ServeModel> {
    match std::env::var(ServeModel::KNOB) {
        Err(_) => Ok(default),
        Ok(raw) if raw.trim().is_empty() => Ok(default),
        Ok(raw) => ServeModel::from_name(raw.trim()),
    }
}

/// Parse `var` as a positive integer, defaulting when unset. A set but
/// unparsable (or zero) value is a configuration error naming the knob.
pub fn positive_env(var: &'static str, default: usize) -> Result<usize> {
    match std::env::var(var) {
        Err(_) => Ok(default),
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(RsdError::config(
                var,
                format!("expected a positive integer, got {raw:?}"),
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // All RSD_SERVE_* env manipulation lives in this single test to
    // avoid races with parallel test threads (the knobs are unique to
    // this crate).
    #[test]
    fn env_parsing_defaults_and_rejects_garbage() {
        for var in [
            "RSD_SERVE_SHARDS",
            "RSD_SERVE_LRU",
            "RSD_SERVE_BATCH",
            "RSD_SERVE_CHANNEL_CAP",
        ] {
            std::env::remove_var(var);
        }
        let cfg = ServeConfig::from_env().unwrap();
        assert_eq!(cfg.shards, 8);
        assert_eq!(cfg.batch_max, 64);

        std::env::set_var("RSD_SERVE_SHARDS", "16");
        std::env::set_var("RSD_SERVE_BATCH", " 32 ");
        let cfg = ServeConfig::from_env().unwrap();
        assert_eq!(cfg.shards, 16);
        assert_eq!(cfg.batch_max, 32, "whitespace trimmed");

        for bad in ["banana", "", "0", "-3", "1.5"] {
            std::env::set_var("RSD_SERVE_LRU", bad);
            let err = ServeConfig::from_env().unwrap_err().to_string();
            assert!(
                err.contains("RSD_SERVE_LRU"),
                "error must name the knob: {err}"
            );
        }

        for var in ["RSD_SERVE_SHARDS", "RSD_SERVE_LRU", "RSD_SERVE_BATCH"] {
            std::env::remove_var(var);
        }

        // Stall-injection knob: optional, disable spellings, named
        // errors on garbage.
        std::env::remove_var("RSD_SERVE_INJECT_STALL_MS");
        assert_eq!(ServeConfig::from_env().unwrap().inject_stall_ms, None);
        for off in ["", "0", "off"] {
            std::env::set_var("RSD_SERVE_INJECT_STALL_MS", off);
            assert_eq!(ServeConfig::from_env().unwrap().inject_stall_ms, None);
        }
        std::env::set_var("RSD_SERVE_INJECT_STALL_MS", " 1500 ");
        assert_eq!(ServeConfig::from_env().unwrap().inject_stall_ms, Some(1500));
        std::env::set_var("RSD_SERVE_INJECT_STALL_MS", "soon");
        let err = ServeConfig::from_env().unwrap_err().to_string();
        assert!(
            err.contains("RSD_SERVE_INJECT_STALL_MS"),
            "error must name the knob: {err}"
        );
        std::env::remove_var("RSD_SERVE_INJECT_STALL_MS");

        // Model routing knob: defaults, valid spellings, named errors.
        std::env::remove_var(ServeModel::KNOB);
        assert_eq!(ServeConfig::from_env().unwrap().model, ServeModel::Gbdt);
        std::env::set_var(ServeModel::KNOB, "");
        assert_eq!(ServeConfig::from_env().unwrap().model, ServeModel::Gbdt);
        std::env::set_var(ServeModel::KNOB, " plm-int8 ");
        assert_eq!(ServeConfig::from_env().unwrap().model, ServeModel::PlmInt8);
        std::env::set_var(ServeModel::KNOB, "plm-f32");
        assert_eq!(ServeConfig::from_env().unwrap().model, ServeModel::PlmF32);
        std::env::set_var(ServeModel::KNOB, "resnet");
        let err = ServeConfig::from_env().unwrap_err().to_string();
        assert!(
            err.contains("RSD_SERVE_MODEL") && err.contains("plm-int8"),
            "error must name the knob and the choices: {err}"
        );
        std::env::remove_var(ServeModel::KNOB);
    }
}
