#![warn(missing_docs)]

//! `rsd-serve` — the online risk-scoring service.
//!
//! RSD-15K's user-level task ("score the user's latest post given their
//! trailing window of 5") is inherently online; this crate is the
//! serving substrate the ROADMAP's first open item calls for, built by
//! refactoring the batch layers rather than wrapping them:
//!
//! * ingest runs on the `rsd-pipeline` [`service`
//!   primitives](rsd_pipeline::service) — bounded channels with blocking
//!   backpressure, a replayable stream source, a shutdown/drain signal;
//! * per-user state is the `rsd-dataset`
//!   [`UserWindowStore`](rsd_dataset::UserWindowStore) — the *same*
//!   latest-`W` selection the batch split path runs, sharded with a
//!   deterministic hot-user LRU;
//! * scoring goes through the `rsd-models`
//!   [`ScoringModel`](rsd_models::ScoringModel) — the inference-only
//!   entry point, micro-batched on the `rsd-par` pool with reusable
//!   scratch. `RSD_SERVE_MODEL` routes it across three backends: the
//!   table-3 XGBoost artifact (`gbdt`, default), the frozen PLM on the
//!   f32 reference path (`plm-f32`), or the same frozen PLM on the
//!   per-channel int8 fast path (`plm-int8`).
//!
//! Scores are a pure function of the submitted post sequence: batch
//! boundaries, thread counts, and wall-clock timing cannot change them.
//! The `loadgen` bench bin replays the synthetic corpus through this
//! service at a target QPS and publishes latency/throughput via
//! `rsd-obs`.

pub mod config;
pub mod service;

pub use config::ServeConfig;
pub use service::{IncomingPost, RiskService, ScoredPost, ServeReport};
