//! The online risk-scoring service: a long-running worker over the
//! `rsd-pipeline` service primitives, keyed on the shared
//! [`UserWindowStore`], scoring micro-batches through the table-3
//! [`ScoringModel`].
//!
//! # Determinism
//!
//! Scores depend only on the *sequence* of submitted posts, never on
//! timing: the ingest channel preserves submission order, the store
//! applies per-shard updates in that order, and per-request scoring is
//! self-contained, so batch boundaries (which *are* timing-dependent)
//! cannot change any score. Results are emitted in submission order.
//!
//! # Backpressure and drain
//!
//! `submit` blocks while the ingress channel is full — ingest pressure
//! propagates to the producer instead of growing an unbounded queue.
//! [`RiskService::drain`] triggers the shutdown signal (closing
//! ingress), lets the worker finish everything queued, and returns the
//! final [`ServeReport`].

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use rsd_common::Timestamp;
use rsd_corpus::RiskLevel;
use rsd_dataset::{StoreItem, UserWindowStore};
use rsd_models::{ScoreScratch, ScoringModel};
use rsd_obs::Stage;
use rsd_pipeline::service::{bounded, Receiver, SendError, Sender, Shutdown, Traced};

use crate::config::ServeConfig;

/// One post event entering the service.
#[derive(Debug, Clone)]
pub struct IncomingPost {
    /// Owning user id.
    pub user: u32,
    /// Post id (unique; tie-breaks same-timestamp ordering).
    pub post: u32,
    /// Post creation time.
    pub created: Timestamp,
    /// Cleaned post text.
    pub text: String,
}

/// The service's answer for one submitted post: the user's risk level
/// given their trailing window *after* this post.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoredPost {
    /// Owning user id.
    pub user: u32,
    /// The scored post's id.
    pub post: u32,
    /// Predicted user-level risk.
    pub level: RiskLevel,
    /// Posts in the window that produced the score (`≤ W`).
    pub window_len: usize,
    /// Posts ever seen for this user (since residency began).
    pub total_seen: u64,
    /// Submit-to-score latency in nanoseconds.
    pub latency_ns: u64,
    /// Request trace id (correlates with exemplar breakdowns).
    pub trace_id: u64,
}

/// Final accounting returned by [`RiskService::drain`].
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Requests scored.
    pub scored: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Largest micro-batch observed.
    pub max_batch: usize,
    /// Users evicted by the LRU under memory pressure.
    pub evicted_users: u64,
    /// Sum of per-shard peak resident users (bounded-memory witness).
    pub peak_resident_users: usize,
    /// Users resident at drain time.
    pub resident_users: usize,
    /// Submits that found the ingress queue full and blocked.
    pub blocked_submits: u64,
    /// The run's slowest requests with their full per-stage breakdowns
    /// (empty when telemetry is disarmed).
    pub exemplars: Vec<rsd_obs::exemplar::Exemplar>,
}

/// What rides the ingress channel: the post plus its trace context, so
/// the worker can attribute queue wait, batch wait, window update, and
/// scoring to the request that actually paid for them.
type Envelope = Traced<IncomingPost>;

/// Per-shard scoring scratch: feature row + timestamp buffer, reused
/// across every request the shard scores in a batch.
#[derive(Default)]
struct WorkerScratch {
    score: ScoreScratch,
    stamps: Vec<Timestamp>,
}

/// A running risk-scoring service (one scoring worker; shard-level
/// parallelism inside each micro-batch comes from the `rsd-par` pool).
pub struct RiskService {
    ingress: Sender<Envelope>,
    results: Receiver<ScoredPost>,
    shutdown: Shutdown,
    worker: Option<thread::JoinHandle<ServeReport>>,
    backend: &'static str,
}

impl RiskService {
    /// Start the service on a fitted scoring model.
    pub fn start(model: Arc<ScoringModel>, cfg: ServeConfig) -> RiskService {
        let (ingress_tx, ingress_rx) = bounded::<Envelope>(cfg.channel_cap, "serve.ingress");
        let (results_tx, results_rx) = bounded::<ScoredPost>(cfg.channel_cap, "serve.results");
        let shutdown = Shutdown::new();
        let closer = ingress_tx.clone();
        shutdown.on_trigger(move || closer.close());
        let backend = cfg.model.name();
        let worker = thread::Builder::new()
            .name("rsd-serve-worker".to_string())
            .spawn(move || worker_loop(model, cfg, ingress_rx, results_tx))
            .expect("spawn serve worker");
        RiskService {
            ingress: ingress_tx,
            results: results_rx,
            shutdown,
            worker: Some(worker),
            backend,
        }
    }

    /// Submit one post. Blocks while the ingress queue is full
    /// (backpressure); fails once the service is draining. Minting the
    /// trace context here makes the ingress instant the submit instant,
    /// so queue wait includes any time spent blocked on backpressure.
    pub fn submit(&self, post: IncomingPost) -> std::result::Result<(), SendError<IncomingPost>> {
        self.ingress
            .send(Envelope::mint(self.backend, post))
            .map_err(|SendError(env)| SendError(env.item))
    }

    /// A handle to the result stream (clone freely; results are emitted
    /// in submission order). Consume it concurrently with submission —
    /// the results channel is bounded too, so an unread result stream
    /// eventually backpressures the scoring worker.
    pub fn results(&self) -> Receiver<ScoredPost> {
        self.results.clone()
    }

    /// The drain signal (e.g. to trigger from a signal handler).
    pub fn shutdown_signal(&self) -> Shutdown {
        self.shutdown.clone()
    }

    /// Drain: close ingress, let the worker score everything queued,
    /// and return the final report. Queued results stay receivable on
    /// previously cloned [`results`](RiskService::results) handles.
    pub fn drain(mut self) -> ServeReport {
        self.shutdown.trigger();
        let blocked = self.ingress.blocked_sends();
        // Release our result handle so a worker blocked on a full,
        // unconsumed results queue fails fast instead of deadlocking
        // the join (external clones keep the stream alive if present).
        let results = std::mem::replace(&mut self.results, {
            let (_, rx) = bounded::<ScoredPost>(1, "serve.results.detached");
            rx
        });
        drop(results);
        let mut report = self
            .worker
            .take()
            .expect("drain called once")
            .join()
            .expect("serve worker panicked");
        report.blocked_submits = blocked;
        report
    }
}

fn worker_loop(
    model: Arc<ScoringModel>,
    cfg: ServeConfig,
    ingress: Receiver<Envelope>,
    results: Sender<ScoredPost>,
) -> ServeReport {
    rsd_obs::stage_register("serve.scored");
    let mut store: UserWindowStore<String> =
        UserWindowStore::new(cfg.shards, model.window(), cfg.lru_capacity);
    let mut report = ServeReport::default();
    let mut stall_pending = cfg.inject_stall_ms;

    // Blocking recv for the batch head, then opportunistically fill the
    // micro-batch from whatever else is already queued. Each pop closes
    // the envelope's queue-wait attribution.
    while let Some(mut first) = ingress.recv() {
        first.ctx.advance(Stage::Queue);
        let mut batch = Vec::with_capacity(cfg.batch_max);
        batch.push(first);
        while batch.len() < cfg.batch_max {
            match ingress.try_recv() {
                Some(mut env) => {
                    env.ctx.advance(Stage::Queue);
                    batch.push(env);
                }
                None => break,
            }
        }

        let n = batch.len();
        let mut bytes = 0u64;
        let mut metas = Vec::with_capacity(n);
        let mut items = Vec::with_capacity(n);
        for mut env in batch {
            // Dispatch instant: everything since the pop was batch wait.
            env.ctx.advance(Stage::BatchWait);
            let post = env.item;
            bytes += post.text.len() as u64;
            metas.push((post.user, post.post, env.ctx));
            items.push(StoreItem {
                user: post.user,
                created: post.created,
                id: post.post,
                payload: post.text,
            });
        }

        // Sharded state update + scoring on the rsd-par pool. The
        // callback sees the user's window *after* this post's insert;
        // per-shard scratch keeps feature rows allocation-free. Window
        // and score time are measured where they happen and carried out
        // to the emit loop, which owns the trace contexts.
        let outs = store.apply_batch_map_with::<(usize, usize, u64, u64, u64), WorkerScratch, _>(
            items,
            |_user, buf, apply_ns, scratch| {
                let texts: Vec<&str> = buf.entries().iter().map(|e| e.payload.as_str()).collect();
                scratch.stamps.clear();
                scratch
                    .stamps
                    .extend(buf.entries().iter().map(|e| e.created));
                let t_score = Instant::now();
                let level = model.score_stream(
                    &texts,
                    &scratch.stamps,
                    buf.total_seen() as usize,
                    &mut scratch.score,
                );
                let score_ns = t_score.elapsed().as_nanos() as u64;
                (level, buf.len(), buf.total_seen(), apply_ns, score_ns)
            },
        );

        for ((user, post, mut ctx), (level, window_len, total_seen, apply_ns, score_ns)) in
            metas.into_iter().zip(outs)
        {
            let level = RiskLevel::from_index(level).expect("booster predicts 0..4");
            ctx.record(Stage::Window, apply_ns);
            ctx.record(Stage::Score, score_ns);
            ctx.set_level(level.name());
            let latency_ns = ctx.ingress().elapsed().as_nanos() as u64;
            ctx.close_residual(latency_ns);
            rsd_obs::latency_ns("serve.request", latency_ns);
            let scored = ScoredPost {
                user,
                post,
                level,
                window_len,
                total_seen,
                latency_ns,
                trace_id: ctx.trace_id(),
            };
            ctx.finish();
            // A failed send means every result receiver is gone; keep
            // scoring (state must stay consistent) but stop emitting.
            let _ = results.send(scored);
        }

        report.scored += n as u64;
        report.batches += 1;
        report.max_batch = report.max_batch.max(n);
        rsd_obs::counter_add("serve.requests", n as u64);
        rsd_obs::stage_progress("serve.scored", n as u64, bytes);
        rsd_obs::gauge("serve.resident_users", store.resident_users() as f64);
        rsd_obs::gauge("serve.ingress.depth", ingress.depth() as f64);

        // SLO self-test fault injection: freeze the worker once, right
        // after the first micro-batch, so queued requests accrue real
        // queue wait and the burn-rate monitor must trip.
        if let Some(ms) = stall_pending.take() {
            eprintln!("rsd-serve: injected stall for {ms} ms (RSD_SERVE_INJECT_STALL_MS)");
            thread::sleep(std::time::Duration::from_millis(ms));
        }
    }

    rsd_obs::stage_finish("serve.scored");
    report.evicted_users = store.evicted_users();
    report.peak_resident_users = store.peak_resident_users();
    report.resident_users = store.resident_users();
    report.exemplars = rsd_obs::exemplar::run_snapshot();
    results.close();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsd_dataset::{BuildConfig, DatasetBuilder, DatasetSplits, SplitConfig};
    use rsd_gbdt::BoosterConfig;
    use rsd_models::{BenchData, XgboostConfig};

    fn fitted_model() -> (rsd_dataset::Rsd15k, Arc<ScoringModel>) {
        let (dataset, _) = DatasetBuilder::new(BuildConfig::scaled(41, 1_500, 30))
            .build()
            .unwrap();
        let splits = DatasetSplits::new(&dataset, SplitConfig::default()).unwrap();
        let data = BenchData {
            dataset: &dataset,
            splits: &splits,
            unlabeled: &[],
            seed: 41,
        };
        let cfg = XgboostConfig {
            max_tfidf: 60,
            post_level_cap: 2,
            booster: BoosterConfig {
                n_classes: 4,
                n_rounds: 8,
                early_stopping: 0,
                ..Default::default()
            },
        };
        let model = Arc::new(ScoringModel::fit(&cfg, &data).unwrap());
        (dataset, model)
    }

    fn chronological_posts(dataset: &rsd_dataset::Rsd15k) -> Vec<IncomingPost> {
        let mut order: Vec<usize> = (0..dataset.posts.len()).collect();
        order.sort_by_key(|&i| (dataset.posts[i].created, dataset.posts[i].id));
        order
            .into_iter()
            .map(|i| {
                let p = &dataset.posts[i];
                IncomingPost {
                    user: p.user.0,
                    post: p.id.0,
                    created: p.created,
                    text: p.text.clone(),
                }
            })
            .collect()
    }

    #[test]
    fn scores_stream_in_submission_order_and_drains_clean() {
        let (dataset, model) = fitted_model();
        let posts = chronological_posts(&dataset);
        let n = posts.len();
        let cfg = ServeConfig {
            shards: 4,
            lru_capacity: 4096,
            batch_max: 16,
            channel_cap: n + 1, // no consumer until after drain
            ..ServeConfig::default()
        };
        let service = RiskService::start(model, cfg);
        let results = service.results();
        for p in posts.clone() {
            service.submit(p).unwrap();
        }
        let report = service.drain();
        assert_eq!(report.scored, n as u64);
        assert_eq!(report.evicted_users, 0, "ample LRU capacity");
        assert!(report.peak_resident_users <= dataset.n_users());

        let scored: Vec<ScoredPost> = std::iter::from_fn(|| results.recv()).collect();
        assert_eq!(scored.len(), n);
        for (got, want) in scored.iter().zip(&posts) {
            assert_eq!((got.user, got.post), (want.user, want.post), "order");
            assert!(got.window_len >= 1 && got.window_len <= 5);
        }
    }

    #[test]
    fn scores_are_timing_independent_across_batch_sizes() {
        let (dataset, model) = fitted_model();
        let posts = chronological_posts(&dataset);
        let n = posts.len();
        let run = |batch_max: usize| -> Vec<(u32, u32, RiskLevel)> {
            let cfg = ServeConfig {
                shards: 4,
                lru_capacity: 4096,
                batch_max,
                channel_cap: n + 1,
                ..ServeConfig::default()
            };
            let service = RiskService::start(Arc::clone(&model), cfg);
            let results = service.results();
            for p in posts.clone() {
                service.submit(p).unwrap();
            }
            service.drain();
            std::iter::from_fn(|| results.recv())
                .map(|s| (s.user, s.post, s.level))
                .collect()
        };
        assert_eq!(run(1), run(64), "batch boundaries must not change scores");
    }

    #[test]
    fn lru_pressure_evicts_but_keeps_serving() {
        let (dataset, model) = fitted_model();
        let posts = chronological_posts(&dataset);
        let n = posts.len();
        let cfg = ServeConfig {
            shards: 2,
            lru_capacity: 4, // far fewer than the user count
            batch_max: 8,
            channel_cap: n + 1,
            ..ServeConfig::default()
        };
        let service = RiskService::start(model, cfg);
        let results = service.results();
        for p in posts {
            service.submit(p).unwrap();
        }
        let report = service.drain();
        assert_eq!(report.scored, n as u64);
        assert!(report.evicted_users > 0, "pressure must evict");
        assert!(report.peak_resident_users <= 4 + 2, "capacity respected");
        assert!(report.resident_users <= 4);
        let scored = std::iter::from_fn(|| results.recv()).count();
        assert_eq!(scored, n);
    }
}
