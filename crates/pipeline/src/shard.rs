//! Shard geometry: contiguous user-id ranges.

use std::ops::Range;

use serde::{Deserialize, Serialize};

use rsd_common::{Result, RsdError};

/// One shard: a half-open range of global user ids, plus its ordinal in
/// the plan. The ordinal is the fold order — sinks receive artifacts in
/// ascending `index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Zero-based shard ordinal.
    pub index: usize,
    /// First user id covered (inclusive).
    pub start_user: u32,
    /// One past the last user id covered.
    pub end_user: u32,
}

impl ShardSpec {
    /// The covered user ids as a range.
    pub fn users(&self) -> Range<u32> {
        self.start_user..self.end_user
    }

    /// Number of users in the shard.
    pub fn n_users(&self) -> usize {
        (self.end_user - self.start_user) as usize
    }
}

/// Deterministic shard plan: `n_users` users split into shards of
/// `shard_users` each (the last shard may be smaller). Boundaries depend
/// only on these two sizes — never on thread count or schedule — so any
/// execution order folds into identical output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    n_users: u32,
    shard_users: u32,
}

impl ShardPlan {
    /// Build a plan; both sizes must be positive.
    pub fn new(n_users: u32, shard_users: u32) -> Result<Self> {
        if n_users == 0 {
            return Err(RsdError::config("n_users", "must be positive"));
        }
        if shard_users == 0 {
            return Err(RsdError::config("shard_users", "must be positive"));
        }
        Ok(ShardPlan {
            n_users,
            shard_users,
        })
    }

    /// Total users covered.
    pub fn n_users(&self) -> u32 {
        self.n_users
    }

    /// Users per shard (except possibly the last).
    pub fn shard_users(&self) -> u32 {
        self.shard_users
    }

    /// Number of shards in the plan.
    pub fn n_shards(&self) -> usize {
        self.n_users.div_ceil(self.shard_users) as usize
    }

    /// The `index`-th shard.
    ///
    /// # Panics
    /// If `index >= n_shards()`.
    pub fn shard(&self, index: usize) -> ShardSpec {
        assert!(index < self.n_shards(), "shard index out of range");
        let start = index as u32 * self.shard_users;
        ShardSpec {
            index,
            start_user: start,
            end_user: (start + self.shard_users).min(self.n_users),
        }
    }

    /// All shards in fold order.
    pub fn shards(&self) -> impl Iterator<Item = ShardSpec> + '_ {
        (0..self.n_shards()).map(|i| self.shard(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_every_user_exactly_once() {
        let plan = ShardPlan::new(10_000, 4_096).unwrap();
        assert_eq!(plan.n_shards(), 3);
        let shards: Vec<ShardSpec> = plan.shards().collect();
        assert_eq!(shards[0].users(), 0..4_096);
        assert_eq!(shards[1].users(), 4_096..8_192);
        assert_eq!(shards[2].users(), 8_192..10_000);
        let total: usize = shards.iter().map(ShardSpec::n_users).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn exact_multiple_has_no_runt_shard() {
        let plan = ShardPlan::new(8_192, 4_096).unwrap();
        assert_eq!(plan.n_shards(), 2);
        assert_eq!(plan.shard(1).n_users(), 4_096);
    }

    #[test]
    fn oversized_shard_covers_all_users() {
        let plan = ShardPlan::new(100, 4_096).unwrap();
        assert_eq!(plan.n_shards(), 1);
        assert_eq!(plan.shard(0).users(), 0..100);
    }

    #[test]
    fn zero_sizes_rejected() {
        assert!(ShardPlan::new(0, 10).is_err());
        assert!(ShardPlan::new(10, 0).is_err());
    }

    #[test]
    fn spec_round_trips_through_serde() {
        let spec = ShardPlan::new(10, 4).unwrap().shard(2);
        let json = serde_json::to_string(&spec).unwrap();
        let back: ShardSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
