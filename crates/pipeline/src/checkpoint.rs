//! Checkpointed stage boundaries.
//!
//! Every completed shard×stage (and every completed global stage) writes
//! two files under the checkpoint directory:
//!
//! ```text
//! <dir>/<stage>.shard00042.jsonl            per-shard artifact
//! <dir>/<stage>.shard00042.manifest.json    manifest, written last
//! <dir>/<stage>.jsonl                       global-stage artifact
//! <dir>/<stage>.manifest.json
//! ```
//!
//! The artifact is written to a `.tmp` sibling and renamed before the
//! manifest is written, so a manifest's presence implies a complete
//! artifact — a build killed mid-write leaves at most a dangling `.tmp`
//! and no manifest, and the boundary is simply recomputed on resume.
//!
//! Manifests embed a **config fingerprint**: resuming with a different
//! build configuration, seed, or shard size invalidates every prior
//! artifact (a silent cache miss, not an error).

use std::fs;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::shard::ShardSpec;
use rsd_common::rng::fnv1a;
use rsd_common::{Result, RsdError};

/// A value that can be persisted at a stage boundary. Encodings are
/// line-oriented (JSONL) so artifacts stay greppable and diffable.
pub trait Artifact: Sized {
    /// Serialize to the writer. The encoding must be self-delimiting:
    /// decode must know where to stop without seeing EOF.
    fn encode(&self, w: &mut dyn Write) -> Result<()>;

    /// Deserialize from the reader, validating internal consistency.
    fn decode(r: &mut dyn BufRead) -> Result<Self>;
}

/// Manifest written after its artifact; presence implies completeness.
#[derive(Debug, Serialize, Deserialize)]
struct Manifest {
    stage: String,
    shard: Option<usize>,
    fingerprint: u64,
    bytes: u64,
    version: u32,
}

const MANIFEST_VERSION: u32 = 1;

/// Manages a directory of stage-boundary artifacts for one build
/// configuration (identified by a fingerprint).
#[derive(Debug)]
pub struct Checkpointer {
    dir: PathBuf,
    fingerprint: u64,
    hits: AtomicU64,
    writes: AtomicU64,
}

impl Checkpointer {
    /// Open (creating if needed) a checkpoint directory. `fingerprint`
    /// identifies the build configuration; artifacts recorded under a
    /// different fingerprint are ignored.
    pub fn new(dir: impl Into<PathBuf>, fingerprint: u64) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Checkpointer {
            dir,
            fingerprint,
            hits: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// The directory artifacts live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Artifacts successfully loaded so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Artifacts written so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    fn artifact_path(&self, stage: &str, shard: Option<&ShardSpec>) -> PathBuf {
        match shard {
            Some(s) => self.dir.join(format!("{stage}.shard{:05}.jsonl", s.index)),
            None => self.dir.join(format!("{stage}.jsonl")),
        }
    }

    fn manifest_path(&self, stage: &str, shard: Option<&ShardSpec>) -> PathBuf {
        match shard {
            Some(s) => self
                .dir
                .join(format!("{stage}.shard{:05}.manifest.json", s.index)),
            None => self.dir.join(format!("{stage}.manifest.json")),
        }
    }

    /// Try to load a previously stored artifact. Any inconsistency —
    /// missing files, fingerprint or size mismatch, decode failure — is a
    /// silent miss: the caller recomputes and overwrites.
    pub fn load<T: Artifact>(&self, stage: &str, shard: Option<&ShardSpec>) -> Option<T> {
        let manifest_text = fs::read_to_string(self.manifest_path(stage, shard)).ok()?;
        let manifest: Manifest = serde_json::from_str(&manifest_text).ok()?;
        if manifest.stage != stage
            || manifest.shard != shard.map(|s| s.index)
            || manifest.fingerprint != self.fingerprint
            || manifest.version != MANIFEST_VERSION
        {
            return None;
        }
        let apath = self.artifact_path(stage, shard);
        if fs::metadata(&apath).ok()?.len() != manifest.bytes {
            return None;
        }
        let file = fs::File::open(&apath).ok()?;
        let value = T::decode(&mut BufReader::new(file)).ok()?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        rsd_obs::counter_add("pipeline.checkpoint.hits", 1);
        rsd_obs::counter_add("pipeline.checkpoint.bytes_read", manifest.bytes);
        emit_checkpoint_event("pipeline.checkpoint.hit", stage, shard, manifest.bytes);
        Some(value)
    }

    /// Persist an artifact and then its manifest (in that order, both via
    /// rename, so readers never observe partial state).
    pub fn store<T: Artifact>(
        &self,
        stage: &str,
        shard: Option<&ShardSpec>,
        value: &T,
    ) -> Result<()> {
        let apath = self.artifact_path(stage, shard);
        let atmp = apath.with_extension("jsonl.tmp");
        {
            let mut w = BufWriter::new(fs::File::create(&atmp)?);
            value.encode(&mut w)?;
            w.flush()?;
        }
        let bytes = fs::metadata(&atmp)?.len();
        fs::rename(&atmp, &apath)?;

        let manifest = Manifest {
            stage: stage.to_string(),
            shard: shard.map(|s| s.index),
            fingerprint: self.fingerprint,
            bytes,
            version: MANIFEST_VERSION,
        };
        let mpath = self.manifest_path(stage, shard);
        let mtmp = mpath.with_extension("json.tmp");
        fs::write(
            &mtmp,
            serde_json::to_string(&manifest).map_err(|e| RsdError::Serde(e.to_string()))?,
        )?;
        fs::rename(&mtmp, &mpath)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        rsd_obs::counter_add("pipeline.checkpoint.writes", 1);
        rsd_obs::counter_add("pipeline.checkpoint.bytes_written", bytes);
        emit_checkpoint_event("pipeline.checkpoint.write", stage, shard, bytes);
        Ok(())
    }
}

/// NDJSON record for one checkpoint I/O: which stage boundary, which
/// shard (absent for global stages), and the artifact size.
fn emit_checkpoint_event(label: &'static str, stage: &str, shard: Option<&ShardSpec>, bytes: u64) {
    if !rsd_obs::enabled() {
        return;
    }
    let mut fields = vec![
        ("stage", rsd_obs::Value::String(stage.to_string())),
        ("bytes", rsd_obs::Value::Int(i128::from(bytes))),
    ];
    if let Some(s) = shard {
        fields.push(("shard", rsd_obs::Value::Int(s.index as i128)));
    }
    rsd_obs::event(label, &fields);
}

/// Stable fingerprint of a build-configuration description string
/// (FNV-1a). Callers fold everything output-affecting into the string:
/// config `Debug` repr, seed, shard size, stage-format versions.
pub fn config_fingerprint(description: &str) -> u64 {
    fnv1a(description.as_bytes())
}

/// Run a global (non-sharded) stage with checkpoint short-circuit: return
/// the stored artifact if one is valid, otherwise compute under an
/// `rsd-obs` span and persist the result.
pub fn global_stage<T: Artifact>(
    ckpt: Option<&Checkpointer>,
    stage: &'static str,
    f: impl FnOnce() -> Result<T>,
) -> Result<T> {
    if let Some(c) = ckpt {
        if let Some(value) = c.load(stage, None) {
            return Ok(value);
        }
    }
    let out = {
        let _span = rsd_obs::Span::enter(stage);
        f()?
    };
    if let Some(c) = ckpt {
        c.store(stage, None, &out)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardPlan;

    /// Minimal line-oriented artifact for tests.
    #[derive(Debug, PartialEq)]
    struct Lines(Vec<String>);

    impl Artifact for Lines {
        fn encode(&self, w: &mut dyn Write) -> Result<()> {
            writeln!(w, "{}", self.0.len())?;
            for line in &self.0 {
                writeln!(w, "{line}")?;
            }
            Ok(())
        }

        fn decode(r: &mut dyn BufRead) -> Result<Self> {
            let mut lines = r.lines();
            let n: usize = lines
                .next()
                .ok_or_else(|| RsdError::Serde("empty artifact".into()))??
                .parse()
                .map_err(|_| RsdError::Serde("bad count".into()))?;
            let rest: Vec<String> = lines.collect::<std::io::Result<_>>()?;
            if rest.len() != n {
                return Err(RsdError::Serde("artifact truncated".into()));
            }
            Ok(Lines(rest))
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rsd_ckpt_{tag}_{}_{}",
            std::process::id(),
            fnv1a(tag.as_bytes())
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_shard_artifacts() {
        let dir = tmp_dir("round_trip");
        let ckpt = Checkpointer::new(&dir, 7).unwrap();
        let shard = ShardPlan::new(10, 4).unwrap().shard(1);
        let value = Lines(vec!["a".into(), "b".into()]);
        assert!(ckpt.load::<Lines>("stage", Some(&shard)).is_none());
        ckpt.store("stage", Some(&shard), &value).unwrap();
        assert_eq!(ckpt.load::<Lines>("stage", Some(&shard)), Some(value));
        assert_eq!(ckpt.hits(), 1);
        assert_eq!(ckpt.writes(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_a_miss() {
        let dir = tmp_dir("fingerprint");
        let ckpt = Checkpointer::new(&dir, 7).unwrap();
        ckpt.store("s", None, &Lines(vec!["x".into()])).unwrap();
        let other = Checkpointer::new(&dir, 8).unwrap();
        assert!(other.load::<Lines>("s", None).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_artifact_is_a_miss() {
        let dir = tmp_dir("truncated");
        let ckpt = Checkpointer::new(&dir, 7).unwrap();
        ckpt.store("s", None, &Lines(vec!["x".into(), "y".into()]))
            .unwrap();
        // Corrupt the artifact while keeping the manifest: size mismatch.
        fs::write(dir.join("s.jsonl"), "2\n").unwrap();
        assert!(ckpt.load::<Lines>("s", None).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_a_miss_even_with_artifact() {
        let dir = tmp_dir("no_manifest");
        let ckpt = Checkpointer::new(&dir, 7).unwrap();
        ckpt.store("s", None, &Lines(vec!["x".into()])).unwrap();
        fs::remove_file(dir.join("s.manifest.json")).unwrap();
        assert!(ckpt.load::<Lines>("s", None).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn global_stage_computes_once_then_replays() {
        let dir = tmp_dir("global");
        let ckpt = Checkpointer::new(&dir, 7).unwrap();
        let mut runs = 0;
        let a = global_stage(Some(&ckpt), "g", || {
            runs += 1;
            Ok(Lines(vec!["v".into()]))
        })
        .unwrap();
        let b = global_stage(Some(&ckpt), "g", || {
            runs += 1;
            Ok(Lines(vec!["w".into()]))
        })
        .unwrap();
        assert_eq!(runs, 1, "second call must replay the checkpoint");
        assert_eq!(a, b);
        fs::remove_dir_all(&dir).unwrap();
    }
}
