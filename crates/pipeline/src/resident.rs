//! Residency accounting: how many raw posts are alive inside in-flight
//! shard stages, so the bounded-memory claim is observable.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A cloneable counter shared by the stages of one build. Sources `add`
/// when they materialize posts; stages `sub` once they have distilled
/// them. The high-water mark is emitted as the
/// `pipeline.peak_resident_posts` gauge and surfaced in
/// [`crate::PipelineReport`]. Per-build (not global) so concurrent builds
/// in one process don't pollute each other's peaks.
#[derive(Debug, Clone, Default)]
pub struct ResidentGauge(Arc<Inner>);

#[derive(Debug, Default)]
struct Inner {
    current: AtomicI64,
    peak: AtomicI64,
}

impl ResidentGauge {
    /// Fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` posts becoming resident.
    pub fn add(&self, n: usize) {
        let now = self.0.current.fetch_add(n as i64, Ordering::Relaxed) + n as i64;
        self.0.peak.fetch_max(now, Ordering::Relaxed);
        rsd_obs::gauge("pipeline.peak_resident_posts", self.peak() as f64);
    }

    /// Record `n` posts being released.
    pub fn sub(&self, n: usize) {
        self.0.current.fetch_sub(n as i64, Ordering::Relaxed);
    }

    /// Posts currently resident (can transiently be negative if release
    /// races ahead of another shard's admission accounting).
    pub fn current(&self) -> i64 {
        self.0.current.load(Ordering::Relaxed)
    }

    /// High-water mark of resident posts.
    pub fn peak(&self) -> u64 {
        self.0.peak.load(Ordering::Relaxed).max(0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let g = ResidentGauge::new();
        g.add(100);
        g.add(50);
        g.sub(120);
        g.add(10);
        assert_eq!(g.current(), 40);
        assert_eq!(g.peak(), 150);
    }

    #[test]
    fn clones_share_state() {
        let g = ResidentGauge::new();
        let h = g.clone();
        g.add(5);
        h.add(7);
        assert_eq!(g.current(), 12);
        assert_eq!(h.peak(), 12);
    }
}
