//! The typed stage graph: per-shard sources, stages, sinks, and the
//! composable [`ShardTask`] chains the executor runs.

use crate::checkpoint::{Artifact, Checkpointer};
use crate::shard::ShardSpec;
use rsd_common::Result;

/// Produces a shard's initial data (e.g. generate + crawl a user range).
pub trait Source: Sync {
    /// What the source emits per shard.
    type Out: Send;

    /// Stable name, used as the `rsd-obs` span label.
    fn name(&self) -> &'static str;

    /// Materialize one shard.
    fn load(&self, shard: &ShardSpec) -> Result<Self::Out>;
}

/// Transforms a shard's data (e.g. preprocess crawled bodies). Stages
/// take their input by value so they can drop bulky upstream state as
/// soon as they have distilled it.
pub trait Stage<In>: Sync {
    /// What the stage emits per shard.
    type Out: Send;

    /// Stable name, used as the `rsd-obs` span label.
    fn name(&self) -> &'static str;

    /// Transform one shard.
    fn apply(&self, shard: &ShardSpec, input: In) -> Result<Self::Out>;
}

/// Consumes per-shard artifacts **in ascending shard order** — the merge
/// point where sharded results fold into global state. Order is enforced
/// by the executor, which is what makes streaming output bit-identical to
/// a batch run.
pub trait Sink<In> {
    /// Fold one shard's artifact into the accumulated state.
    fn accept(&mut self, shard: &ShardSpec, item: In) -> Result<()>;
}

/// A runnable per-shard computation: a source plus zero or more stages,
/// possibly with checkpointed boundaries. Built via [`SourceTask`] and
/// the [`ShardTaskExt`] combinators, executed by
/// [`crate::executor::run_shards`].
pub trait ShardTask: Sync {
    /// The chain's final per-shard output.
    type Out: Send;

    /// Run the chain for one shard. `ckpt` is threaded through so
    /// [`Checkpointed`] links can short-circuit.
    fn run(&self, shard: &ShardSpec, ckpt: Option<&Checkpointer>) -> Result<Self::Out>;
}

/// Tag the currently-open stage span with its shard: spans carry static
/// labels (so trees aggregate across shards), while this companion
/// NDJSON event pins each execution to a concrete shard and user range.
fn shard_tag(stage: &'static str, shard: &ShardSpec) {
    if !rsd_obs::enabled() {
        return;
    }
    rsd_obs::event(
        "pipeline.stage.shard",
        &[
            ("stage", rsd_obs::Value::String(stage.to_string())),
            ("shard", rsd_obs::Value::Int(shard.index as i128)),
            (
                "start_user",
                rsd_obs::Value::Int(i128::from(shard.start_user)),
            ),
            ("users", rsd_obs::Value::Int(shard.n_users() as i128)),
        ],
    );
}

/// Adapts a [`Source`] into the head of a [`ShardTask`] chain.
pub struct SourceTask<S>(pub S);

impl<S: Source> ShardTask for SourceTask<S> {
    type Out = S::Out;

    fn run(&self, shard: &ShardSpec, _ckpt: Option<&Checkpointer>) -> Result<Self::Out> {
        let _span = rsd_obs::Span::enter(self.0.name());
        shard_tag(self.0.name(), shard);
        self.0.load(shard)
    }
}

/// A task followed by a stage (`task.then(stage)`).
pub struct Then<T, St> {
    task: T,
    stage: St,
}

impl<T, St> ShardTask for Then<T, St>
where
    T: ShardTask,
    St: Stage<T::Out>,
{
    type Out = St::Out;

    fn run(&self, shard: &ShardSpec, ckpt: Option<&Checkpointer>) -> Result<Self::Out> {
        let input = self.task.run(shard, ckpt)?;
        let _span = rsd_obs::Span::enter(self.stage.name());
        shard_tag(self.stage.name(), shard);
        self.stage.apply(shard, input)
    }
}

/// A checkpointed boundary (`task.checkpoint("stage")`): if a valid
/// artifact exists for this shard, the inner chain is skipped entirely
/// (upstream sources never run); otherwise the chain runs and its output
/// is persisted before being handed downstream.
pub struct Checkpointed<T> {
    task: T,
    stage: &'static str,
}

impl<T> ShardTask for Checkpointed<T>
where
    T: ShardTask,
    T::Out: Artifact,
{
    type Out = T::Out;

    fn run(&self, shard: &ShardSpec, ckpt: Option<&Checkpointer>) -> Result<Self::Out> {
        if let Some(c) = ckpt {
            if let Some(value) = c.load(self.stage, Some(shard)) {
                return Ok(value);
            }
        }
        let out = self.task.run(shard, ckpt)?;
        if let Some(c) = ckpt {
            c.store(self.stage, Some(shard), &out)?;
        }
        Ok(out)
    }
}

/// Chain-building combinators, available on every [`ShardTask`].
pub trait ShardTaskExt: ShardTask + Sized {
    /// Append a stage to the chain.
    fn then<St: Stage<Self::Out>>(self, stage: St) -> Then<Self, St> {
        Then { task: self, stage }
    }

    /// Mark the current chain output as a checkpointed boundary under
    /// `stage` (the artifact-file stem).
    fn checkpoint(self, stage: &'static str) -> Checkpointed<Self>
    where
        Self::Out: Artifact,
    {
        Checkpointed { task: self, stage }
    }
}

impl<T: ShardTask> ShardTaskExt for T {}
