#![warn(missing_docs)]

//! `rsd-pipeline` — the workspace's streaming build substrate.
//!
//! The paper's pipeline (crawl → preprocess → select → annotate →
//! assemble) operates over a corpus far larger than the annotated subset,
//! so the build must not hold every intermediate alive at once. This crate
//! provides the machinery the dataset builder runs on:
//!
//! * **User shards** ([`ShardSpec`], [`ShardPlan`]) — a shard is a
//!   contiguous range of user ids, sized by [`PipelineConfig::shard_users`].
//!   Shard boundaries are a pure function of corpus size and shard size,
//!   never of thread count, mirroring the `rsd-par` determinism contract.
//! * **Typed stages** ([`Source`], [`Stage`], [`Sink`]) — per-shard work is
//!   composed with [`ShardTaskExt::then`] into a [`ShardTask`] chain; the
//!   sink consumes artifacts strictly in ascending shard order, so the
//!   merged output is bit-identical to a monolithic batch run.
//! * **Bounded executor** ([`run_shards`]) — at most
//!   [`PipelineConfig::shards_in_flight`] shards are materialized at any
//!   moment; workers come from the existing `rsd-par` pool.
//! * **Checkpoints** ([`Checkpointer`], [`Artifact`]) — each completed
//!   shard×stage boundary persists a JSONL artifact plus a manifest, so a
//!   killed build resumes from the last completed boundary instead of
//!   restarting. Artifacts are keyed by a config fingerprint; stale or
//!   truncated checkpoints are silently recomputed.
//! * **Residency accounting** ([`ResidentGauge`]) — stages report how many
//!   raw posts they hold, surfacing the bounded-memory claim as the
//!   `pipeline.peak_resident_posts` gauge instead of asserting it.
//! * **Service primitives** ([`service`]) — the long-running
//!   generalization of the one-shot machinery: replayable
//!   [`StreamSource`]s, stateful [`ServiceStage`]s, blocking bounded
//!   channels with explicit backpressure, and a [`Shutdown`] drain
//!   signal. `rsd-serve` runs on these.

pub mod checkpoint;
pub mod executor;
pub mod resident;
pub mod service;
pub mod shard;
pub mod stage;

pub use checkpoint::{config_fingerprint, global_stage, Artifact, Checkpointer};
pub use executor::{run_shards, PipelineConfig, PipelineReport};
pub use resident::ResidentGauge;
pub use service::{
    bounded, pump, Receiver, SendError, Sender, ServiceStage, Shutdown, StreamSource, VecSource,
};
pub use shard::{ShardPlan, ShardSpec};
pub use stage::{Checkpointed, ShardTask, ShardTaskExt, Sink, Source, SourceTask, Stage, Then};
