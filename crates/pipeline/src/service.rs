//! Long-running service primitives: the generalization of the one-shot
//! [`Source`](crate::stage::Source)/[`Stage`](crate::stage::Stage)/
//! [`Sink`](crate::stage::Sink) machinery from "run a finite
//! [`ShardPlan`](crate::shard::ShardPlan) to completion" to "serve an
//! unbounded stream until told to drain".
//!
//! Three pieces:
//!
//! * [`StreamSource`] — an unbounded, *replayable* item stream (the
//!   serving analogue of a per-shard `Source`). `next` pulls one item;
//!   `rewind` restarts the stream from the beginning, which is what load
//!   generators and replay-based tests need.
//! * [`ServiceStage`] — a stage that carries mutable per-key state across
//!   items (`&mut self`, unlike the stateless batch `Stage`), plus a
//!   `flush` hook the drain path calls after the last item.
//! * [`bounded`] — a blocking bounded MPMC channel. Senders block when
//!   the queue is full: **backpressure is explicit and lossless**, in
//!   contrast to the batch executor's bounded-wave barrier (which bounds
//!   residency by scheduling, not by queueing). Closing either end wakes
//!   all waiters; receivers drain whatever was queued before reporting
//!   end-of-stream.
//! * [`Shutdown`] — a cloneable drain signal. `trigger` runs registered
//!   hooks exactly once (typically: close the ingest channel), after
//!   which workers finish queued work and exit.
//!
//! Determinism contract: a channel preserves submission order, and a
//! consumer that processes items in arrival order therefore produces
//! output independent of timing. Batching consumers stay deterministic
//! as long as per-item results do not depend on batch boundaries.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use rsd_common::Result;

/// An unbounded (or arbitrarily long) replayable item stream.
pub trait StreamSource {
    /// The item type produced.
    type Item: Send;

    /// Stable name, used as the `rsd-obs` span label.
    fn name(&self) -> &'static str;

    /// Pull the next item; `None` when the stream is (currently)
    /// exhausted.
    fn next(&mut self) -> Result<Option<Self::Item>>;

    /// Restart the stream from the beginning.
    fn rewind(&mut self);
}

/// A replayable in-memory stream, the standard [`StreamSource`] for
/// loadgen replays and tests.
pub struct VecSource<T> {
    name: &'static str,
    items: Vec<T>,
    pos: usize,
}

impl<T: Clone + Send> VecSource<T> {
    /// Wrap `items` as a stream named `name`.
    pub fn new(name: &'static str, items: Vec<T>) -> VecSource<T> {
        VecSource {
            name,
            items,
            pos: 0,
        }
    }

    /// Total items per pass.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the backing buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<T: Clone + Send> StreamSource for VecSource<T> {
    type Item = T;

    fn name(&self) -> &'static str {
        self.name
    }

    fn next(&mut self) -> Result<Option<T>> {
        let item = self.items.get(self.pos).cloned();
        if item.is_some() {
            self.pos += 1;
        }
        Ok(item)
    }

    fn rewind(&mut self) {
        self.pos = 0;
    }
}

/// A long-running stage with per-key mutable state.
///
/// Unlike the batch [`Stage`](crate::stage::Stage) (stateless, `&self`,
/// one artifact per shard), a service stage accumulates state across the
/// stream: `process` may emit zero or more outputs per input, and
/// `flush` emits whatever the drain path still owes downstream.
pub trait ServiceStage {
    /// Input item type.
    type In: Send;
    /// Output item type.
    type Out: Send;

    /// Stable name, used as the `rsd-obs` span label.
    fn name(&self) -> &'static str;

    /// Consume one item, emitting any number of outputs.
    fn process(&mut self, input: Self::In) -> Result<Vec<Self::Out>>;

    /// Called once after the final item during drain.
    fn flush(&mut self) -> Result<Vec<Self::Out>> {
        Ok(Vec::new())
    }
}

/// An item travelling through the serving channels together with its
/// request-scoped trace context. The wrapper is what makes per-stage
/// latency attribution possible: the [`rsd_obs::ReqCtx`] is minted at
/// ingress and rides the bounded channels with the payload, so each
/// hop can call [`rsd_obs::ReqCtx::advance`] and charge the elapsed
/// wall-clock to the stage that actually spent it.
#[derive(Debug)]
pub struct Traced<T> {
    /// Per-request trace context (timing breakdown, backend/level tags).
    pub ctx: rsd_obs::ReqCtx,
    /// The payload being served.
    pub item: T,
}

impl<T> Traced<T> {
    /// Mint a fresh trace context (tagged with the scoring backend) for
    /// `item` at service ingress.
    pub fn mint(backend: &'static str, item: T) -> Traced<T> {
        Traced {
            ctx: rsd_obs::ReqCtx::mint(backend),
            item,
        }
    }
}

/// Error returned by [`Sender::send`] when the channel is closed (the
/// item is handed back so callers can decide what to do with it).
#[derive(Debug)]
pub struct SendError<T>(pub T);

struct ChanState<T> {
    queue: VecDeque<T>,
    closed: bool,
    senders: usize,
    receivers: usize,
    blocked_sends: u64,
}

struct Chan<T> {
    state: Mutex<ChanState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
    label: &'static str,
}

/// Sending half of a [`bounded`] channel. Cloneable; when the last
/// sender drops, receivers see end-of-stream after draining.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Receiving half of a [`bounded`] channel. Cloneable; when the last
/// receiver drops, sends fail.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Create a blocking bounded channel of capacity `cap` (min 1). `label`
/// names the channel for telemetry; consumers publish [`Receiver::depth`]
/// under it at whatever cadence suits them (per-op emission would flood
/// the NDJSON sink and event ring at serving rates).
pub fn bounded<T>(cap: usize, label: &'static str) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(ChanState {
            queue: VecDeque::new(),
            closed: false,
            senders: 1,
            receivers: 1,
            blocked_sends: 0,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        cap: cap.max(1),
        label,
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Sender<T> {
    /// Send one item, blocking while the channel is full (backpressure).
    /// Fails when the channel is closed or every receiver is gone.
    pub fn send(&self, item: T) -> std::result::Result<(), SendError<T>> {
        let chan = &*self.chan;
        let mut state = chan.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.closed || state.receivers == 0 {
                return Err(SendError(item));
            }
            if state.queue.len() < chan.cap {
                state.queue.push_back(item);
                drop(state);
                chan.not_empty.notify_one();
                return Ok(());
            }
            state.blocked_sends += 1;
            state = chan.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Close the channel: subsequent sends fail, receivers drain what is
    /// queued and then see end-of-stream.
    pub fn close(&self) {
        close_chan(&self.chan);
    }

    /// How often a send found the queue full and had to wait — the
    /// backpressure counter.
    pub fn blocked_sends(&self) -> u64 {
        self.chan
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .blocked_sends
    }
}

impl<T> Receiver<T> {
    /// Receive one item, blocking while the channel is empty. Returns
    /// `None` once the channel is closed (or all senders are gone) *and*
    /// the queue is drained.
    pub fn recv(&self) -> Option<T> {
        let chan = &*self.chan;
        let mut state = chan.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = state.queue.pop_front() {
                drop(state);
                chan.not_full.notify_one();
                return Some(item);
            }
            if state.closed || state.senders == 0 {
                return None;
            }
            state = chan
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking receive: `None` when the queue is currently empty
    /// (which does not imply end-of-stream).
    pub fn try_recv(&self) -> Option<T> {
        let chan = &*self.chan;
        let mut state = chan.state.lock().unwrap_or_else(|e| e.into_inner());
        let item = state.queue.pop_front();
        if item.is_some() {
            drop(state);
            chan.not_full.notify_one();
        }
        item
    }

    /// Current queue depth (for telemetry gauges).
    pub fn depth(&self) -> usize {
        self.chan
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// The channel's telemetry label.
    pub fn label(&self) -> &'static str {
        self.chan.label
    }

    /// Close the channel from the receiving side (senders start failing
    /// immediately; any queued items are still receivable).
    pub fn close(&self) {
        close_chan(&self.chan);
    }
}

fn close_chan<T>(chan: &Chan<T>) {
    let mut state = chan.state.lock().unwrap_or_else(|e| e.into_inner());
    state.closed = true;
    drop(state);
    chan.not_full.notify_all();
    chan.not_empty.notify_all();
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        let mut state = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders += 1;
        drop(state);
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        let mut state = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
        state.receivers += 1;
        drop(state);
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
        state.receivers -= 1;
        let last = state.receivers == 0;
        drop(state);
        if last {
            self.chan.not_full.notify_all();
        }
    }
}

type ShutdownHook = Box<dyn FnOnce() + Send>;

#[derive(Default)]
struct ShutdownInner {
    triggered: AtomicBool,
    hooks: Mutex<Vec<ShutdownHook>>,
}

/// A cloneable drain signal. [`Shutdown::trigger`] flips the flag and
/// runs every registered hook exactly once (hooks registered after the
/// trigger run immediately).
#[derive(Clone, Default)]
pub struct Shutdown {
    inner: Arc<ShutdownInner>,
}

impl Shutdown {
    /// Fresh, untriggered signal.
    pub fn new() -> Shutdown {
        Shutdown::default()
    }

    /// Whether `trigger` has been called.
    pub fn is_triggered(&self) -> bool {
        self.inner.triggered.load(Ordering::Acquire)
    }

    /// Register a hook to run at trigger time (e.g. close an ingest
    /// channel). Runs immediately if already triggered.
    pub fn on_trigger(&self, hook: impl FnOnce() + Send + 'static) {
        if self.is_triggered() {
            hook();
            return;
        }
        let mut hooks = self.inner.hooks.lock().unwrap_or_else(|e| e.into_inner());
        // Re-check under the lock: trigger may have drained concurrently.
        if self.is_triggered() {
            drop(hooks);
            hook();
        } else {
            hooks.push(Box::new(hook));
        }
    }

    /// Fire the signal: run all hooks (once) and mark as triggered.
    pub fn trigger(&self) {
        let mut hooks = self.inner.hooks.lock().unwrap_or_else(|e| e.into_inner());
        if self.inner.triggered.swap(true, Ordering::AcqRel) {
            return;
        }
        let drained: Vec<ShutdownHook> = hooks.drain(..).collect();
        drop(hooks);
        for hook in drained {
            hook();
        }
    }
}

/// Drive a [`StreamSource`] into a channel until it is exhausted or the
/// shutdown signal fires. Returns the number of items pumped.
pub fn pump<S: StreamSource>(
    source: &mut S,
    tx: &Sender<S::Item>,
    shutdown: &Shutdown,
) -> Result<u64> {
    let _span = rsd_obs::Span::enter(source.name());
    let mut n = 0u64;
    while !shutdown.is_triggered() {
        let Some(item) = source.next()? else {
            break;
        };
        if tx.send(item).is_err() {
            break;
        }
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn channel_preserves_order_and_drains_after_close() {
        let (tx, rx) = bounded::<u32>(4, "test.chan.depth");
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        tx.close();
        assert!(tx.send(99).is_err(), "send after close must fail");
        let got: Vec<u32> = std::iter::from_fn(|| rx.recv()).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert!(rx.recv().is_none());
    }

    #[test]
    fn full_channel_blocks_sender_until_receiver_drains() {
        let (tx, rx) = bounded::<u32>(2, "test.chan2.depth");
        tx.send(0).unwrap();
        tx.send(1).unwrap();
        let sender = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the receiver pops
            tx.blocked_sends()
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        let blocked = sender.join().unwrap();
        assert!(blocked >= 1, "the full-queue send must have waited");
    }

    #[test]
    fn dropping_all_senders_ends_the_stream() {
        let (tx, rx) = bounded::<u32>(8, "test.chan3.depth");
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Some(7));
        assert!(rx.recv().is_none());
    }

    #[test]
    fn dropping_all_receivers_fails_sends() {
        let (tx, rx) = bounded::<u32>(1, "test.chan4.depth");
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (tx, rx) = bounded::<u32>(2, "test.chan5.depth");
        assert_eq!(rx.try_recv(), None);
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Some(5));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn shutdown_runs_hooks_exactly_once() {
        let shutdown = Shutdown::new();
        let count = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let c = Arc::clone(&count);
        shutdown.on_trigger(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert!(!shutdown.is_triggered());
        shutdown.trigger();
        shutdown.trigger();
        assert!(shutdown.is_triggered());
        assert_eq!(count.load(Ordering::SeqCst), 1);
        // Late hooks run immediately.
        let c = Arc::clone(&count);
        shutdown.on_trigger(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn vec_source_replays_after_rewind() {
        let mut src = VecSource::new("test.src", vec![1, 2, 3]);
        assert_eq!(src.len(), 3);
        let first: Vec<i32> = std::iter::from_fn(|| src.next().unwrap()).collect();
        assert_eq!(first, vec![1, 2, 3]);
        src.rewind();
        let second: Vec<i32> = std::iter::from_fn(|| src.next().unwrap()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn pump_respects_shutdown() {
        let mut src = VecSource::new("test.pump", (0..100).collect::<Vec<u32>>());
        let (tx, rx) = bounded::<u32>(256, "test.chan6.depth");
        let shutdown = Shutdown::new();
        let n = pump(&mut src, &tx, &shutdown).unwrap();
        assert_eq!(n, 100);
        shutdown.trigger();
        src.rewind();
        let n = pump(&mut src, &tx, &shutdown).unwrap();
        assert_eq!(n, 0, "a triggered shutdown stops the pump immediately");
        drop(tx);
        assert_eq!(std::iter::from_fn(|| rx.recv()).count(), 100);
    }

    /// A service stage with per-key state: running per-user counts.
    struct CountStage {
        counts: std::collections::HashMap<u32, u64>,
    }

    impl ServiceStage for CountStage {
        type In = u32;
        type Out = (u32, u64);

        fn name(&self) -> &'static str {
            "test.count"
        }

        fn process(&mut self, user: u32) -> Result<Vec<(u32, u64)>> {
            let c = self.counts.entry(user).or_insert(0);
            *c += 1;
            Ok(vec![(user, *c)])
        }

        fn flush(&mut self) -> Result<Vec<(u32, u64)>> {
            let mut finals: Vec<(u32, u64)> = self.counts.iter().map(|(&u, &c)| (u, c)).collect();
            finals.sort_unstable();
            Ok(finals)
        }
    }

    #[test]
    fn service_stage_carries_state_across_items() {
        let mut stage = CountStage {
            counts: std::collections::HashMap::new(),
        };
        let mut outs = Vec::new();
        for user in [1u32, 2, 1, 1, 2] {
            outs.extend(stage.process(user).unwrap());
        }
        assert_eq!(outs, vec![(1, 1), (2, 1), (1, 2), (1, 3), (2, 2)]);
        assert_eq!(stage.flush().unwrap(), vec![(1, 3), (2, 2)]);
    }
}
