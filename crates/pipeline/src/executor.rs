//! The bounded deterministic executor.
//!
//! Shards run in waves of at most `shards_in_flight`: each wave's shards
//! execute concurrently on the `rsd-par` pool, then fold into the sink in
//! ascending shard order before the next wave starts. At most one wave of
//! shard artifacts is ever materialized, which is what bounds residency;
//! the in-order fold is what makes the merged output independent of
//! scheduling (and therefore bit-identical to a batch run).

use crate::checkpoint::Checkpointer;
use crate::shard::{ShardPlan, ShardSpec};
use crate::stage::{ShardTask, Sink};
use rsd_common::{Result, RsdError};

/// Streaming-executor knobs, usually read from the environment.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Users per shard (`RSD_SHARD_USERS`, default 4096).
    pub shard_users: usize,
    /// Max shards materialized concurrently (`RSD_SHARDS_IN_FLIGHT`,
    /// default: the `rsd-par` pool size).
    pub shards_in_flight: usize,
    /// Fault injection for resume tests (`RSD_INTERRUPT_AFTER_SHARDS`):
    /// abort the build once this many shards have been folded.
    pub interrupt_after_shards: Option<usize>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            shard_users: 4096,
            shards_in_flight: rsd_par::num_threads().max(1),
            interrupt_after_shards: None,
        }
    }
}

fn positive_env(var: &'static str) -> Result<Option<usize>> {
    match std::env::var(var) {
        Err(_) => Ok(None),
        Ok(raw) if raw.is_empty() => Ok(None),
        Ok(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err(RsdError::config(
                var,
                format!("expected a positive integer, got {raw:?}"),
            )),
        },
    }
}

impl PipelineConfig {
    /// Read knobs from the environment; unset variables keep defaults,
    /// malformed values are a hard error.
    pub fn from_env() -> Result<Self> {
        let mut cfg = PipelineConfig::default();
        if let Some(n) = positive_env("RSD_SHARD_USERS")? {
            cfg.shard_users = n;
        }
        if let Some(n) = positive_env("RSD_SHARDS_IN_FLIGHT")? {
            cfg.shards_in_flight = n;
        }
        cfg.interrupt_after_shards = positive_env("RSD_INTERRUPT_AFTER_SHARDS")?;
        Ok(cfg)
    }
}

/// What the streaming executor did, surfaced next to the build report.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PipelineReport {
    /// Shards in the plan.
    pub shards: usize,
    /// Users per shard.
    pub shard_users: usize,
    /// Concurrency bound used.
    pub shards_in_flight: usize,
    /// High-water mark of raw posts resident in shard stages.
    pub peak_resident_posts: u64,
    /// Stage-boundary artifacts replayed from checkpoints.
    pub checkpoint_hits: u64,
    /// Stage-boundary artifacts written.
    pub checkpoint_writes: u64,
}

/// Run every shard of `plan` through `task`, folding artifacts into
/// `sink` in ascending shard order. Returns the number of shards folded.
///
/// With `interrupt_after_shards` set, the build aborts with a
/// [`RsdError::PipelineState`] once that many shards have folded —
/// completed boundaries keep their checkpoints, which is exactly the
/// state a killed build leaves behind.
pub fn run_shards<T, K>(
    cfg: &PipelineConfig,
    plan: &ShardPlan,
    task: &T,
    ckpt: Option<&Checkpointer>,
    sink: &mut K,
) -> Result<usize>
where
    T: ShardTask,
    K: Sink<T::Out>,
{
    let _span = rsd_obs::Span::enter("pipeline.shards");
    let total = plan.n_shards();
    let in_flight = cfg.shards_in_flight.max(1);
    rsd_obs::gauge("pipeline.shards_in_flight", in_flight as f64);
    rsd_obs::stage_register("pipeline.shards");
    let limit = cfg.interrupt_after_shards.unwrap_or(usize::MAX);

    let mut folded = 0usize;
    let mut next = 0usize;
    let mut wave_idx = 0usize;
    while next < total && folded < limit {
        let wave = in_flight.min(total - next).min(limit - folded);
        rsd_obs::event(
            "pipeline.wave",
            &[
                ("wave", rsd_obs::Value::Int(wave_idx as i128)),
                ("first_shard", rsd_obs::Value::Int(next as i128)),
                ("shards", rsd_obs::Value::Int(wave as i128)),
            ],
        );
        let mut slots: Vec<(ShardSpec, Option<Result<T::Out>>)> =
            (next..next + wave).map(|i| (plan.shard(i), None)).collect();
        // Grain 1: one pool chunk per shard. The fold below consumes
        // slots in vector (= shard) order regardless of which worker
        // filled them first.
        rsd_par::parallel_chunks_mut(&mut slots, 1, |_, chunk| {
            for (spec, slot) in chunk.iter_mut() {
                let t0 = std::time::Instant::now();
                *slot = Some(task.run(spec, ckpt));
                rsd_obs::latency_ns("pipeline.shard", t0.elapsed().as_nanos() as u64);
            }
        });
        for (spec, slot) in slots {
            let artifact = slot.expect("executor filled every slot")?;
            let shard_users = spec.n_users() as u64;
            sink.accept(&spec, artifact)?;
            rsd_obs::stage_progress("pipeline.shards", shard_users, 0);
            folded += 1;
        }
        rsd_obs::counter_add("pipeline.shards", wave as u64);
        next += wave;
        wave_idx += 1;
    }

    if folded < total {
        return Err(RsdError::PipelineState(format!(
            "pipeline interrupted after {folded} of {total} shards"
        )));
    }
    rsd_obs::stage_finish("pipeline.shards");
    Ok(folded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{Source, SourceTask};

    struct SquareSource;

    impl Source for SquareSource {
        type Out = Vec<u64>;

        fn name(&self) -> &'static str {
            "test.square"
        }

        fn load(&self, shard: &ShardSpec) -> Result<Vec<u64>> {
            Ok(shard.users().map(|u| u64::from(u) * u64::from(u)).collect())
        }
    }

    /// Sink that records fold order and concatenates artifacts.
    #[derive(Default)]
    struct Collect {
        order: Vec<usize>,
        values: Vec<u64>,
    }

    impl Sink<Vec<u64>> for Collect {
        fn accept(&mut self, shard: &ShardSpec, item: Vec<u64>) -> Result<()> {
            self.order.push(shard.index);
            self.values.extend(item);
            Ok(())
        }
    }

    fn run(cfg: &PipelineConfig, n_users: u32, shard_users: u32) -> Collect {
        let plan = ShardPlan::new(n_users, shard_users).unwrap();
        let mut sink = Collect::default();
        run_shards(cfg, &plan, &SourceTask(SquareSource), None, &mut sink).unwrap();
        sink
    }

    #[test]
    fn folds_in_shard_order_for_any_concurrency() {
        let serial = run(
            &PipelineConfig {
                shards_in_flight: 1,
                ..Default::default()
            },
            1_000,
            64,
        );
        assert_eq!(serial.order, (0..16).collect::<Vec<_>>());
        for in_flight in [2, 3, 8, 64] {
            let cfg = PipelineConfig {
                shards_in_flight: in_flight,
                ..Default::default()
            };
            let out = run(&cfg, 1_000, 64);
            assert_eq!(out.order, serial.order, "in_flight={in_flight}");
            assert_eq!(out.values, serial.values, "in_flight={in_flight}");
        }
    }

    #[test]
    fn interrupt_folds_prefix_then_errors() {
        let plan = ShardPlan::new(1_000, 100).unwrap();
        let cfg = PipelineConfig {
            shards_in_flight: 4,
            interrupt_after_shards: Some(3),
            ..Default::default()
        };
        let mut sink = Collect::default();
        let err = run_shards(&cfg, &plan, &SourceTask(SquareSource), None, &mut sink).unwrap_err();
        assert!(matches!(err, RsdError::PipelineState(_)));
        assert_eq!(sink.order, vec![0, 1, 2]);
    }

    #[test]
    fn env_parsing_rejects_garbage() {
        // Serialized via a mutex-free convention: tests in this module are
        // the only ones touching these variables.
        std::env::set_var("RSD_SHARD_USERS", "not-a-number");
        assert!(PipelineConfig::from_env().is_err());
        std::env::set_var("RSD_SHARD_USERS", "0");
        assert!(PipelineConfig::from_env().is_err());
        std::env::set_var("RSD_SHARD_USERS", "512");
        let cfg = PipelineConfig::from_env().unwrap();
        assert_eq!(cfg.shard_users, 512);
        std::env::remove_var("RSD_SHARD_USERS");

        // RSD_SHARDS_IN_FLIGHT must hard-error with the knob named, not
        // silently fall back (the RSD_SCALE precedent).
        for bad in ["banana", "0", "-2", "1.5"] {
            std::env::set_var("RSD_SHARDS_IN_FLIGHT", bad);
            let err = PipelineConfig::from_env().unwrap_err().to_string();
            assert!(
                err.contains("RSD_SHARDS_IN_FLIGHT"),
                "error must name the knob for {bad:?}: {err}"
            );
        }
        std::env::set_var("RSD_SHARDS_IN_FLIGHT", "3");
        let cfg = PipelineConfig::from_env().unwrap();
        assert_eq!(cfg.shards_in_flight, 3);
        std::env::remove_var("RSD_SHARDS_IN_FLIGHT");
    }
}
