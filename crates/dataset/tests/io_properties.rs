//! Property tests on the JSONL reader's malformed-input behaviour: no
//! panic, and a hard error for every way a file can be garbage, corrupted
//! in place, extended with junk, or truncated.

use proptest::prelude::*;

use rsd_annotation::LabelSource;
use rsd_common::Timestamp;
use rsd_corpus::{PostId, RiskLevel, UserId};
use rsd_dataset::io::{from_jsonl, to_jsonl};
use rsd_dataset::{Post, Rsd15k, UserRecord};

/// A small valid dataset: one user, `n` chronological posts.
fn tiny(n: usize) -> Rsd15k {
    let posts: Vec<Post> = (0..n)
        .map(|i| Post {
            id: PostId(i as u32),
            user: UserId(0),
            created: Timestamp(100 + i as i64),
            text: format!("cleaned body {i}"),
            label: RiskLevel::Ideation,
            source: LabelSource::Individual,
        })
        .collect();
    let dataset = Rsd15k {
        users: vec![UserRecord {
            id: UserId(0),
            post_indices: (0..n).collect(),
        }],
        posts,
        seed: 7,
    };
    dataset.validate().expect("fixture must be valid");
    dataset
}

fn serialized(n: usize) -> String {
    let mut buf = Vec::new();
    to_jsonl(&tiny(n), &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

proptest! {
    /// Arbitrary garbage never panics and never yields a dataset: the
    /// generator's character pool contains no braces, so no line of it can
    /// parse as the JSON header object.
    #[test]
    fn garbage_input_errors(raw in ".{0,400}") {
        prop_assert!(from_jsonl(raw.as_bytes()).is_err());
    }

    /// Corrupting any single post line (the header is line 0) is detected,
    /// either as a parse failure or as a header/post-count mismatch when
    /// the replacement collapses to a blank line.
    #[test]
    fn corrupt_post_line_errors(idx in 1usize..6, junk in ".{0,80}") {
        let text = serialized(5);
        let mangled: Vec<&str> = text
            .lines()
            .enumerate()
            .map(|(i, line)| if i == idx { junk.as_str() } else { line })
            .collect();
        prop_assert!(from_jsonl(mangled.join("\n").as_bytes()).is_err());
    }

    /// Trailing junk after the declared posts is rejected (blank trailing
    /// lines are explicitly tolerated by the format).
    #[test]
    fn trailing_junk_errors(junk in ".{1,80}") {
        let mut text = serialized(4);
        text.push_str(&junk);
        text.push('\n');
        let result = from_jsonl(text.as_bytes());
        if junk.trim().is_empty() {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err());
        }
    }

    /// Dropping any number of trailing post lines is caught by the
    /// header's declared count.
    #[test]
    fn truncation_errors(k in 1usize..5) {
        let text = serialized(5);
        let kept: Vec<&str> = text.lines().take(1 + 5 - k).collect();
        prop_assert!(from_jsonl(kept.join("\n").as_bytes()).is_err());
    }

    /// Duplicating a post line is caught: the count mismatches, and even
    /// with a fixed-up header the timeline validation rejects it.
    #[test]
    fn duplicated_post_line_errors(idx in 1usize..5) {
        let text = serialized(4);
        let lines: Vec<&str> = text.lines().collect();
        let mut mangled = lines.clone();
        mangled.insert(idx, lines[idx]);
        prop_assert!(from_jsonl(mangled.join("\n").as_bytes()).is_err());
    }
}
