//! Property tests for the shared per-user window store: incremental
//! updates must reproduce the batch latest-W selection byte-for-byte,
//! for any arrival order, batch partitioning, LRU pressure, and thread
//! count. This is the invariant that lets the serving path and the
//! batch dataset build share one window-selection implementation.

use proptest::prelude::*;

use rsd_common::Timestamp;
use rsd_dataset::{StoreItem, UserWindowStore};

/// One synthetic post event. Ids are assigned from the generation index
/// so every event is unique; timestamps collide on purpose to exercise
/// the `(created, id)` tie-break.
fn events(raw: &[(u32, i64)]) -> Vec<StoreItem<u8>> {
    raw.iter()
        .enumerate()
        .map(|(i, &(user, t))| StoreItem {
            user: user % 7,
            created: Timestamp(t),
            id: i as u32,
            payload: (i % 251) as u8,
        })
        .collect()
}

/// Reference batch selection: per user, stable-sort every post by
/// `(created, id)` and keep the trailing `window` — exactly what
/// `extract_window` does over a full user history.
fn batch_tail(items: &[StoreItem<u8>], user: u32, window: usize) -> Vec<(i64, u32, u8)> {
    let mut mine: Vec<&StoreItem<u8>> = items.iter().filter(|it| it.user == user).collect();
    mine.sort_by_key(|it| (it.created, it.id));
    mine.iter()
        .rev()
        .take(window)
        .rev()
        .map(|it| (it.created.0, it.id, it.payload))
        .collect()
}

/// The store's view of a user's window, flattened for comparison.
fn store_window(store: &UserWindowStore<u8>, user: u32) -> Vec<(i64, u32, u8)> {
    store
        .buffer(user)
        .map(|buf| {
            buf.entries()
                .iter()
                .map(|e| (e.created.0, e.id, e.payload))
                .collect()
        })
        .unwrap_or_default()
}

/// Per-user windows plus eviction totals — the store's full observable state.
type StoreState = (Vec<Vec<(i64, u32, u8)>>, u64, usize);

fn store_state(store: &UserWindowStore<u8>) -> StoreState {
    let windows = (0..7).map(|u| store_window(store, u)).collect();
    (windows, store.evicted_users(), store.peak_resident_users())
}

proptest! {
    /// With ample LRU capacity, incremental ingestion in *any* arrival
    /// order converges to the batch latest-W selection for every user.
    #[test]
    fn incremental_matches_batch_selection(
        raw in collection::vec((0u32..7, -50i64..50), 1..120),
        window in 1usize..6,
        shards in 1usize..4,
    ) {
        let items = events(&raw);
        let mut store = UserWindowStore::new(shards, window, 1024);
        for item in items.clone() {
            store.apply(item);
        }
        for user in 0..7 {
            prop_assert_eq!(
                store_window(&store, user),
                batch_tail(&items, user, window)
            );
        }
    }

    /// Batched parallel ingestion is indistinguishable from serial
    /// ingestion, for any batch partitioning and any pool size — the
    /// per-shard application order is the submission order, so chunk
    /// boundaries and worker scheduling cannot leak into state.
    #[test]
    fn batch_and_thread_count_invariant(
        raw in collection::vec((0u32..7, -50i64..50), 1..100),
        window in 1usize..6,
        batch in 1usize..17,
        lru_capacity in 2usize..10,
    ) {
        let items = events(&raw);

        let mut serial = UserWindowStore::new(3, window, lru_capacity);
        rsd_par::with_local_pool(1, || {
            for item in items.clone() {
                serial.apply(item);
            }
        });
        let want = store_state(&serial);

        for threads in [1usize, 4] {
            let mut store = UserWindowStore::new(3, window, lru_capacity);
            rsd_par::with_local_pool(threads, || {
                for chunk in items.chunks(batch) {
                    store.apply_batch(chunk.to_vec());
                }
            });
            prop_assert_eq!(store_state(&store), want.clone());
        }
    }

    /// Under LRU pressure the evicted user set is deterministic: replays
    /// of the same stream always evict the same users at the same point,
    /// and re-arrival after eviction restarts the window from scratch
    /// (total_seen resets with residency).
    #[test]
    fn eviction_is_deterministic_and_bounded(
        raw in collection::vec((0u32..7, -50i64..50), 20..100),
    ) {
        let items = events(&raw);
        let run = || {
            let mut store = UserWindowStore::new(2, 3, 2);
            for item in items.clone() {
                store.apply(item);
            }
            (store_state(&store), store.resident_users())
        };
        let (state_a, resident_a) = run();
        let (state_b, resident_b) = run();
        prop_assert_eq!(&state_a, &state_b);
        prop_assert_eq!(resident_a, resident_b);
        // cap_per_shard = max(2/2, 1) = 1 resident user per shard.
        prop_assert!(resident_a <= 2, "resident {} over capacity", resident_a);
    }
}
