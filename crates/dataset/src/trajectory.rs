//! Risk-trajectory analytics: the "dynamic evolution of suicide risk" the
//! dataset is built to support (paper §I: "retains complete user posting
//! time sequence information, supports modeling the dynamic evolution of
//! suicide risk").
//!
//! Provides the longitudinal statistics a downstream study needs:
//! per-dataset label **transition matrices** between consecutive posts,
//! **escalation events** (a post strictly more severe than its
//! predecessor), per-user severity **trends**, and **time-to-escalation**
//! distributions.

use serde::{Deserialize, Serialize};

use crate::record::Rsd15k;
use rsd_common::stats::{linear_trend, mean, median};
use rsd_corpus::{RiskLevel, UserId};

/// A 4×4 row-stochastic transition matrix over risk levels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionMatrix {
    /// Raw transition counts: `counts[from][to]`.
    pub counts: [[u64; RiskLevel::COUNT]; RiskLevel::COUNT],
}

impl TransitionMatrix {
    /// Count transitions between consecutive posts of every user.
    pub fn from_dataset(dataset: &Rsd15k) -> Self {
        let mut counts = [[0u64; RiskLevel::COUNT]; RiskLevel::COUNT];
        for user in &dataset.users {
            for pair in user.post_indices.windows(2) {
                let from = dataset.posts[pair[0]].label.index();
                let to = dataset.posts[pair[1]].label.index();
                counts[from][to] += 1;
            }
        }
        TransitionMatrix { counts }
    }

    /// Total transitions observed.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Row-normalized probabilities; rows with no observations are zero.
    pub fn probabilities(&self) -> [[f64; RiskLevel::COUNT]; RiskLevel::COUNT] {
        let mut out = [[0.0; RiskLevel::COUNT]; RiskLevel::COUNT];
        for (row, counts) in out.iter_mut().zip(&self.counts) {
            let total: u64 = counts.iter().sum();
            if total > 0 {
                for (p, &c) in row.iter_mut().zip(counts) {
                    *p = c as f64 / total as f64;
                }
            }
        }
        out
    }

    /// Probability that consecutive posts share a level (diagonal mass) —
    /// the persistence the generator's sticky chain induces and a real
    /// longitudinal dataset exhibits.
    pub fn persistence(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..RiskLevel::COUNT).map(|i| self.counts[i][i]).sum();
        diag as f64 / total as f64
    }

    /// Fraction of transitions that increase severity.
    pub fn escalation_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut up = 0u64;
        for from in 0..RiskLevel::COUNT {
            for to in (from + 1)..RiskLevel::COUNT {
                up += self.counts[from][to];
            }
        }
        up as f64 / total as f64
    }
}

/// One escalation event: a post strictly more severe than its predecessor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Escalation {
    /// The user.
    pub user: UserId,
    /// Index (into `Rsd15k::posts`) of the escalating post.
    pub post_index: usize,
    /// Severity before.
    pub from: RiskLevel,
    /// Severity after.
    pub to: RiskLevel,
    /// Days since the preceding post.
    pub gap_days: f64,
}

/// All escalation events in chronological per-user order.
pub fn escalations(dataset: &Rsd15k) -> Vec<Escalation> {
    let mut out = Vec::new();
    for user in &dataset.users {
        for pair in user.post_indices.windows(2) {
            let (a, b) = (&dataset.posts[pair[0]], &dataset.posts[pair[1]]);
            if b.label > a.label {
                out.push(Escalation {
                    user: user.id,
                    post_index: pair[1],
                    from: a.label,
                    to: b.label,
                    gap_days: b.created.days_since(a.created),
                });
            }
        }
    }
    out
}

/// Per-user longitudinal summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserTrajectory {
    /// The user.
    pub user: UserId,
    /// Number of posts.
    pub posts: usize,
    /// Least-squares slope of severity (index) over post order; positive =
    /// worsening.
    pub severity_trend: f64,
    /// Mean severity index over the timeline.
    pub mean_severity: f64,
    /// Maximum severity reached.
    pub peak: RiskLevel,
    /// Number of escalation events.
    pub escalations: usize,
}

/// Summarize every user's trajectory.
pub fn user_trajectories(dataset: &Rsd15k) -> Vec<UserTrajectory> {
    dataset
        .users
        .iter()
        .map(|user| {
            let severities: Vec<f64> = user
                .post_indices
                .iter()
                .map(|&i| dataset.posts[i].label.index() as f64)
                .collect();
            let peak_idx = severities.iter().copied().fold(0.0f64, f64::max) as usize;
            let escalations = severities.windows(2).filter(|w| w[1] > w[0]).count();
            UserTrajectory {
                user: user.id,
                posts: user.post_indices.len(),
                severity_trend: linear_trend(&severities),
                mean_severity: mean(&severities),
                peak: RiskLevel::from_index(peak_idx).expect("severity index valid"),
                escalations,
            }
        })
        .collect()
}

/// Dataset-level trajectory report (one struct the bench binary prints).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryReport {
    /// Transition counts/probabilities.
    pub transitions: TransitionMatrix,
    /// Diagonal persistence.
    pub persistence: f64,
    /// Escalating-transition share.
    pub escalation_rate: f64,
    /// Total escalation events.
    pub n_escalations: usize,
    /// Median days between a post and an escalating successor.
    pub median_days_to_escalation: f64,
    /// Share of users whose severity trend is positive (worsening).
    pub worsening_users: f64,
    /// Share of users who ever reach Behavior or Attempt.
    pub users_reaching_high_risk: f64,
}

/// Compute the full trajectory report.
pub fn trajectory_report(dataset: &Rsd15k) -> TrajectoryReport {
    let transitions = TransitionMatrix::from_dataset(dataset);
    let events = escalations(dataset);
    let gaps: Vec<f64> = events.iter().map(|e| e.gap_days).collect();
    let trajectories = user_trajectories(dataset);
    let n_users = trajectories.len().max(1);
    let worsening = trajectories
        .iter()
        .filter(|t| t.severity_trend > 0.0)
        .count() as f64
        / n_users as f64;
    let high = trajectories
        .iter()
        .filter(|t| t.peak >= RiskLevel::Behavior)
        .count() as f64
        / n_users as f64;
    TrajectoryReport {
        persistence: transitions.persistence(),
        escalation_rate: transitions.escalation_rate(),
        n_escalations: events.len(),
        median_days_to_escalation: median(&gaps),
        worsening_users: worsening,
        users_reaching_high_risk: high,
        transitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_fixtures::tiny;
    use crate::{BuildConfig, DatasetBuilder};

    #[test]
    fn tiny_fixture_transitions() {
        // user 0: IN -> ID -> ID ; user 1: BR -> AT
        let d = tiny();
        let m = TransitionMatrix::from_dataset(&d);
        assert_eq!(m.total(), 3);
        assert_eq!(
            m.counts[RiskLevel::Indicator.index()][RiskLevel::Ideation.index()],
            1
        );
        assert_eq!(
            m.counts[RiskLevel::Ideation.index()][RiskLevel::Ideation.index()],
            1
        );
        assert_eq!(
            m.counts[RiskLevel::Behavior.index()][RiskLevel::Attempt.index()],
            1
        );
        assert!((m.escalation_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.persistence() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn probabilities_are_row_stochastic() {
        let (d, _) = DatasetBuilder::new(BuildConfig::scaled(1101, 2_000, 40))
            .build()
            .unwrap();
        let m = TransitionMatrix::from_dataset(&d);
        for row in m.probabilities() {
            let sum: f64 = row.iter().sum();
            assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn generator_stickiness_visible_in_transitions() {
        // The corpus model uses a sticky chain (persistence 0.55 plus
        // profile mass), so consecutive-post persistence must well exceed
        // the iid baseline (~0.37 for Table I marginals).
        let (d, _) = DatasetBuilder::new(BuildConfig::scaled(1102, 2_500, 50))
            .build()
            .unwrap();
        let m = TransitionMatrix::from_dataset(&d);
        assert!(
            m.persistence() > 0.5,
            "persistence {} too low for sticky trajectories",
            m.persistence()
        );
    }

    #[test]
    fn escalations_are_strict_increases() {
        let (d, _) = DatasetBuilder::new(BuildConfig::scaled(1103, 2_000, 40))
            .build()
            .unwrap();
        for e in escalations(&d) {
            assert!(e.to > e.from);
            assert!(e.gap_days >= 0.0);
        }
    }

    #[test]
    fn trajectories_cover_all_users() {
        let d = tiny();
        let ts = user_trajectories(&d);
        assert_eq!(ts.len(), 2);
        // user 0: severities 0,1,1 → positive trend, peak Ideation.
        assert!(ts[0].severity_trend > 0.0);
        assert_eq!(ts[0].peak, RiskLevel::Ideation);
        assert_eq!(ts[0].escalations, 1);
        // user 1: 2,3 → peak Attempt.
        assert_eq!(ts[1].peak, RiskLevel::Attempt);
    }

    #[test]
    fn report_is_internally_consistent() {
        let (d, _) = DatasetBuilder::new(BuildConfig::scaled(1104, 2_000, 40))
            .build()
            .unwrap();
        let r = trajectory_report(&d);
        assert_eq!(r.n_escalations, escalations(&d).len());
        assert!((0.0..=1.0).contains(&r.persistence));
        assert!((0.0..=1.0).contains(&r.escalation_rate));
        assert!((0.0..=1.0).contains(&r.worsening_users));
        assert!((0.0..=1.0).contains(&r.users_reaching_high_risk));
        assert!(r.median_days_to_escalation >= 0.0);
    }
}
