//! Privacy and ethics audit (paper §IV).
//!
//! "All personal identifiers (such as usernames, specific post identifiers,
//! and other metadata) were removed. After this anonymization process,
//! there is no way to re-identify users from the data."
//!
//! The builder already publishes only dense pseudonymous ids; this module
//! provides the *audit* that verifies the posture on any dataset instance —
//! the check a data steward would run before release.

use serde::{Deserialize, Serialize};

use crate::record::Rsd15k;

/// One privacy finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivacyFinding {
    /// Index of the offending post.
    pub post_index: usize,
    /// What was found.
    pub issue: String,
}

/// Outcome of a privacy audit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivacyAudit {
    /// Individual findings (empty = clean).
    pub findings: Vec<PrivacyFinding>,
    /// Posts scanned.
    pub posts_scanned: usize,
}

impl PrivacyAudit {
    /// True when no findings were raised.
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Substring patterns that indicate identifier leakage in body text.
const LEAK_PATTERNS: &[(&str, &str)] = &[
    ("http://", "URL survived anonymization"),
    ("https://", "URL survived anonymization"),
    ("www.", "URL survived anonymization"),
    ("u/", "reddit username reference"),
    ("r/", "subreddit reference"),
    ("@", "social handle"),
    (".com", "domain reference"),
];

/// Run the §IV audit: ids must be dense pseudonyms, and no post body may
/// contain identifier-like patterns.
pub fn audit(dataset: &Rsd15k) -> PrivacyAudit {
    let mut findings = Vec::new();

    for (i, post) in dataset.posts.iter().enumerate() {
        for (pattern, issue) in LEAK_PATTERNS {
            if contains_token_with(&post.text, pattern) {
                findings.push(PrivacyFinding {
                    post_index: i,
                    issue: format!("{issue} ({pattern:?})"),
                });
            }
        }
    }

    // Ids must be dense 0..n — a published id that encodes crawl order or
    // platform ids would leak linkage to the raw pool.
    for (i, post) in dataset.posts.iter().enumerate() {
        if post.id.0 as usize != i {
            findings.push(PrivacyFinding {
                post_index: i,
                issue: "post id is not a dense pseudonym".to_string(),
            });
        }
    }
    let max_user = dataset.posts.iter().map(|p| p.user.0).max().unwrap_or(0);
    if dataset.n_users() > 0 && (max_user as usize) >= dataset.n_users() {
        findings.push(PrivacyFinding {
            post_index: 0,
            issue: "user id space is not dense".to_string(),
        });
    }

    PrivacyAudit {
        findings,
        posts_scanned: dataset.posts.len(),
    }
}

/// True if any whitespace-delimited token of `text` contains `pattern`.
/// (Token-scoped so "r/" matches "r/SuicideWatch" but a sentence ending in
/// "...better/ worse" is not falsely flagged by "/".)
fn contains_token_with(text: &str, pattern: &str) -> bool {
    text.split_whitespace().any(|t| t.contains(pattern))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_fixtures::tiny;
    use crate::{BuildConfig, DatasetBuilder};

    #[test]
    fn built_dataset_passes_audit() {
        let (d, _) = DatasetBuilder::new(BuildConfig::scaled(401, 2_000, 40))
            .build()
            .unwrap();
        let audit = audit(&d);
        assert!(audit.passed(), "findings: {:?}", audit.findings);
        assert_eq!(audit.posts_scanned, d.n_posts());
    }

    #[test]
    fn url_leak_detected() {
        let mut d = tiny();
        d.posts[1].text = "see https://example.com/me".to_string();
        let a = audit(&d);
        assert!(!a.passed());
        assert!(a.findings.iter().any(|f| f.post_index == 1));
    }

    #[test]
    fn username_reference_detected() {
        let mut d = tiny();
        d.posts[0].text = "talk to u/realname about it".to_string();
        assert!(!audit(&d).passed());
    }

    #[test]
    fn non_dense_ids_detected() {
        let mut d = tiny();
        d.posts[2].id = rsd_corpus::PostId(999);
        assert!(!audit(&d).passed());
    }

    #[test]
    fn clean_fixture_passes() {
        assert!(audit(&tiny()).passed());
    }
}
