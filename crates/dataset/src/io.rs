//! Dataset serialization: JSON-lines round-trip and CSV export.
//!
//! The published RSD-15K ships as structured records; JSON-lines is the
//! interchange format here (one post per line, plus a header object with
//! user timelines), and CSV export serves spreadsheet-style analysis.
//! Deserialization re-validates the structural invariants before returning.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::record::{Post, Rsd15k, UserRecord};
use rsd_common::{Result, RsdError};

/// Header line of the JSONL format.
#[derive(Debug, Serialize, Deserialize)]
struct Header {
    format: String,
    version: u32,
    seed: u64,
    n_posts: usize,
    users: Vec<UserRecord>,
}

const FORMAT_NAME: &str = "rsd15k-jsonl";
const FORMAT_VERSION: u32 = 1;

/// Serialize to JSON-lines: a header object, then one post per line.
pub fn to_jsonl<W: Write>(dataset: &Rsd15k, writer: W) -> Result<()> {
    let mut out = BufWriter::new(writer);
    let header = Header {
        format: FORMAT_NAME.to_string(),
        version: FORMAT_VERSION,
        seed: dataset.seed,
        n_posts: dataset.posts.len(),
        users: dataset.users.clone(),
    };
    serde_json::to_writer(&mut out, &header).map_err(|e| RsdError::Serde(e.to_string()))?;
    out.write_all(b"\n")?;
    for post in &dataset.posts {
        serde_json::to_writer(&mut out, post).map_err(|e| RsdError::Serde(e.to_string()))?;
        out.write_all(b"\n")?;
    }
    out.flush()?;
    Ok(())
}

/// Deserialize from JSON-lines, validating structure.
pub fn from_jsonl<R: BufRead>(reader: R) -> Result<Rsd15k> {
    let mut lines = reader.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| RsdError::Serde("empty input".to_string()))??;
    let header: Header =
        serde_json::from_str(&header_line).map_err(|e| RsdError::Serde(e.to_string()))?;
    if header.format != FORMAT_NAME {
        return Err(RsdError::Serde(format!(
            "unknown format {:?}",
            header.format
        )));
    }
    if header.version != FORMAT_VERSION {
        return Err(RsdError::Serde(format!(
            "unsupported version {}",
            header.version
        )));
    }
    let mut posts = Vec::with_capacity(header.n_posts);
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let post: Post = serde_json::from_str(&line).map_err(|e| RsdError::Serde(e.to_string()))?;
        posts.push(post);
    }
    if posts.len() != header.n_posts {
        return Err(RsdError::Serde(format!(
            "header declares {} posts, found {}",
            header.n_posts,
            posts.len()
        )));
    }
    let dataset = Rsd15k {
        posts,
        users: header.users,
        seed: header.seed,
    };
    dataset.validate()?;
    Ok(dataset)
}

/// Write the dataset to a JSONL file.
pub fn save(dataset: &Rsd15k, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    to_jsonl(dataset, file)
}

/// Read a dataset from a JSONL file.
pub fn load(path: impl AsRef<Path>) -> Result<Rsd15k> {
    let file = std::fs::File::open(path)?;
    from_jsonl(std::io::BufReader::new(file))
}

/// Export posts as CSV (`post_id,user_id,created,label,source,text`); text
/// is quoted with doubled internal quotes per RFC 4180.
pub fn to_csv<W: Write>(dataset: &Rsd15k, writer: W) -> Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "post_id,user_id,created,label,source,text")?;
    for p in &dataset.posts {
        let text = p.text.replace('"', "\"\"");
        writeln!(
            out,
            "{},{},{},{},{:?},\"{}\"",
            p.id.0, p.user.0, p.created.0, p.label, p.source, text
        )?;
    }
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_fixtures::tiny;

    #[test]
    fn jsonl_round_trip() {
        let d = tiny();
        let mut buf = Vec::new();
        to_jsonl(&d, &mut buf).unwrap();
        let back = from_jsonl(&buf[..]).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn file_round_trip() {
        let d = tiny();
        let path = std::env::temp_dir().join("rsd15k_io_test.jsonl");
        save(&d, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(d, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_format_and_version() {
        let bad = br#"{"format":"other","version":1,"seed":0,"n_posts":0,"users":[]}"#;
        assert!(from_jsonl(&bad[..]).is_err());
        let bad = br#"{"format":"rsd15k-jsonl","version":9,"seed":0,"n_posts":0,"users":[]}"#;
        assert!(from_jsonl(&bad[..]).is_err());
    }

    #[test]
    fn rejects_truncated_posts() {
        let d = tiny();
        let mut buf = Vec::new();
        to_jsonl(&d, &mut buf).unwrap();
        // Drop the last line.
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text
            .lines()
            .take(d.posts.len())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(from_jsonl(truncated.as_bytes()).is_err());
    }

    #[test]
    fn rejects_corrupt_structure() {
        let mut d = tiny();
        d.users[0].post_indices.pop(); // orphaned post
        let mut buf = Vec::new();
        to_jsonl(&d, &mut buf).unwrap();
        assert!(from_jsonl(&buf[..]).is_err(), "validation must run on load");
    }

    #[test]
    fn rejects_empty_input() {
        assert!(from_jsonl(&b""[..]).is_err());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let d = tiny();
        let mut buf = Vec::new();
        to_csv(&d, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), d.posts.len() + 1);
        assert!(lines[0].starts_with("post_id,"));
        assert!(lines[1].contains("Indicator"));
    }

    #[test]
    fn csv_escapes_quotes() {
        let mut d = tiny();
        d.posts[0].text = "he said \"hi\"".to_string();
        let mut buf = Vec::new();
        to_csv(&d, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"he said \"\"hi\"\"\""));
    }
}
