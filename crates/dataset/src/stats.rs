//! Dataset statistics behind the paper's §II figures and Table I.
//!
//! * [`class_distribution`] — Table I (count + percentage per class).
//! * [`posts_per_user_histogram`] — Fig. 1.
//! * [`class_word_frequencies`] — the word-cloud data of Figs. 2–3
//!   (top-k content unigrams per class after stopword removal).
//! * [`top_user_risk_profiles`] — Fig. 4 (risk-level mix of the 20 most
//!   active users).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::record::Rsd15k;
use rsd_common::stats::Histogram;
use rsd_corpus::{RiskLevel, UserId};
use rsd_text::stopwords::is_stopword;
use rsd_text::tokenize;

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassDistributionRow {
    /// Class name ("Attempt", ...).
    pub category: String,
    /// Post count.
    pub count: usize,
    /// Percentage of all posts (0–100).
    pub percentage: f64,
}

/// Table I: per-class counts and percentages, in the paper's row order
/// (Attempt, Behavior, Ideation, Indicator).
pub fn class_distribution(dataset: &Rsd15k) -> Vec<ClassDistributionRow> {
    let counts = dataset.class_counts();
    let total: usize = counts.iter().sum();
    let order = [
        RiskLevel::Attempt,
        RiskLevel::Behavior,
        RiskLevel::Ideation,
        RiskLevel::Indicator,
    ];
    order
        .iter()
        .map(|&level| ClassDistributionRow {
            category: level.name().to_string(),
            count: counts[level.index()],
            percentage: if total > 0 {
                100.0 * counts[level.index()] as f64 / total as f64
            } else {
                0.0
            },
        })
        .collect()
}

/// Fig. 1: histogram of posts-per-user with unit-width buckets up to
/// `max_bucket` (overflow pools in the last bucket).
pub fn posts_per_user_histogram(dataset: &Rsd15k, max_bucket: usize) -> Histogram {
    let mut h = Histogram::new(0.0, max_bucket as f64, max_bucket.max(1));
    for user in &dataset.users {
        h.record(user.post_indices.len() as f64);
    }
    h
}

/// Figs. 2–3: the `top_k` most frequent content words (stopwords removed)
/// for one class, with counts — the data a word cloud renders.
pub fn class_word_frequencies(
    dataset: &Rsd15k,
    level: RiskLevel,
    top_k: usize,
) -> Vec<(String, usize)> {
    let mut freq: HashMap<&str, usize> = HashMap::new();
    for post in dataset.posts.iter().filter(|p| p.label == level) {
        for tok in tokenize(&post.text) {
            if !is_stopword(tok) && tok.len() > 2 {
                *freq.entry(tok).or_insert(0) += 1;
            }
        }
    }
    let mut entries: Vec<(String, usize)> =
        freq.into_iter().map(|(t, c)| (t.to_string(), c)).collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    entries.truncate(top_k);
    entries
}

/// One bar of Fig. 4: a top-active user's per-class post counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserRiskProfile {
    /// The user (pseudonymous; the figure removes identifiers entirely).
    pub user: UserId,
    /// Total posts.
    pub total: usize,
    /// Post counts per class, indexed by [`RiskLevel::index`].
    pub class_counts: [usize; RiskLevel::COUNT],
}

/// Fig. 4: risk-level distribution of the `top_n` most active users,
/// ordered by activity descending.
pub fn top_user_risk_profiles(dataset: &Rsd15k, top_n: usize) -> Vec<UserRiskProfile> {
    let mut profiles: Vec<UserRiskProfile> = dataset
        .users
        .iter()
        .map(|u| {
            let mut class_counts = [0usize; RiskLevel::COUNT];
            for post in dataset.user_posts(u) {
                class_counts[post.label.index()] += 1;
            }
            UserRiskProfile {
                user: u.id,
                total: u.post_indices.len(),
                class_counts,
            }
        })
        .collect();
    profiles.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.user.cmp(&b.user)));
    profiles.truncate(top_n);
    profiles
}

/// Mean posts per user (Table II's "Size" sanity figure: 14,613 / 1,265).
pub fn mean_posts_per_user(dataset: &Rsd15k) -> f64 {
    if dataset.n_users() == 0 {
        return 0.0;
    }
    dataset.n_posts() as f64 / dataset.n_users() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_fixtures::tiny;
    use crate::{BuildConfig, DatasetBuilder};

    fn built() -> Rsd15k {
        DatasetBuilder::new(BuildConfig::scaled(301, 3_000, 50))
            .build()
            .unwrap()
            .0
    }

    #[test]
    fn table1_rows_in_paper_order_and_sum() {
        let d = built();
        let rows = class_distribution(&d);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].category, "Attempt");
        assert_eq!(rows[3].category, "Indicator");
        let total: usize = rows.iter().map(|r| r.count).sum();
        assert_eq!(total, d.n_posts());
        let pct: f64 = rows.iter().map(|r| r.percentage).sum();
        assert!((pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fig1_histogram_counts_users() {
        let d = built();
        let h = posts_per_user_histogram(&d, 60);
        assert_eq!(h.total as usize, d.n_users());
        // Fig 1's headline: the majority of users have < 20 posts.
        assert!(h.fraction_below(20.0) > 0.5);
    }

    #[test]
    fn word_frequencies_exclude_stopwords_and_sort() {
        let d = built();
        let words = class_word_frequencies(&d, RiskLevel::Ideation, 25);
        assert!(!words.is_empty());
        assert!(words.len() <= 25);
        for (w, _) in &words {
            assert!(!is_stopword(w), "stopword {w} leaked");
            assert!(w.len() > 2);
        }
        for pair in words.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "must be sorted by count");
        }
    }

    #[test]
    fn word_frequencies_reflect_class_language() {
        let d = built();
        // Preparatory-act vocabulary must be *relatively* enriched in
        // Behavior vs Indicator (word clouds are normalized per class).
        let rate = |level: RiskLevel, word: &str| {
            let freqs = class_word_frequencies(&d, level, usize::MAX);
            let total: usize = freqs.iter().map(|(_, c)| c).sum();
            let count = freqs
                .iter()
                .find(|(w, _)| w == word)
                .map(|(_, c)| *c)
                .unwrap_or(0);
            count as f64 / total.max(1) as f64
        };
        // The camouflage bank deliberately flattens most unigram contrasts
        // (see rsd-corpus lexicon docs); check words that remain
        // class-specific by design.
        assert!(
            rate(RiskLevel::Behavior, "collecting") > rate(RiskLevel::Indicator, "collecting"),
            "collecting should be enriched in Behavior"
        );
        assert!(
            rate(RiskLevel::Attempt, "attempt") > rate(RiskLevel::Ideation, "attempt"),
            "attempt should be enriched in Attempt"
        );
    }

    #[test]
    fn fig4_profiles_sorted_by_activity() {
        let d = built();
        let profiles = top_user_risk_profiles(&d, 20);
        assert_eq!(profiles.len(), 20.min(d.n_users()));
        for pair in profiles.windows(2) {
            assert!(pair[0].total >= pair[1].total);
        }
        for p in &profiles {
            assert_eq!(p.class_counts.iter().sum::<usize>(), p.total);
        }
    }

    #[test]
    fn tiny_fixture_stats() {
        let d = tiny();
        let rows = class_distribution(&d);
        assert_eq!(rows.iter().map(|r| r.count).sum::<usize>(), 5);
        assert!((mean_posts_per_user(&d) - 2.5).abs() < 1e-12);
        let profiles = top_user_risk_profiles(&d, 10);
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].total, 3);
    }
}
