//! The shared latest-`W` window-selection state, factored out of the
//! batch split path so the batch benchmark and the online serving path
//! score *the same* windows by construction.
//!
//! * [`WindowBuffer`] — one user's trailing window: the `W` largest
//!   `(created, post_id)` keys seen so far, kept in ascending order.
//!   Feeding a user's full timeline through it reproduces the batch
//!   tail-slice selection byte-for-byte, because
//!   [`DatasetBuilder`](crate::builder::DatasetBuilder) sorts timelines
//!   by exactly that key.
//! * [`UserWindowStore`] — a sharded, memory-bounded map of user →
//!   [`WindowBuffer`] with a deterministic hot-user LRU per shard.
//!   Shard assignment is `user % n_shards` and eviction order is a
//!   logical insertion clock, so the resident set after any item
//!   sequence is a pure function of that sequence — independent of
//!   thread count or wall-clock timing.

use std::collections::{BTreeMap, HashMap};

use rsd_common::Timestamp;

/// One retained post in a user's trailing window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowEntry<T> {
    /// Post creation time (primary sort key).
    pub created: Timestamp,
    /// Post id (tie-break key; unique per post).
    pub id: u32,
    /// Caller payload (post index for the batch path, post text for the
    /// serving path).
    pub payload: T,
}

/// A user's trailing window: the `cap` largest `(created, id)` keys seen
/// so far, in ascending order. Mirrors the batch path's "sort timeline by
/// `(created, id)`, take the tail slice" selection incrementally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowBuffer<T> {
    cap: usize,
    entries: Vec<WindowEntry<T>>,
    total_seen: u64,
}

impl<T> WindowBuffer<T> {
    /// Empty buffer retaining at most `cap` (min 1) posts.
    pub fn new(cap: usize) -> WindowBuffer<T> {
        let cap = cap.max(1);
        WindowBuffer {
            cap,
            entries: Vec::with_capacity(cap + 1),
            total_seen: 0,
        }
    }

    /// Observe one post. Inserts in key order and evicts the smallest
    /// key when past capacity, so the retained set is always the top
    /// `cap` by `(created, id)` — regardless of arrival order. Returns
    /// the evicted entry, if any.
    pub fn observe(&mut self, created: Timestamp, id: u32, payload: T) -> Option<WindowEntry<T>> {
        self.total_seen += 1;
        let key = (created.0, id);
        let pos = self.entries.partition_point(|e| (e.created.0, e.id) < key);
        self.entries.insert(
            pos,
            WindowEntry {
                created,
                id,
                payload,
            },
        );
        if self.entries.len() > self.cap {
            Some(self.entries.remove(0))
        } else {
            None
        }
    }

    /// The retained window, ascending by `(created, id)` — i.e.
    /// chronological, matching the batch `UserWindow` layout.
    pub fn entries(&self) -> &[WindowEntry<T>] {
        &self.entries
    }

    /// Number of posts currently retained (`≤ cap`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Window capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Total posts observed (retained or not) since creation.
    pub fn total_seen(&self) -> u64 {
        self.total_seen
    }

    /// Timestamps of the retained window, chronological.
    pub fn timestamps(&self) -> Vec<Timestamp> {
        self.entries.iter().map(|e| e.created).collect()
    }
}

/// One item for the store: a post event keyed by user.
#[derive(Debug, Clone)]
pub struct StoreItem<T> {
    /// Owning user (shard key).
    pub user: u32,
    /// Post creation time.
    pub created: Timestamp,
    /// Post id (unique tie-break).
    pub id: u32,
    /// Payload stored in the user's window.
    pub payload: T,
}

struct UserState<T> {
    buffer: WindowBuffer<T>,
    stamp: u64,
}

struct StoreShard<T> {
    users: HashMap<u32, UserState<T>>,
    /// Logical-clock LRU: smallest stamp = least recently touched.
    lru: BTreeMap<u64, u32>,
    clock: u64,
    evicted: u64,
    peak_users: usize,
}

impl<T> StoreShard<T> {
    fn new() -> StoreShard<T> {
        StoreShard {
            users: HashMap::new(),
            lru: BTreeMap::new(),
            clock: 0,
            evicted: 0,
            peak_users: 0,
        }
    }

    fn apply(&mut self, item: StoreItem<T>, window: usize, cap_users: usize) {
        self.clock += 1;
        let stamp = self.clock;
        let state = self.users.entry(item.user).or_insert_with(|| UserState {
            buffer: WindowBuffer::new(window),
            stamp: 0,
        });
        if state.stamp != 0 {
            self.lru.remove(&state.stamp);
        }
        state.stamp = stamp;
        state.buffer.observe(item.created, item.id, item.payload);
        self.lru.insert(stamp, item.user);
        while self.users.len() > cap_users {
            let (&oldest, &victim) = self.lru.iter().next().expect("lru tracks every user");
            self.lru.remove(&oldest);
            self.users.remove(&victim);
            self.evicted += 1;
        }
        self.peak_users = self.peak_users.max(self.users.len());
    }
}

/// Per-shard work unit for `apply_batch_map`: the shard, its
/// submission-ordered `(index, item)` queue, and the mapped results.
type ShardWork<'a, T, R> = (
    &'a mut StoreShard<T>,
    Vec<(usize, StoreItem<T>)>,
    Vec<(usize, R)>,
);

/// A sharded, memory-bounded user → [`WindowBuffer`] store with
/// deterministic LRU eviction. The serving substrate's per-key state; the
/// batch path shares its [`WindowBuffer`] selection core.
pub struct UserWindowStore<T> {
    shards: Vec<StoreShard<T>>,
    window: usize,
    cap_per_shard: usize,
}

impl<T: Send> UserWindowStore<T> {
    /// Store with `n_shards` shards (min 1), per-user window size
    /// `window`, and at most `lru_capacity` resident users overall
    /// (split evenly across shards, min 1 per shard).
    pub fn new(n_shards: usize, window: usize, lru_capacity: usize) -> UserWindowStore<T> {
        let n_shards = n_shards.max(1);
        UserWindowStore {
            shards: (0..n_shards).map(|_| StoreShard::new()).collect(),
            window: window.max(1),
            cap_per_shard: (lru_capacity / n_shards).max(1),
        }
    }

    /// Shard index owning `user`.
    pub fn shard_of(&self, user: u32) -> usize {
        (user as usize) % self.shards.len()
    }

    /// Ingest one post event.
    pub fn apply(&mut self, item: StoreItem<T>) {
        let shard = self.shard_of(item.user);
        let (window, cap) = (self.window, self.cap_per_shard);
        self.shards[shard].apply(item, window, cap);
    }

    /// The user's current window, if resident.
    pub fn buffer(&self, user: u32) -> Option<&WindowBuffer<T>> {
        self.shards[self.shard_of(user)]
            .users
            .get(&user)
            .map(|s| &s.buffer)
    }

    /// Ingest a batch, sharded across the `rsd-par` pool. Items for the
    /// same shard are applied in submission order, so the final state is
    /// identical to serial [`apply`](UserWindowStore::apply) calls.
    pub fn apply_batch(&mut self, items: Vec<StoreItem<T>>) {
        self.apply_batch_map::<(), (), _>(items, |_, _, _| ());
    }

    /// Ingest a batch and map each item's post-update window through
    /// `f(user, buffer, scratch)`, returning results in submission
    /// order. `scratch` is a per-shard reusable workspace (feature
    /// buffers, row vectors) constructed via `Default` once per shard
    /// per call. Sharding is by user id and per-shard application order
    /// is submission order, so results are bit-identical across thread
    /// counts.
    pub fn apply_batch_map<R, S, F>(&mut self, items: Vec<StoreItem<T>>, f: F) -> Vec<R>
    where
        R: Send,
        S: Default,
        F: Fn(u32, &WindowBuffer<T>, &mut S) -> R + Sync,
    {
        self.apply_batch_map_with(items, |user, buffer, _apply_ns, scratch| {
            f(user, buffer, scratch)
        })
    }

    /// [`apply_batch_map`](UserWindowStore::apply_batch_map) variant
    /// that also hands the callback the wall-clock nanoseconds the
    /// store spent applying that item (LRU bookkeeping + window push),
    /// so request-scoped tracing can attribute window-update time
    /// without a second clock read around the whole batch.
    pub fn apply_batch_map_with<R, S, F>(&mut self, items: Vec<StoreItem<T>>, f: F) -> Vec<R>
    where
        R: Send,
        S: Default,
        F: Fn(u32, &WindowBuffer<T>, u64, &mut S) -> R + Sync,
    {
        let n = items.len();
        let n_shards = self.shards.len();
        let mut per_shard: Vec<Vec<(usize, StoreItem<T>)>> =
            (0..n_shards).map(|_| Vec::new()).collect();
        for (idx, item) in items.into_iter().enumerate() {
            per_shard[(item.user as usize) % n_shards].push((idx, item));
        }

        let window = self.window;
        let cap = self.cap_per_shard;
        let mut work: Vec<ShardWork<'_, T, R>> = self
            .shards
            .iter_mut()
            .zip(per_shard)
            .map(|(shard, items)| (shard, items, Vec::new()))
            .collect();

        rsd_par::parallel_chunks_mut(&mut work, 1, |_start, chunk| {
            for (shard, items, out) in chunk.iter_mut() {
                let mut scratch = S::default();
                out.reserve(items.len());
                for (idx, item) in items.drain(..) {
                    let user = item.user;
                    let t0 = std::time::Instant::now();
                    shard.apply(item, window, cap);
                    let apply_ns = t0.elapsed().as_nanos() as u64;
                    let state = shard.users.get(&user).expect("just applied");
                    out.push((idx, f(user, &state.buffer, apply_ns, &mut scratch)));
                }
            }
        });

        // Stitch per-shard results back into submission order (serial,
        // ascending shard order — deterministic).
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (_, _, out) in work {
            for (idx, r) in out {
                results[idx] = Some(r);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every item mapped"))
            .collect()
    }

    /// Users currently resident across all shards.
    pub fn resident_users(&self) -> usize {
        self.shards.iter().map(|s| s.users.len()).sum()
    }

    /// Total LRU evictions so far.
    pub fn evicted_users(&self) -> u64 {
        self.shards.iter().map(|s| s.evicted).sum()
    }

    /// Sum of per-shard peak resident users — an upper bound on peak
    /// total residency, and deterministic.
    pub fn peak_resident_users(&self) -> usize {
        self.shards.iter().map(|s| s.peak_users).sum()
    }

    /// Per-user window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Maximum resident users per shard.
    pub fn cap_per_shard(&self) -> usize {
        self.cap_per_shard
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(user: u32, t: i64, id: u32) -> StoreItem<u32> {
        StoreItem {
            user,
            created: Timestamp(t),
            id,
            payload: id,
        }
    }

    #[test]
    fn buffer_keeps_top_w_regardless_of_arrival_order() {
        let mut chrono = WindowBuffer::new(3);
        let mut shuffled = WindowBuffer::new(3);
        let posts = [(10, 1), (20, 2), (20, 3), (30, 4), (40, 5)];
        for &(t, id) in &posts {
            chrono.observe(Timestamp(t), id, id);
        }
        for &i in &[3usize, 0, 4, 1, 2] {
            let (t, id) = posts[i];
            shuffled.observe(Timestamp(t), id, id);
        }
        assert_eq!(chrono, shuffled);
        let kept: Vec<u32> = chrono.entries().iter().map(|e| e.id).collect();
        assert_eq!(kept, vec![3, 4, 5]);
        assert_eq!(chrono.total_seen(), 5);
        assert_eq!(chrono.len(), 3);
    }

    #[test]
    fn buffer_tie_breaks_on_post_id() {
        let mut b = WindowBuffer::new(2);
        b.observe(Timestamp(10), 7, ());
        b.observe(Timestamp(10), 3, ());
        b.observe(Timestamp(10), 5, ());
        let kept: Vec<u32> = b.entries().iter().map(|e| e.id).collect();
        assert_eq!(kept, vec![5, 7], "same timestamp orders by id");
    }

    #[test]
    fn store_lru_evicts_least_recently_touched() {
        // One shard, capacity 2 users.
        let mut store: UserWindowStore<u32> = UserWindowStore::new(1, 5, 2);
        store.apply(item(1, 10, 1));
        store.apply(item(2, 11, 2));
        store.apply(item(1, 12, 3)); // touch user 1 → user 2 is now LRU
        store.apply(item(3, 13, 4)); // evicts user 2
        assert!(store.buffer(2).is_none());
        assert_eq!(store.buffer(1).unwrap().len(), 2);
        assert_eq!(store.buffer(3).unwrap().len(), 1);
        assert_eq!(store.evicted_users(), 1);
        assert_eq!(store.resident_users(), 2);
        assert_eq!(store.peak_resident_users(), 2);
    }

    #[test]
    fn batch_map_results_in_submission_order_across_thread_counts() {
        let items: Vec<StoreItem<u32>> = (0..200u32)
            .map(|i| item(i % 17, 100 + i as i64, i))
            .collect();
        let run = |threads: usize| {
            rsd_par::with_local_pool(threads, || {
                let mut store: UserWindowStore<u32> = UserWindowStore::new(4, 5, 1024);
                store.apply_batch_map::<(u32, u64, Vec<u32>), (), _>(
                    items.clone(),
                    |user, buf, _| {
                        (
                            user,
                            buf.total_seen(),
                            buf.entries().iter().map(|e| e.id).collect(),
                        )
                    },
                )
            })
        };
        let t1 = run(1);
        let t4 = run(4);
        assert_eq!(t1, t4);
        assert_eq!(t1.len(), 200);
        // Spot-check: item k is user k%17's (k/17 + 1)-th post.
        for (k, (user, seen, _)) in t1.iter().enumerate() {
            assert_eq!(*user, (k as u32) % 17);
            assert_eq!(*seen, (k as u64) / 17 + 1);
        }
    }

    #[test]
    fn batch_map_with_reports_per_item_apply_time() {
        let items: Vec<StoreItem<u32>> = (0..50u32).map(|i| item(i % 7, i as i64, i)).collect();
        let mut store: UserWindowStore<u32> = UserWindowStore::new(4, 5, 64);
        let out = store
            .apply_batch_map_with::<(u32, u64, u64), (), _>(items, |user, buf, apply_ns, _| {
                (user, buf.total_seen(), apply_ns)
            });
        assert_eq!(out.len(), 50);
        for (k, (user, seen, _apply_ns)) in out.iter().enumerate() {
            assert_eq!(*user, (k as u32) % 7);
            assert_eq!(*seen, (k as u64) / 7 + 1);
        }
        // Instants are monotonic, so every per-item timing is a real
        // (possibly zero) duration; at least the store did *some* work.
        let total: u64 = out.iter().map(|(_, _, ns)| *ns).sum();
        assert!(total < u64::MAX);
    }

    #[test]
    fn batch_matches_serial_apply() {
        let items: Vec<StoreItem<u32>> = (0..300u32).map(|i| item(i % 23, i as i64, i)).collect();
        let mut serial: UserWindowStore<u32> = UserWindowStore::new(8, 5, 16);
        for it in items.clone() {
            serial.apply(it);
        }
        let mut batched: UserWindowStore<u32> = UserWindowStore::new(8, 5, 16);
        batched.apply_batch(items);
        for user in 0..23u32 {
            assert_eq!(
                serial.buffer(user).map(|b| b.entries().to_vec()),
                batched.buffer(user).map(|b| b.entries().to_vec()),
                "user {user}"
            );
        }
        assert_eq!(serial.evicted_users(), batched.evicted_users());
        assert_eq!(serial.peak_resident_users(), batched.peak_resident_users());
    }
}
