//! The streaming sharded build — the stage graph behind
//! [`DatasetBuilder`](crate::DatasetBuilder).
//!
//! The batch path materializes the whole raw pool at once; this module
//! runs the same pipeline over **user shards** on `rsd-pipeline`:
//!
//! ```text
//! pipeline.shard.corpus      Source  generate shard + crawl its window
//! pipeline.shard.preprocess  Stage   clean/analyze bodies, drop raw posts
//!   └─ checkpoint "preprocess"       per-shard JSONL artifact
//! (fold, ascending shard order)      restore global post ids, merge
//! pipeline.merge                     chronological sort + global dedup
//! pipeline.select            global  annotation-pool selection
//!   └─ checkpoint "pipeline.select"
//! pipeline.annotate          global  the full annotation campaign
//!   └─ checkpoint "pipeline.annotate"
//! pipeline.assemble                  densify ids, validate
//! ```
//!
//! Output is **bit-identical** to [`DatasetBuilder::build_batch_with_pool`]
//! (CI diffs the two at smoke scale). The critical equivalences:
//!
//! * global post ids — the batch path numbers posts by stitching users in
//!   id order, so the fold restores each shard's ids by offsetting with
//!   the raw-post counts of all preceding shards;
//! * crawl order — the subreddit lists by `(created, id)`, so sorting the
//!   merged candidates by `(created, global id)` reproduces the batch
//!   crawl sequence exactly;
//! * dedup — first-occurrence detection must run over the *global*
//!   chronological stream (duplicates cross shards), so it happens at the
//!   merge, via the same [`ChronoDedup`] procedure the batch path uses;
//! * crawl stats — every generated post lies inside the collection
//!   window, so the batch client's request count has the closed form
//!   `max(1, ceil(posts / page))` the merge computes from shard counts.
//!
//! Only one wave of shards (raw posts and all) is resident at a time; the
//! merged candidate rows keep cleaned text but no raw bodies. The
//! `pipeline.peak_resident_posts` gauge reports the realized bound.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{BufRead, Write};
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use crate::builder::{BuildConfig, BuildReport};
use crate::record::{Post, Rsd15k, UserRecord};
use rsd_annotation::{AnnotatedItem, Campaign, CampaignReport};
use rsd_common::rng::fnv1a;
use rsd_common::{Result, RsdError, Timestamp};
use rsd_corpus::reddit::{CrawlStats, MAX_PAGE_SIZE};
use rsd_corpus::{
    select_users_for_annotation, CorpusGenerator, CorpusShardSource, CrawledShard, PostId, RawUser,
    RiskLevel, UserId,
};
use rsd_pipeline::{
    config_fingerprint, global_stage, run_shards, Artifact, Checkpointer, PipelineConfig,
    PipelineReport, ResidentGauge, ShardPlan, ShardSpec, ShardTaskExt, Sink, SourceTask, Stage,
};
use rsd_text::{ChronoDedup, PostFate, PreprocessReport, Preprocessor};

/// Options for a streaming build, usually read from the environment.
#[derive(Debug, Clone, Default)]
pub struct StreamingOptions {
    /// Shard sizing and concurrency (`RSD_SHARD_USERS`,
    /// `RSD_SHARDS_IN_FLIGHT`, `RSD_INTERRUPT_AFTER_SHARDS`).
    pub pipeline: PipelineConfig,
    /// Where stage-boundary artifacts live (`RSD_CHECKPOINT_DIR`); `None`
    /// disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Fault injection for resume tests (`RSD_INTERRUPT_AFTER_STAGE`):
    /// abort right after the named global stage commits its checkpoint
    /// (`"pipeline.select"` or `"pipeline.annotate"`).
    pub interrupt_after_stage: Option<String>,
}

impl StreamingOptions {
    /// Read every knob from the environment; unset variables keep
    /// defaults, malformed values are a hard error. `RSD_CHECKPOINT_DIR`
    /// set to `""` or `"none"` explicitly disables checkpointing.
    pub fn from_env() -> Result<Self> {
        let checkpoint_dir = std::env::var("RSD_CHECKPOINT_DIR")
            .ok()
            .filter(|v| !v.is_empty() && v != "none")
            .map(PathBuf::from);
        let interrupt_after_stage = std::env::var("RSD_INTERRUPT_AFTER_STAGE")
            .ok()
            .filter(|v| !v.is_empty());
        Ok(StreamingOptions {
            pipeline: PipelineConfig::from_env()?,
            checkpoint_dir,
            interrupt_after_stage,
        })
    }
}

/// Everything a streaming build returns.
#[derive(Debug)]
pub struct StreamingBuild {
    /// The assembled dataset (bit-identical to the batch path).
    pub dataset: Rsd15k,
    /// Cleaned texts of surviving posts from non-selected users.
    pub unlabeled: Vec<String>,
    /// The standard build report (bit-identical to the batch path).
    pub report: BuildReport,
    /// What the executor did: shards, residency peak, checkpoint traffic.
    pub pipeline: PipelineReport,
}

/// One analyzed candidate post inside a shard artifact. `id` is
/// shard-local; the fold restores global ids.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CandidateRow {
    id: u32,
    author: u32,
    created: i64,
    latent: RiskLevel,
    relevant: bool,
    tokens: u32,
    canon: String,
    /// Cleaned text, carried only while the post can still be kept
    /// (relevant and long enough; the dedup verdict is pending).
    cleaned: Option<String>,
}

/// Per-shard artifact at the preprocess checkpoint boundary.
#[derive(Debug, Clone)]
pub struct ShardCandidates {
    shard: usize,
    raw_users: usize,
    raw_posts: usize,
    crawl: CrawlStats,
    rows: Vec<CandidateRow>,
}

#[derive(Debug, Serialize, Deserialize)]
struct ShardCandidatesHeader {
    shard: usize,
    raw_users: usize,
    raw_posts: usize,
    crawl: CrawlStats,
    rows: usize,
}

fn serde_err(e: impl std::fmt::Display) -> RsdError {
    RsdError::Serde(e.to_string())
}

impl Artifact for ShardCandidates {
    fn encode(&self, w: &mut dyn Write) -> Result<()> {
        let header = ShardCandidatesHeader {
            shard: self.shard,
            raw_users: self.raw_users,
            raw_posts: self.raw_posts,
            crawl: self.crawl,
            rows: self.rows.len(),
        };
        writeln!(w, "{}", serde_json::to_string(&header).map_err(serde_err)?)?;
        for row in &self.rows {
            writeln!(w, "{}", serde_json::to_string(row).map_err(serde_err)?)?;
        }
        Ok(())
    }

    fn decode(r: &mut dyn BufRead) -> Result<Self> {
        let mut lines = r.lines();
        let header_line = lines
            .next()
            .ok_or_else(|| serde_err("empty shard artifact"))??;
        let header: ShardCandidatesHeader =
            serde_json::from_str(&header_line).map_err(serde_err)?;
        let mut rows = Vec::with_capacity(header.rows);
        for line in lines {
            rows.push(serde_json::from_str(&line?).map_err(serde_err)?);
        }
        if rows.len() != header.rows {
            return Err(serde_err(format!(
                "shard artifact declares {} rows, found {}",
                header.rows,
                rows.len()
            )));
        }
        Ok(ShardCandidates {
            shard: header.shard,
            raw_users: header.raw_users,
            raw_posts: header.raw_posts,
            crawl: header.crawl,
            rows,
        })
    }
}

/// The per-shard preprocess [`Stage`]: analyze each crawled body and drop
/// the raw posts, releasing the shard's residency budget.
pub struct PreprocessShardStage {
    pre: Preprocessor,
    resident: ResidentGauge,
}

impl PreprocessShardStage {
    /// Stage over the build's preprocessor configuration.
    pub fn new(pre: Preprocessor, resident: ResidentGauge) -> Self {
        PreprocessShardStage { pre, resident }
    }
}

impl Stage<CrawledShard> for PreprocessShardStage {
    type Out = ShardCandidates;

    fn name(&self) -> &'static str {
        "pipeline.shard.preprocess"
    }

    fn apply(&self, shard: &ShardSpec, input: CrawledShard) -> Result<ShardCandidates> {
        let rows = input
            .posts
            .iter()
            .map(|p| {
                let a = self.pre.analyze(&p.body);
                // Keep the cleaned text only while the post can still
                // survive: the dedup verdict arrives at the merge.
                let keepable = a.relevant && a.tokens >= self.pre.min_tokens;
                CandidateRow {
                    id: p.id.0,
                    author: p.author.0,
                    created: p.created.0,
                    latent: p.latent_risk,
                    relevant: a.relevant,
                    tokens: a.tokens as u32,
                    canon: a.canon,
                    cleaned: keepable.then_some(a.cleaned),
                }
            })
            .collect();
        self.resident.sub(input.raw_posts);
        Ok(ShardCandidates {
            shard: shard.index,
            raw_users: input.raw_users,
            raw_posts: input.raw_posts,
            crawl: input.crawl,
            rows,
        })
    }
}

/// A candidate row after the fold restored its global post id.
#[derive(Debug)]
struct MergedRow {
    id: u32,
    author: u32,
    created: i64,
    latent: RiskLevel,
    relevant: bool,
    tokens: u32,
    canon: String,
    cleaned: Option<String>,
}

/// A post that survived preprocessing, with its cleaned text.
#[derive(Debug)]
struct KeptPost {
    id: u32,
    author: u32,
    created: Timestamp,
    latent: RiskLevel,
    text: String,
}

/// The merge point: collects shard artifacts in fold order, restoring
/// global post ids from cumulative raw-post counts.
#[derive(Debug, Default)]
struct CandidateSink {
    next_shard: usize,
    post_offset: u64,
    raw_posts: usize,
    raw_users: usize,
    posts_fetched: u64,
    rows: Vec<MergedRow>,
}

impl Sink<ShardCandidates> for CandidateSink {
    fn accept(&mut self, shard: &ShardSpec, item: ShardCandidates) -> Result<()> {
        if item.shard != shard.index || shard.index != self.next_shard {
            return Err(RsdError::PipelineState(format!(
                "shard fold out of order: expected {}, got {} (artifact {})",
                self.next_shard, shard.index, item.shard
            )));
        }
        let mut text_bytes = 0u64;
        for row in item.rows {
            let id = self.post_offset + u64::from(row.id);
            let id = u32::try_from(id)
                .map_err(|_| RsdError::data("global post id exceeds u32 range"))?;
            text_bytes += row.canon.len() as u64;
            self.rows.push(MergedRow {
                id,
                author: row.author,
                created: row.created,
                latent: row.latent,
                relevant: row.relevant,
                tokens: row.tokens,
                canon: row.canon,
                cleaned: row.cleaned,
            });
        }
        self.post_offset += item.raw_posts as u64;
        self.raw_posts += item.raw_posts;
        self.raw_users += item.raw_users;
        self.posts_fetched += item.crawl.posts_fetched;
        self.next_shard += 1;
        rsd_obs::stage_progress("pipeline.merge", item.raw_posts as u64, text_bytes);
        Ok(())
    }
}

/// The merged, deduplicated corpus-after-preprocessing.
struct MergedCorpus {
    raw_posts: usize,
    raw_users: usize,
    crawl: CrawlStats,
    report: PreprocessReport,
    kept: Vec<KeptPost>,
    users: Vec<RawUser>,
}

impl CandidateSink {
    /// Sort into the global crawl order, run the global dedup pass, and
    /// settle every post's fate — reproducing the batch preprocess
    /// decisions and accounting exactly.
    fn finish(self, pre: &Preprocessor) -> MergedCorpus {
        let _span = rsd_obs::Span::enter("pipeline.merge");
        let mut rows = self.rows;
        // The subreddit lists by (created, id); ids are unique, so this
        // reproduces the batch crawl sequence.
        rows.sort_unstable_by_key(|r| (r.created, r.id));

        let duplicate: Vec<bool> = {
            let mut dedup = ChronoDedup::with_capacity(rows.len());
            rows.iter()
                .map(|row| {
                    dedup
                        .push(fnv1a(row.canon.as_bytes()), |orig| {
                            rows[orig].canon == row.canon
                        })
                        .is_some()
                })
                .collect()
        };

        let mut report = PreprocessReport {
            total: rows.len(),
            ..Default::default()
        };
        let mut kept = Vec::new();
        let mut users: BTreeMap<u32, Vec<PostId>> = BTreeMap::new();
        for (row, &dup) in rows.iter_mut().zip(&duplicate) {
            match pre.classify_parts(row.relevant, row.tokens as usize, dup) {
                PostFate::Irrelevant => report.removed_irrelevant += 1,
                PostFate::Duplicate => report.removed_duplicates += 1,
                PostFate::TooShort => report.removed_too_short += 1,
                PostFate::Kept => {
                    report.kept += 1;
                    users.entry(row.author).or_default().push(PostId(row.id));
                    kept.push(KeptPost {
                        id: row.id,
                        author: row.author,
                        created: Timestamp(row.created),
                        latent: row.latent,
                        text: row.cleaned.take().expect("kept rows carry cleaned text"),
                    });
                }
            }
        }
        rsd_obs::counter_add("textproc.posts_in", report.total as u64);
        rsd_obs::counter_add("textproc.posts_kept", report.kept as u64);
        rsd_obs::counter_add(
            "textproc.posts_removed",
            (report.removed_irrelevant + report.removed_duplicates + report.removed_too_short)
                as u64,
        );

        // Global crawl stats in closed form: every generated post lies in
        // the collection window, so the batch client walks
        // ceil(posts / page) full pages at 60 requests/simulated-minute.
        debug_assert_eq!(self.posts_fetched as usize, self.raw_posts);
        let requests = (self.raw_posts as u64)
            .div_ceil(MAX_PAGE_SIZE as u64)
            .max(1);
        let crawl = CrawlStats {
            requests,
            posts_fetched: self.posts_fetched,
            simulated_secs: requests,
        };

        let users = users
            .into_iter()
            .map(|(id, post_ids)| RawUser {
                id: UserId(id),
                post_ids,
            })
            .collect();
        MergedCorpus {
            raw_posts: self.raw_posts,
            raw_users: self.raw_users,
            crawl,
            report,
            kept,
            users,
        }
    }
}

/// Global selection-stage artifact.
struct SelectArtifact {
    picked: Vec<UserId>,
}

impl Artifact for SelectArtifact {
    fn encode(&self, w: &mut dyn Write) -> Result<()> {
        writeln!(
            w,
            "{}",
            serde_json::to_string(&self.picked).map_err(serde_err)?
        )?;
        Ok(())
    }

    fn decode(r: &mut dyn BufRead) -> Result<Self> {
        let mut line = String::new();
        r.read_line(&mut line)?;
        Ok(SelectArtifact {
            picked: serde_json::from_str(line.trim_end()).map_err(serde_err)?,
        })
    }
}

/// Global annotation-stage artifact.
struct AnnotateArtifact {
    items: Vec<AnnotatedItem>,
    report: CampaignReport,
}

#[derive(Serialize, Deserialize)]
struct AnnotateHeader {
    items: usize,
    report: CampaignReport,
}

impl Artifact for AnnotateArtifact {
    fn encode(&self, w: &mut dyn Write) -> Result<()> {
        let header = AnnotateHeader {
            items: self.items.len(),
            report: self.report.clone(),
        };
        writeln!(w, "{}", serde_json::to_string(&header).map_err(serde_err)?)?;
        for item in &self.items {
            writeln!(w, "{}", serde_json::to_string(item).map_err(serde_err)?)?;
        }
        Ok(())
    }

    fn decode(r: &mut dyn BufRead) -> Result<Self> {
        let mut lines = r.lines();
        let header_line = lines
            .next()
            .ok_or_else(|| serde_err("empty annotate artifact"))??;
        let header: AnnotateHeader = serde_json::from_str(&header_line).map_err(serde_err)?;
        let mut items = Vec::with_capacity(header.items);
        for line in lines {
            items.push(serde_json::from_str(&line?).map_err(serde_err)?);
        }
        if items.len() != header.items {
            return Err(serde_err(format!(
                "annotate artifact declares {} items, found {}",
                header.items,
                items.len()
            )));
        }
        Ok(AnnotateArtifact {
            items,
            report: header.report,
        })
    }
}

/// Fault-injection hook: abort after the named stage committed.
fn check_interrupt(opts: &StreamingOptions, stage: &str) -> Result<()> {
    match &opts.interrupt_after_stage {
        Some(s) if s == stage => Err(RsdError::PipelineState(format!(
            "pipeline interrupted after stage {stage}"
        ))),
        _ => Ok(()),
    }
}

/// Everything output-affecting folds into the checkpoint fingerprint:
/// resuming under a different configuration, seed, or shard geometry
/// silently invalidates prior artifacts.
fn fingerprint(cfg: &BuildConfig, shard_users: usize) -> u64 {
    config_fingerprint(&format!("rsd-stream-v1|{cfg:?}|shard_users={shard_users}"))
}

/// Run the full streaming build. See the module docs for the stage graph
/// and the equivalence argument.
///
/// On any error — including injected interrupts (exit 9 in the bench
/// bin) — a `pipeline.aborted` event is emitted and the NDJSON sink is
/// flushed, so a killed build still leaves a complete trace for
/// post-mortem before the process exits.
pub(crate) fn build_streaming(
    cfg: &BuildConfig,
    opts: &StreamingOptions,
) -> Result<StreamingBuild> {
    let out = build_streaming_inner(cfg, opts);
    match &out {
        Ok(_) => rsd_obs::alloc::publish_gauges(),
        Err(e) => {
            rsd_obs::event(
                "pipeline.aborted",
                &[("error", rsd_obs::Value::String(e.to_string()))],
            );
            rsd_obs::flush();
        }
    }
    out
}

fn build_streaming_inner(cfg: &BuildConfig, opts: &StreamingOptions) -> Result<StreamingBuild> {
    let _span = rsd_obs::Span::enter("dataset.build.streaming");
    let generator = CorpusGenerator::new(cfg.corpus.clone())?;
    let n_users = u32::try_from(cfg.corpus.n_users)
        .map_err(|_| RsdError::config("n_users", "exceeds u32 range"))?;
    let shard_users = u32::try_from(opts.pipeline.shard_users).unwrap_or(u32::MAX);
    let plan = ShardPlan::new(n_users, shard_users)?;
    let ckpt = opts
        .checkpoint_dir
        .as_ref()
        .map(|dir| Checkpointer::new(dir, fingerprint(cfg, opts.pipeline.shard_users)))
        .transpose()?;

    // 1.–3. Generate + crawl + preprocess, one wave of shards at a time.
    let resident = ResidentGauge::new();
    let task = SourceTask(CorpusShardSource::new(generator, resident.clone()))
        .then(PreprocessShardStage::new(
            cfg.preprocess.clone(),
            resident.clone(),
        ))
        .checkpoint("preprocess");
    let mut sink = CandidateSink::default();
    run_shards(&opts.pipeline, &plan, &task, ckpt.as_ref(), &mut sink)?;
    let merged = sink.finish(&cfg.preprocess);

    // 4. Select the annotation pool.
    let select = global_stage(ckpt.as_ref(), "pipeline.select", || {
        Ok(SelectArtifact {
            picked: select_users_for_annotation(&merged.users, &cfg.selection)?,
        })
    })?;
    check_interrupt(opts, "pipeline.select")?;

    let picked_set: HashSet<u32> = select.picked.iter().map(|u| u.0).collect();
    let mut pool_posts = Vec::new();
    let mut unlabeled = Vec::new();
    for post in merged.kept {
        if picked_set.contains(&post.author) {
            pool_posts.push(post);
        } else {
            unlabeled.push(post.text);
        }
    }

    // 5. Annotate: the campaign sees (post id, latent truth) pairs.
    let items: Vec<(PostId, RiskLevel)> = pool_posts
        .iter()
        .map(|p| (PostId(p.id), p.latent))
        .collect();
    let annotate = global_stage(ckpt.as_ref(), "pipeline.annotate", || {
        let mut campaign = Campaign::new(cfg.campaign.clone())?;
        let (items, report) = campaign.run(&items)?;
        Ok(AnnotateArtifact { items, report })
    })?;
    rsd_obs::stage_progress("pipeline.annotate", annotate.items.len() as u64, 0);
    check_interrupt(opts, "pipeline.annotate")?;
    if annotate.items.len() != pool_posts.len() {
        return Err(RsdError::PipelineState(format!(
            "annotation artifact covers {} items, pool has {}",
            annotate.items.len(),
            pool_posts.len()
        )));
    }

    // 6. Assemble, re-densifying user and post ids exactly as the batch
    //    path does.
    let assemble_span = rsd_obs::Span::enter("pipeline.assemble");
    let mut posts = Vec::with_capacity(pool_posts.len());
    let mut timelines: HashMap<UserId, Vec<usize>> = HashMap::new();
    let mut user_remap: HashMap<UserId, UserId> = HashMap::new();
    let mut assembled_bytes = 0u64;
    for (kept, annotation) in pool_posts.into_iter().zip(&annotate.items) {
        debug_assert_eq!(PostId(kept.id), annotation.post);
        assembled_bytes += kept.text.len() as u64;
        let new_user = {
            let next = UserId(user_remap.len() as u32);
            *user_remap.entry(UserId(kept.author)).or_insert(next)
        };
        let new_post_idx = posts.len();
        posts.push(Post {
            id: PostId(new_post_idx as u32),
            user: new_user,
            created: kept.created,
            text: kept.text,
            label: annotation.label,
            source: annotation.source,
        });
        timelines.entry(new_user).or_default().push(new_post_idx);
    }
    let mut users: Vec<UserRecord> = timelines
        .into_iter()
        .map(|(id, mut post_indices)| {
            post_indices.sort_by_key(|&i| (posts[i].created, posts[i].id));
            UserRecord { id, post_indices }
        })
        .collect();
    users.sort_by_key(|u| u.id);

    let dataset = Rsd15k {
        posts,
        users,
        seed: cfg.seed,
    };
    dataset.validate()?;
    rsd_obs::stage_progress(
        "pipeline.assemble",
        dataset.posts.len() as u64,
        assembled_bytes,
    );
    drop(assemble_span);

    let report = BuildReport {
        raw_posts: merged.raw_posts,
        raw_users: merged.raw_users,
        crawl: merged.crawl,
        preprocess: merged.report,
        selected_users: select.picked.len(),
        selected_posts: dataset.n_posts(),
        campaign: annotate.report,
    };
    if report.selected_posts == 0 {
        return Err(RsdError::PipelineState(
            "build produced an empty dataset".to_string(),
        ));
    }
    let pipeline = PipelineReport {
        shards: plan.n_shards(),
        shard_users: opts.pipeline.shard_users,
        shards_in_flight: opts.pipeline.shards_in_flight,
        peak_resident_posts: resident.peak(),
        checkpoint_hits: ckpt.as_ref().map(Checkpointer::hits).unwrap_or(0),
        checkpoint_writes: ckpt.as_ref().map(Checkpointer::writes).unwrap_or(0),
    };
    Ok(StreamingBuild {
        dataset,
        unlabeled,
        report,
        pipeline,
    })
}
