//! End-to-end dataset construction (the whole of the paper's §II).
//!
//! One [`DatasetBuilder::build`] call executes the complete pipeline the
//! paper describes, in order:
//!
//! 1. **Raw pool** — the generative corpus model emits the
//!    `r/SuicideWatch`-like pool (paper: 139,455 posts / 76,186 users).
//! 2. **Crawl** — a rate-limited, paginated [`rsd_corpus::reddit`] client
//!    harvests the collection window, exactly as the authors' crawler did.
//! 3. **Preprocess** — relevance filter, dedup, noise cleaning,
//!    normalization ([`rsd_text`]).
//! 4. **Select** — the 1,265-user annotation pool with complete timelines.
//! 5. **Annotate** — the full campaign with qualification, uncertainty
//!    policy, voting, inspections ([`rsd_annotation`]).
//! 6. **Assemble** — a validated [`Rsd15k`] with per-user chronological
//!    indices.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::record::{Post, Rsd15k, UserRecord};
use crate::stream::{StreamingBuild, StreamingOptions};
use rsd_annotation::{Campaign, CampaignConfig, CampaignReport};
use rsd_common::{Result, RsdError};
use rsd_corpus::reddit::{CrawlClient, CrawlStats};
use rsd_corpus::{
    select_users_for_annotation, CorpusConfig, CorpusGenerator, RawPost, RawUser, SelectionConfig,
    UserId,
};
use rsd_text::{PreprocessReport, Preprocessor};

/// Configuration of the full build.
#[derive(Debug, Clone)]
pub struct BuildConfig {
    /// Master seed (threaded through every stage).
    pub seed: u64,
    /// Raw-pool generation parameters.
    pub corpus: CorpusConfig,
    /// Annotation-pool selection parameters.
    pub selection: SelectionConfig,
    /// Preprocessing parameters.
    pub preprocess: Preprocessor,
    /// Annotation-campaign parameters.
    pub campaign: CampaignConfig,
}

impl BuildConfig {
    /// Paper-scale build: ≈139k raw posts → 1,265 users / ≈14.6k posts.
    pub fn paper(seed: u64) -> Self {
        BuildConfig {
            seed,
            corpus: CorpusConfig::paper(seed),
            selection: SelectionConfig::paper(seed),
            preprocess: Preprocessor::default(),
            campaign: CampaignConfig::paper(seed),
        }
    }

    /// Scaled-down build preserving every distributional shape: `raw_users`
    /// in the pool, `selected_users` annotated. Useful for tests, debug
    /// builds and Criterion benches.
    pub fn scaled(seed: u64, raw_users: usize, selected_users: usize) -> Self {
        BuildConfig {
            seed,
            corpus: CorpusConfig::small(seed, raw_users),
            selection: SelectionConfig::scaled(seed, selected_users),
            preprocess: Preprocessor::default(),
            campaign: CampaignConfig::paper(seed),
        }
    }
}

/// Everything the build produced besides the dataset itself.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BuildReport {
    /// Raw pool size (posts) before preprocessing.
    pub raw_posts: usize,
    /// Raw pool users.
    pub raw_users: usize,
    /// Crawl statistics from the simulated API client.
    pub crawl: CrawlStats,
    /// Preprocessing removals.
    pub preprocess: PreprocessReport,
    /// Users selected for annotation.
    pub selected_users: usize,
    /// Posts entering the annotation campaign.
    pub selected_posts: usize,
    /// The annotation campaign's report (kappa, inspections, ...).
    pub campaign: CampaignReport,
}

/// The dataset builder.
pub struct DatasetBuilder {
    cfg: BuildConfig,
}

impl DatasetBuilder {
    /// Create a builder.
    pub fn new(cfg: BuildConfig) -> Self {
        DatasetBuilder { cfg }
    }

    /// Run the full pipeline.
    pub fn build(&self) -> Result<(Rsd15k, BuildReport)> {
        let (dataset, _pool, report) = self.build_with_pool()?;
        Ok((dataset, report))
    }

    /// Run the full pipeline, additionally returning the **unlabelled
    /// pool**: cleaned texts of surviving posts whose authors were *not*
    /// selected for annotation. This is the in-domain corpus the PLM
    /// baselines pretrain on (the paper's crawl minus its annotated
    /// subset).
    ///
    /// Since the streaming refactor this runs the sharded pipeline (see
    /// [`crate::stream`]) with options read from the environment
    /// (`RSD_SHARD_USERS`, `RSD_SHARDS_IN_FLIGHT`, `RSD_CHECKPOINT_DIR`);
    /// its output is bit-identical to [`DatasetBuilder::build_batch_with_pool`].
    pub fn build_with_pool(&self) -> Result<(Rsd15k, Vec<String>, BuildReport)> {
        let opts = StreamingOptions::from_env()?;
        let out = self.build_streaming(&opts)?;
        Ok((out.dataset, out.unlabeled, out.report))
    }

    /// Run the streaming sharded pipeline with explicit options, returning
    /// the executor's report (shard count, residency peak, checkpoint
    /// traffic) alongside the dataset.
    pub fn build_streaming(&self, opts: &StreamingOptions) -> Result<StreamingBuild> {
        let _build_span = rsd_obs::Span::enter("dataset.build");
        crate::stream::build_streaming(&self.cfg, opts)
    }

    /// The original monolithic batch pipeline, kept as the golden
    /// reference the streaming path is diffed against (CI compares their
    /// JSONL outputs byte for byte).
    pub fn build_batch_with_pool(&self) -> Result<(Rsd15k, Vec<String>, BuildReport)> {
        let _build_span = rsd_obs::Span::enter("dataset.build");
        let cfg = &self.cfg;

        // 1. Raw pool.
        let generator = CorpusGenerator::new(cfg.corpus.clone())?;
        let raw = generator.generate();
        let raw_posts = raw.post_count();
        let raw_users_count = raw.users.len();

        // 2. Crawl through the simulated API (downstream stages consume the
        //    crawl output, not generator internals).
        let crawl_span = rsd_obs::Span::enter("dataset.build.crawl");
        let store = raw.into_store();
        let mut client = CrawlClient::new(&store);
        let crawled = client.crawl_window(
            "SuicideWatch",
            cfg.corpus.window_start,
            cfg.corpus.window_end,
        )?;
        let crawl_stats = client.stats();
        drop(crawl_span);

        // 3. Preprocess, borrowing the crawled bodies (no corpus clone).
        let bodies: Vec<&str> = crawled.iter().map(|p| p.body.as_str()).collect();
        let outcome = cfg.preprocess.run(&bodies);

        // Surviving posts, with cleaned text attached.
        let kept: Vec<(&RawPost, &str)> = crawled
            .iter()
            .zip(&outcome.cleaned)
            .zip(&outcome.keep)
            .filter(|(_, &keep)| keep)
            .map(|((post, cleaned), _)| (post, cleaned.as_str()))
            .collect();

        // Rebuild per-user timelines over surviving posts.
        let mut by_user: HashMap<UserId, Vec<usize>> = HashMap::new();
        for (i, (post, _)) in kept.iter().enumerate() {
            by_user.entry(post.author).or_default().push(i);
        }
        let mut cleaned_users: Vec<RawUser> = by_user
            .iter()
            .map(|(&id, indices)| RawUser {
                id,
                post_ids: indices.iter().map(|&i| kept[i].0.id).collect(),
            })
            .collect();
        cleaned_users.sort_by_key(|u| u.id);

        // 4. Select the annotation pool.
        let select_span = rsd_obs::Span::enter("dataset.build.select");
        let picked = select_users_for_annotation(&cleaned_users, &cfg.selection)?;
        let picked_set: std::collections::HashSet<UserId> = picked.iter().copied().collect();

        let pool: Vec<usize> = kept
            .iter()
            .enumerate()
            .filter(|(_, (post, _))| picked_set.contains(&post.author))
            .map(|(i, _)| i)
            .collect();

        // The unlabelled pool: everything that survived preprocessing but
        // was not selected for annotation.
        let unlabeled: Vec<String> = kept
            .iter()
            .filter(|(post, _)| !picked_set.contains(&post.author))
            .map(|(_, cleaned)| cleaned.to_string())
            .collect();
        drop(select_span);

        // 5. Annotate: the campaign sees (post id, latent truth) pairs.
        let items: Vec<_> = pool
            .iter()
            .map(|&i| (kept[i].0.id, kept[i].0.latent_risk))
            .collect();
        let mut campaign = Campaign::new(cfg.campaign.clone())?;
        let (annotated, campaign_report) = campaign.run(&items)?;

        // 6. Assemble, re-densifying user and post ids so published ids
        //    carry no information about the raw pool (privacy posture).
        let assemble_span = rsd_obs::Span::enter("dataset.build.assemble");
        let mut posts = Vec::with_capacity(pool.len());
        let mut timelines: HashMap<UserId, Vec<usize>> = HashMap::new();
        let mut user_remap: HashMap<UserId, UserId> = HashMap::new();
        for (&pool_idx, annotation) in pool.iter().zip(&annotated) {
            let (raw_post, cleaned) = kept[pool_idx];
            debug_assert_eq!(raw_post.id, annotation.post);
            let new_user = {
                let next = UserId(user_remap.len() as u32);
                *user_remap.entry(raw_post.author).or_insert(next)
            };
            let new_post_idx = posts.len();
            posts.push(Post {
                id: rsd_corpus::PostId(new_post_idx as u32),
                user: new_user,
                created: raw_post.created,
                text: cleaned.to_string(),
                label: annotation.label,
                source: annotation.source,
            });
            timelines.entry(new_user).or_default().push(new_post_idx);
        }

        let mut users: Vec<UserRecord> = timelines
            .into_iter()
            .map(|(id, mut post_indices)| {
                post_indices.sort_by_key(|&i| (posts[i].created, posts[i].id));
                UserRecord { id, post_indices }
            })
            .collect();
        users.sort_by_key(|u| u.id);

        let dataset = Rsd15k {
            posts,
            users,
            seed: cfg.seed,
        };
        dataset.validate()?;
        drop(assemble_span);

        let report = BuildReport {
            raw_posts,
            raw_users: raw_users_count,
            crawl: crawl_stats,
            preprocess: outcome.report,
            selected_users: picked.len(),
            selected_posts: dataset.n_posts(),
            campaign: campaign_report,
        };
        if report.selected_posts == 0 {
            return Err(RsdError::PipelineState(
                "build produced an empty dataset".to_string(),
            ));
        }
        Ok((dataset, unlabeled, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsd_corpus::RiskLevel;

    fn build_small(seed: u64) -> (Rsd15k, BuildReport) {
        DatasetBuilder::new(BuildConfig::scaled(seed, 4_000, 60))
            .build()
            .unwrap()
    }

    #[test]
    fn pipeline_produces_valid_dataset() {
        let (dataset, report) = build_small(101);
        dataset.validate().unwrap();
        assert_eq!(dataset.n_users(), 60);
        assert!(report.raw_posts > 4_000);
        assert!(report.preprocess.kept < report.raw_posts);
        assert_eq!(report.selected_users, 60);
        // ≈11.55 posts/user target from the selection stage.
        let mean = dataset.n_posts() as f64 / dataset.n_users() as f64;
        assert!((8.0..16.0).contains(&mean), "mean posts/user {mean}");
    }

    #[test]
    fn unlabeled_pool_excludes_selected_users() {
        let (dataset, pool, report) = DatasetBuilder::new(BuildConfig::scaled(110, 3_000, 40))
            .build_with_pool()
            .unwrap();
        assert!(!pool.is_empty());
        // Pool + annotated = everything that survived preprocessing.
        assert_eq!(pool.len() + dataset.n_posts(), report.preprocess.kept);
        // Pool texts are cleaned (no raw noise).
        for text in pool.iter().take(200) {
            assert!(!text.contains("https://"));
        }
    }

    #[test]
    fn ids_are_dense_and_anonymized() {
        let (dataset, _) = build_small(102);
        for (i, post) in dataset.posts.iter().enumerate() {
            assert_eq!(post.id.0 as usize, i);
        }
        let max_user = dataset.posts.iter().map(|p| p.user.0).max().unwrap();
        assert_eq!(max_user as usize + 1, dataset.n_users());
    }

    #[test]
    fn class_distribution_tracks_table1() {
        let (dataset, _) = build_small(103);
        let counts = dataset.class_counts();
        let total: usize = counts.iter().sum();
        let frac = |l: RiskLevel| counts[l.index()] as f64 / total as f64;
        // Annotation noise and selection shift the marginals a little; the
        // ordering and rough magnitudes of Table I must survive.
        assert!(frac(RiskLevel::Ideation) > frac(RiskLevel::Indicator));
        assert!(frac(RiskLevel::Indicator) > frac(RiskLevel::Behavior));
        assert!(frac(RiskLevel::Behavior) > frac(RiskLevel::Attempt));
        assert!((frac(RiskLevel::Ideation) - 0.4881).abs() < 0.10);
        assert!((frac(RiskLevel::Attempt) - 0.0554).abs() < 0.05);
    }

    #[test]
    fn campaign_report_carries_kappa() {
        let (_, report) = build_small(104);
        assert!(report.campaign.kappa_items > 0);
        assert!((0.5..=0.9).contains(&report.campaign.fleiss_kappa));
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = build_small(105);
        let (b, _) = build_small(105);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = build_small(106);
        let (b, _) = build_small(107);
        assert_ne!(a, b);
    }

    #[test]
    fn no_raw_noise_survives_into_text() {
        let (dataset, _) = build_small(108);
        for post in &dataset.posts {
            assert!(!post.text.contains("https://"), "link survived cleaning");
            assert!(!post.text.contains("!!!"), "punct run survived cleaning");
            assert!(!post.text.contains('#'), "special char survived cleaning");
        }
    }

    #[test]
    fn timelines_preserved_in_order() {
        let (dataset, _) = build_small(109);
        for user in &dataset.users {
            let mut prev = None;
            for post in dataset.user_posts(user) {
                if let Some(p) = prev {
                    assert!(post.created >= p);
                }
                prev = Some(post.created);
            }
        }
    }
}
