//! User-disjoint splits and the benchmark's windowed task extraction.
//!
//! The paper (§III): "we randomly divide all users into training set (80 %),
//! validation set (10 %), and test set (10 %) to ensure that the users from
//! the training set and test set are entirely disjoint to prevent data
//! leakage risks", and "we mainly focus on the analysis of user sequential
//! posts within a specific time window (... the stable version has 5 window
//! elements)". [`UserWindow`] is that task instance: a user's last `W`
//! posts, their timestamps, and the user-level label (latest post's level).

use serde::{Deserialize, Serialize};

use crate::record::{Rsd15k, UserRecord};
use crate::window_store::WindowBuffer;
use rsd_common::rng::{shuffle, stream_rng};
use rsd_common::{Result, RsdError, Timestamp};
use rsd_corpus::{RiskLevel, UserId};

/// Split proportions and seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitConfig {
    /// Seed for the user shuffle.
    pub seed: u64,
    /// Train fraction (paper: 0.8).
    pub train: f64,
    /// Validation fraction (paper: 0.1); the remainder is test.
    pub valid: f64,
    /// Sequential window size (paper's stable version: 5).
    pub window: usize,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            seed: 0,
            train: 0.8,
            valid: 0.1,
            window: 5,
        }
    }
}

/// One task instance: a user's recent posting window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserWindow {
    /// The user.
    pub user: UserId,
    /// Indices into `Rsd15k::posts` of the last `≤ window` posts,
    /// chronological.
    pub post_indices: Vec<usize>,
    /// Timestamps of those posts.
    pub timestamps: Vec<Timestamp>,
    /// The user-level label: risk level of the latest post.
    pub label: RiskLevel,
}

/// A user-disjoint train/valid/test partition of windowed task instances.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSplits {
    /// Training instances.
    pub train: Vec<UserWindow>,
    /// Validation instances.
    pub valid: Vec<UserWindow>,
    /// Test instances.
    pub test: Vec<UserWindow>,
    /// The configuration that produced the split.
    pub config: SplitConfig,
}

impl DatasetSplits {
    /// Create splits from a dataset.
    pub fn new(dataset: &Rsd15k, cfg: SplitConfig) -> Result<Self> {
        if !(0.0..1.0).contains(&cfg.train) || !(0.0..1.0).contains(&cfg.valid) {
            return Err(RsdError::config(
                "train/valid",
                "fractions must be in [0,1)",
            ));
        }
        if cfg.train + cfg.valid >= 1.0 {
            return Err(RsdError::config(
                "train+valid",
                "must leave room for the test set",
            ));
        }
        if cfg.window == 0 {
            return Err(RsdError::config("window", "must be positive"));
        }
        if dataset.n_users() < 3 {
            return Err(RsdError::data("need at least 3 users to split"));
        }

        let mut order: Vec<usize> = (0..dataset.n_users()).collect();
        let mut rng = stream_rng(cfg.seed, "splits.users");
        shuffle(&mut rng, &mut order);

        let n = order.len();
        let n_train = ((n as f64) * cfg.train).round() as usize;
        let n_valid = ((n as f64) * cfg.valid).round() as usize;
        let n_train = n_train.clamp(1, n - 2);
        let n_valid = n_valid.clamp(1, n - n_train - 1);

        let window_of = |uidx: usize| -> UserWindow {
            extract_window(dataset, &dataset.users[uidx], cfg.window)
        };

        Ok(DatasetSplits {
            train: order[..n_train].iter().map(|&u| window_of(u)).collect(),
            valid: order[n_train..n_train + n_valid]
                .iter()
                .map(|&u| window_of(u))
                .collect(),
            test: order[n_train + n_valid..]
                .iter()
                .map(|&u| window_of(u))
                .collect(),
            config: cfg,
        })
    }

    /// Total instances across splits.
    pub fn total(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }

    /// Check user-disjointness (used by property tests).
    pub fn is_user_disjoint(&self) -> bool {
        use std::collections::HashSet;
        let ids = |ws: &[UserWindow]| ws.iter().map(|w| w.user).collect::<HashSet<_>>();
        let (tr, va, te) = (ids(&self.train), ids(&self.valid), ids(&self.test));
        tr.is_disjoint(&va) && tr.is_disjoint(&te) && va.is_disjoint(&te)
    }
}

/// Post-level task instances: one window *per post* of the user, each
/// ending at (and labelled by) that post with up to `window − 1` posts of
/// preceding context. `max_per_user` caps the expansion at the user's most
/// recent posts (training-budget control).
///
/// This is the post-level view the dataset's dual annotation granularity
/// supports ("Risk Level: Post, User" in Table II); the benchmark's neural
/// baselines train on it and are *evaluated* on the user-level instance.
pub fn post_level_windows(
    dataset: &Rsd15k,
    user: &UserRecord,
    window: usize,
    max_per_user: usize,
) -> Vec<UserWindow> {
    let n = user.post_indices.len();
    let first = n.saturating_sub(max_per_user.max(1));
    (first..n)
        .map(|end| {
            let start = (end + 1).saturating_sub(window);
            let post_indices: Vec<usize> = user.post_indices[start..=end].to_vec();
            let timestamps: Vec<Timestamp> = post_indices
                .iter()
                .map(|&i| dataset.posts[i].created)
                .collect();
            let label = dataset.posts[user.post_indices[end]].label;
            UserWindow {
                user: user.id,
                post_indices,
                timestamps,
                label,
            }
        })
        .collect()
}

/// User-disjoint k-fold cross-validation: fold `i` holds every user whose
/// shuffled position is ≡ i (mod k) as its test set, with the remainder as
/// training. Complements the paper's fixed 80/10/10 split for studies that
/// need variance estimates.
pub fn kfold(
    dataset: &Rsd15k,
    k: usize,
    window: usize,
    seed: u64,
) -> Result<Vec<(Vec<UserWindow>, Vec<UserWindow>)>> {
    if k < 2 {
        return Err(RsdError::config("k", "need at least 2 folds"));
    }
    if dataset.n_users() < k {
        return Err(RsdError::data(format!(
            "cannot split {} users into {k} folds",
            dataset.n_users()
        )));
    }
    let mut order: Vec<usize> = (0..dataset.n_users()).collect();
    let mut rng = stream_rng(seed, "splits.kfold");
    shuffle(&mut rng, &mut order);

    let mut folds = Vec::with_capacity(k);
    for fold in 0..k {
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (pos, &uidx) in order.iter().enumerate() {
            let w = extract_window(dataset, &dataset.users[uidx], window);
            if pos % k == fold {
                test.push(w);
            } else {
                train.push(w);
            }
        }
        folds.push((train, test));
    }
    Ok(folds)
}

/// Chronological (leakage-free) partition: users whose *final* post falls
/// at or before `cutoff` form the training side; users whose final post is
/// later form the evaluation side. No training label postdates any test
/// context — the "partitioned according to temporal constraints" setting
/// the paper's preprocessing describes for time-series analyses.
pub fn temporal_partition(
    dataset: &Rsd15k,
    cutoff: Timestamp,
    window: usize,
) -> Result<(Vec<UserWindow>, Vec<UserWindow>)> {
    if window == 0 {
        return Err(RsdError::config("window", "must be positive"));
    }
    let mut early = Vec::new();
    let mut late = Vec::new();
    for user in &dataset.users {
        let w = extract_window(dataset, user, window);
        let last = *w.timestamps.last().expect("non-empty window");
        if last <= cutoff {
            early.push(w);
        } else {
            late.push(w);
        }
    }
    if early.is_empty() || late.is_empty() {
        return Err(RsdError::data(format!(
            "cutoff {cutoff} leaves an empty side ({} early / {} late)",
            early.len(),
            late.len()
        )));
    }
    Ok((early, late))
}

/// The timestamp below which `frac` of users' final posts fall — a handy
/// way to pick a [`temporal_partition`] cutoff.
pub fn final_post_quantile(dataset: &Rsd15k, frac: f64) -> Timestamp {
    let mut finals: Vec<i64> = dataset
        .users
        .iter()
        .filter_map(|u| u.post_indices.last().map(|&i| dataset.posts[i].created.0))
        .collect();
    finals.sort_unstable();
    if finals.is_empty() {
        return Timestamp(0);
    }
    let idx = (((finals.len() - 1) as f64) * frac.clamp(0.0, 1.0)).round() as usize;
    Timestamp(finals[idx])
}

/// Extract the last `window` posts of a user as a task instance.
///
/// Selection runs through the shared [`WindowBuffer`] — the same
/// incremental top-`W` by `(created, post id)` state the online serving
/// path keys its per-user store on — so the batch benchmark and the
/// service cannot drift. Because the builder sorts each timeline by
/// exactly that key, the buffer's retained set equals the timeline's
/// tail slice byte-for-byte.
pub fn extract_window(dataset: &Rsd15k, user: &UserRecord, window: usize) -> UserWindow {
    let mut buf: WindowBuffer<usize> = WindowBuffer::new(window);
    for &i in &user.post_indices {
        let post = &dataset.posts[i];
        buf.observe(post.created, post.id.0, i);
    }
    window_from_buffer(dataset, user.id, &buf)
}

/// Materialize a [`UserWindow`] from a user's trailing-window buffer
/// (payload = post index). Shared by [`extract_window`] and by tests
/// that rebuild windows from the serving-side store.
pub fn window_from_buffer(dataset: &Rsd15k, user: UserId, buf: &WindowBuffer<usize>) -> UserWindow {
    let post_indices: Vec<usize> = buf.entries().iter().map(|e| e.payload).collect();
    let timestamps: Vec<Timestamp> = buf.timestamps();
    let label = dataset.posts[*post_indices.last().expect("validated: non-empty")].label;
    UserWindow {
        user,
        post_indices,
        timestamps,
        label,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_fixtures::tiny;
    use crate::{BuildConfig, DatasetBuilder};

    fn built() -> Rsd15k {
        DatasetBuilder::new(BuildConfig::scaled(201, 3_000, 50))
            .build()
            .unwrap()
            .0
    }

    #[test]
    fn proportions_respected() {
        let d = built();
        let s = DatasetSplits::new(&d, SplitConfig::default()).unwrap();
        assert_eq!(s.total(), d.n_users());
        let frac = s.train.len() as f64 / s.total() as f64;
        assert!((frac - 0.8).abs() < 0.05, "train fraction {frac}");
        assert!(!s.valid.is_empty());
        assert!(!s.test.is_empty());
    }

    #[test]
    fn user_disjointness_holds() {
        let d = built();
        let s = DatasetSplits::new(&d, SplitConfig::default()).unwrap();
        assert!(s.is_user_disjoint());
    }

    #[test]
    fn windows_bounded_and_chronological() {
        let d = built();
        let s = DatasetSplits::new(&d, SplitConfig::default()).unwrap();
        for w in s.train.iter().chain(&s.valid).chain(&s.test) {
            assert!(!w.post_indices.is_empty());
            assert!(w.post_indices.len() <= 5);
            for pair in w.timestamps.windows(2) {
                assert!(pair[0] <= pair[1]);
            }
        }
    }

    #[test]
    fn label_matches_latest_post() {
        let d = tiny();
        let w = extract_window(&d, &d.users[0], 5);
        assert_eq!(w.label, d.user_label(&d.users[0]).unwrap());
        assert_eq!(w.post_indices.len(), 3);
        let w1 = extract_window(&d, &d.users[0], 2);
        assert_eq!(w1.post_indices.len(), 2);
        assert_eq!(w1.label, w.label, "truncation keeps the latest post");
    }

    #[test]
    fn post_level_windows_cover_every_post() {
        let d = tiny();
        let ws = post_level_windows(&d, &d.users[0], 5, 100);
        assert_eq!(ws.len(), 3);
        // Each window ends at, and is labelled by, its own post.
        for (k, w) in ws.iter().enumerate() {
            assert_eq!(*w.post_indices.last().unwrap(), d.users[0].post_indices[k]);
            assert_eq!(
                w.label, d.posts[d.users[0].post_indices[k]].label,
                "window {k} label"
            );
            assert!(w.post_indices.len() <= 5);
        }
        // Context grows with position.
        assert_eq!(ws[0].post_indices.len(), 1);
        assert_eq!(ws[2].post_indices.len(), 3);
        // The final window equals the user-level instance.
        assert_eq!(ws[2], extract_window(&d, &d.users[0], 5));
    }

    #[test]
    fn post_level_windows_respect_cap() {
        let d = tiny();
        let ws = post_level_windows(&d, &d.users[0], 5, 2);
        assert_eq!(ws.len(), 2);
        assert_eq!(
            *ws.last().unwrap(),
            extract_window(&d, &d.users[0], 5),
            "cap keeps the most recent posts"
        );
    }

    #[test]
    fn bad_configs_rejected() {
        let d = tiny();
        let cfg = SplitConfig {
            train: 0.95,
            valid: 0.1,
            ..Default::default()
        };
        assert!(DatasetSplits::new(&d, cfg).is_err());
        let cfg = SplitConfig {
            window: 0,
            ..Default::default()
        };
        assert!(DatasetSplits::new(&d, cfg).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = built();
        let a = DatasetSplits::new(&d, SplitConfig::default()).unwrap();
        let b = DatasetSplits::new(&d, SplitConfig::default()).unwrap();
        assert_eq!(a.train, b.train);
        let cfg = SplitConfig {
            seed: 99,
            ..Default::default()
        };
        let c = DatasetSplits::new(&d, cfg).unwrap();
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn temporal_partition_is_chronologically_sound() {
        let d = built();
        let cutoff = final_post_quantile(&d, 0.7);
        let (early, late) = temporal_partition(&d, cutoff, 5).unwrap();
        assert_eq!(early.len() + late.len(), d.n_users());
        assert!(!early.is_empty() && !late.is_empty());
        // Every early user's final post precedes every late user's final
        // post boundary: specifically, early finals <= cutoff < late finals.
        for w in &early {
            assert!(*w.timestamps.last().unwrap() <= cutoff);
        }
        for w in &late {
            assert!(*w.timestamps.last().unwrap() > cutoff);
        }
        // Roughly 70% early.
        let frac = early.len() as f64 / d.n_users() as f64;
        assert!((frac - 0.7).abs() < 0.1, "early fraction {frac}");
    }

    #[test]
    fn temporal_partition_rejects_degenerate_cutoffs() {
        let d = built();
        assert!(temporal_partition(&d, Timestamp(i64::MIN), 5).is_err());
        assert!(temporal_partition(&d, Timestamp(i64::MAX), 5).is_err());
        assert!(temporal_partition(&d, final_post_quantile(&d, 0.5), 0).is_err());
    }

    #[test]
    fn kfold_partitions_users_exactly_once() {
        let d = built();
        let folds = kfold(&d, 5, 5, 99).unwrap();
        assert_eq!(folds.len(), 5);
        use std::collections::HashSet;
        let mut seen: HashSet<rsd_corpus::UserId> = HashSet::new();
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), d.n_users());
            let train_ids: HashSet<_> = train.iter().map(|w| w.user).collect();
            for w in test {
                assert!(!train_ids.contains(&w.user), "fold leakage");
                assert!(seen.insert(w.user), "user tested twice across folds");
            }
        }
        assert_eq!(seen.len(), d.n_users(), "every user tested exactly once");
    }

    #[test]
    fn kfold_validation() {
        let d = built();
        assert!(kfold(&d, 1, 5, 0).is_err());
        assert!(kfold(&d, d.n_users() + 1, 5, 0).is_err());
    }

    #[test]
    fn too_few_users_rejected() {
        let mut d = tiny();
        d.users.pop();
        d.posts.truncate(3);
        // (fixture now invalid as a dataset, but splits only look at users)
        assert!(DatasetSplits::new(&d, SplitConfig::default()).is_err());
    }
}
