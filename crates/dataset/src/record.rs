//! The published dataset schema.
//!
//! RSD-15K's unit of annotation is the post; its unit of *analysis* is the
//! user: every user's complete posting timeline is retained in order, and
//! the user-level label is the risk level of their latest post (paper
//! §III). `Post.text` holds the *cleaned* body (the raw crawl text never
//! ships — part of the privacy posture), and every post carries its
//! annotation provenance.

use serde::{Deserialize, Serialize};

use rsd_annotation::LabelSource;
use rsd_common::{Result, RsdError, Timestamp};
use rsd_corpus::{PostId, RiskLevel, UserId};

/// One annotated post.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Post {
    /// Stable post id (pseudonymous, dense).
    pub id: PostId,
    /// Pseudonymous author id.
    pub user: UserId,
    /// UTC creation time.
    pub created: Timestamp,
    /// Cleaned, normalized body text.
    pub text: String,
    /// The annotation-campaign label.
    pub label: RiskLevel,
    /// How the label was produced (individual / vote / adjudication).
    pub source: LabelSource,
}

/// One user: their complete chronological post indices within the dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserRecord {
    /// Pseudonymous user id.
    pub id: UserId,
    /// Indices into [`Rsd15k::posts`], sorted by post `created` ascending.
    pub post_indices: Vec<usize>,
}

/// The assembled dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Rsd15k {
    /// All annotated posts.
    pub posts: Vec<Post>,
    /// All users with their timelines.
    pub users: Vec<UserRecord>,
    /// Seed the dataset was built from (provenance).
    pub seed: u64,
}

impl Rsd15k {
    /// Number of posts.
    pub fn n_posts(&self) -> usize {
        self.posts.len()
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// The user-level label: risk level of the user's latest post.
    pub fn user_label(&self, user: &UserRecord) -> Result<RiskLevel> {
        let last = user
            .post_indices
            .last()
            .ok_or_else(|| RsdError::data(format!("user {} has no posts", user.id)))?;
        Ok(self.posts[*last].label)
    }

    /// Iterate a user's posts in chronological order.
    pub fn user_posts<'a>(&'a self, user: &'a UserRecord) -> impl Iterator<Item = &'a Post> {
        user.post_indices.iter().map(move |&i| &self.posts[i])
    }

    /// Post count per class, indexed by [`RiskLevel::index`] — Table I's
    /// "Count" column.
    pub fn class_counts(&self) -> [usize; RiskLevel::COUNT] {
        let mut counts = [0usize; RiskLevel::COUNT];
        for p in &self.posts {
            counts[p.label.index()] += 1;
        }
        counts
    }

    /// Structural invariants every well-formed dataset upholds; used by
    /// tests and by `io` after deserialization:
    ///
    /// * every post belongs to exactly one user's timeline;
    /// * timelines are chronological;
    /// * timelines reference valid indices;
    /// * users are non-empty.
    pub fn validate(&self) -> Result<()> {
        let mut seen = vec![false; self.posts.len()];
        for user in &self.users {
            if user.post_indices.is_empty() {
                return Err(RsdError::data(format!("user {} has no posts", user.id)));
            }
            let mut prev: Option<Timestamp> = None;
            for &idx in &user.post_indices {
                let post = self
                    .posts
                    .get(idx)
                    .ok_or_else(|| RsdError::data(format!("post index {idx} out of range")))?;
                if post.user != user.id {
                    return Err(RsdError::data(format!(
                        "post {} in timeline of user {} but authored by {}",
                        post.id, user.id, post.user
                    )));
                }
                if seen[idx] {
                    return Err(RsdError::data(format!(
                        "post index {idx} appears in two timelines"
                    )));
                }
                seen[idx] = true;
                if let Some(p) = prev {
                    if post.created < p {
                        return Err(RsdError::data(format!(
                            "user {} timeline not chronological at post {}",
                            user.id, post.id
                        )));
                    }
                }
                prev = Some(post.created);
            }
        }
        if let Some(orphan) = seen.iter().position(|&s| !s) {
            return Err(RsdError::data(format!(
                "post index {orphan} not in any timeline"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    use super::*;

    /// A tiny hand-built dataset: 2 users, 5 posts.
    pub fn tiny() -> Rsd15k {
        let mk = |id: u32, user: u32, t: i64, label: RiskLevel| Post {
            id: PostId(id),
            user: UserId(user),
            created: Timestamp(t),
            text: format!("post {id}"),
            label,
            source: LabelSource::Individual,
        };
        Rsd15k {
            posts: vec![
                mk(0, 0, 100, RiskLevel::Indicator),
                mk(1, 0, 200, RiskLevel::Ideation),
                mk(2, 1, 150, RiskLevel::Behavior),
                mk(3, 1, 250, RiskLevel::Attempt),
                mk(4, 0, 300, RiskLevel::Ideation),
            ],
            users: vec![
                UserRecord {
                    id: UserId(0),
                    post_indices: vec![0, 1, 4],
                },
                UserRecord {
                    id: UserId(1),
                    post_indices: vec![2, 3],
                },
            ],
            seed: 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::tiny;
    use super::*;

    #[test]
    fn tiny_fixture_is_valid() {
        tiny().validate().unwrap();
    }

    #[test]
    fn user_label_is_latest_post() {
        let d = tiny();
        assert_eq!(d.user_label(&d.users[0]).unwrap(), RiskLevel::Ideation);
        assert_eq!(d.user_label(&d.users[1]).unwrap(), RiskLevel::Attempt);
    }

    #[test]
    fn class_counts_sum_to_posts() {
        let d = tiny();
        let counts = d.class_counts();
        assert_eq!(counts.iter().sum::<usize>(), d.n_posts());
        assert_eq!(counts[RiskLevel::Ideation.index()], 2);
    }

    #[test]
    fn validation_rejects_orphan_posts() {
        let mut d = tiny();
        d.users[0].post_indices.pop(); // post 4 now orphaned
        assert!(d.validate().is_err());
    }

    #[test]
    fn validation_rejects_unchronological_timeline() {
        let mut d = tiny();
        d.users[0].post_indices.swap(0, 1);
        assert!(d.validate().is_err());
    }

    #[test]
    fn validation_rejects_wrong_author() {
        let mut d = tiny();
        d.posts[2].user = UserId(0);
        assert!(d.validate().is_err());
    }

    #[test]
    fn validation_rejects_double_membership() {
        let mut d = tiny();
        d.users[1].post_indices = vec![2, 3, 4];
        assert!(d.validate().is_err());
    }

    #[test]
    fn validation_rejects_empty_user() {
        let mut d = tiny();
        d.users.push(UserRecord {
            id: UserId(2),
            post_indices: vec![],
        });
        assert!(d.validate().is_err());
    }

    #[test]
    fn user_posts_iterates_in_order() {
        let d = tiny();
        let times: Vec<i64> = d.user_posts(&d.users[0]).map(|p| p.created.0).collect();
        assert_eq!(times, vec![100, 200, 300]);
    }
}
