//! Table II: comparison with prior suicide-risk datasets.
//!
//! The prior-dataset rows are facts quoted from the paper's Table II; the
//! "Ours" row is *computed* from a built dataset so the table regenerates
//! honestly from whatever was actually constructed.

use serde::{Deserialize, Serialize};

use crate::record::Rsd15k;

/// Risk-level annotation granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Granularity {
    /// Each post is labelled independently.
    Post,
    /// Context-aware user-level labels.
    User,
    /// Both post- and user-level labels.
    PostAndUser,
}

impl Granularity {
    /// Table II display string.
    pub fn display(self) -> &'static str {
        match self {
            Granularity::Post => "Post",
            Granularity::User => "User",
            Granularity::PostAndUser => "Post, User",
        }
    }
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetComparisonRow {
    /// Dataset name.
    pub name: String,
    /// Source platform(s).
    pub source: String,
    /// Post count (`None` = not published).
    pub posts: Option<usize>,
    /// User count (`None` = not published / no user structure).
    pub users: Option<usize>,
    /// Annotation granularity.
    pub granularity: Granularity,
    /// Fine-grained suicide-risk levels? (4-level C-SSRS-style)
    pub fine_grained: bool,
    /// Fully manual annotation by trained experts?
    pub fully_manual: bool,
    /// Publicly available under regulations, without contacting authors?
    pub available: bool,
}

/// The eight prior-work rows of Table II, as published.
pub fn prior_datasets() -> Vec<DatasetComparisonRow> {
    let row = |name: &str,
               source: &str,
               posts: Option<usize>,
               users: Option<usize>,
               granularity: Granularity,
               fine_grained: bool,
               fully_manual: bool,
               available: bool| DatasetComparisonRow {
        name: name.to_string(),
        source: source.to_string(),
        posts,
        users,
        granularity,
        fine_grained,
        fully_manual,
        available,
    };
    vec![
        row(
            "Suicide and Depression Detection (Kaggle)",
            "Reddit",
            Some(236_258),
            None,
            Granularity::Post,
            false,
            false,
            true,
        ),
        row(
            "Suicidal Ideation Detection in Online User Content",
            "Reddit, Twitter",
            Some(7_098 + 10_288),
            None,
            Granularity::Post,
            false,
            false,
            false,
        ),
        row(
            "Latent Suicide Risk Detection on Microblog",
            "Tree Hole, Weibo",
            Some(744_031),
            Some(7_329),
            Granularity::User,
            false,
            true,
            false,
        ),
        row(
            "Suicidal Ideation in Twitter",
            "Twitter",
            Some(34_306),
            Some(32_558),
            Granularity::Post,
            false,
            true,
            false,
        ),
        row(
            "Suicide Risk via Online Postings",
            "Reddit",
            None,
            Some(934),
            Granularity::User,
            true,
            false, // mainly crowdsourcing
            true,
        ),
        row(
            "CLPsych2019",
            "Reddit",
            None,
            Some(621),
            Granularity::User,
            true,
            false, // mainly crowdsourcing
            true,
        ),
        row(
            "Knowledge-aware Assessment of Suicide Risk",
            "Reddit",
            Some(15_755),
            Some(500),
            Granularity::User,
            true,
            true,
            false,
        ),
        row(
            "Suicide risk level and trigger detection",
            "Reddit",
            Some(3_998),
            Some(500),
            Granularity::PostAndUser,
            true,
            true,
            true,
        ),
    ]
}

/// Compute the "Ours" row from an actually-built dataset.
pub fn ours_row(dataset: &Rsd15k) -> DatasetComparisonRow {
    DatasetComparisonRow {
        name: "Ours (RSD-15K)".to_string(),
        source: "Reddit".to_string(),
        posts: Some(dataset.n_posts()),
        users: Some(dataset.n_users()),
        granularity: Granularity::PostAndUser,
        fine_grained: true,
        fully_manual: true,
        available: true,
    }
}

/// The full Table II: prior rows plus the computed "Ours" row.
pub fn comparison_table(dataset: &Rsd15k) -> Vec<DatasetComparisonRow> {
    let mut rows = prior_datasets();
    rows.push(ours_row(dataset));
    rows
}

/// Render one row in a fixed-width layout.
pub fn render_row(row: &DatasetComparisonRow) -> String {
    let fmt_opt = |v: Option<usize>| match v {
        Some(n) => n.to_string(),
        None => "-".to_string(),
    };
    format!(
        "{:<48} {:<17} {:>8} {:>7}  {:<10} {:^4} {:^6} {:^5}",
        row.name,
        row.source,
        fmt_opt(row.posts),
        fmt_opt(row.users),
        row.granularity.display(),
        if row.fine_grained { "yes" } else { "no" },
        if row.fully_manual { "yes" } else { "no" },
        if row.available { "yes" } else { "no" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_fixtures::tiny;

    #[test]
    fn eight_prior_rows() {
        assert_eq!(prior_datasets().len(), 8);
    }

    #[test]
    fn ours_is_computed_not_hardcoded() {
        let d = tiny();
        let row = ours_row(&d);
        assert_eq!(row.posts, Some(5));
        assert_eq!(row.users, Some(2));
        assert!(row.fine_grained && row.fully_manual && row.available);
        assert_eq!(row.granularity, Granularity::PostAndUser);
    }

    #[test]
    fn only_two_rows_have_both_granularities() {
        let d = tiny();
        let both = comparison_table(&d)
            .iter()
            .filter(|r| r.granularity == Granularity::PostAndUser)
            .count();
        assert_eq!(both, 2, "paper: ours + Li et al. [3]");
    }

    #[test]
    fn rendering_is_stable() {
        let d = tiny();
        for row in comparison_table(&d) {
            let s = render_row(&row);
            assert!(s.contains(&row.source));
        }
        let kaggle = &prior_datasets()[0];
        assert!(render_row(kaggle).contains("236258"));
        let clpsych = &prior_datasets()[5];
        assert!(render_row(clpsych).contains('-'), "unpublished post count");
    }
}
