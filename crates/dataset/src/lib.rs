#![warn(missing_docs)]

//! The RSD-15K dataset core: records, builder pipeline, splits, IO and the
//! statistics behind every figure and table in the paper's §II.
//!
//! * [`record`] — the published schema: annotated [`Post`]s with complete
//!   per-user chronological timelines ([`UserRecord`]), wrapped in
//!   [`Rsd15k`].
//! * [`builder`] — the end-to-end construction pipeline: generate the raw
//!   pool → crawl it through the simulated Reddit API → preprocess →
//!   select the annotation pool → run the annotation campaign → assemble
//!   the dataset. One call reproduces the paper's data section.
//! * [`stream`] — the sharded streaming implementation behind the builder:
//!   bounded shards-in-flight on `rsd-pipeline`, checkpoint/resume at
//!   stage boundaries, output bit-identical to the batch path.
//! * [`splits`] — user-disjoint 80/10/10 partitioning and the
//!   `window = 5` sequential-post extraction the benchmark task uses.
//! * [`io`] — JSON-lines round-trip and CSV export.
//! * [`stats`] — Table I (class distribution), Fig. 1 (posts per user),
//!   Figs. 2–3 (per-class word frequencies), Fig. 4 (top-20 active users).
//! * [`window_store`] — the shared latest-`W` window-selection state:
//!   [`WindowBuffer`] (one user's trailing window, identical to the batch
//!   tail-slice selection) and the sharded LRU [`UserWindowStore`] the
//!   online serving path keys its per-user state on.
//! * [`compare`] — Table II (comparison with prior datasets).
//! * [`trajectory`] — risk-evolution analytics (transition matrices,
//!   escalation events, per-user severity trends).
//! * [`privacy`] — the §IV anonymization audit.

pub mod builder;
pub mod compare;
pub mod io;
pub mod privacy;
pub mod record;
pub mod splits;
pub mod stats;
pub mod stream;
pub mod trajectory;
pub mod window_store;

pub use builder::{BuildConfig, BuildReport, DatasetBuilder};
pub use record::{Post, Rsd15k, UserRecord};
pub use splits::{DatasetSplits, SplitConfig, UserWindow};
pub use stream::{StreamingBuild, StreamingOptions};
pub use window_store::{StoreItem, UserWindowStore, WindowBuffer, WindowEntry};
