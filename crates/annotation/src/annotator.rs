//! Stochastic annotator models.
//!
//! An annotator's behaviour on one item is driven by three ingredients:
//!
//! 1. **Skill** — probability of labelling an *easy* item correctly.
//! 2. **Item difficulty** — a deterministic per-item property (derived from
//!    the post id, so all annotators face the same hard items). Hard items
//!    have a much lower per-annotator correct probability; this correlated
//!    error structure is what keeps simulated Fleiss' kappa realistically
//!    below 1 (the paper measures 0.7206).
//! 3. **Uncertainty** — hesitation correlates with error: the flag
//!    probability is high precisely when the annotator's draw would have
//!    been wrong. This models the paper's §II-B2 argument that the
//!    uncertainty-reporting policy removes likely-erroneous judgments
//!    cheaply.
//!
//! Mistakes are drawn from an adjacent-class confusion kernel: Ideation is
//! confused with Indicator (negation/perspective misread) and Behavior;
//! Behavior with Ideation and Attempt — matching the taxonomy's ordinal
//! structure.

use rand::rngs::StdRng;
use rand::Rng;

use rsd_common::rng::{split_seed, stream_rng, weighted_index};
use rsd_corpus::{PostId, RiskLevel};

/// Skill and behaviour parameters for one simulated annotator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnotatorProfile {
    /// P(correct) on easy items.
    pub skill_easy: f64,
    /// P(correct) on hard items.
    pub skill_hard: f64,
    /// P(flag uncertain) when the (hypothetical) draw would be correct.
    pub flag_when_correct: f64,
    /// P(flag uncertain) when the draw would be wrong.
    pub flag_when_wrong: f64,
}

impl Default for AnnotatorProfile {
    /// A freshly-trained annotator, calibrated so the campaign reproduces
    /// the paper's agreement statistics (κ ≈ 0.72, inspection ≥ 85 %).
    fn default() -> Self {
        AnnotatorProfile {
            skill_easy: 0.93,
            skill_hard: 0.52,
            flag_when_correct: 0.02,
            flag_when_wrong: 0.35,
        }
    }
}

impl AnnotatorProfile {
    /// An untrained annotator, as at the start of qualification.
    pub fn untrained() -> Self {
        AnnotatorProfile {
            skill_easy: 0.85,
            skill_hard: 0.45,
            flag_when_correct: 0.02,
            flag_when_wrong: 0.30,
        }
    }

    /// One round of supervised error review: skill moves a fixed fraction
    /// of the way toward expert ceiling (0.955 easy / 0.55 hard).
    pub fn train_round(&mut self) {
        self.skill_easy += 0.5 * (0.955 - self.skill_easy);
        self.skill_hard += 0.5 * (0.55 - self.skill_hard);
    }
}

/// What an annotator does with one item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnotationOutcome {
    /// A committed label.
    Label(RiskLevel),
    /// Abstained under the uncertainty-reporting policy.
    Uncertain,
}

/// Fraction of items that are intrinsically hard (ambiguous borderline
/// cases all annotators struggle with).
pub const HARD_ITEM_RATE: f64 = 0.25;

/// Deterministic item difficulty: the same post is hard for everyone.
pub fn is_hard_item(post: PostId, campaign_seed: u64) -> bool {
    let h = split_seed(campaign_seed, u64::from(post.0) | (1 << 40));
    (h as f64 / u64::MAX as f64) < HARD_ITEM_RATE
}

/// Adjacent-class confusion kernel: given a true level, weights over the
/// levels an erring annotator writes instead.
pub fn confusion_weights(truth: RiskLevel) -> [f64; 4] {
    match truth {
        // Indicator misread as Ideation (missed negation / perspective).
        RiskLevel::Indicator => [0.0, 0.80, 0.12, 0.08],
        // Ideation drifts down to Indicator or up to Behavior.
        RiskLevel::Ideation => [0.55, 0.0, 0.38, 0.07],
        // Behavior confused with Ideation (is it "just" a thought?) or
        // Attempt (was the act completed?).
        RiskLevel::Behavior => [0.08, 0.52, 0.0, 0.40],
        // Attempt mostly confused with Behavior.
        RiskLevel::Attempt => [0.05, 0.25, 0.70, 0.0],
    }
}

/// A simulated annotator with a private RNG stream.
#[derive(Debug)]
pub struct SimulatedAnnotator {
    /// Campaign-local index (0, 1, 2 in the paper's three-annotator setup).
    pub id: usize,
    /// Behaviour parameters.
    pub profile: AnnotatorProfile,
    campaign_seed: u64,
    rng: StdRng,
}

impl SimulatedAnnotator {
    /// Create annotator `id` for a campaign.
    pub fn new(id: usize, profile: AnnotatorProfile, campaign_seed: u64) -> Self {
        SimulatedAnnotator {
            id,
            profile,
            campaign_seed,
            rng: stream_rng(campaign_seed, &format!("annotator.{id}")),
        }
    }

    /// Annotate one item under the uncertainty-reporting policy.
    pub fn annotate(&mut self, post: PostId, truth: RiskLevel) -> AnnotationOutcome {
        let hard = is_hard_item(post, self.campaign_seed);
        let p_correct = if hard {
            self.profile.skill_hard
        } else {
            self.profile.skill_easy
        };
        let would_be_correct = self.rng.gen::<f64>() < p_correct;
        let flag_prob = if would_be_correct {
            self.profile.flag_when_correct
        } else {
            self.profile.flag_when_wrong
        };
        if self.rng.gen::<f64>() < flag_prob {
            return AnnotationOutcome::Uncertain;
        }
        if would_be_correct {
            AnnotationOutcome::Label(truth)
        } else {
            let w = confusion_weights(truth);
            let idx = weighted_index(&mut self.rng, &w);
            AnnotationOutcome::Label(RiskLevel::from_index(idx).expect("valid index"))
        }
    }

    /// Annotate with the uncertainty policy disabled (for the ablation the
    /// paper's §II-B2 argument implies): hesitation never abstains, the
    /// annotator commits their draw.
    pub fn annotate_no_flagging(&mut self, post: PostId, truth: RiskLevel) -> RiskLevel {
        match self.annotate(post, truth) {
            AnnotationOutcome::Label(l) => l,
            // A forced decision under hesitation — exactly the error-prone
            // path the policy avoids: accuracy drops below the annotator's
            // base rate (confidence bias, overthinking effect).
            AnnotationOutcome::Uncertain => {
                let hard = is_hard_item(post, self.campaign_seed);
                let p_correct = if hard { 0.45 } else { 0.75 };
                if self.rng.gen::<f64>() < p_correct {
                    truth
                } else {
                    let w = confusion_weights(truth);
                    let idx = weighted_index(&mut self.rng, &w);
                    RiskLevel::from_index(idx).expect("valid index")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy_over(n: usize, profile: AnnotatorProfile, seed: u64) -> (f64, f64) {
        let mut a = SimulatedAnnotator::new(0, profile, seed);
        let mut correct = 0usize;
        let mut labelled = 0usize;
        let mut flagged = 0usize;
        for i in 0..n {
            let truth = RiskLevel::ALL[i % 4];
            match a.annotate(PostId(i as u32), truth) {
                AnnotationOutcome::Label(l) => {
                    labelled += 1;
                    if l == truth {
                        correct += 1;
                    }
                }
                AnnotationOutcome::Uncertain => flagged += 1,
            }
        }
        (correct as f64 / labelled as f64, flagged as f64 / n as f64)
    }

    #[test]
    fn trained_annotator_near_target_accuracy() {
        let (acc, flag_rate) = accuracy_over(20_000, AnnotatorProfile::default(), 7);
        assert!(acc > 0.84 && acc < 0.95, "accuracy {acc}");
        assert!(
            flag_rate > 0.02 && flag_rate < 0.14,
            "flag rate {flag_rate}"
        );
    }

    #[test]
    fn untrained_annotator_is_worse() {
        let (trained, _) = accuracy_over(20_000, AnnotatorProfile::default(), 8);
        let (untrained, _) = accuracy_over(20_000, AnnotatorProfile::untrained(), 8);
        assert!(untrained < trained, "{untrained} !< {trained}");
    }

    #[test]
    fn training_rounds_converge_toward_ceiling() {
        let mut p = AnnotatorProfile::untrained();
        for _ in 0..10 {
            p.train_round();
        }
        assert!((p.skill_easy - 0.955).abs() < 0.01);
        assert!((p.skill_hard - 0.55).abs() < 0.01);
    }

    #[test]
    fn hard_items_are_deterministic_and_shared() {
        let seed = 99;
        let a: Vec<bool> = (0..1000).map(|i| is_hard_item(PostId(i), seed)).collect();
        let b: Vec<bool> = (0..1000).map(|i| is_hard_item(PostId(i), seed)).collect();
        assert_eq!(a, b);
        let rate = a.iter().filter(|&&h| h).count() as f64 / 1000.0;
        assert!((rate - HARD_ITEM_RATE).abs() < 0.05, "hard rate {rate}");
    }

    #[test]
    fn confusion_weights_exclude_truth_and_sum_to_one() {
        for level in RiskLevel::ALL {
            let w = confusion_weights(level);
            assert_eq!(w[level.index()], 0.0);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{level}");
        }
    }

    #[test]
    fn flagging_removes_likely_errors() {
        // Accuracy among committed labels must exceed accuracy when the
        // annotator is forced to decide everything.
        let seed = 13;
        let n = 30_000;
        let (with_policy, _) = accuracy_over(n, AnnotatorProfile::default(), seed);
        let mut forced = SimulatedAnnotator::new(0, AnnotatorProfile::default(), seed);
        let mut correct = 0;
        for i in 0..n {
            let truth = RiskLevel::ALL[i % 4];
            if forced.annotate_no_flagging(PostId(i as u32), truth) == truth {
                correct += 1;
            }
        }
        let without_policy = correct as f64 / n as f64;
        assert!(
            with_policy > without_policy + 0.005,
            "policy should help: with {with_policy}, without {without_policy}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut a = SimulatedAnnotator::new(1, AnnotatorProfile::default(), 5);
            (0..100)
                .map(|i| a.annotate(PostId(i), RiskLevel::Ideation))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
