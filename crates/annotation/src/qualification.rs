//! Pre-campaign annotator qualification (paper §II-B2).
//!
//! "100 data samples were selected for expert annotation. The samples were
//! utilized for verifying participants' labeling accuracy before starting
//! the formal task. If the accuracy from an annotator is below 95 %, the
//! errors in the annotation are reviewed and corrected, followed by a
//! re-annotation of the samples. This process continues until the accuracy
//! reaches 95 %."
//!
//! The loop below executes exactly that protocol against a
//! [`SimulatedAnnotator`]: each failed round triggers an error review
//! ([`AnnotatorProfile::train_round`]) and a fresh re-annotation.

use serde::{Deserialize, Serialize};

use crate::annotator::{AnnotationOutcome, SimulatedAnnotator};
use rsd_common::{Result, RsdError};
use rsd_corpus::{PostId, RiskLevel};

/// Qualification protocol parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualificationConfig {
    /// Number of expert-labelled training samples (paper: 100).
    pub n_samples: usize,
    /// Required accuracy to pass (paper: 0.95).
    pub pass_accuracy: f64,
    /// Safety valve: maximum training rounds before giving up.
    pub max_rounds: usize,
}

impl Default for QualificationConfig {
    fn default() -> Self {
        QualificationConfig {
            n_samples: 100,
            pass_accuracy: 0.95,
            max_rounds: 25,
        }
    }
}

/// Result of qualifying one annotator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualificationOutcome {
    /// Accuracy per round, in order; the final entry met the threshold.
    pub round_accuracies: Vec<f64>,
    /// Rounds needed (== `round_accuracies.len()`).
    pub rounds: usize,
}

/// Run the qualification loop.
///
/// `expert_set` is the 100-sample expert-labelled training set
/// (`(post, expert label)` pairs). During qualification the uncertainty
/// policy is suspended — trainees must commit on every sample so errors
/// surface and can be reviewed.
pub fn qualify(
    annotator: &mut SimulatedAnnotator,
    expert_set: &[(PostId, RiskLevel)],
    cfg: &QualificationConfig,
) -> Result<QualificationOutcome> {
    if expert_set.len() < cfg.n_samples {
        return Err(RsdError::config(
            "n_samples",
            format!(
                "expert set has {} samples, need {}",
                expert_set.len(),
                cfg.n_samples
            ),
        ));
    }
    let samples = &expert_set[..cfg.n_samples];
    let mut round_accuracies = Vec::new();
    for _round in 0..cfg.max_rounds {
        let mut correct = 0usize;
        for &(post, truth) in samples {
            // Commit on every sample: uncertainty reporting is for the
            // formal task, not the qualification quiz.
            let label = match annotator.annotate(post, truth) {
                AnnotationOutcome::Label(l) => l,
                AnnotationOutcome::Uncertain => annotator.annotate_no_flagging(post, truth),
            };
            if label == truth {
                correct += 1;
            }
        }
        let acc = correct as f64 / samples.len() as f64;
        round_accuracies.push(acc);
        if acc >= cfg.pass_accuracy {
            return Ok(QualificationOutcome {
                rounds: round_accuracies.len(),
                round_accuracies,
            });
        }
        // Supervised error review, then re-annotate.
        annotator.profile.train_round();
    }
    Err(RsdError::PipelineState(format!(
        "annotator {} failed to qualify within {} rounds (last accuracy {:.2})",
        annotator.id,
        cfg.max_rounds,
        round_accuracies.last().copied().unwrap_or(0.0)
    )))
}

/// Build an expert qualification set of `n` posts.
///
/// The paper's 100 training samples were *curated by experts* to teach the
/// labeling rules unambiguously, so the builder skips intrinsically hard
/// (ambiguous) items — qualification measures rule mastery, not luck on
/// borderline cases. Falls back to including hard items only if the pool
/// has too few easy ones.
pub fn expert_set_from(
    posts: &[(PostId, RiskLevel)],
    n: usize,
    campaign_seed: u64,
) -> Vec<(PostId, RiskLevel)> {
    let mut set: Vec<(PostId, RiskLevel)> = posts
        .iter()
        .filter(|(p, _)| !crate::annotator::is_hard_item(*p, campaign_seed))
        .take(n)
        .copied()
        .collect();
    if set.len() < n {
        for item in posts {
            if set.len() >= n {
                break;
            }
            if !set.contains(item) {
                set.push(*item);
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotator::AnnotatorProfile;

    fn expert_set(n: usize) -> Vec<(PostId, RiskLevel)> {
        (0..n)
            .map(|i| (PostId(i as u32), RiskLevel::ALL[i % 4]))
            .collect()
    }

    #[test]
    fn untrained_annotator_eventually_qualifies() {
        let mut a = SimulatedAnnotator::new(0, AnnotatorProfile::untrained(), 31);
        let set = expert_set_from(&expert_set(400), 100, 31);
        let out = qualify(&mut a, &set, &QualificationConfig::default()).unwrap();
        assert!(out.rounds >= 1);
        assert!(*out.round_accuracies.last().unwrap() >= 0.95);
        // Skill must have improved if multiple rounds were needed.
        if out.rounds > 1 {
            assert!(a.profile.skill_easy > AnnotatorProfile::untrained().skill_easy);
        }
    }

    #[test]
    fn accuracies_reported_per_round() {
        let mut a = SimulatedAnnotator::new(1, AnnotatorProfile::untrained(), 32);
        let set = expert_set_from(&expert_set(400), 100, 32);
        let out = qualify(&mut a, &set, &QualificationConfig::default()).unwrap();
        assert_eq!(out.rounds, out.round_accuracies.len());
        for acc in &out.round_accuracies[..out.rounds - 1] {
            assert!(*acc < 0.95, "non-final rounds failed the gate");
        }
    }

    #[test]
    fn insufficient_expert_set_rejected() {
        let mut a = SimulatedAnnotator::new(0, AnnotatorProfile::default(), 33);
        assert!(qualify(&mut a, &expert_set(50), &QualificationConfig::default()).is_err());
    }

    #[test]
    fn impossible_threshold_errors_out() {
        let mut a = SimulatedAnnotator::new(0, AnnotatorProfile::untrained(), 34);
        let cfg = QualificationConfig {
            pass_accuracy: 1.01, // unattainable
            max_rounds: 3,
            ..Default::default()
        };
        let set = expert_set_from(&expert_set(400), 100, 34);
        assert!(qualify(&mut a, &set, &cfg).is_err());
    }

    #[test]
    fn expert_set_builder_curates_easy_items() {
        let posts = expert_set(400);
        let set = expert_set_from(&posts, 100, 77);
        assert_eq!(set.len(), 100);
        for (p, _) in &set {
            assert!(
                !crate::annotator::is_hard_item(*p, 77),
                "curated set must avoid hard items when the pool allows"
            );
        }
    }

    #[test]
    fn expert_set_builder_falls_back_when_pool_small() {
        let posts = expert_set(100);
        let set = expert_set_from(&posts, 100, 77);
        assert_eq!(set.len(), 100);
    }
}
