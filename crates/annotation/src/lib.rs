#![warn(missing_docs)]

//! Annotation pipeline simulation (paper §II-B and §II-C).
//!
//! The paper's annotation campaign is a *process* with measurable gates,
//! and this crate executes that process end to end against simulated
//! annotators:
//!
//! * [`platform`] — a Label-Studio-like task platform substrate: projects,
//!   task queues, assignments, submissions, flags and exports. The paper
//!   deployed Label Studio's Docker image on a cloud VM; we reproduce the
//!   workflow contract (task lifecycle + audit trail), not the UI.
//! * [`annotator`] — stochastic annotator models: per-item correctness
//!   driven by a skill level and item difficulty (ambiguous items are hard
//!   for *all* annotators — the correlated-error structure that makes real
//!   kappa < 1), adjacent-class confusion, and an uncertainty model in
//!   which hesitation correlates with would-be errors.
//! * [`qualification`] — the pre-campaign training loop: 100 expert-labelled
//!   samples, re-train and re-annotate until accuracy ≥ 95 %.
//! * [`campaign`] — the full campaign: 30 % of items triple-annotated for
//!   Fleiss' kappa with 2-of-3 voting and adjudication of three-way
//!   disagreements; 70 % labelled individually under a 500-item daily
//!   quota; the uncertainty-reporting policy (flagged items go to joint
//!   decision); and the daily 10 % expert inspection with its ≥ 85 % gate.
//!
//! The ground-truth latent label plays the role of expert consensus; the
//! campaign's output is a *noisy but quality-controlled* label per post —
//! exactly the supervision signal the benchmark models train on.

pub mod annotator;
pub mod campaign;
pub mod platform;
pub mod qualification;

pub use annotator::{AnnotationOutcome, AnnotatorProfile, SimulatedAnnotator};
pub use campaign::{AnnotatedItem, Campaign, CampaignConfig, CampaignReport, LabelSource};
pub use platform::{LabelingPlatform, Task, TaskId, TaskState};
pub use qualification::{qualify, QualificationConfig, QualificationOutcome};
