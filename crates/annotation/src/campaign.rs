//! The full annotation campaign (paper §II-B2 / §II-C1).
//!
//! Orchestrates the platform, three qualified annotators and the
//! supervisors through the paper's protocol:
//!
//! 1. **Qualification** — every annotator passes the 95 % gate on the
//!    100-sample expert set before touching campaign data.
//! 2. **Partition** — a seeded 30 % of items is triple-annotated (the
//!    kappa/voting subset: paper = 4,384 samples); the remaining 70 % is
//!    split between annotators individually.
//! 3. **Daily plan** — each annotator labels at most 500 items per
//!    simulated day.
//! 4. **Uncertainty policy** — flagged items skip straight to a joint
//!    supervisor decision at day's end.
//! 5. **Voting** — the joint subset resolves by 2-of-3 majority; three-way
//!    disagreements go to special review (adjudication).
//! 6. **Daily inspection** — supervisors re-check a random 10 % of each
//!    day's committed labels against expert judgment and require ≥ 85 %
//!    accuracy.
//! 7. **Agreement** — Fleiss' kappa is computed over the joint items where
//!    all three annotators committed labels.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::annotator::{
    confusion_weights, AnnotationOutcome, AnnotatorProfile, SimulatedAnnotator,
};
use crate::platform::LabelingPlatform;
use crate::qualification::{expert_set_from, qualify, QualificationConfig, QualificationOutcome};
use rsd_common::rng::{sample_indices, shuffle, stream_rng, weighted_index};
use rsd_common::{Result, RsdError};
use rsd_corpus::{PostId, RiskLevel};
use rsd_eval::alpha::krippendorff_alpha;
use rsd_eval::kappa::fleiss_kappa_from_raters;

/// How a final label was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LabelSource {
    /// A single qualified annotator's committed label (70 % subset).
    Individual,
    /// 2-of-3 majority on the jointly-annotated subset.
    MajorityVote,
    /// Supervisor joint decision (uncertainty flag or three-way split).
    Adjudicated,
}

/// One annotated item in the campaign output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnnotatedItem {
    /// The post that was labelled.
    pub post: PostId,
    /// The label entering the dataset.
    pub label: RiskLevel,
    /// Provenance.
    pub source: LabelSource,
}

/// Per-simulated-day accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DayStats {
    /// Day index, starting at 0.
    pub day: usize,
    /// Labels committed this day (all annotators).
    pub labeled: usize,
    /// Items flagged uncertain this day.
    pub flagged: usize,
    /// Labels re-checked in the daily inspection.
    pub inspected: usize,
    /// Inspection accuracy against expert judgment.
    pub inspection_accuracy: f64,
    /// Whether the ≥ 85 % gate passed.
    pub passed: bool,
}

/// Campaign configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of annotators (paper: 3).
    pub n_annotators: usize,
    /// Fraction of items triple-annotated for agreement/voting (paper: 0.3).
    pub joint_fraction: f64,
    /// Per-annotator daily quota (paper: 500).
    pub daily_quota: usize,
    /// Fraction of each day's labels re-checked by experts (paper: 0.1).
    pub inspection_rate: f64,
    /// Inspection pass threshold (paper: 0.85).
    pub inspection_threshold: f64,
    /// Supervisor joint-decision accuracy.
    pub expert_accuracy: f64,
    /// Whether the uncertainty-reporting policy is active (ablation knob).
    pub uncertainty_policy: bool,
    /// Qualification protocol.
    pub qualification: QualificationConfig,
}

impl CampaignConfig {
    /// The paper's protocol with the given seed.
    pub fn paper(seed: u64) -> Self {
        CampaignConfig {
            seed,
            n_annotators: 3,
            joint_fraction: 0.30,
            daily_quota: 500,
            inspection_rate: 0.10,
            inspection_threshold: 0.85,
            expert_accuracy: 0.98,
            uncertainty_policy: true,
            qualification: QualificationConfig::default(),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.n_annotators < 3 {
            return Err(RsdError::config(
                "n_annotators",
                "voting needs at least 3 annotators",
            ));
        }
        if !(0.0..=1.0).contains(&self.joint_fraction) {
            return Err(RsdError::config("joint_fraction", "must be in [0, 1]"));
        }
        if self.daily_quota == 0 {
            return Err(RsdError::config("daily_quota", "must be positive"));
        }
        if !(0.0..=1.0).contains(&self.inspection_rate) {
            return Err(RsdError::config("inspection_rate", "must be in [0, 1]"));
        }
        Ok(())
    }
}

/// Campaign-level report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Fleiss' kappa over joint items with three committed labels.
    pub fleiss_kappa: f64,
    /// Krippendorff's alpha over *all* joint items with ≥ 2 committed
    /// labels (handles the missing ratings the uncertainty policy
    /// produces; Fleiss cannot).
    pub krippendorff_alpha: f64,
    /// Number of items entering the kappa computation.
    pub kappa_items: usize,
    /// Size of the joint (triple-annotated) subset.
    pub joint_items: usize,
    /// Size of the individually-annotated subset.
    pub individual_items: usize,
    /// Items resolved by supervisor adjudication.
    pub adjudicated: usize,
    /// Overall fraction of annotator decisions that were flags.
    pub flag_rate: f64,
    /// Per-day statistics.
    pub days: Vec<DayStats>,
    /// Qualification outcome per annotator.
    pub qualification: Vec<QualificationOutcome>,
    /// Accuracy of final labels against ground truth (measurable only in
    /// simulation; reported for audit).
    pub label_accuracy: f64,
}

/// The campaign driver.
pub struct Campaign {
    cfg: CampaignConfig,
    platform: LabelingPlatform,
}

impl Campaign {
    /// Create a campaign.
    pub fn new(cfg: CampaignConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Campaign {
            cfg,
            platform: LabelingPlatform::new(),
        })
    }

    /// Borrow the underlying platform (for audits).
    pub fn platform(&self) -> &LabelingPlatform {
        &self.platform
    }

    /// Run the full campaign over `(post, ground-truth)` items.
    ///
    /// Returns the annotated items (one per input, in input order) and the
    /// campaign report.
    pub fn run(
        &mut self,
        items: &[(PostId, RiskLevel)],
    ) -> Result<(Vec<AnnotatedItem>, CampaignReport)> {
        if items.is_empty() {
            return Err(RsdError::data("campaign: no items"));
        }
        let _campaign_span = rsd_obs::Span::enter("annotation.campaign");
        let cfg = self.cfg.clone();
        let mut rng = stream_rng(cfg.seed, "campaign.driver");

        // ---- Qualification -------------------------------------------------
        let expert_set = expert_set_from(
            items,
            cfg.qualification.n_samples.min(items.len()),
            cfg.seed,
        );
        let mut qual_cfg = cfg.qualification.clone();
        qual_cfg.n_samples = expert_set.len();
        let mut annotators = Vec::with_capacity(cfg.n_annotators);
        let mut qualification = Vec::with_capacity(cfg.n_annotators);
        for a in 0..cfg.n_annotators {
            let mut annotator = SimulatedAnnotator::new(a, AnnotatorProfile::untrained(), cfg.seed);
            let outcome = qualify(&mut annotator, &expert_set, &qual_cfg)?;
            qualification.push(outcome);
            annotators.push(annotator);
        }

        // ---- Partition: joint 30 % / individual 70 % -----------------------
        let mut order: Vec<usize> = (0..items.len()).collect();
        shuffle(&mut rng, &mut order);
        let n_joint = (items.len() as f64 * cfg.joint_fraction).round() as usize;
        let joint_idx: Vec<usize> = order[..n_joint].to_vec();
        let individual_idx: Vec<usize> = order[n_joint..].to_vec();

        let posts: Vec<PostId> = items.iter().map(|(p, _)| *p).collect();
        let task_ids = self.platform.create_tasks(&posts);

        let mut truth_of = vec![RiskLevel::Indicator; items.len()];
        for (i, (_, t)) in items.iter().enumerate() {
            truth_of[i] = *t;
        }

        // ---- Daily loop -----------------------------------------------------
        // Joint items consume quota from every annotator; individual items
        // from their single assignee (round-robin).
        let mut days: Vec<DayStats> = Vec::new();
        let mut joint_votes: Vec<Option<Vec<RiskLevel>>> = vec![None; items.len()];
        let mut joint_ratings: Vec<Vec<usize>> = Vec::new();
        let mut flags_total = 0usize;
        let mut decisions_total = 0usize;
        let mut adjudicated = 0usize;
        let mut final_labels: Vec<Option<(RiskLevel, LabelSource)>> = vec![None; items.len()];

        let mut joint_cursor = 0usize;
        let mut indiv_cursor = 0usize;
        let mut day = 0usize;
        while joint_cursor < joint_idx.len() || indiv_cursor < individual_idx.len() {
            let _day_span = rsd_obs::Span::enter("annotation.campaign.day");
            let mut day_committed: Vec<(usize, RiskLevel)> = Vec::new(); // (item, label)
            let mut day_flagged = 0usize;
            let mut quota = vec![cfg.daily_quota; cfg.n_annotators];

            // Joint items first (all annotators must have quota).
            while joint_cursor < joint_idx.len() && quota.iter().all(|&q| q > 0) {
                let item = joint_idx[joint_cursor];
                joint_cursor += 1;
                let task = task_ids[item];
                let truth = truth_of[item];
                let mut labels: Vec<Option<RiskLevel>> = Vec::with_capacity(cfg.n_annotators);
                for (a, annotator) in annotators.iter_mut().enumerate() {
                    self.platform.assign(task, a)?;
                    quota[a] -= 1;
                    decisions_total += 1;
                    let outcome = if cfg.uncertainty_policy {
                        annotator.annotate(posts[item], truth)
                    } else {
                        AnnotationOutcome::Label(annotator.annotate_no_flagging(posts[item], truth))
                    };
                    match outcome {
                        AnnotationOutcome::Label(l) => {
                            self.platform.submit(task, a, l)?;
                            labels.push(Some(l));
                        }
                        AnnotationOutcome::Uncertain => {
                            self.platform.flag_uncertain(task, a)?;
                            flags_total += 1;
                            day_flagged += 1;
                            labels.push(None);
                        }
                    }
                }
                joint_ratings.push(labels.iter().flatten().map(|l| l.index()).collect());
                if labels.iter().all(Option::is_some) {
                    let committed: Vec<RiskLevel> =
                        labels.iter().map(|l| l.expect("checked")).collect();
                    joint_votes[item] = Some(committed.clone());
                    // 2-of-3 vote.
                    let mut counts = [0usize; RiskLevel::COUNT];
                    for l in &committed {
                        counts[l.index()] += 1;
                    }
                    let (best_idx, &best) = counts
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &c)| c)
                        .expect("4");
                    if best * 2 > committed.len() {
                        let label = RiskLevel::from_index(best_idx)?;
                        final_labels[item] = Some((label, LabelSource::MajorityVote));
                        day_committed.push((item, label));
                    } else {
                        // Three-way disagreement → special review.
                        let label = expert_decision(&mut rng, truth, cfg.expert_accuracy);
                        self.platform.adjudicate(task, label)?;
                        adjudicated += 1;
                        final_labels[item] = Some((label, LabelSource::Adjudicated));
                        day_committed.push((item, label));
                    }
                } else {
                    // Any flag → joint decision at day's end.
                    let label = expert_decision(&mut rng, truth, cfg.expert_accuracy);
                    self.platform.adjudicate(task, label)?;
                    adjudicated += 1;
                    final_labels[item] = Some((label, LabelSource::Adjudicated));
                    day_committed.push((item, label));
                }
            }

            // Individual items, round-robin across annotators with quota.
            let mut next_annotator = 0usize;
            while indiv_cursor < individual_idx.len() && quota.iter().any(|&q| q > 0) {
                // Find the next annotator with remaining quota.
                let mut a = next_annotator;
                let mut hops = 0;
                while quota[a] == 0 && hops < cfg.n_annotators {
                    a = (a + 1) % cfg.n_annotators;
                    hops += 1;
                }
                if quota[a] == 0 {
                    break;
                }
                next_annotator = (a + 1) % cfg.n_annotators;

                let item = individual_idx[indiv_cursor];
                indiv_cursor += 1;
                let task = task_ids[item];
                let truth = truth_of[item];
                self.platform.assign(task, a)?;
                quota[a] -= 1;
                decisions_total += 1;
                let outcome = if cfg.uncertainty_policy {
                    annotators[a].annotate(posts[item], truth)
                } else {
                    AnnotationOutcome::Label(annotators[a].annotate_no_flagging(posts[item], truth))
                };
                match outcome {
                    AnnotationOutcome::Label(l) => {
                        self.platform.submit(task, a, l)?;
                        final_labels[item] = Some((l, LabelSource::Individual));
                        day_committed.push((item, l));
                    }
                    AnnotationOutcome::Uncertain => {
                        self.platform.flag_uncertain(task, a)?;
                        flags_total += 1;
                        day_flagged += 1;
                        let label = expert_decision(&mut rng, truth, cfg.expert_accuracy);
                        self.platform.adjudicate(task, label)?;
                        adjudicated += 1;
                        final_labels[item] = Some((label, LabelSource::Adjudicated));
                        day_committed.push((item, label));
                    }
                }
            }

            // ---- Daily inspection ------------------------------------------
            let n_inspect = ((day_committed.len() as f64) * cfg.inspection_rate).round() as usize;
            let (inspected, correct) = if n_inspect > 0 {
                let picks = sample_indices(&mut rng, day_committed.len(), n_inspect);
                let mut correct = 0usize;
                for &k in &picks {
                    let (item, label) = day_committed[k];
                    // Expert re-check: the expert knows the true label with
                    // `expert_accuracy`; model the check as comparing to an
                    // expert judgment, not raw truth.
                    let expert = expert_decision(&mut rng, truth_of[item], cfg.expert_accuracy);
                    if expert == label {
                        correct += 1;
                    }
                }
                (n_inspect, correct)
            } else {
                (0, 0)
            };
            let inspection_accuracy = if inspected > 0 {
                correct as f64 / inspected as f64
            } else {
                1.0
            };
            let passed = inspection_accuracy >= cfg.inspection_threshold;
            rsd_obs::counter_add(
                if passed {
                    "annotation.inspection.passed"
                } else {
                    "annotation.inspection.failed"
                },
                1,
            );
            rsd_obs::counter_add("annotation.labels", day_committed.len() as u64);
            days.push(DayStats {
                day,
                labeled: day_committed.len(),
                flagged: day_flagged,
                inspected,
                inspection_accuracy,
                passed,
            });
            day += 1;
            if day > 10_000 {
                return Err(RsdError::PipelineState(
                    "campaign failed to terminate".to_string(),
                ));
            }
        }

        // ---- Agreement ------------------------------------------------------
        let mut raters: Vec<Vec<usize>> = vec![Vec::new(); cfg.n_annotators];
        for votes in joint_votes.iter().flatten() {
            for (r, l) in votes.iter().enumerate() {
                raters[r].push(l.index());
            }
        }
        let kappa_items = raters[0].len();
        let fleiss = if kappa_items > 1 {
            fleiss_kappa_from_raters(&raters, RiskLevel::COUNT)?
        } else {
            0.0
        };
        let alpha = if joint_ratings.iter().filter(|r| r.len() >= 2).count() > 1 {
            krippendorff_alpha(&joint_ratings, RiskLevel::COUNT)?
        } else {
            0.0
        };

        // ---- Assemble output -------------------------------------------------
        let mut out = Vec::with_capacity(items.len());
        let mut correct_final = 0usize;
        for (i, slot) in final_labels.iter().enumerate() {
            let (label, source) = slot.ok_or_else(|| {
                RsdError::PipelineState(format!("item {i} never received a label"))
            })?;
            if label == truth_of[i] {
                correct_final += 1;
            }
            out.push(AnnotatedItem {
                post: posts[i],
                label,
                source,
            });
        }

        rsd_obs::counter_add("annotation.flags", flags_total as u64);
        rsd_obs::counter_add("annotation.adjudicated", adjudicated as u64);
        rsd_obs::counter_add("annotation.days", days.len() as u64);
        rsd_obs::gauge("annotation.fleiss_kappa", fleiss);

        let report = CampaignReport {
            fleiss_kappa: fleiss,
            krippendorff_alpha: alpha,
            kappa_items,
            joint_items: joint_idx.len(),
            individual_items: individual_idx.len(),
            adjudicated,
            flag_rate: flags_total as f64 / decisions_total.max(1) as f64,
            days,
            qualification,
            label_accuracy: correct_final as f64 / items.len() as f64,
        };
        Ok((out, report))
    }
}

/// Supervisor/expert decision: truth with probability `accuracy`, else an
/// adjacent-class slip.
fn expert_decision(rng: &mut StdRng, truth: RiskLevel, accuracy: f64) -> RiskLevel {
    if rng.gen::<f64>() < accuracy {
        truth
    } else {
        let w = confusion_weights(truth);
        RiskLevel::from_index(weighted_index(rng, &w)).expect("valid index")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsd_corpus::{CorpusConfig, CorpusGenerator};

    fn campaign_items(seed: u64, n_users: usize) -> Vec<(PostId, RiskLevel)> {
        let corpus = CorpusGenerator::new(CorpusConfig::small(seed, n_users))
            .unwrap()
            .generate();
        corpus
            .posts
            .iter()
            .filter(|p| !p.off_topic && p.duplicate_of.is_none())
            .map(|p| (p.id, p.latent_risk))
            .collect()
    }

    #[test]
    fn config_validation() {
        let mut cfg = CampaignConfig::paper(1);
        cfg.n_annotators = 2;
        assert!(Campaign::new(cfg).is_err());
        let mut cfg = CampaignConfig::paper(1);
        cfg.joint_fraction = 1.5;
        assert!(Campaign::new(cfg).is_err());
        let mut cfg = CampaignConfig::paper(1);
        cfg.daily_quota = 0;
        assert!(Campaign::new(cfg).is_err());
    }

    #[test]
    fn empty_items_rejected() {
        let mut c = Campaign::new(CampaignConfig::paper(1)).unwrap();
        assert!(c.run(&[]).is_err());
    }

    #[test]
    fn every_item_receives_exactly_one_label() {
        let items = campaign_items(41, 600);
        let mut c = Campaign::new(CampaignConfig::paper(41)).unwrap();
        let (out, _report) = c.run(&items).unwrap();
        assert_eq!(out.len(), items.len());
        for (annotated, (post, _)) in out.iter().zip(&items) {
            assert_eq!(annotated.post, *post);
        }
    }

    #[test]
    fn kappa_in_papers_neighborhood() {
        let items = campaign_items(42, 1_500);
        let mut c = Campaign::new(CampaignConfig::paper(42)).unwrap();
        let (_, report) = c.run(&items).unwrap();
        // Paper: κ = 0.7206. The simulation is calibrated to land nearby.
        assert!(
            (0.60..=0.85).contains(&report.fleiss_kappa),
            "kappa {:.4} outside calibration band",
            report.fleiss_kappa
        );
        assert!(report.kappa_items > 0);
        assert!(report.kappa_items <= report.joint_items);
        // Alpha covers more items (partial ratings) and should land in the
        // same agreement neighbourhood as kappa.
        assert!(
            (report.krippendorff_alpha - report.fleiss_kappa).abs() < 0.15,
            "alpha {} vs kappa {}",
            report.krippendorff_alpha,
            report.fleiss_kappa
        );
    }

    #[test]
    fn partition_respects_joint_fraction() {
        let items = campaign_items(43, 800);
        let mut c = Campaign::new(CampaignConfig::paper(43)).unwrap();
        let (_, report) = c.run(&items).unwrap();
        let frac = report.joint_items as f64 / items.len() as f64;
        assert!((frac - 0.30).abs() < 0.01, "joint fraction {frac}");
        assert_eq!(report.joint_items + report.individual_items, items.len());
    }

    #[test]
    fn daily_quotas_respected() {
        let items = campaign_items(44, 800);
        let cfg = CampaignConfig::paper(44);
        let quota_cap = cfg.daily_quota * cfg.n_annotators;
        let mut c = Campaign::new(cfg).unwrap();
        let (_, report) = c.run(&items).unwrap();
        for day in &report.days {
            assert!(
                day.labeled <= quota_cap,
                "day {} labelled {} > cap {quota_cap}",
                day.day,
                day.labeled
            );
        }
        assert!(report.days.len() > 1, "multi-day campaign expected");
    }

    #[test]
    fn inspections_pass_with_trained_annotators() {
        let items = campaign_items(45, 1_000);
        let mut c = Campaign::new(CampaignConfig::paper(45)).unwrap();
        let (_, report) = c.run(&items).unwrap();
        // The paper reports all reviews passed; sampling noise on a small
        // simulated campaign can fail a single day, so the gate here is:
        // at most one failed day AND the pooled inspection accuracy above
        // the 85 % threshold.
        let failed = report.days.iter().filter(|d| !d.passed).count();
        assert!(failed <= 1, "{failed}/{} days failed", report.days.len());
        let (hits, total) = report.days.iter().fold((0.0, 0usize), |(h, t), d| {
            (
                h + d.inspection_accuracy * d.inspected as f64,
                t + d.inspected,
            )
        });
        let pooled = hits / total.max(1) as f64;
        assert!(pooled >= 0.85, "pooled inspection accuracy {pooled}");
    }

    #[test]
    fn label_accuracy_high_but_imperfect() {
        let items = campaign_items(46, 1_000);
        let mut c = Campaign::new(CampaignConfig::paper(46)).unwrap();
        let (_, report) = c.run(&items).unwrap();
        assert!(
            report.label_accuracy > 0.85 && report.label_accuracy < 0.99,
            "label accuracy {}",
            report.label_accuracy
        );
    }

    #[test]
    fn uncertainty_policy_improves_label_quality() {
        let items = campaign_items(47, 1_000);
        let mut with = Campaign::new(CampaignConfig::paper(47)).unwrap();
        let (_, report_with) = with.run(&items).unwrap();
        let mut cfg = CampaignConfig::paper(47);
        cfg.uncertainty_policy = false;
        let mut without = Campaign::new(cfg).unwrap();
        let (_, report_without) = without.run(&items).unwrap();
        assert!(
            report_with.label_accuracy > report_without.label_accuracy,
            "policy on {} vs off {}",
            report_with.label_accuracy,
            report_without.label_accuracy
        );
        assert_eq!(report_without.flag_rate, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let items = campaign_items(48, 400);
        let run = || {
            let mut c = Campaign::new(CampaignConfig::paper(48)).unwrap();
            c.run(&items).unwrap()
        };
        let (a, ra) = run();
        let (b, rb) = run();
        assert_eq!(a, b);
        assert_eq!(ra.fleiss_kappa, rb.fleiss_kappa);
    }

    #[test]
    fn sources_cover_all_three_kinds() {
        let items = campaign_items(49, 1_000);
        let mut c = Campaign::new(CampaignConfig::paper(49)).unwrap();
        let (out, _) = c.run(&items).unwrap();
        let has = |s: LabelSource| out.iter().any(|i| i.source == s);
        assert!(has(LabelSource::Individual));
        assert!(has(LabelSource::MajorityVote));
        assert!(has(LabelSource::Adjudicated));
    }
}
