//! Label-Studio-like task platform substrate.
//!
//! Reproduces the workflow contract the paper's annotation campaign ran on:
//! a project holds **tasks**; tasks are **assigned** to annotators in
//! batches; annotators either **submit** a label or **flag** the task as
//! uncertain; supervisors **resolve** flagged tasks; every transition is
//! recorded so campaign-level audits (daily inspection, kappa subsets) can
//! replay exactly what happened. The platform is thread-safe (annotators
//! worked concurrently against the real server), guarded by a
//! `parking_lot` mutex.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use rsd_common::{Result, RsdError};
use rsd_corpus::{PostId, RiskLevel};

/// Platform-local task identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskState {
    /// Created, not yet assigned.
    Pending,
    /// Assigned to one or more annotators, awaiting submissions.
    Assigned,
    /// All required submissions received.
    Completed,
    /// Flagged uncertain by an annotator; awaiting supervisor resolution.
    Flagged,
    /// Resolved by a supervisor after a flag or a three-way disagreement.
    Adjudicated,
}

/// One annotation submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Submission {
    /// Annotator index within the campaign.
    pub annotator: usize,
    /// The label submitted.
    pub label: RiskLevel,
}

/// A task: one post to label, plus its audit trail.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Task {
    /// Platform id.
    pub id: TaskId,
    /// The post being labelled.
    pub post: PostId,
    /// Lifecycle state.
    pub state: TaskState,
    /// Annotators this task was assigned to.
    pub assigned_to: Vec<usize>,
    /// Submissions received so far.
    pub submissions: Vec<Submission>,
    /// Annotators who flagged the task uncertain.
    pub flagged_by: Vec<usize>,
    /// Supervisor resolution, if any.
    pub resolution: Option<RiskLevel>,
}

impl Task {
    /// Final label: supervisor resolution wins; otherwise majority of
    /// submissions (2-of-3 voting); `None` if neither applies yet.
    pub fn final_label(&self) -> Option<RiskLevel> {
        if let Some(r) = self.resolution {
            return Some(r);
        }
        if self.submissions.is_empty() {
            return None;
        }
        let mut counts = [0usize; RiskLevel::COUNT];
        for s in &self.submissions {
            counts[s.label.index()] += 1;
        }
        let (best_idx, best) = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("nonempty");
        let majority_needed = self.submissions.len() / 2 + 1;
        if *best >= majority_needed {
            Some(RiskLevel::from_index(best_idx).expect("valid index"))
        } else {
            None
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    tasks: Vec<Task>,
    by_post: HashMap<PostId, TaskId>,
}

/// A thread-safe labeling project.
#[derive(Debug, Clone, Default)]
pub struct LabelingPlatform {
    inner: Arc<Mutex<Inner>>,
}

impl LabelingPlatform {
    /// Empty platform.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create tasks for the given posts; returns their ids in order.
    pub fn create_tasks(&self, posts: &[PostId]) -> Vec<TaskId> {
        let mut inner = self.inner.lock();
        let mut ids = Vec::with_capacity(posts.len());
        for &post in posts {
            let id = TaskId(inner.tasks.len() as u32);
            inner.tasks.push(Task {
                id,
                post,
                state: TaskState::Pending,
                assigned_to: Vec::new(),
                submissions: Vec::new(),
                flagged_by: Vec::new(),
                resolution: None,
            });
            inner.by_post.insert(post, id);
            ids.push(id);
        }
        ids
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.inner.lock().tasks.len()
    }

    /// Assign a task to an annotator.
    pub fn assign(&self, task: TaskId, annotator: usize) -> Result<()> {
        let mut inner = self.inner.lock();
        let t = get_mut(&mut inner, task)?;
        if !t.assigned_to.contains(&annotator) {
            t.assigned_to.push(annotator);
        }
        if t.state == TaskState::Pending {
            t.state = TaskState::Assigned;
        }
        Ok(())
    }

    /// Submit a label. The annotator must have been assigned. When every
    /// assigned annotator has submitted, the task completes.
    pub fn submit(&self, task: TaskId, annotator: usize, label: RiskLevel) -> Result<()> {
        let mut inner = self.inner.lock();
        let t = get_mut(&mut inner, task)?;
        if !t.assigned_to.contains(&annotator) {
            return Err(RsdError::PipelineState(format!(
                "annotator {annotator} not assigned to {task}"
            )));
        }
        if t.submissions.iter().any(|s| s.annotator == annotator) {
            return Err(RsdError::PipelineState(format!(
                "annotator {annotator} already submitted for {task}"
            )));
        }
        t.submissions.push(Submission { annotator, label });
        if t.state == TaskState::Assigned
            && t.submissions.len() + t.flagged_by.len() >= t.assigned_to.len()
        {
            t.state = TaskState::Completed;
        }
        Ok(())
    }

    /// Flag a task as uncertain (the paper's uncertainty-reporting policy):
    /// the annotator abstains and the task moves to the supervisor queue.
    pub fn flag_uncertain(&self, task: TaskId, annotator: usize) -> Result<()> {
        let mut inner = self.inner.lock();
        let t = get_mut(&mut inner, task)?;
        if !t.assigned_to.contains(&annotator) {
            return Err(RsdError::PipelineState(format!(
                "annotator {annotator} not assigned to {task}"
            )));
        }
        if !t.flagged_by.contains(&annotator) {
            t.flagged_by.push(annotator);
        }
        t.state = TaskState::Flagged;
        Ok(())
    }

    /// Supervisor resolution of a flagged or disagreeing task.
    pub fn adjudicate(&self, task: TaskId, label: RiskLevel) -> Result<()> {
        let mut inner = self.inner.lock();
        let t = get_mut(&mut inner, task)?;
        t.resolution = Some(label);
        t.state = TaskState::Adjudicated;
        Ok(())
    }

    /// Snapshot of one task.
    pub fn task(&self, id: TaskId) -> Result<Task> {
        let inner = self.inner.lock();
        inner
            .tasks
            .get(id.0 as usize)
            .cloned()
            .ok_or_else(|| RsdError::not_found("task", id))
    }

    /// Ids of tasks currently in the given state.
    pub fn tasks_in_state(&self, state: TaskState) -> Vec<TaskId> {
        let inner = self.inner.lock();
        inner
            .tasks
            .iter()
            .filter(|t| t.state == state)
            .map(|t| t.id)
            .collect()
    }

    /// Export all tasks (the platform's "export annotations" action).
    pub fn export(&self) -> Vec<Task> {
        self.inner.lock().tasks.clone()
    }

    /// Find the task for a post.
    pub fn task_for_post(&self, post: PostId) -> Option<TaskId> {
        self.inner.lock().by_post.get(&post).copied()
    }

    /// Export annotations in a Label-Studio-compatible JSON shape: one
    /// object per task with `data` (the source reference) and
    /// `annotations` (one result per submission, plus the adjudicated
    /// resolution when present). This is the interoperability surface a
    /// real campaign would hand to downstream tooling.
    pub fn export_label_studio_json(&self) -> Result<String> {
        #[derive(serde::Serialize)]
        struct LsResult {
            from_name: &'static str,
            to_name: &'static str,
            r#type: &'static str,
            value: LsChoice,
        }
        #[derive(serde::Serialize)]
        struct LsChoice {
            choices: Vec<String>,
        }
        #[derive(serde::Serialize)]
        struct LsAnnotation {
            completed_by: usize,
            result: Vec<LsResult>,
        }
        #[derive(serde::Serialize)]
        struct LsTask {
            id: u32,
            data: serde_json::Value,
            annotations: Vec<LsAnnotation>,
            cancelled_annotations: usize,
        }

        let tasks = self.export();
        let mut out = Vec::with_capacity(tasks.len());
        for t in tasks {
            let mut annotations: Vec<LsAnnotation> = t
                .submissions
                .iter()
                .map(|s| LsAnnotation {
                    completed_by: s.annotator,
                    result: vec![LsResult {
                        from_name: "risk",
                        to_name: "text",
                        r#type: "choices",
                        value: LsChoice {
                            choices: vec![s.label.name().to_string()],
                        },
                    }],
                })
                .collect();
            if let Some(resolution) = t.resolution {
                annotations.push(LsAnnotation {
                    completed_by: usize::MAX, // supervisor panel
                    result: vec![LsResult {
                        from_name: "risk",
                        to_name: "text",
                        r#type: "choices",
                        value: LsChoice {
                            choices: vec![resolution.name().to_string()],
                        },
                    }],
                });
            }
            out.push(LsTask {
                id: t.id.0,
                data: serde_json::json!({ "post": t.post.to_string() }),
                annotations,
                cancelled_annotations: t.flagged_by.len(),
            });
        }
        serde_json::to_string_pretty(&out).map_err(|e| RsdError::Serde(e.to_string()))
    }
}

fn get_mut(inner: &mut Inner, id: TaskId) -> Result<&mut Task> {
    inner
        .tasks
        .get_mut(id.0 as usize)
        .ok_or_else(|| RsdError::not_found("task", id))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform_with(n: u32) -> (LabelingPlatform, Vec<TaskId>) {
        let p = LabelingPlatform::new();
        let posts: Vec<PostId> = (0..n).map(PostId).collect();
        let ids = p.create_tasks(&posts);
        (p, ids)
    }

    #[test]
    fn lifecycle_pending_assigned_completed() {
        let (p, ids) = platform_with(1);
        assert_eq!(p.task(ids[0]).unwrap().state, TaskState::Pending);
        p.assign(ids[0], 0).unwrap();
        assert_eq!(p.task(ids[0]).unwrap().state, TaskState::Assigned);
        p.submit(ids[0], 0, RiskLevel::Ideation).unwrap();
        assert_eq!(p.task(ids[0]).unwrap().state, TaskState::Completed);
    }

    #[test]
    fn submit_requires_assignment_and_is_idempotent_guarded() {
        let (p, ids) = platform_with(1);
        assert!(p.submit(ids[0], 0, RiskLevel::Ideation).is_err());
        p.assign(ids[0], 0).unwrap();
        p.submit(ids[0], 0, RiskLevel::Ideation).unwrap();
        assert!(p.submit(ids[0], 0, RiskLevel::Attempt).is_err());
    }

    #[test]
    fn triple_assignment_completes_after_all_submit() {
        let (p, ids) = platform_with(1);
        for a in 0..3 {
            p.assign(ids[0], a).unwrap();
        }
        p.submit(ids[0], 0, RiskLevel::Ideation).unwrap();
        p.submit(ids[0], 1, RiskLevel::Ideation).unwrap();
        assert_eq!(p.task(ids[0]).unwrap().state, TaskState::Assigned);
        p.submit(ids[0], 2, RiskLevel::Behavior).unwrap();
        assert_eq!(p.task(ids[0]).unwrap().state, TaskState::Completed);
    }

    #[test]
    fn majority_vote_and_adjudication() {
        let (p, ids) = platform_with(2);
        for a in 0..3 {
            p.assign(ids[0], a).unwrap();
            p.assign(ids[1], a).unwrap();
        }
        // 2-of-3 majority.
        p.submit(ids[0], 0, RiskLevel::Ideation).unwrap();
        p.submit(ids[0], 1, RiskLevel::Ideation).unwrap();
        p.submit(ids[0], 2, RiskLevel::Behavior).unwrap();
        assert_eq!(
            p.task(ids[0]).unwrap().final_label(),
            Some(RiskLevel::Ideation)
        );
        // Three-way split → no majority → adjudication.
        p.submit(ids[1], 0, RiskLevel::Indicator).unwrap();
        p.submit(ids[1], 1, RiskLevel::Ideation).unwrap();
        p.submit(ids[1], 2, RiskLevel::Behavior).unwrap();
        assert_eq!(p.task(ids[1]).unwrap().final_label(), None);
        p.adjudicate(ids[1], RiskLevel::Ideation).unwrap();
        assert_eq!(p.task(ids[1]).unwrap().state, TaskState::Adjudicated);
        assert_eq!(
            p.task(ids[1]).unwrap().final_label(),
            Some(RiskLevel::Ideation)
        );
    }

    #[test]
    fn flagging_moves_to_supervisor_queue() {
        let (p, ids) = platform_with(1);
        p.assign(ids[0], 1).unwrap();
        assert!(p.flag_uncertain(ids[0], 0).is_err(), "must be assigned");
        p.flag_uncertain(ids[0], 1).unwrap();
        assert_eq!(p.task(ids[0]).unwrap().state, TaskState::Flagged);
        assert_eq!(p.tasks_in_state(TaskState::Flagged), vec![ids[0]]);
        p.adjudicate(ids[0], RiskLevel::Attempt).unwrap();
        assert_eq!(
            p.task(ids[0]).unwrap().final_label(),
            Some(RiskLevel::Attempt)
        );
    }

    #[test]
    fn export_and_post_lookup() {
        let (p, ids) = platform_with(3);
        assert_eq!(p.export().len(), 3);
        assert_eq!(p.task_for_post(PostId(2)), Some(ids[2]));
        assert_eq!(p.task_for_post(PostId(99)), None);
    }

    #[test]
    fn label_studio_export_shape() {
        let (p, ids) = platform_with(2);
        for a in 0..3 {
            p.assign(ids[0], a).unwrap();
        }
        p.submit(ids[0], 0, RiskLevel::Ideation).unwrap();
        p.submit(ids[0], 1, RiskLevel::Ideation).unwrap();
        p.flag_uncertain(ids[0], 2).unwrap();
        p.adjudicate(ids[0], RiskLevel::Ideation).unwrap();
        let json = p.export_label_studio_json().unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        // 2 submissions + 1 adjudication.
        assert_eq!(arr[0]["annotations"].as_array().unwrap().len(), 3);
        assert_eq!(arr[0]["cancelled_annotations"], 1);
        assert_eq!(
            arr[0]["annotations"][0]["result"][0]["value"]["choices"][0],
            "Ideation"
        );
        // Untouched task: empty annotations.
        assert_eq!(arr[1]["annotations"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn concurrent_submissions_are_safe() {
        let (p, ids) = platform_with(300);
        for &id in &ids {
            for a in 0..3 {
                p.assign(id, a).unwrap();
            }
        }
        std::thread::scope(|s| {
            for a in 0..3 {
                let p = p.clone();
                let ids = ids.clone();
                s.spawn(move || {
                    for id in ids {
                        p.submit(id, a, RiskLevel::Ideation).unwrap();
                    }
                });
            }
        });
        assert_eq!(p.tasks_in_state(TaskState::Completed).len(), 300);
    }
}
