//! Probe: MLM pretraining convergence under different settings.
use rand::SeedableRng;
use rsd_bench::{Prepared, Scale};
use rsd_models::encoding::TaskEncoder;
use rsd_models::pretrain::{mlm_pretrain, PretrainConfig};
use rsd_nn::transformer::{Encoder, EncoderConfig, MlmHead, PositionMode};
use rsd_nn::ParamStore;

fn main() {
    let prepared = Prepared::build(Scale::Mid, 2026);
    let texts: Vec<String> = prepared.unlabeled.iter().take(1500).cloned().collect();
    let enc = TaskEncoder::fit_on_texts(&texts, 2000, 56);
    println!("vocab={} texts={}", enc.vocab.len(), texts.len());
    for (lr, batch) in [(1.5e-3f32, 16usize), (3e-3, 8), (1e-2, 8)] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cfg = EncoderConfig {
            vocab: enc.vocab.len(),
            dim: 48,
            layers: 2,
            heads: 4,
            ffn_dim: 96,
            max_len: 56,
            dropout: 0.1,
            positions: PositionMode::Absolute,
        };
        let encoder = Encoder::new(&mut store, "e", cfg, &mut rng);
        let head = MlmHead::new(&mut store, "mlm", 48, enc.vocab.len(), &mut rng);
        print!("lr={lr} batch={batch}: ");
        for epoch in 0..6 {
            let loss = mlm_pretrain(
                &encoder,
                &head,
                &mut store,
                &enc,
                &texts,
                &PretrainConfig {
                    epochs: 1,
                    batch,
                    lr,
                    ..Default::default()
                },
                100 + epoch,
            )
            .unwrap();
            print!("{loss:.3} ");
        }
        println!();
    }
}
