//! Microbenches for the preprocessing pipeline and TF-IDF vectorization.

use criterion::{criterion_group, criterion_main, Criterion};
use rsd_corpus::{CorpusConfig, CorpusGenerator};
use rsd_text::{Preprocessor, TfIdfVectorizer};

fn corpus_bodies(n_users: usize) -> Vec<String> {
    CorpusGenerator::new(CorpusConfig::small(3, n_users))
        .unwrap()
        .generate()
        .posts
        .into_iter()
        .map(|p| p.body)
        .collect()
}

fn bench_pipeline(c: &mut Criterion) {
    let bodies = corpus_bodies(1_000);
    c.bench_function("textproc/preprocess_1k_users_pool", |b| {
        b.iter(|| Preprocessor::default().run(&bodies))
    });
}

fn bench_tfidf(c: &mut Criterion) {
    let bodies = corpus_bodies(500);
    let cleaned: Vec<String> = Preprocessor::default().run(&bodies).cleaned;
    let refs: Vec<&str> = cleaned.iter().map(String::as_str).collect();
    c.bench_function("textproc/tfidf_fit_transform", |b| {
        b.iter(|| {
            let v = TfIdfVectorizer::fit(refs.iter().copied(), 2, Some(300)).unwrap();
            cleaned.iter().map(|d| v.transform(d).nnz()).sum::<usize>()
        })
    });
}

criterion_group!(benches, bench_pipeline, bench_tfidf);
criterion_main!(benches);
