//! Microbenches for the neural substrate: forward/backward of the
//! attention variants (absolute vs disentangled — the DeBERTa ablation's
//! compute cost) and an LSTM step.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsd_nn::attention::{DisentangledAttention, MultiHeadAttention};
use rsd_nn::matrix::Matrix;
use rsd_nn::rnn::Lstm;
use rsd_nn::{ParamStore, Tape};

const SEQ: usize = 48;
const DIM: usize = 48;

fn input() -> Matrix {
    Matrix::from_vec(
        SEQ,
        DIM,
        (0..SEQ * DIM)
            .map(|i| ((i % 13) as f32) * 0.1 - 0.6)
            .collect(),
    )
}

fn bench_absolute_attention(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let attn = MultiHeadAttention::new(&mut store, "a", DIM, 4, &mut rng);
    c.bench_function("nn/attention_absolute_fwd_bwd", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let x = tape.constant(input());
            let y = attn.forward(&mut tape, &store, x);
            let loss = tape.mean_rows(y);
            tape.backward(loss);
            tape.grad(x)
        })
    });
}

fn bench_disentangled_attention(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let mut store = ParamStore::new();
    let attn = DisentangledAttention::new(&mut store, "d", DIM, 4, 8, &mut rng);
    c.bench_function("nn/attention_disentangled_fwd_bwd", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let x = tape.constant(input());
            let y = attn.forward(&mut tape, &store, x);
            let loss = tape.mean_rows(y);
            tape.backward(loss);
            tape.grad(x)
        })
    });
}

fn bench_lstm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let lstm = Lstm::new(&mut store, "l", DIM, DIM, &mut rng);
    c.bench_function("nn/bilstm_seq48_fwd_bwd", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let x = tape.constant(input());
            let fwd = lstm.run(&mut tape, &store, x, false);
            let bwd = lstm.run(&mut tape, &store, x, true);
            let both = tape.concat_cols(&[fwd, bwd]);
            let loss = tape.mean_rows(both);
            tape.backward(loss);
            tape.grad(x)
        })
    });
}

criterion_group!(
    benches,
    bench_absolute_attention,
    bench_disentangled_attention,
    bench_lstm
);
criterion_main!(benches);
