//! End-to-end table replicas at smoke scale, so `cargo bench` touches
//! every experiment pathway (dataset build -> stats -> XGBoost row).

use criterion::{criterion_group, criterion_main, Criterion};
use rsd_bench::{table3_configs, Prepared, Scale};
use rsd_dataset::stats::{class_distribution, posts_per_user_histogram, top_user_risk_profiles};
use rsd_models::XgboostBaseline;

fn bench_dataset_build(c: &mut Criterion) {
    c.bench_function("tables/build_small_dataset", |b| {
        b.iter(|| Prepared::build(Scale::Small, 9))
    });
}

fn bench_stats_tables(c: &mut Criterion) {
    let prepared = Prepared::build(Scale::Small, 10);
    c.bench_function("tables/table1_fig1_fig4_stats", |b| {
        b.iter(|| {
            let t1 = class_distribution(&prepared.dataset);
            let f1 = posts_per_user_histogram(&prepared.dataset, 60);
            let f4 = top_user_risk_profiles(&prepared.dataset, 20);
            (t1.len(), f1.total, f4.len())
        })
    });
}

fn bench_table3_xgboost_row(c: &mut Criterion) {
    let prepared = Prepared::build(Scale::Small, 11);
    let cfgs = table3_configs(Scale::Small);
    c.bench_function("tables/table3_xgboost_row_small", |b| {
        b.iter(|| {
            XgboostBaseline::new(cfgs.xgboost.clone())
                .run(&prepared.bench_data())
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dataset_build, bench_stats_tables, bench_table3_xgboost_row
}
criterion_main!(benches);
