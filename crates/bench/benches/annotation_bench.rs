//! Microbench for the annotation campaign: full protocol throughput
//! (kappa subset, voting, daily inspections) per thousand items.

use criterion::{criterion_group, criterion_main, Criterion};
use rsd_annotation::{Campaign, CampaignConfig};
use rsd_corpus::{CorpusConfig, CorpusGenerator, PostId, RiskLevel};

fn bench_campaign(c: &mut Criterion) {
    let corpus = CorpusGenerator::new(CorpusConfig::small(4, 800))
        .unwrap()
        .generate();
    let items: Vec<(PostId, RiskLevel)> = corpus
        .posts
        .iter()
        .filter(|p| !p.off_topic && p.duplicate_of.is_none())
        .map(|p| (p.id, p.latent_risk))
        .collect();
    c.bench_function("annotation/full_campaign_800_users", |b| {
        b.iter(|| {
            let mut campaign = Campaign::new(CampaignConfig::paper(4)).unwrap();
            campaign.run(&items).unwrap()
        })
    });
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
