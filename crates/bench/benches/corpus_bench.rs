//! Microbenches for the corpus substrate: generation throughput and the
//! simulated-API crawl (the machinery behind every table).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rsd_common::Timestamp;
use rsd_corpus::reddit::CrawlClient;
use rsd_corpus::{CorpusConfig, CorpusGenerator};

fn bench_generation(c: &mut Criterion) {
    c.bench_function("corpus/generate_500_users", |b| {
        b.iter(|| {
            CorpusGenerator::new(CorpusConfig::small(1, 500))
                .unwrap()
                .generate()
        })
    });
}

fn bench_crawl(c: &mut Criterion) {
    let corpus = CorpusGenerator::new(CorpusConfig::small(2, 2_000))
        .unwrap()
        .generate();
    let store = corpus.into_store();
    c.bench_function("corpus/crawl_window_2k_users", |b| {
        b.iter_batched(
            || CrawlClient::new(&store),
            |mut client| {
                client
                    .crawl_window(
                        "SuicideWatch",
                        Timestamp::from_ymd(2020, 1, 1).unwrap(),
                        Timestamp::from_ymd(2022, 1, 1).unwrap(),
                    )
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_generation, bench_crawl);
criterion_main!(benches);
