//! Microbench for the GBDT: multi-class boosting on a realistic feature
//! width (the XGBoost baseline's training cost).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng;
use rsd_common::rng::stream_rng;
use rsd_gbdt::{BinnedMatrix, Booster, BoosterConfig};

fn bench_boosting(c: &mut Criterion) {
    let mut rng = stream_rng(8, "bench.gbdt");
    let n = 1_000;
    let dims = 120;
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..dims).map(|_| rng.gen_range(-1.0..1.0f32)).collect())
        .collect();
    let labels: Vec<usize> = rows
        .iter()
        .map(|r| {
            if r[0] > 0.3 {
                0
            } else if r[1] > 0.0 {
                1
            } else if r[2] > 0.0 {
                2
            } else {
                3
            }
        })
        .collect();
    let matrix = BinnedMatrix::fit(rows, 64).unwrap();
    c.bench_function("gbdt/fit_20_rounds_1k_x_120", |b| {
        b.iter(|| {
            Booster::fit(
                &matrix,
                &labels,
                None,
                BoosterConfig {
                    n_classes: 4,
                    n_rounds: 20,
                    early_stopping: 0,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_boosting);
criterion_main!(benches);
