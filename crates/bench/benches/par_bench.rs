//! Microbenches for the `rsd-par` hot paths: the blocked matmul kernels
//! at 128/256/512 dims (reference vs new-serial vs 4-thread pool) and a
//! GBDT boosting round. `scripts/bench_kernels` (the `bench_kernels`
//! bin) writes the committed `BENCH_kernels.json` artifact from the same
//! workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use rsd_gbdt::{BinnedMatrix, Booster, BoosterConfig};
use rsd_nn::matrix::{reference, Matrix};

fn pseudo_matrix(rows: usize, cols: usize, salt: u64) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let h = (i as u64 ^ salt)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(17);
            ((h % 1000) as f32) / 500.0 - 1.0
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn bench_matmul(c: &mut Criterion) {
    for &dim in &[128usize, 256, 512] {
        let a = pseudo_matrix(dim, dim, 1);
        let b = pseudo_matrix(dim, dim, 2);
        c.bench_function(&format!("par/matmul_{dim}_reference"), |bch| {
            bch.iter(|| reference::matmul(&a, &b))
        });
        c.bench_function(&format!("par/matmul_{dim}_serial"), |bch| {
            bch.iter(|| rsd_par::run_serial(|| a.matmul(&b)))
        });
        c.bench_function(&format!("par/matmul_{dim}_pool4"), |bch| {
            bch.iter(|| rsd_par::with_local_pool(4, || a.matmul(&b)))
        });
    }
}

fn gbdt_data(n_rows: usize, n_features: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
    (0..n_rows)
        .map(|i| {
            let row: Vec<f32> = (0..n_features)
                .map(|f| {
                    let h = ((i * n_features + f) as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .rotate_left(13);
                    ((h % 1000) as f32) / 500.0 - 1.0
                })
                .collect();
            let label = ((row[0] > 0.0) as usize) * 2 + ((row[1] > 0.0) as usize);
            (row, label)
        })
        .unzip()
}

fn bench_gbdt_round(c: &mut Criterion) {
    let (rows, labels) = gbdt_data(1500, 32);
    let train = BinnedMatrix::fit(rows, 64).unwrap();
    let cfg = BoosterConfig {
        n_classes: 4,
        n_rounds: 1,
        early_stopping: 0,
        ..Default::default()
    };
    c.bench_function("par/gbdt_round_serial", |bch| {
        bch.iter(|| {
            rsd_par::run_serial(|| Booster::fit(&train, &labels, None, cfg.clone()).unwrap())
        })
    });
    c.bench_function("par/gbdt_round_pool4", |bch| {
        bch.iter(|| {
            rsd_par::with_local_pool(4, || {
                Booster::fit(&train, &labels, None, cfg.clone()).unwrap()
            })
        })
    });
}

criterion_group!(benches, bench_matmul, bench_gbdt_round);
criterion_main!(benches);
