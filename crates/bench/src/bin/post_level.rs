//! Post-level risk classification (extension).
//!
//! Table II lists RSD-15K as annotated at both Post and User granularity;
//! the paper benchmarks only the user-level task. This binary evaluates
//! the feature-based model at *post* granularity: every post of every test
//! user is an instance (with its preceding-window context), so the metric
//! covers whole timelines rather than final states.

use rsd_bench::Prepared;
use rsd_corpus::RiskLevel;
use rsd_dataset::splits::post_level_windows;
use rsd_eval::{ClassificationReport, ConfusionMatrix};
use rsd_features::FeatureExtractor;
use rsd_gbdt::{BinnedMatrix, Booster, BoosterConfig};

fn main() {
    let prepared = Prepared::from_env();
    let dataset = &prepared.dataset;
    let splits = &prepared.splits;

    // Train on post-level windows of training users.
    let expand = |windows: &[rsd_dataset::UserWindow], cap: usize| {
        let mut out = Vec::new();
        for w in windows {
            let user = dataset.users.iter().find(|u| u.id == w.user).expect("user");
            out.extend(post_level_windows(dataset, user, splits.config.window, cap));
        }
        out
    };
    let train_windows = expand(&splits.train, 8);
    let test_windows = expand(&splits.test, usize::MAX);

    let extractor = FeatureExtractor::fit(dataset, &train_windows, 300).expect("fit");
    let x_train = extractor.transform_all(dataset, &train_windows);
    let y_train: Vec<usize> = train_windows.iter().map(|w| w.label.index()).collect();
    let x_test = extractor.transform_all(dataset, &test_windows);
    let y_test: Vec<usize> = test_windows.iter().map(|w| w.label.index()).collect();

    let matrix = BinnedMatrix::fit(x_train, 64).expect("bin");
    let test = matrix.transform(x_test).expect("transform");
    let booster = Booster::fit(
        &matrix,
        &y_train,
        None,
        BoosterConfig {
            n_classes: RiskLevel::COUNT,
            n_rounds: 80,
            early_stopping: 0,
            seed: prepared.seed,
            ..Default::default()
        },
    )
    .expect("fit booster");

    let preds = booster.predict(&test);
    let confusion = ConfusionMatrix::from_labels(RiskLevel::COUNT, &y_test, &preds).expect("cm");
    let names: Vec<&str> = RiskLevel::ALL.iter().map(|l| l.name()).collect();
    let report = ClassificationReport::from_confusion("XGBoost(post)", &names, &confusion);

    println!(
        "Post-level risk classification (scale {:?}, seed {}): {} training posts, {} test posts",
        prepared.scale,
        prepared.seed,
        train_windows.len(),
        test_windows.len()
    );
    print!("{report}");
}
