//! `obs_diff` — the perf/quality regression gate.
//!
//! Compares two RunReport / BENCH JSON artifacts (or `.series.ndjson`
//! time-series files, summarized via
//! `rsd_obs::timeseries::summarize_series`) with per-metric tolerances
//! (see `rsd_obs::diff` for the classification rules):
//!
//! ```text
//! obs_diff [FLAGS] baseline.json candidate.json
//! obs_diff --self-test [FLAGS] report.json|series.ndjson
//! ```
//!
//! Flags: `--time-tol F` (default 0.15), `--mem-tol F` (default 0.30),
//! `--min-time-ms F` (default 50), `--quantile-tol Q F` (per-quantile
//! ratio for Q in p50/p90/p99/p999; defaults 0.15/0.20/0.25/0.40),
//! `--min-quantile-ms F` (default 1), `--ignore-time`, `--verbose`.
//!
//! Exit codes: 0 — no regression; 1 — `--self-test` failure (the
//! injected regressions did not trip, or the identity diff regressed);
//! 2 — usage or I/O error; 3 — time/quantile/throughput regression;
//! 4 — memory regression; 5 — quality regression. When several classes
//! regress at once the most severe wins: quality > memory > time.
//! Every regression line names the offending path and both values.
//!
//! `--self-test` loads one artifact, injects a 2x slowdown on the first
//! eligible time leaf, a drift on the first quality leaf, and an
//! inflated tail quantile (p99/p999) where latency data exists, then
//! verifies the gate trips on the perturbed copy while passing on the
//! identity diff — CI runs it to prove the gate itself works.

use rsd_obs::diff::{diff_reports, inject_regressions, Class, Tolerances};
use rsd_obs::Value;

/// Exit code for a wall-clock/quantile/throughput regression.
const EXIT_TIME: i32 = 3;
/// Exit code for a memory regression.
const EXIT_MEMORY: i32 = 4;
/// Exit code for a quality (replication-invariant) regression.
const EXIT_QUALITY: i32 = 5;

struct Args {
    tol: Tolerances,
    self_test: bool,
    verbose: bool,
    paths: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: obs_diff [--time-tol F] [--mem-tol F] [--min-time-ms F] \
         [--quantile-tol p50|p90|p99|p999 F] [--min-quantile-ms F] \
         [--ignore-time] [--verbose] baseline.json candidate.json\n\
         \x20      obs_diff --self-test [flags] report.json|series.ndjson\n\
         exit codes: 0 ok, 1 self-test failure, 2 usage/io, \
         3 time, 4 memory, 5 quality"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        tol: Tolerances::default(),
        self_test: false,
        verbose: false,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let float_flag = |it: &mut dyn Iterator<Item = String>| -> f64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--time-tol" => args.tol.time_ratio = float_flag(&mut it),
            "--mem-tol" => args.tol.mem_ratio = float_flag(&mut it),
            "--min-time-ms" => args.tol.min_time_ms = float_flag(&mut it),
            "--min-quantile-ms" => args.tol.min_quantile_ms = float_flag(&mut it),
            "--quantile-tol" => {
                let idx = match it.next().as_deref() {
                    Some("p50") => 0,
                    Some("p90") => 1,
                    Some("p99") => 2,
                    Some("p999") => 3,
                    _ => usage(),
                };
                args.tol.quantile_ratios[idx] = float_flag(&mut it);
            }
            "--ignore-time" => args.tol.check_time = false,
            "--self-test" => args.self_test = true,
            "--verbose" | "-v" => args.verbose = true,
            "--help" | "-h" => usage(),
            p if !p.starts_with('-') => args.paths.push(p.to_string()),
            _ => usage(),
        }
    }
    args
}

/// Load an artifact: `.ndjson` series files are summarized into a
/// report-shaped object, everything else parses as plain JSON.
fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("obs_diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    if path.ends_with(".ndjson") {
        return rsd_obs::timeseries::summarize_series(&text).unwrap_or_else(|e| {
            eprintln!("obs_diff: {path}: {e}");
            std::process::exit(2);
        });
    }
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("obs_diff: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn print_findings(result: &rsd_obs::diff::DiffResult, verbose: bool) {
    for f in &result.findings {
        if f.regression {
            println!("REGRESSION [{:?}] {}: {}", f.class, f.path, f.detail);
        } else if verbose {
            println!("note       [{:?}] {}: {}", f.class, f.path, f.detail);
        }
    }
}

/// Most severe exit code among the regressed classes:
/// quality > memory > time-like.
fn exit_code_for(result: &rsd_obs::diff::DiffResult) -> i32 {
    let mut code = 0;
    for f in result.findings.iter().filter(|f| f.regression) {
        let class_code = match f.class {
            Class::Quality => EXIT_QUALITY,
            Class::Memory => EXIT_MEMORY,
            Class::Time | Class::Quantile | Class::Speedup => EXIT_TIME,
            Class::Skip | Class::Info => continue,
        };
        code = code.max(class_code);
    }
    code
}

fn main() {
    let args = parse_args();

    if args.self_test {
        let [path] = args.paths.as_slice() else {
            usage()
        };
        let report = load(path);

        let identity = diff_reports(&report, &report, &args.tol);
        if identity.regressed() {
            println!("self-test FAILED: identity diff regressed");
            print_findings(&identity, true);
            std::process::exit(1);
        }

        let (injected, what) = inject_regressions(&report, &args.tol);
        let d = diff_reports(&report, &injected, &args.tol);
        let tripped = |class: Class| d.findings.iter().any(|f| f.regression && f.class == class);
        let time_ok = !args.tol.check_time || what.time_path.is_none() || tripped(Class::Time);
        let quality_ok = what.quality_path.is_none() || tripped(Class::Quality);
        let quantile_ok =
            !args.tol.check_time || what.quantile_path.is_none() || tripped(Class::Quantile);
        if what.time_path.is_none() && what.quality_path.is_none() && what.quantile_path.is_none() {
            println!("self-test FAILED: no injectable leaves found in {path}");
            std::process::exit(1);
        }
        if !(time_ok && quality_ok && quantile_ok) {
            println!(
                "self-test FAILED: injected regressions did not trip \
                 (time on {:?}: {time_ok}, quality on {:?}: {quality_ok}, \
                 quantile on {:?}: {quantile_ok})",
                what.time_path, what.quality_path, what.quantile_path
            );
            print_findings(&d, true);
            std::process::exit(1);
        }
        println!(
            "self-test ok: identity diff clean ({} leaves); injected regressions tripped \
             (time: {:?}, quality: {:?}, quantile: {:?})",
            identity.compared, what.time_path, what.quality_path, what.quantile_path
        );
        return;
    }

    let [baseline, candidate] = args.paths.as_slice() else {
        usage()
    };
    let base = load(baseline);
    let cand = load(candidate);
    let result = diff_reports(&base, &cand, &args.tol);
    print_findings(&result, args.verbose);
    let regressions = result.findings.iter().filter(|f| f.regression).count();
    if regressions > 0 {
        println!(
            "obs_diff: {regressions} regression(s) across {} compared leaves ({} vs {})",
            result.compared, baseline, candidate
        );
        std::process::exit(exit_code_for(&result));
    }
    println!(
        "obs_diff: ok — {} leaves compared, no regressions ({} vs {})",
        result.compared, baseline, candidate
    );
}
