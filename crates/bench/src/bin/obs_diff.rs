//! `obs_diff` — the perf/quality regression gate.
//!
//! Compares two RunReport / BENCH JSON artifacts with per-metric
//! tolerances (see `rsd_obs::diff` for the classification rules):
//!
//! ```text
//! obs_diff [FLAGS] baseline.json candidate.json
//! obs_diff --self-test [FLAGS] report.json
//! ```
//!
//! Flags: `--time-tol F` (default 0.15), `--mem-tol F` (default 0.30),
//! `--min-time-ms F` (default 50), `--ignore-time`, `--verbose`.
//!
//! Exit codes: 0 — no regression; 1 — regression (or, under
//! `--self-test`, the injected regressions failed to trip the gate);
//! 2 — usage or I/O error.
//!
//! `--self-test` loads one report, injects a 2x slowdown on the first
//! eligible time leaf plus a drift on the first quality leaf, and
//! verifies the gate trips on the perturbed copy while passing on the
//! identity diff — CI runs it to prove the gate itself works.

use rsd_obs::diff::{diff_reports, inject_regressions, Class, Tolerances};
use rsd_obs::Value;

struct Args {
    tol: Tolerances,
    self_test: bool,
    verbose: bool,
    paths: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: obs_diff [--time-tol F] [--mem-tol F] [--min-time-ms F] \
         [--ignore-time] [--verbose] baseline.json candidate.json\n\
         \x20      obs_diff --self-test [flags] report.json"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        tol: Tolerances::default(),
        self_test: false,
        verbose: false,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let float_flag = |it: &mut dyn Iterator<Item = String>| -> f64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--time-tol" => args.tol.time_ratio = float_flag(&mut it),
            "--mem-tol" => args.tol.mem_ratio = float_flag(&mut it),
            "--min-time-ms" => args.tol.min_time_ms = float_flag(&mut it),
            "--ignore-time" => args.tol.check_time = false,
            "--self-test" => args.self_test = true,
            "--verbose" | "-v" => args.verbose = true,
            "--help" | "-h" => usage(),
            p if !p.starts_with('-') => args.paths.push(p.to_string()),
            _ => usage(),
        }
    }
    args
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("obs_diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("obs_diff: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn print_findings(result: &rsd_obs::diff::DiffResult, verbose: bool) {
    for f in &result.findings {
        if f.regression {
            println!("REGRESSION [{:?}] {}: {}", f.class, f.path, f.detail);
        } else if verbose {
            println!("note       [{:?}] {}: {}", f.class, f.path, f.detail);
        }
    }
}

fn main() {
    let args = parse_args();

    if args.self_test {
        let [path] = args.paths.as_slice() else {
            usage()
        };
        let report = load(path);

        let identity = diff_reports(&report, &report, &args.tol);
        if identity.regressed() {
            println!("self-test FAILED: identity diff regressed");
            print_findings(&identity, true);
            std::process::exit(1);
        }

        let (injected, what) = inject_regressions(&report, &args.tol);
        let d = diff_reports(&report, &injected, &args.tol);
        let time_ok = !args.tol.check_time
            || what.time_path.is_none()
            || d.findings
                .iter()
                .any(|f| f.regression && f.class == Class::Time);
        let quality_ok = what.quality_path.is_none()
            || d.findings
                .iter()
                .any(|f| f.regression && f.class == Class::Quality);
        if what.time_path.is_none() && what.quality_path.is_none() {
            println!("self-test FAILED: no injectable leaves found in {path}");
            std::process::exit(1);
        }
        if !(time_ok && quality_ok) {
            println!(
                "self-test FAILED: injected regressions did not trip (time on {:?}: {}, quality on {:?}: {})",
                what.time_path, time_ok, what.quality_path, quality_ok
            );
            print_findings(&d, true);
            std::process::exit(1);
        }
        println!(
            "self-test ok: identity diff clean ({} leaves); injected regressions tripped (time: {:?}, quality: {:?})",
            identity.compared, what.time_path, what.quality_path
        );
        return;
    }

    let [baseline, candidate] = args.paths.as_slice() else {
        usage()
    };
    let base = load(baseline);
    let cand = load(candidate);
    let result = diff_reports(&base, &cand, &args.tol);
    print_findings(&result, args.verbose);
    let regressions = result.findings.iter().filter(|f| f.regression).count();
    if regressions > 0 {
        println!(
            "obs_diff: {regressions} regression(s) across {} compared leaves ({} vs {})",
            result.compared, baseline, candidate
        );
        std::process::exit(1);
    }
    println!(
        "obs_diff: ok — {} leaves compared, no regressions ({} vs {})",
        result.compared, baseline, candidate
    );
}
