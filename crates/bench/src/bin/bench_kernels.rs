//! Kernel speedup artifact: times the blocked `rsd-par` kernels against
//! the pre-optimization reference implementations and writes
//! `BENCH_kernels.json` at the workspace root.
//!
//! Three workload families:
//!
//! * dense matmul at 128/256/512 dims — in-tree [`reference::matmul`]
//!   (the seed's zero-branch scalar kernel) vs the new blocked kernel,
//!   serially and on a 4-thread local pool;
//! * a table3-scale GBDT tree fit — a verbatim re-creation of the seed's
//!   row-major (`Vec<Vec<u16>>`) histogram split search vs the new
//!   column-major gathered [`Tree::fit`];
//! * a full [`Booster::fit`] plus a byte-identity check of its
//!   predictions across serial / 1-thread / 4-thread execution.
//!
//! On a single-core host the pool cannot add wall-clock speedup; the
//! honest headline number is the kernel-level speedup vs the reference
//! implementations, which threading multiplies on multi-core hosts.

use std::time::Instant;

use rsd_gbdt::tree::TreeConfig;
use rsd_gbdt::{BinnedMatrix, Booster, BoosterConfig, Tree};
use rsd_nn::matrix::{reference, Matrix};

const REPS: usize = 9;

/// Best-of-`REPS` wall-clock in milliseconds.
fn time_best<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn pseudo_matrix(rows: usize, cols: usize, salt: u64) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let h = (i as u64 ^ salt)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(17);
            ((h % 1000) as f32) / 500.0 - 1.0
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.data.iter().map(|v| v.to_bits()).collect()
}

fn matmul_rows() -> Vec<serde_json::Value> {
    [128usize, 256, 512]
        .iter()
        .map(|&dim| {
            let a = pseudo_matrix(dim, dim, 1);
            let b = pseudo_matrix(dim, dim, 2);
            let reference_ms = time_best(|| reference::matmul(&a, &b));
            let serial_ms = time_best(|| rsd_par::run_serial(|| a.matmul(&b)));
            let pool4_ms = time_best(|| rsd_par::with_local_pool(4, || a.matmul(&b)));
            let ser = rsd_par::run_serial(|| a.matmul(&b));
            let par = rsd_par::with_local_pool(4, || a.matmul(&b));
            let rf = reference::matmul(&a, &b);
            let row = serde_json::json!({
                "dim": dim,
                "reference_ms": reference_ms,
                "serial_ms": serial_ms,
                "pool4_ms": pool4_ms,
                "speedup_serial_vs_reference": reference_ms / serial_ms,
                "speedup_pool4_vs_reference": reference_ms / pool4_ms,
                "bitwise_serial_eq_pool4": bits(&ser) == bits(&par),
                "close_to_reference": ser
                    .data
                    .iter()
                    .zip(&rf.data)
                    .all(|(x, y)| (x - y).abs() <= 1e-3 * (1.0 + y.abs()))
            });
            println!(
                "matmul {dim:>4}: reference {reference_ms:8.2} ms | serial {serial_ms:8.2} ms \
                 ({:.2}x) | pool4 {pool4_ms:8.2} ms ({:.2}x)",
                reference_ms / serial_ms,
                reference_ms / pool4_ms
            );
            row
        })
        .collect()
}

fn gbdt_data(n_rows: usize, n_features: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
    (0..n_rows)
        .map(|i| {
            let row: Vec<f32> = (0..n_features)
                .map(|f| {
                    let h = ((i * n_features + f) as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .rotate_left(13);
                    ((h % 1000) as f32) / 500.0 - 1.0
                })
                .collect();
            let label = ((row[0] > 0.0) as usize) * 2 + ((row[1] > 0.0) as usize);
            (row, label)
        })
        .unzip()
}

/// The seed's tree grower, verbatim in structure: row-major nested bins,
/// per-feature histogram built by `bins[i][f]` pointer-chasing, serial
/// split scan, partition, recurse. Returns the node count so the
/// optimizer can't discard the work.
#[allow(clippy::too_many_arguments)]
fn reference_grow(
    bins: &[Vec<u16>],
    n_bins: &[usize],
    grad: &[f32],
    hess: &[f32],
    rows: &[usize],
    features: &[usize],
    cfg: &TreeConfig,
    depth: usize,
) -> usize {
    let g_total: f32 = rows.iter().map(|&i| grad[i]).sum();
    let h_total: f32 = rows.iter().map(|&i| hess[i]).sum();
    if depth >= cfg.max_depth || rows.len() < 2 {
        return 1;
    }
    let parent_score = g_total * g_total / (h_total + cfg.lambda);
    let mut best: Option<(f32, usize, u16)> = None;
    for &f in features {
        let nb = n_bins[f];
        if nb < 2 {
            continue;
        }
        let mut hist_g = vec![0.0f32; nb];
        let mut hist_h = vec![0.0f32; nb];
        for &i in rows {
            let b = bins[i][f] as usize;
            hist_g[b] += grad[i];
            hist_h[b] += hess[i];
        }
        let mut gl = 0.0f32;
        let mut hl = 0.0f32;
        for b in 0..nb - 1 {
            gl += hist_g[b];
            hl += hist_h[b];
            let gr = g_total - gl;
            let hr = h_total - hl;
            if hl < cfg.min_child_weight || hr < cfg.min_child_weight {
                continue;
            }
            let gain = 0.5
                * (gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda) - parent_score)
                - cfg.gamma;
            if gain > 0.0 && best.is_none_or(|(bg, _, _)| gain > bg) {
                best = Some((gain, f, b as u16));
            }
        }
    }
    let Some((_, feature, bin)) = best else {
        return 1;
    };
    let (left, right): (Vec<usize>, Vec<usize>) =
        rows.iter().partition(|&&i| bins[i][feature] <= bin);
    1 + reference_grow(bins, n_bins, grad, hess, &left, features, cfg, depth + 1)
        + reference_grow(bins, n_bins, grad, hess, &right, features, cfg, depth + 1)
}

fn gbdt_section() -> serde_json::Value {
    // Table-3 order of magnitude for the XGBoost arm: thousands of users,
    // tens of engineered features, four risk levels.
    let (n_rows, n_features) = (15_000usize, 48usize);
    let (rows, labels) = gbdt_data(n_rows, n_features);
    let data = BinnedMatrix::fit(rows, 64).unwrap();

    // Row-major copy exactly as the seed stored it.
    let row_major: Vec<Vec<u16>> = (0..n_rows)
        .map(|i| (0..n_features).map(|f| data.bin(i, f)).collect())
        .collect();
    let n_bins: Vec<usize> = (0..n_features).map(|f| data.cuts.n_bins(f)).collect();

    let grad: Vec<f32> = labels
        .iter()
        .map(|&l| if l == 0 { -0.75 } else { 0.25 })
        .collect();
    let hess = vec![0.1875f32; n_rows];
    let idx: Vec<usize> = (0..n_rows).collect();
    let feats: Vec<usize> = (0..n_features).collect();
    let cfg = TreeConfig {
        max_depth: 6,
        ..Default::default()
    };

    let reference_ms =
        time_best(|| reference_grow(&row_major, &n_bins, &grad, &hess, &idx, &feats, &cfg, 0));
    let serial_ms = time_best(|| {
        rsd_par::run_serial(|| Tree::fit(&data, &grad, &hess, &idx, &feats, &cfg, 0.3))
    });
    let pool4_ms = time_best(|| {
        rsd_par::with_local_pool(4, || {
            Tree::fit(&data, &grad, &hess, &idx, &feats, &cfg, 0.3)
        })
    });
    println!(
        "gbdt tree fit ({n_rows}x{n_features}): reference {reference_ms:8.2} ms | serial \
         {serial_ms:8.2} ms ({:.2}x) | pool4 {pool4_ms:8.2} ms ({:.2}x)",
        reference_ms / serial_ms,
        reference_ms / pool4_ms
    );

    let boost_cfg = BoosterConfig {
        n_classes: 4,
        n_rounds: 8,
        early_stopping: 0,
        ..Default::default()
    };
    let fit = || {
        let b = Booster::fit(&data, &labels, None, boost_cfg.clone()).unwrap();
        b.predict(&data)
    };
    let booster_serial_ms = time_best(|| rsd_par::run_serial(fit));
    let booster_pool4_ms = time_best(|| rsd_par::with_local_pool(4, fit));
    let p_serial = rsd_par::run_serial(fit);
    let p_one = rsd_par::with_local_pool(1, fit);
    let p_four = rsd_par::with_local_pool(4, fit);
    let deterministic = p_serial == p_one && p_serial == p_four;
    println!(
        "gbdt booster fit (8 rounds x 4 classes): serial {booster_serial_ms:8.2} ms | pool4 \
         {booster_pool4_ms:8.2} ms | deterministic across thread counts: {deterministic}"
    );

    serde_json::json!({
        "n_rows": n_rows,
        "n_features": n_features,
        "n_classes": 4,
        "tree_fit": serde_json::json!({
            "reference_ms": reference_ms,
            "serial_ms": serial_ms,
            "pool4_ms": pool4_ms,
            "speedup_serial_vs_reference": reference_ms / serial_ms,
            "speedup_pool4_vs_reference": reference_ms / pool4_ms
        }),
        "booster_fit": serde_json::json!({
            "n_rounds": 8,
            "serial_ms": booster_serial_ms,
            "pool4_ms": booster_pool4_ms
        }),
        "deterministic_across_thread_counts": deterministic
    })
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("bench_kernels: {cores} core(s), best of {REPS} reps per timing");

    let matmul = matmul_rows();
    let gbdt = gbdt_section();

    let report = serde_json::json!({
        "generated_by": "bench_kernels",
        "meta": rsd_obs::run_meta(),
        "reps": REPS,
        "matmul": matmul,
        "gbdt": gbdt,
        "note": "reference_* times the seed's kernels (kept in-tree as rsd_nn::matrix::reference \
                 and re-created for the GBDT grower); on a single-core host pool4 adds scheduling \
                 overhead only, and the speedup column is pure kernel work reduction that a \
                 multi-core host multiplies across RSD_THREADS workers."
    });
    let path = std::env::var("BENCH_KERNELS_OUT").unwrap_or_else(|_| "BENCH_kernels.json".into());
    std::fs::write(&path, serde_json::to_string_pretty(&report).unwrap() + "\n").unwrap();
    println!("wrote {path}");
}
