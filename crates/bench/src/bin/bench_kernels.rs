//! Kernel speedup artifact: times the blocked `rsd-par` kernels against
//! the pre-optimization reference implementations and writes
//! `BENCH_kernels.json` at the workspace root.
//!
//! Four workload families:
//!
//! * dense matmul at 128/256/512 dims — in-tree [`reference::matmul`]
//!   (the seed's zero-branch scalar kernel) vs the new blocked kernel,
//!   serially and on a 4-thread local pool;
//! * a table3-scale GBDT tree fit — a verbatim re-creation of the seed's
//!   row-major (`Vec<Vec<u16>>`) histogram split search vs the new
//!   column-major gathered [`Tree::fit`];
//! * a full [`Booster::fit`] plus a byte-identity check of its
//!   predictions across serial / 1-thread / 4-thread execution;
//! * PLM inference at paper scale — the training tape, the tape-free f32
//!   engine, and the per-channel int8 fast path, batched and single-post,
//!   with the quantization quality gates (`RSD_QUANT_EPS`,
//!   `RSD_QUANT_MIN_AGREE`, `RSD_QUANT_MIN_SPEEDUP`) asserted in-process.
//!
//! On a single-core host the pool cannot add wall-clock speedup; the
//! honest headline number is the kernel-level speedup vs the reference
//! implementations, which threading multiplies on multi-core hosts.

use std::time::Instant;

use rsd_gbdt::tree::TreeConfig;
use rsd_gbdt::{BinnedMatrix, Booster, BoosterConfig, Tree};
use rsd_models::plm_infer::argmax_logits;
use rsd_models::{
    EncodedWindow, FittedPlm, PlmConfig, PlmInferenceModel, PlmKind, PlmScratch, TIME_FEATURE_DIM,
};
use rsd_nn::matrix::{reference, Matrix};

const REPS: usize = 9;

/// Best-of-`REPS` wall-clock in milliseconds.
fn time_best<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn pseudo_matrix(rows: usize, cols: usize, salt: u64) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let h = (i as u64 ^ salt)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(17);
            ((h % 1000) as f32) / 500.0 - 1.0
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.data.iter().map(|v| v.to_bits()).collect()
}

fn matmul_rows() -> Vec<serde_json::Value> {
    [128usize, 256, 512]
        .iter()
        .map(|&dim| {
            let a = pseudo_matrix(dim, dim, 1);
            let b = pseudo_matrix(dim, dim, 2);
            let reference_ms = time_best(|| reference::matmul(&a, &b));
            let serial_ms = time_best(|| rsd_par::run_serial(|| a.matmul(&b)));
            let pool4_ms = time_best(|| rsd_par::with_local_pool(4, || a.matmul(&b)));
            let ser = rsd_par::run_serial(|| a.matmul(&b));
            let par = rsd_par::with_local_pool(4, || a.matmul(&b));
            let rf = reference::matmul(&a, &b);
            let row = serde_json::json!({
                "dim": dim,
                "reference_ms": reference_ms,
                "serial_ms": serial_ms,
                "pool4_ms": pool4_ms,
                "speedup_serial_vs_reference": reference_ms / serial_ms,
                "speedup_pool4_vs_reference": reference_ms / pool4_ms,
                "bitwise_serial_eq_pool4": bits(&ser) == bits(&par),
                "close_to_reference": ser
                    .data
                    .iter()
                    .zip(&rf.data)
                    .all(|(x, y)| (x - y).abs() <= 1e-3 * (1.0 + y.abs()))
            });
            println!(
                "matmul {dim:>4}: reference {reference_ms:8.2} ms | serial {serial_ms:8.2} ms \
                 ({:.2}x) | pool4 {pool4_ms:8.2} ms ({:.2}x)",
                reference_ms / serial_ms,
                reference_ms / pool4_ms
            );
            row
        })
        .collect()
}

fn gbdt_data(n_rows: usize, n_features: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
    (0..n_rows)
        .map(|i| {
            let row: Vec<f32> = (0..n_features)
                .map(|f| {
                    let h = ((i * n_features + f) as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .rotate_left(13);
                    ((h % 1000) as f32) / 500.0 - 1.0
                })
                .collect();
            let label = ((row[0] > 0.0) as usize) * 2 + ((row[1] > 0.0) as usize);
            (row, label)
        })
        .unzip()
}

/// The seed's tree grower, verbatim in structure: row-major nested bins,
/// per-feature histogram built by `bins[i][f]` pointer-chasing, serial
/// split scan, partition, recurse. Returns the node count so the
/// optimizer can't discard the work.
#[allow(clippy::too_many_arguments)]
fn reference_grow(
    bins: &[Vec<u16>],
    n_bins: &[usize],
    grad: &[f32],
    hess: &[f32],
    rows: &[usize],
    features: &[usize],
    cfg: &TreeConfig,
    depth: usize,
) -> usize {
    let g_total: f32 = rows.iter().map(|&i| grad[i]).sum();
    let h_total: f32 = rows.iter().map(|&i| hess[i]).sum();
    if depth >= cfg.max_depth || rows.len() < 2 {
        return 1;
    }
    let parent_score = g_total * g_total / (h_total + cfg.lambda);
    let mut best: Option<(f32, usize, u16)> = None;
    for &f in features {
        let nb = n_bins[f];
        if nb < 2 {
            continue;
        }
        let mut hist_g = vec![0.0f32; nb];
        let mut hist_h = vec![0.0f32; nb];
        for &i in rows {
            let b = bins[i][f] as usize;
            hist_g[b] += grad[i];
            hist_h[b] += hess[i];
        }
        let mut gl = 0.0f32;
        let mut hl = 0.0f32;
        for b in 0..nb - 1 {
            gl += hist_g[b];
            hl += hist_h[b];
            let gr = g_total - gl;
            let hr = h_total - hl;
            if hl < cfg.min_child_weight || hr < cfg.min_child_weight {
                continue;
            }
            let gain = 0.5
                * (gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda) - parent_score)
                - cfg.gamma;
            if gain > 0.0 && best.is_none_or(|(bg, _, _)| gain > bg) {
                best = Some((gain, f, b as u16));
            }
        }
    }
    let Some((_, feature, bin)) = best else {
        return 1;
    };
    let (left, right): (Vec<usize>, Vec<usize>) =
        rows.iter().partition(|&&i| bins[i][feature] <= bin);
    1 + reference_grow(bins, n_bins, grad, hess, &left, features, cfg, depth + 1)
        + reference_grow(bins, n_bins, grad, hess, &right, features, cfg, depth + 1)
}

fn gbdt_section() -> serde_json::Value {
    // Table-3 order of magnitude for the XGBoost arm: thousands of users,
    // tens of engineered features, four risk levels.
    let (n_rows, n_features) = (15_000usize, 48usize);
    let (rows, labels) = gbdt_data(n_rows, n_features);
    let data = BinnedMatrix::fit(rows, 64).unwrap();

    // Row-major copy exactly as the seed stored it.
    let row_major: Vec<Vec<u16>> = (0..n_rows)
        .map(|i| (0..n_features).map(|f| data.bin(i, f)).collect())
        .collect();
    let n_bins: Vec<usize> = (0..n_features).map(|f| data.cuts.n_bins(f)).collect();

    let grad: Vec<f32> = labels
        .iter()
        .map(|&l| if l == 0 { -0.75 } else { 0.25 })
        .collect();
    let hess = vec![0.1875f32; n_rows];
    let idx: Vec<usize> = (0..n_rows).collect();
    let feats: Vec<usize> = (0..n_features).collect();
    let cfg = TreeConfig {
        max_depth: 6,
        ..Default::default()
    };

    let reference_ms =
        time_best(|| reference_grow(&row_major, &n_bins, &grad, &hess, &idx, &feats, &cfg, 0));
    let serial_ms = time_best(|| {
        rsd_par::run_serial(|| Tree::fit(&data, &grad, &hess, &idx, &feats, &cfg, 0.3))
    });
    let pool4_ms = time_best(|| {
        rsd_par::with_local_pool(4, || {
            Tree::fit(&data, &grad, &hess, &idx, &feats, &cfg, 0.3)
        })
    });
    println!(
        "gbdt tree fit ({n_rows}x{n_features}): reference {reference_ms:8.2} ms | serial \
         {serial_ms:8.2} ms ({:.2}x) | pool4 {pool4_ms:8.2} ms ({:.2}x)",
        reference_ms / serial_ms,
        reference_ms / pool4_ms
    );

    let boost_cfg = BoosterConfig {
        n_classes: 4,
        n_rounds: 8,
        early_stopping: 0,
        ..Default::default()
    };
    let fit = || {
        let b = Booster::fit(&data, &labels, None, boost_cfg.clone()).unwrap();
        b.predict(&data)
    };
    let booster_serial_ms = time_best(|| rsd_par::run_serial(fit));
    let booster_pool4_ms = time_best(|| rsd_par::with_local_pool(4, fit));
    let p_serial = rsd_par::run_serial(fit);
    let p_one = rsd_par::with_local_pool(1, fit);
    let p_four = rsd_par::with_local_pool(4, fit);
    let deterministic = p_serial == p_one && p_serial == p_four;
    println!(
        "gbdt booster fit (8 rounds x 4 classes): serial {booster_serial_ms:8.2} ms | pool4 \
         {booster_pool4_ms:8.2} ms | deterministic across thread counts: {deterministic}"
    );

    serde_json::json!({
        "n_rows": n_rows,
        "n_features": n_features,
        "n_classes": 4,
        "tree_fit": serde_json::json!({
            "reference_ms": reference_ms,
            "serial_ms": serial_ms,
            "pool4_ms": pool4_ms,
            "speedup_serial_vs_reference": reference_ms / serial_ms,
            "speedup_pool4_vs_reference": reference_ms / pool4_ms
        }),
        "booster_fit": serde_json::json!({
            "n_rounds": 8,
            "serial_ms": booster_serial_ms,
            "pool4_ms": booster_pool4_ms
        }),
        "deterministic_across_thread_counts": deterministic
    })
}

/// Deterministic pseudo-random encoded window (no RNG dependency so the
/// artifact is reproducible byte-for-byte across hosts).
fn pseudo_window(vocab: usize, posts: usize, tokens: usize, salt: u64) -> EncodedWindow {
    let hash = |i: u64| {
        (i ^ salt)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(21)
    };
    EncodedWindow {
        post_tokens: (0..posts)
            .map(|p| {
                (0..tokens)
                    .map(|t| (hash((p * tokens + t) as u64) % vocab as u64) as u32)
                    .collect()
            })
            .collect(),
        time_feats: (0..posts)
            .map(|p| {
                std::array::from_fn(|d| {
                    let h = hash((100_000 + p * TIME_FEATURE_DIM + d) as u64);
                    ((h % 1000) as f32) / 500.0 - 1.0
                })
            })
            .collect(),
        label: 0,
    }
}

fn inference_section() -> serde_json::Value {
    // Quality/latency gates for the quantized path, operator-tunable:
    // max per-logit |int8 - f32| error, min argmax agreement (percent),
    // min serial batch speedup. All hard-error naming the knob.
    let eps = rsd_obs::knob::positive_float_env("RSD_QUANT_EPS", 0.1);
    let min_agree = rsd_obs::knob::positive_float_env("RSD_QUANT_MIN_AGREE", 99.0);
    let min_speedup = rsd_obs::knob::positive_float_env("RSD_QUANT_MIN_SPEEDUP", 2.0);

    // A paper-scale DeBERTa-like PLM with seed-deterministic synthetic
    // weights: the int8-vs-f32 contrast depends on shapes, not on what
    // the weights converged to, and synthetic export keeps the artifact
    // reproducible without a training run.
    let cfg = PlmConfig::base(PlmKind::Deberta);
    let (dim, layers) = (cfg.dim, cfg.layers);
    let fitted = FittedPlm::synthetic(cfg.clone(), 7);
    let engine = PlmInferenceModel::export(&fitted);
    let vocab = fitted.encoder.vocab.len();

    let batch: Vec<EncodedWindow> = (0..64)
        .map(|i| pseudo_window(vocab, 5, cfg.max_tokens, 1_000 + i))
        .collect();
    let single = pseudo_window(vocab, 1, cfg.max_tokens, 77);

    // Serial batch timings: tape (the status-quo training-graph forward),
    // the tape-free f32 engine, and the int8 fast path.
    let tape_batch_ms = time_best(|| {
        rsd_par::run_serial(|| batch.iter().map(|w| fitted.logits_tape(w)[0]).sum::<f32>())
    });
    let f32_batch_ms = time_best(|| {
        rsd_par::run_serial(|| batch.iter().map(|w| engine.logits_f32(w)[0]).sum::<f32>())
    });
    let mut scratch = PlmScratch::default();
    let int8_batch_ms = time_best(|| {
        rsd_par::run_serial(|| {
            batch
                .iter()
                .map(|w| engine.logits_i8(w, &mut scratch)[0])
                .sum::<f32>()
        })
    });
    // Micro-batched scoring on a 4-thread pool, the serving shape.
    let f32_pool4_ms =
        time_best(|| rsd_par::with_local_pool(4, || engine.score_windows(&batch, false)));
    let int8_pool4_ms =
        time_best(|| rsd_par::with_local_pool(4, || engine.score_windows(&batch, true)));

    // Single-post latency (the streaming request shape), averaged over a
    // fixed iteration count so sub-millisecond work still times stably.
    const SINGLE_ITERS: usize = 100;
    let single_f32_ms = time_best(|| {
        (0..SINGLE_ITERS)
            .map(|_| engine.logits_f32(&single)[0])
            .sum::<f32>()
    }) / SINGLE_ITERS as f64;
    let single_int8_ms = time_best(|| {
        (0..SINGLE_ITERS)
            .map(|_| engine.logits_i8(&single, &mut scratch)[0])
            .sum::<f32>()
    }) / SINGLE_ITERS as f64;

    // Quality gate over a larger window pool than the timed batch, so one
    // disagreement costs 0.25 points, not 1.6.
    let quality: Vec<EncodedWindow> = (0..400)
        .map(|i| pseudo_window(vocab, 1 + (i as usize % 5), cfg.max_tokens, 50_000 + i))
        .collect();
    let mut agree = 0usize;
    let mut within_eps = 0usize;
    let mut max_abs_diff = 0.0f32;
    for w in &quality {
        let f = engine.logits_f32(w);
        let q = engine.logits_i8(w, &mut scratch);
        let worst = f
            .iter()
            .zip(&q)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        max_abs_diff = max_abs_diff.max(worst);
        if worst <= eps as f32 {
            within_eps += 1;
        }
        if argmax_logits(&f) == argmax_logits(&q) {
            agree += 1;
        }
    }
    let agreement_percent = agree as f64 * 100.0 / quality.len() as f64;
    let within_eps_percent = within_eps as f64 * 100.0 / quality.len() as f64;

    // Bitwise determinism of the int8 path across pool shapes: integer
    // accumulation makes this exact, so it is asserted, not reported.
    let serial_preds = rsd_par::run_serial(|| engine.score_windows(&batch, true));
    let pool_preds = rsd_par::with_local_pool(4, || engine.score_windows(&batch, true));
    assert_eq!(
        serial_preds, pool_preds,
        "int8 scoring must not depend on the pool"
    );

    let int8_speedup_vs_f32 = f32_batch_ms / int8_batch_ms;
    let int8_speedup_vs_tape = tape_batch_ms / int8_batch_ms;
    let n = batch.len() as f64;
    println!(
        "plm inference (dim {dim}, {layers} layers, {} windows): tape {tape_batch_ms:8.2} ms | \
         f32 {f32_batch_ms:8.2} ms | int8 {int8_batch_ms:8.2} ms ({int8_speedup_vs_f32:.2}x f32, \
         {int8_speedup_vs_tape:.2}x tape)",
        batch.len()
    );
    println!(
        "plm quality ({} windows): argmax agreement {agreement_percent:.2}% | within eps {eps}: \
         {within_eps_percent:.2}% | max |logit diff| {max_abs_diff:.4}",
        quality.len()
    );
    assert!(
        within_eps_percent == 100.0,
        "int8 logits drifted: only {within_eps_percent:.2}% of {} windows within \
         RSD_QUANT_EPS={eps} (max |diff| {max_abs_diff:.4})",
        quality.len()
    );
    assert!(
        agreement_percent >= min_agree,
        "int8 argmax agreement {agreement_percent:.2}% below RSD_QUANT_MIN_AGREE={min_agree}"
    );
    assert!(
        int8_speedup_vs_f32 >= min_speedup,
        "int8 batch speedup {int8_speedup_vs_f32:.2}x below RSD_QUANT_MIN_SPEEDUP={min_speedup}"
    );

    serde_json::json!({
        "model": "deberta-base-synthetic",
        "dim": dim,
        "layers": layers,
        "windows": batch.len(),
        "quality_windows": quality.len(),
        "quant_eps": eps,
        "tape_f32_batch_ms": tape_batch_ms,
        "infer_f32_batch_ms": f32_batch_ms,
        "infer_int8_batch_ms": int8_batch_ms,
        "pool4_f32_batch_ms": f32_pool4_ms,
        "pool4_int8_batch_ms": int8_pool4_ms,
        "single_f32_ms": single_f32_ms,
        "single_int8_ms": single_int8_ms,
        "tape_windows_per_s": n / (tape_batch_ms / 1e3),
        "f32_windows_per_s": n / (f32_batch_ms / 1e3),
        "int8_windows_per_s": n / (int8_batch_ms / 1e3),
        "pool4_int8_windows_per_s": n / (int8_pool4_ms / 1e3),
        "int8_speedup_vs_f32": int8_speedup_vs_f32,
        "int8_speedup_vs_tape": int8_speedup_vs_tape,
        "single_int8_speedup_vs_f32": single_f32_ms / single_int8_ms,
        "argmax_agreement_percent": agreement_percent,
        "logit_within_eps_percent": within_eps_percent,
        "max_abs_logit_diff": max_abs_diff as f64
    })
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("bench_kernels: {cores} core(s), best of {REPS} reps per timing");

    let matmul = matmul_rows();
    let gbdt = gbdt_section();
    let inference = inference_section();

    let report = serde_json::json!({
        "generated_by": "bench_kernels",
        "meta": rsd_obs::run_meta(),
        "reps": REPS,
        "matmul": matmul,
        "gbdt": gbdt,
        "inference": inference,
        "note": "reference_* times the seed's kernels (kept in-tree as rsd_nn::matrix::reference \
                 and re-created for the GBDT grower); on a single-core host pool4 adds scheduling \
                 overhead only, and the speedup column is pure kernel work reduction that a \
                 multi-core host multiplies across RSD_THREADS workers."
    });
    let path = std::env::var("BENCH_KERNELS_OUT").unwrap_or_else(|_| "BENCH_kernels.json".into());
    std::fs::write(&path, serde_json::to_string_pretty(&report).unwrap() + "\n").unwrap();
    println!("wrote {path}");
}
