//! Table II: dataset comparison. Prior rows are quoted from the paper;
//! the "Ours" row is computed from the actually-built dataset.

use rsd_bench::Prepared;
use rsd_dataset::compare::{comparison_table, render_row};

fn main() {
    let prepared = Prepared::from_env();
    println!(
        "Table II — Dataset Comparison (Ours computed at {:?} scale)",
        prepared.scale
    );
    let header = format!(
        "{:<48} {:<17} {:>8} {:>7}  {:<10} {:^4} {:^6} {:^5}",
        "Dataset", "Source", "Posts", "Users", "RiskLevel", "Fine", "Manual", "Avail"
    );
    println!("{header}");
    println!("{}", "-".repeat(header.len()));
    for row in comparison_table(&prepared.dataset) {
        println!("{}", render_row(&row));
    }
}
