//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. MLM pretraining on vs off (the "PLM advantage" substitution).
//! 2. Temporal-feature fusion on vs off.
//! 3. Uncertainty-reporting policy on vs off in the annotation campaign.
//!
//! (Disentangled-vs-absolute attention and hierarchical-vs-flat recurrence
//! are covered by Table III itself: DeBERTa vs RoBERTa, HiGRU vs BiLSTM.)

use rsd_annotation::{Campaign, CampaignConfig};
use rsd_bench::{table3_configs, Prepared};
use rsd_corpus::{CorpusConfig, CorpusGenerator};
use rsd_models::PlmBaseline;

fn main() {
    let prepared = Prepared::from_env();
    let data = prepared.bench_data();
    let cfgs = table3_configs(prepared.scale);

    println!(
        "Ablations (scale {:?}, seed {})\n",
        prepared.scale, prepared.seed
    );

    // 1. MLM pretraining.
    println!("== DeBERTa: MLM pretraining on unlabeled pool ==");
    let with = PlmBaseline::new(cfgs.deberta.clone())
        .run(&data)
        .expect("with mlm");
    let mut no_mlm = cfgs.deberta.clone();
    no_mlm.pretrain_texts = 0;
    let without = PlmBaseline::new(no_mlm).run(&data).expect("no mlm");
    println!(
        "  with MLM    : acc {:>5.1}%  macro-F1 {:>5.1}%",
        with.report.accuracy * 100.0,
        with.report.macro_f1 * 100.0
    );
    println!(
        "  from scratch: acc {:>5.1}%  macro-F1 {:>5.1}%",
        without.report.accuracy * 100.0,
        without.report.macro_f1 * 100.0
    );

    // 2. Temporal fusion.
    println!("\n== DeBERTa: temporal-feature fusion ==");
    let mut no_time = cfgs.deberta.clone();
    no_time.temporal_fusion = false;
    let without_time = PlmBaseline::new(no_time).run(&data).expect("no time");
    println!(
        "  with fusion   : acc {:>5.1}%  macro-F1 {:>5.1}%",
        with.report.accuracy * 100.0,
        with.report.macro_f1 * 100.0
    );
    println!(
        "  without fusion: acc {:>5.1}%  macro-F1 {:>5.1}%",
        without_time.report.accuracy * 100.0,
        without_time.report.macro_f1 * 100.0
    );

    // 3. Uncertainty-reporting policy (annotation quality).
    println!("\n== Annotation campaign: uncertainty-reporting policy ==");
    let corpus = CorpusGenerator::new(CorpusConfig::small(prepared.seed, 2_500))
        .expect("corpus")
        .generate();
    let items: Vec<_> = corpus
        .posts
        .iter()
        .filter(|p| !p.off_topic && p.duplicate_of.is_none())
        .map(|p| (p.id, p.latent_risk))
        .collect();
    for policy in [true, false] {
        let mut cfg = CampaignConfig::paper(prepared.seed);
        cfg.uncertainty_policy = policy;
        let mut campaign = Campaign::new(cfg).expect("campaign");
        let (_, report) = campaign.run(&items).expect("run");
        println!(
            "  policy {:<3}: kappa {:.4}, label accuracy {:.2}%, flag rate {:.2}%",
            if policy { "on" } else { "off" },
            report.fleiss_kappa,
            report.label_accuracy * 100.0,
            report.flag_rate * 100.0
        );
    }
}
