//! `loadgen` — replay the synthetic corpus through the `rsd-serve`
//! online scorer at a fixed target QPS and publish latency/throughput.
//!
//! The whole dataset is streamed in global `(created, id)` order via a
//! replayable [`VecSource`] (`RSD_LOADGEN_ROUNDS` rewinds and replays
//! it), paced against absolute deadlines (`t0 + i/QPS`) so a slow
//! stretch is caught up instead of silently stretching the run. Knobs:
//!
//! * `RSD_QPS` — target submissions per second (default 200).
//! * `RSD_LOADGEN_ROUNDS` — times the corpus is replayed (default 1).
//! * `RSD_SERVE_SHARDS` / `RSD_SERVE_LRU` / `RSD_SERVE_BATCH` /
//!   `RSD_SERVE_CHANNEL_CAP` — service sizing ([`rsd_serve::ServeConfig`]).
//!
//! All invalid knob values hard-error naming the knob. With
//! `RSD_OBS_TICK_MS` set, per-request latency lands in the
//! `serve.request` HDR histogram and the time-series file; the run
//! report carries the deterministic serving outcome (request and
//! per-level counts, evictions) plus the achieved `scored_per_s`, so
//! `obs_diff` gates both correctness drift and lost throughput. The
//! report deliberately omits timing-dependent counts (micro-batch
//! sizes, blocked submits) — those go to stderr.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rsd_bench::{table3_configs, BinHarness, Prepared};
use rsd_corpus::RiskLevel;
use rsd_models::ScoringModel;
use rsd_obs::Value;
use rsd_pipeline::{StreamSource, VecSource};
use rsd_serve::{IncomingPost, RiskService, ServeConfig};

/// The corpus in global chronological submission order.
fn replay_stream(dataset: &rsd_dataset::Rsd15k) -> Vec<IncomingPost> {
    let mut order: Vec<usize> = (0..dataset.posts.len()).collect();
    order.sort_by_key(|&i| (dataset.posts[i].created, dataset.posts[i].id));
    order
        .into_iter()
        .map(|i| {
            let p = &dataset.posts[i];
            IncomingPost {
                user: p.user.0,
                post: p.id.0,
                created: p.created,
                text: p.text.clone(),
            }
        })
        .collect()
}

fn main() {
    let mut h = BinHarness::start("loadgen");
    let qps = rsd_obs::knob::positive_or_default("RSD_QPS", std::env::var("RSD_QPS").ok(), 200);
    let rounds = rsd_obs::knob::positive_or_default(
        "RSD_LOADGEN_ROUNDS",
        std::env::var("RSD_LOADGEN_ROUNDS").ok(),
        1,
    );
    let serve_cfg = ServeConfig::from_env().expect("serve config");

    let prepared = Prepared::from_env();
    let model = {
        let _s = rsd_obs::Span::enter("loadgen.fit");
        let cfg = table3_configs(prepared.scale).xgboost;
        Arc::new(ScoringModel::fit(&cfg, &prepared.bench_data()).expect("fit scoring model"))
    };
    // The serving phase owns the latency story: drop the fit-phase
    // histograms (training rounds, feature batches) so the report and
    // series quantiles describe requests only.
    rsd_obs::hist::reset();

    let posts = replay_stream(&prepared.dataset);
    let per_round = posts.len() as u64;
    let total = per_round * rounds;
    eprintln!(
        "loadgen: {} posts x {} round(s) at {} QPS (shards {}, lru {}, batch {})",
        per_round, rounds, qps, serve_cfg.shards, serve_cfg.lru_capacity, serve_cfg.batch_max
    );

    let service = RiskService::start(Arc::clone(&model), serve_cfg);
    let results = service.results();
    let consumer = thread::spawn(move || {
        let mut levels = [0u64; RiskLevel::COUNT];
        while let Some(scored) = results.recv() {
            levels[scored.level.index()] += 1;
        }
        levels
    });

    let mut source = VecSource::new("loadgen.replay", posts);
    let t0 = Instant::now();
    let mut sent = 0u64;
    for round in 0..rounds {
        if round > 0 {
            source.rewind();
        }
        while let Some(post) = source.next().expect("replay source") {
            let deadline = t0 + Duration::from_secs_f64(sent as f64 / qps as f64);
            let wait = deadline.saturating_duration_since(Instant::now());
            if !wait.is_zero() {
                thread::sleep(wait);
            }
            service.submit(post).expect("service draining early");
            sent += 1;
        }
    }
    let report = service.drain();
    let elapsed = t0.elapsed();
    let levels = consumer.join().expect("result consumer panicked");
    assert_eq!(report.scored, total, "every submitted post must score");
    assert_eq!(levels.iter().sum::<u64>(), total, "every score must emit");

    let achieved = report.scored as f64 / elapsed.as_secs_f64();
    println!(
        "loadgen: scored {} posts in {:.2}s — {:.1}/s achieved vs {} QPS target",
        report.scored,
        elapsed.as_secs_f64(),
        achieved,
        qps
    );
    let hists = rsd_obs::hist::merged();
    if let Some(hist) = hists.get("serve.request") {
        let ms = |q: f64| hist.quantile(q).unwrap_or(0) as f64 / 1e6;
        println!(
            "loadgen: request latency p50 {:.3}ms p90 {:.3}ms p99 {:.3}ms",
            ms(0.50),
            ms(0.90),
            ms(0.99)
        );
    }
    for (level, count) in RiskLevel::ALL.iter().zip(levels) {
        println!("  {:<10} {:>8}", level.name(), count);
    }
    eprintln!(
        "loadgen: {} micro-batches (max {}), {} blocked submits, \
         {} evicted / peak {} resident users",
        report.batches,
        report.max_batch,
        report.blocked_submits,
        report.evicted_users,
        report.peak_resident_users
    );

    let mut level_map = rsd_obs::Map::new();
    for (level, count) in RiskLevel::ALL.iter().zip(levels) {
        level_map.insert(level.name(), Value::Int(count as i128));
    }
    h.run
        .set("qps", Value::Int(qps as i128))
        .set("rounds", Value::Int(rounds as i128))
        .set("posts", Value::Int(total as i128))
        .set("users", Value::Int(prepared.dataset.n_users() as i128))
        .set("levels", Value::Object(level_map))
        .set("evicted_users", Value::Int(report.evicted_users as i128))
        .set(
            "peak_resident_users",
            Value::Int(report.peak_resident_users as i128),
        )
        .set("scored_per_s", Value::Float(achieved));

    // Let the series driver observe a quiescent window before the final
    // snapshot: windowed stage rates must read exactly 0.0 there, or the
    // committed-baseline series diff would compare mid-flight rates.
    if let Some(tick_ms) = rsd_obs::knob::optional_positive_env("RSD_OBS_TICK_MS") {
        thread::sleep(Duration::from_millis(2 * tick_ms + 50));
    }
    h.finish();
}
