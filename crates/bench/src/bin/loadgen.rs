//! `loadgen` — replay the synthetic corpus through the `rsd-serve`
//! online scorer at a fixed target QPS and publish latency/throughput.
//!
//! The whole dataset is streamed in global `(created, id)` order via a
//! replayable [`VecSource`] (`RSD_LOADGEN_ROUNDS` rewinds and replays
//! it), paced against absolute deadlines (`t0 + i/QPS`) so a slow
//! stretch is caught up instead of silently stretching the run. Knobs:
//!
//! * `RSD_QPS` — target submissions per second (default 200).
//! * `RSD_LOADGEN_ROUNDS` — times the corpus is replayed (default 1).
//! * `RSD_SERVE_MODEL` — scoring backend (`gbdt | plm-f32 | plm-int8`,
//!   default `gbdt`): the GBDT path fits the table-3 XGBoost artifact;
//!   the PLM paths train the table-3 DeBERTa baseline once and freeze it
//!   through the tape-free inference engine, f32 or int8.
//! * `RSD_LOADGEN_SOAK_MS` — sustained-soak mode: instead of a fixed
//!   round count, replay the corpus (rewinding as needed) at the target
//!   QPS for this long, then assert the p99 latency SLO directly.
//!   Requires `RSD_OBS_TICK_MS` (the SLO reads the `serve.request`
//!   histogram).
//! * `RSD_LOADGEN_SLO_P99_MS` — the p99 SLO asserted in soak mode
//!   (default 250).
//! * `RSD_SERVE_SHARDS` / `RSD_SERVE_LRU` / `RSD_SERVE_BATCH` /
//!   `RSD_SERVE_CHANNEL_CAP` — service sizing ([`rsd_serve::ServeConfig`]).
//! * `RSD_SLO_P99_MS` / `RSD_SLO_BUDGET` — arm the continuous burn-rate
//!   monitor ([`rsd_obs::slo`]): the series driver evaluates the error
//!   budget each tick, and the run **fails** if any tick burned
//!   (`slo.burn`), independent of the end-of-run quantile check.
//! * `RSD_OBS_HTTP` — serve `/metrics`, `/health`, `/snapshot` live on
//!   `127.0.0.1:<port>` for the duration of the run.
//! * `RSD_OBS_EXEMPLARS` — per-window slow-exemplar reservoir size
//!   (default 4); the slowest requests' per-stage breakdowns land in
//!   the series, the report, and the stderr table below.
//!
//! Every run asserts the telemetry event ring shed nothing
//! (`ring_dropped == 0`): load shedding in the observability layer under
//! the load the run itself generated is a finding, not a footnote.
//!
//! All invalid knob values hard-error naming the knob. With
//! `RSD_OBS_TICK_MS` set, per-request latency lands in the
//! `serve.request` HDR histogram and the time-series file; the run
//! report carries the deterministic serving outcome (request and
//! per-level counts, evictions) plus the achieved `scored_per_s`, so
//! `obs_diff` gates both correctness drift and lost throughput. The
//! report deliberately omits timing-dependent counts (micro-batch
//! sizes, blocked submits) — those go to stderr.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rsd_bench::{table3_configs, BinHarness, Prepared};
use rsd_corpus::RiskLevel;
use rsd_models::{PlmBaseline, ScoringModel, ServeModel};
use rsd_obs::Value;
use rsd_pipeline::{StreamSource, VecSource};
use rsd_serve::{IncomingPost, RiskService, ServeConfig};

/// The corpus in global chronological submission order.
fn replay_stream(dataset: &rsd_dataset::Rsd15k) -> Vec<IncomingPost> {
    let mut order: Vec<usize> = (0..dataset.posts.len()).collect();
    order.sort_by_key(|&i| (dataset.posts[i].created, dataset.posts[i].id));
    order
        .into_iter()
        .map(|i| {
            let p = &dataset.posts[i];
            IncomingPost {
                user: p.user.0,
                post: p.id.0,
                created: p.created,
                text: p.text.clone(),
            }
        })
        .collect()
}

fn main() {
    let mut h = BinHarness::start("loadgen");
    let qps = rsd_obs::knob::positive_or_default("RSD_QPS", std::env::var("RSD_QPS").ok(), 200);
    let rounds = rsd_obs::knob::positive_or_default(
        "RSD_LOADGEN_ROUNDS",
        std::env::var("RSD_LOADGEN_ROUNDS").ok(),
        1,
    );
    let soak_ms = rsd_obs::knob::optional_positive_env("RSD_LOADGEN_SOAK_MS");
    let slo_p99_ms = rsd_obs::knob::positive_float_env("RSD_LOADGEN_SLO_P99_MS", 250.0);
    let serve_cfg = ServeConfig::from_env().expect("serve config");

    let prepared = Prepared::from_env();
    let model = {
        let _s = rsd_obs::Span::enter("loadgen.fit");
        let data = prepared.bench_data();
        let cfgs = table3_configs(prepared.scale);
        Arc::new(match serve_cfg.model {
            ServeModel::Gbdt => ScoringModel::fit(&cfgs.xgboost, &data).expect("fit scoring model"),
            m => {
                let fitted = PlmBaseline::new(cfgs.deberta)
                    .fit(&data)
                    .expect("fit plm baseline");
                ScoringModel::from_plm(&fitted, data.splits.config.window, m.quantized())
            }
        })
    };
    // The serving phase owns the latency story: drop the fit-phase
    // histograms (training rounds, feature batches) so the report and
    // series quantiles describe requests only.
    rsd_obs::hist::reset();

    let posts = replay_stream(&prepared.dataset);
    let per_round = posts.len() as u64;
    match soak_ms {
        None => eprintln!(
            "loadgen: {} posts x {} round(s) at {} QPS via {} (shards {}, lru {}, batch {})",
            per_round,
            rounds,
            qps,
            serve_cfg.model.name(),
            serve_cfg.shards,
            serve_cfg.lru_capacity,
            serve_cfg.batch_max
        ),
        Some(ms) => eprintln!(
            "loadgen: soaking {}ms at {} QPS via {} (p99 SLO {:.1}ms, shards {}, lru {}, batch {})",
            ms,
            qps,
            serve_cfg.model.name(),
            slo_p99_ms,
            serve_cfg.shards,
            serve_cfg.lru_capacity,
            serve_cfg.batch_max
        ),
    }

    let service = RiskService::start(Arc::clone(&model), serve_cfg.clone());
    let results = service.results();
    let consumer = thread::spawn(move || {
        let mut levels = [0u64; RiskLevel::COUNT];
        while let Some(scored) = results.recv() {
            levels[scored.level.index()] += 1;
        }
        levels
    });

    let mut source = VecSource::new("loadgen.replay", posts);
    let t0 = Instant::now();
    let mut sent = 0u64;
    let pace_and_submit = |post, sent: &mut u64| {
        let deadline = t0 + Duration::from_secs_f64(*sent as f64 / qps as f64);
        let wait = deadline.saturating_duration_since(Instant::now());
        if !wait.is_zero() {
            thread::sleep(wait);
        }
        service.submit(post).expect("service draining early");
        *sent += 1;
    };
    match soak_ms {
        None => {
            for round in 0..rounds {
                if round > 0 {
                    source.rewind();
                }
                while let Some(post) = source.next().expect("replay source") {
                    pace_and_submit(post, &mut sent);
                }
            }
        }
        Some(ms) => {
            // Sustained soak: rewind and replay until the clock runs out.
            let end = t0 + Duration::from_millis(ms);
            'soak: loop {
                while let Some(post) = source.next().expect("replay source") {
                    if Instant::now() >= end {
                        break 'soak;
                    }
                    pace_and_submit(post, &mut sent);
                }
                source.rewind();
            }
        }
    }
    let total = if soak_ms.is_some() {
        sent
    } else {
        per_round * rounds
    };
    let report = service.drain();
    let elapsed = t0.elapsed();
    let levels = consumer.join().expect("result consumer panicked");
    assert_eq!(report.scored, total, "every submitted post must score");
    assert_eq!(levels.iter().sum::<u64>(), total, "every score must emit");
    let ring_dropped = rsd_obs::ring::global().dropped();
    assert_eq!(
        ring_dropped, 0,
        "telemetry event ring shed {ring_dropped} events under load"
    );

    let achieved = report.scored as f64 / elapsed.as_secs_f64();
    println!(
        "loadgen: scored {} posts in {:.2}s — {:.1}/s achieved vs {} QPS target",
        report.scored,
        elapsed.as_secs_f64(),
        achieved,
        qps
    );
    let hists = rsd_obs::hist::merged();
    if let Some(hist) = hists.get("serve.request") {
        let ms = |q: f64| hist.quantile(q).unwrap_or(0) as f64 / 1e6;
        println!(
            "loadgen: request latency p50 {:.3}ms p90 {:.3}ms p99 {:.3}ms",
            ms(0.50),
            ms(0.90),
            ms(0.99)
        );
        if soak_ms.is_some() {
            let p99 = ms(0.99);
            assert!(
                p99 <= slo_p99_ms,
                "soak SLO violated: request p99 {p99:.3}ms > {slo_p99_ms:.1}ms \
                 (RSD_LOADGEN_SLO_P99_MS)"
            );
            println!("loadgen: soak p99 {p99:.3}ms within SLO {slo_p99_ms:.1}ms");
        }
    } else if soak_ms.is_some() {
        panic!(
            "RSD_LOADGEN_SOAK_MS asserts the p99 SLO from the serve.request \
             histogram; set RSD_OBS_TICK_MS so latencies record"
        );
    }
    for (level, count) in RiskLevel::ALL.iter().zip(levels) {
        println!("  {:<10} {:>8}", level.name(), count);
    }
    eprintln!(
        "loadgen: {} micro-batches (max {}), {} blocked submits, \
         {} evicted / peak {} resident users",
        report.batches,
        report.max_batch,
        report.blocked_submits,
        report.evicted_users,
        report.peak_resident_users
    );
    if !report.exemplars.is_empty() {
        eprintln!("loadgen: slowest requests (per-stage breakdown, ms):");
        eprintln!(
            "  {:>8} {:<8} {:<10} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7}  slowest",
            "trace", "backend", "level", "total", "queue", "batch", "window", "score", "drain"
        );
        for ex in &report.exemplars {
            let stages = ex.stages;
            let ms = |ns: u64| ns as f64 / 1e6;
            eprintln!(
                "  {:>8} {:<8} {:<10} {:>9.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}  {}",
                ex.trace_id,
                ex.backend,
                ex.level,
                ms(ex.total_ns),
                ms(stages[0]),
                ms(stages[1]),
                ms(stages[2]),
                ms(stages[3]),
                ms(stages[4]),
                ex.slowest_stage().0.name()
            );
        }
    }

    let mut level_map = rsd_obs::Map::new();
    for (level, count) in RiskLevel::ALL.iter().zip(levels) {
        level_map.insert(level.name(), Value::Int(count as i128));
    }
    h.run
        .set("qps", Value::Int(qps as i128))
        .set("rounds", Value::Int(rounds as i128))
        .set("model", Value::String(serve_cfg.model.name().to_string()))
        .set("ring_dropped", Value::Int(ring_dropped as i128))
        .set("posts", Value::Int(total as i128))
        .set("users", Value::Int(prepared.dataset.n_users() as i128))
        .set("levels", Value::Object(level_map))
        .set("evicted_users", Value::Int(report.evicted_users as i128))
        .set(
            "peak_resident_users",
            Value::Int(report.peak_resident_users as i128),
        )
        .set("scored_per_s", Value::Float(achieved));
    if !report.exemplars.is_empty() {
        h.run
            .set("exemplars", rsd_obs::exemplar::to_values(&report.exemplars));
    }

    // Let the series driver observe a quiescent window before the final
    // snapshot: windowed stage rates must read exactly 0.0 there, or the
    // committed-baseline series diff would compare mid-flight rates.
    if let Some(tick_ms) = rsd_obs::knob::optional_positive_env("RSD_OBS_TICK_MS") {
        thread::sleep(Duration::from_millis(2 * tick_ms + 50));
    }
    // Final series tick before the burn verdict: the monitor runs on the
    // driver thread, so the latch is only settled once it stops.
    h.finish_telemetry();
    if let Some(slo) = rsd_obs::slo::config_from_env() {
        let burns = rsd_obs::slo::burn_events();
        let mut slo_map = rsd_obs::Map::new();
        slo_map.insert("target_p99_ms", Value::Float(slo.target_p99_ms));
        slo_map.insert("budget", Value::Float(slo.budget));
        slo_map.insert("burn_events", Value::Int(burns as i128));
        h.run.set("slo", Value::Object(slo_map));
        assert_eq!(
            burns, 0,
            "SLO error budget burned: {burns} slo.burn event(s) against \
             p99 target {:.1}ms, budget {} (RSD_SLO_P99_MS / RSD_SLO_BUDGET)",
            slo.target_p99_ms, slo.budget
        );
        println!(
            "loadgen: SLO clean — 0 slo.burn events against p99 {:.1}ms, budget {}",
            slo.target_p99_ms, slo.budget
        );
    }
    h.finish();
}
