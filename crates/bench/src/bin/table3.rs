//! Table III: baseline benchmark on the user-level risk assessment task.
//!
//! Prints accuracy, macro-F1 and per-class F1 for all five baselines, in
//! the paper's layout. `RSD_SCALE=paper` reproduces the full-scale run;
//! the default `mid` scale preserves the ordering at a fraction of the
//! wall-clock. Individual models can be selected with
//! `RSD_MODELS=xgboost,bilstm,higru,roberta,deberta`.

use std::time::Instant;

use rsd_bench::{table3_configs, BinHarness, Prepared};
use rsd_models::{BiLstmBaseline, HiGruBaseline, PlmBaseline, XgboostBaseline};
use rsd_obs::Value;

fn main() {
    let mut h = BinHarness::start("table3");
    let prepared = Prepared::from_env();
    let data = prepared.bench_data();
    let cfgs = table3_configs(prepared.scale);

    let selected = std::env::var("RSD_MODELS")
        .unwrap_or_else(|_| "xgboost,bilstm,higru,roberta,deberta".to_string());
    let want = |name: &str| selected.split(',').any(|m| m.trim() == name);

    println!("Table III — Performance comparison of baseline models");
    println!(
        "(scale {:?}, seed {}, {} train / {} valid / {} test users)",
        prepared.scale,
        prepared.seed,
        prepared.splits.train.len(),
        prepared.splits.valid.len(),
        prepared.splits.test.len()
    );
    let header = format!(
        "{:<10} {:>6} {:>7} {:>6} {:>6} {:>6} {:>6}",
        "Model", "Acc%", "MacF1%", "IN-F1", "ID-F1", "BR-F1", "AT-F1"
    );
    println!("{header}");
    println!("{}", "-".repeat(header.len()));

    let mut model_rows: Vec<Value> = Vec::new();
    let mut print_outcome = |outcome: rsd_models::EvalOutcome, elapsed: std::time::Duration| {
        let r = &outcome.report;
        println!(
            "{:<10} {:>6.1} {:>7.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}   [{:.1?}]",
            r.model,
            r.accuracy * 100.0,
            r.macro_f1 * 100.0,
            r.class_f1[0] * 100.0,
            r.class_f1[1] * 100.0,
            r.class_f1[2] * 100.0,
            r.class_f1[3] * 100.0,
            elapsed
        );
        for (k, v) in &outcome.extra {
            eprintln!("    {k} = {v}");
        }
        let names: Vec<&str> = rsd_corpus::RiskLevel::ALL
            .iter()
            .map(|l| l.name())
            .collect();
        eprintln!(
            "{}",
            rsd_eval::report::render_confusion_grid(&outcome.confusion, &names)
        );
        let mut row = rsd_obs::Map::new();
        row.insert("model", Value::from(r.model.as_str()));
        row.insert("accuracy", Value::Float(r.accuracy));
        row.insert("macro_f1", Value::Float(r.macro_f1));
        row.insert("elapsed_ms", Value::Float(elapsed.as_secs_f64() * 1e3));
        model_rows.push(Value::Object(row));
    };

    if want("xgboost") {
        let t = Instant::now();
        let outcome = XgboostBaseline::new(cfgs.xgboost)
            .run(&data)
            .expect("xgboost");
        print_outcome(outcome, t.elapsed());
    }
    if want("bilstm") {
        let t = Instant::now();
        let outcome = BiLstmBaseline::new(cfgs.bilstm).run(&data).expect("bilstm");
        print_outcome(outcome, t.elapsed());
    }
    if want("higru") {
        let t = Instant::now();
        let outcome = HiGruBaseline::new(cfgs.higru).run(&data).expect("higru");
        print_outcome(outcome, t.elapsed());
    }
    if want("roberta") {
        let t = Instant::now();
        let outcome = PlmBaseline::new(cfgs.roberta).run(&data).expect("roberta");
        print_outcome(outcome, t.elapsed());
    }
    if want("deberta") {
        let t = Instant::now();
        let outcome = PlmBaseline::new(cfgs.deberta).run(&data).expect("deberta");
        print_outcome(outcome, t.elapsed());
    }

    println!();
    println!(
        "Paper reference: XGBoost 42.5/25.3, BiLSTM 48.6/36.7, HiGRU 52.2/30.3, \
         RoBERTa 71.0/65.0, DeBERTa 76.0/77.0 (Acc%/MacF1%)"
    );

    h.run
        .set("selected", Value::from(selected.as_str()))
        .set("models", Value::Array(model_rows));
    h.finish();
}
