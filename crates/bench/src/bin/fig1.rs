//! Fig. 1: distribution of posts per user (ASCII histogram).

use rsd_bench::Prepared;
use rsd_dataset::stats::posts_per_user_histogram;

fn main() {
    let prepared = Prepared::from_env();
    let hist = posts_per_user_histogram(&prepared.dataset, 60);
    println!(
        "Fig. 1 — Distribution of Posts per User (scale {:?})",
        prepared.scale
    );
    let max = hist.counts.iter().copied().max().unwrap_or(1).max(1);
    for ((lo, hi), count) in hist.bucket_ranges().iter().zip(&hist.counts) {
        if *count == 0 {
            continue;
        }
        let bar = "#".repeat((count * 50 / max) as usize);
        let label = if hi.is_infinite() {
            format!("{:>3}+", lo)
        } else {
            format!("{:>4}", lo)
        };
        println!("{label} | {bar} {count}");
    }
    println!();
    println!(
        "fraction of users with < 20 posts: {:.1}% (paper: 'the majority of users have fewer than 20 historical posts')",
        hist.fraction_below(20.0) * 100.0
    );
}
