//! §II-C1: annotation consistency — Fleiss' kappa over the triple-annotated
//! subset, plus the campaign audit trail.

use rsd_bench::{BinHarness, Prepared};
use rsd_eval::kappa::interpret_kappa;
use rsd_obs::Value;

fn main() {
    let mut h = BinHarness::start("kappa");
    let prepared = Prepared::from_env();
    let c = &prepared.report.campaign;
    println!(
        "Annotation consistency audit (scale {:?}, seed {})",
        prepared.scale, prepared.seed
    );
    println!();
    println!(
        "jointly annotated subset : {} items ({} entered kappa)",
        c.joint_items, c.kappa_items
    );
    println!("individually annotated   : {} items", c.individual_items);
    println!(
        "Fleiss' kappa            : {:.4} ({})",
        c.fleiss_kappa,
        interpret_kappa(c.fleiss_kappa)
    );
    println!(
        "Krippendorff's alpha     : {:.4} (incl. partially-rated items)",
        c.krippendorff_alpha
    );
    println!("paper reference          : 0.7206 over 4,384 samples");
    println!();
    println!("uncertainty flag rate    : {:.2}%", c.flag_rate * 100.0);
    println!("adjudicated items        : {}", c.adjudicated);
    println!(
        "final label accuracy     : {:.2}% (vs latent ground truth)",
        c.label_accuracy * 100.0
    );
    println!();
    println!(
        "qualification rounds per annotator: {:?}",
        c.qualification.iter().map(|q| q.rounds).collect::<Vec<_>>()
    );
    println!();
    println!("daily inspections (gate: >= 85%):");
    for day in &c.days {
        println!(
            "  day {:>2}: {:>5} labeled, {:>3} flagged, {:>3} inspected, accuracy {:>5.1}% [{}]",
            day.day,
            day.labeled,
            day.flagged,
            day.inspected,
            day.inspection_accuracy * 100.0,
            if day.passed { "PASS" } else { "FAIL" }
        );
    }

    h.run
        .set("fleiss_kappa", Value::Float(c.fleiss_kappa))
        .set("krippendorff_alpha", Value::Float(c.krippendorff_alpha))
        .set("adjudicated", Value::Int(c.adjudicated as i128))
        .set("days", Value::Int(c.days.len() as i128));
    h.finish();
}
