//! Build the dataset and write it as JSONL — the harness entry point for
//! the streaming pipeline and the CI equivalence/resume gates.
//!
//! * `RSD_BUILD_MODE=stream` *(default)* runs the sharded streaming
//!   pipeline; `batch` runs the monolithic reference path. Both produce
//!   byte-identical JSONL for the same scale/seed.
//! * `RSD_BUILD_OUT=<path>` writes there (parent dirs created); unset
//!   writes to stdout.
//! * `RSD_CHECKPOINT_DIR=<dir>` overrides the checkpoint location
//!   (default `bench_runs/<scale>/checkpoints`; `none` disables).
//!   Batch mode never checkpoints.
//! * `RSD_SHARD_USERS` / `RSD_SHARDS_IN_FLIGHT` size the streaming
//!   executor; `RSD_INTERRUPT_AFTER_SHARDS` / `RSD_INTERRUPT_AFTER_STAGE`
//!   inject a mid-build kill for resume testing (exit code 9, so scripts
//!   can tell an injected interrupt from a real failure).

use std::process::ExitCode;

use rsd_bench::BinHarness;
use rsd_common::RsdError;
use rsd_dataset::{io, DatasetBuilder, StreamingOptions};

// The streaming build is the workload whose memory profile matters (its
// whole point is bounded residency), so this binary hosts the counting
// allocator. The timed table bins deliberately do not: a custom global
// allocator suppresses rustc's allocation-elision optimizations, which
// alone costs several percent of wall-clock even with counting dormant.
#[global_allocator]
static ALLOC: rsd_obs::alloc::CountingAlloc = rsd_obs::alloc::CountingAlloc::new();

fn run() -> Result<ExitCode, RsdError> {
    let mut h = BinHarness::start("build_dataset");
    let scale = h.scale;
    let mode = std::env::var("RSD_BUILD_MODE").unwrap_or_else(|_| "stream".to_string());
    let builder = DatasetBuilder::new(scale.build_config(h.seed));

    let dataset = match mode.as_str() {
        "batch" => {
            let (dataset, _pool, report) = builder.build_batch_with_pool()?;
            eprintln!(
                "batch build: {} posts / {} users (raw {} posts)",
                dataset.n_posts(),
                dataset.n_users(),
                report.raw_posts
            );
            dataset
        }
        "stream" => {
            let mut opts = StreamingOptions::from_env()?;
            if opts.checkpoint_dir.is_none() && std::env::var("RSD_CHECKPOINT_DIR").is_err() {
                opts.checkpoint_dir =
                    Some(format!("bench_runs/{}/checkpoints", scale.name()).into());
            }
            let out = builder.build_streaming(&opts)?;
            let p = &out.pipeline;
            eprintln!(
                "streaming build: {} posts / {} users | {} shards x {} users, {} in flight, \
                 peak resident {} posts, checkpoints {} hit / {} written",
                out.dataset.n_posts(),
                out.dataset.n_users(),
                p.shards,
                p.shard_users,
                p.shards_in_flight,
                p.peak_resident_posts,
                p.checkpoint_hits,
                p.checkpoint_writes
            );
            out.dataset
        }
        other => {
            return Err(RsdError::config(
                "RSD_BUILD_MODE",
                format!("unknown mode {other:?}; accepted values: stream, batch"),
            ))
        }
    };

    match std::env::var("RSD_BUILD_OUT") {
        Ok(path) if !path.is_empty() => {
            let path = std::path::PathBuf::from(path);
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).map_err(RsdError::from)?;
            }
            io::save(&dataset, &path)?;
            eprintln!("wrote {}", path.display());
        }
        _ => {
            let stdout = std::io::stdout();
            io::to_jsonl(&dataset, stdout.lock())?;
        }
    }

    h.run
        .set("mode", rsd_obs::Value::from(mode.as_str()))
        .set("posts", rsd_obs::Value::Int(dataset.n_posts() as i128))
        .set("users", rsd_obs::Value::Int(dataset.n_users() as i128));
    // The allocator gauges must land after the final series snapshot but
    // before the report's registry snapshot, hence the split finish.
    h.finish_telemetry();
    rsd_obs::alloc::publish_gauges();
    h.try_finish().map_err(RsdError::from)?;
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        // Injected interrupts (resume tests) exit 9; real failures exit 1.
        Err(RsdError::PipelineState(msg)) if msg.contains("interrupted") => {
            eprintln!("interrupted: {msg}");
            ExitCode::from(9)
        }
        Err(e) => {
            eprintln!("build failed: {e}");
            ExitCode::FAILURE
        }
    }
}
