//! Fig. 2: Indicator and Ideation word-cloud data (top content unigrams).

use rsd_bench::Prepared;
use rsd_corpus::RiskLevel;
use rsd_dataset::stats::class_word_frequencies;

fn main() {
    let prepared = Prepared::from_env();
    for level in [RiskLevel::Indicator, RiskLevel::Ideation] {
        let n = prepared.dataset.class_counts()[level.index()];
        println!("Fig. 2 — {level} word cloud (n={n}):");
        for (word, count) in class_word_frequencies(&prepared.dataset, level, 25) {
            println!("  {word:<20} {count}");
        }
        println!();
    }
}
