//! Table IV: data-scale study — DeBERTa Large + full optimization on a
//! small user subsample vs DeBERTa Base + defaults on the full dataset.

use rsd_bench::{Prepared, Scale};
use rsd_models::pretrain::PretrainConfig;
use rsd_models::scale::run_scale_study;
use rsd_models::{PlmConfig, PlmKind, TrainConfig};

fn main() {
    let prepared = Prepared::from_env();
    let small_users = match prepared.scale {
        Scale::Paper => 500,
        Scale::Mid => 120,
        Scale::Small => 16,
    };
    let (mlm_epochs, large_epochs, base_epochs) = match prepared.scale {
        Scale::Small => (1, 2, 1),
        _ => (2, 12, 8),
    };
    let pool = prepared.scale.pretrain_texts();

    let large = PlmConfig {
        pretrain_texts: pool,
        pretrain: PretrainConfig {
            epochs: mlm_epochs,
            ..Default::default()
        },
        train: TrainConfig {
            epochs: large_epochs,
            lr: 7e-4,
            patience: 4,
            balanced: true,
            ..Default::default()
        },
        ..PlmConfig::large(PlmKind::Deberta)
    };
    let base = PlmConfig {
        pretrain_texts: pool,
        pretrain: PretrainConfig {
            epochs: mlm_epochs,
            ..Default::default()
        },
        train: TrainConfig {
            epochs: base_epochs,
            lr: 8e-4,
            patience: 3,
            ..Default::default()
        },
        ..PlmConfig::base(PlmKind::Deberta)
    };

    println!(
        "Table IV — DeBERTa across dataset sizes (scale {:?}, seed {})",
        prepared.scale, prepared.seed
    );
    let rows = run_scale_study(
        &prepared.dataset,
        &prepared.unlabeled,
        small_users,
        large,
        base,
        prepared.seed,
    )
    .expect("scale study");

    println!(
        "{:<6} {:<6} {:<5} {:>5} {:>5} {:>5} {:>5} {:>6} {:>6} {:>9}",
        "Data", "Model", "Opt.", "IN", "ID", "BR", "AT", "M-F1", "Acc.", "params"
    );
    println!("{}", "-".repeat(68));
    for r in &rows {
        println!(
            "{:<6} {:<6} {:<5} {:>5.2} {:>5.2} {:>5.2} {:>5.2} {:>6.2} {:>5.0}% {:>9}",
            r.data,
            r.model,
            if r.optimized { "Full" } else { "No" },
            r.class_f1[0],
            r.class_f1[1],
            r.class_f1[2],
            r.class_f1[3],
            r.macro_f1,
            r.accuracy * 100.0,
            r.params
        );
    }
    println!();
    println!("Paper: 500/Large/Full -> IN .69 ID .75 BR .67 AT .84, M-F1 .74, Acc 74%");
    println!("       15K/Base/No    -> IN .79 ID .80 BR .60 AT .59, M-F1 .70, Acc 76%");
    println!("Claim: the large dataset lets an untuned Base model match/beat a fully-tuned Large model on small data.");
}
