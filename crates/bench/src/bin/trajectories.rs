//! Risk-evolution analytics: the longitudinal statistics the dataset's
//! "complete posting time sequence" design enables (paper §I/§V).

use rsd_bench::Prepared;
use rsd_corpus::RiskLevel;
use rsd_dataset::trajectory::trajectory_report;

fn main() {
    let prepared = Prepared::from_env();
    let r = trajectory_report(&prepared.dataset);

    println!(
        "Risk-trajectory analysis (scale {:?}, seed {})\n",
        prepared.scale, prepared.seed
    );
    println!("transition probabilities (row = from, col = to):");
    println!("{:>11} {:>6} {:>6} {:>6} {:>6}", "", "IN", "ID", "BR", "AT");
    let probs = r.transitions.probabilities();
    for (i, row) in probs.iter().enumerate() {
        let name = RiskLevel::from_index(i).unwrap().abbrev();
        println!(
            "{:>11} {:>6.3} {:>6.3} {:>6.3} {:>6.3}",
            name, row[0], row[1], row[2], row[3]
        );
    }
    println!();
    println!("persistence (same level twice)    : {:.3}", r.persistence);
    println!(
        "escalation rate                   : {:.3}",
        r.escalation_rate
    );
    println!("escalation events                 : {}", r.n_escalations);
    println!(
        "median days to escalation         : {:.1}",
        r.median_days_to_escalation
    );
    println!(
        "users with worsening trend        : {:.1}%",
        r.worsening_users * 100.0
    );
    println!(
        "users ever reaching BR/AT         : {:.1}%",
        r.users_reaching_high_risk * 100.0
    );
}
