//! `obs_top` — a `top(1)`-style viewer and CI checker for the
//! continuous-telemetry series files the time-series driver writes
//! (`bench_runs/<scale>/<bin>.series.ndjson`).
//!
//! ```text
//! obs_top <series.ndjson>                  # summarize the latest snapshot
//! obs_top --follow <series.ndjson>         # re-render as the file grows
//! obs_top --check [--trace <trace.json>] <series.ndjson>
//! ```
//!
//! `--check` is the machine mode CI uses after a telemetry smoke run:
//! it validates that every line parses as a known snapshot/stall/burn
//! record, that the ring reported **zero drops**, that the run's health
//! verdict is not degraded (no latched SLO burn, no stalled stage), and
//! (with `--trace`) that the Chrome trace parses as JSON with a
//! non-empty `traceEvents` array. Exit codes: 0 ok, 2 usage/IO,
//! 3 malformed series, 4 ring drops, 5 malformed trace, 6 degraded
//! health / burned SLO budget.
//!
//! The viewer renders every histogram family in the snapshot — the
//! per-backend × per-level tagged shards (`serve.request|gbdt|Ideation`)
//! included — plus the run's slowest-request exemplars with their
//! per-stage breakdowns and the SLO burn state when armed.

use std::process::ExitCode;

use rsd_obs::Value;

const USAGE: &str = "usage: obs_top [--follow | --check [--trace <trace.json>]] <series.ndjson>";

struct Args {
    series: String,
    follow: bool,
    check: bool,
    trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut follow = false;
    let mut check = false;
    let mut trace = None;
    let mut series = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--follow" => follow = true,
            "--check" => check = true,
            "--trace" => {
                trace = Some(it.next().ok_or("--trace needs a path")?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other:?}\n{USAGE}"));
            }
            other => {
                if series.replace(other.to_string()).is_some() {
                    return Err(format!("more than one series path\n{USAGE}"));
                }
            }
        }
    }
    Ok(Args {
        series: series.ok_or_else(|| format!("missing series path\n{USAGE}"))?,
        follow,
        check,
        trace,
    })
}

fn fmt_rate(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Render the latest snapshot of a summarized series as a terminal block.
fn render(summary: &Value) -> String {
    let s = &summary["series"];
    let mut out = String::new();
    out.push_str(&format!(
        "ticks {}  stalls {}  ring published {} dropped {}\n",
        s["ticks"], s["stall_events"], s["ring"]["published"], s["ring"]["dropped"],
    ));
    if let Some(status) = s["health"]["status"].as_str() {
        out.push_str(&format!("health {status}"));
        if let Some(slo) = s.get("slo").and_then(Value::as_object) {
            out.push_str(&format!(
                "  slo p99<{}ms budget {} burns {}",
                slo.get("target_p99_ms")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
                slo.get("budget").and_then(Value::as_f64).unwrap_or(0.0),
                slo.get("burn_events").and_then(Value::as_u64).unwrap_or(0),
            ));
        }
        out.push('\n');
    }
    if let Some(alloc) = s.get("alloc").and_then(Value::as_object) {
        let live = alloc
            .get("live_bytes")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        let peak = alloc
            .get("peak_live_bytes")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        out.push_str(&format!(
            "alloc live {:.1} MiB  peak {:.1} MiB\n",
            live / (1024.0 * 1024.0),
            peak / (1024.0 * 1024.0)
        ));
    }
    if let Some(stages) = s.get("stages").and_then(Value::as_object) {
        out.push_str(&format!(
            "{:<24} {:>12} {:>12} {:>12}\n",
            "STAGE", "ITEMS", "ITEMS/S", "BYTES/S"
        ));
        for (label, stage) in stages.iter() {
            out.push_str(&format!(
                "{:<24} {:>12} {:>12} {:>12}\n",
                label,
                stage["items"],
                fmt_rate(stage["items_per_s"].as_f64().unwrap_or(0.0)),
                fmt_rate(stage["bytes_per_s"].as_f64().unwrap_or(0.0)),
            ));
        }
    }
    if let Some(latency) = s.get("latency").and_then(Value::as_object) {
        out.push_str(&format!(
            "{:<24} {:>10} {:>10} {:>10} {:>10}\n",
            "LATENCY", "COUNT", "P50 MS", "P99 MS", "MAX MS"
        ));
        for (label, h) in latency.iter() {
            out.push_str(&format!(
                "{:<24} {:>10} {:>10.3} {:>10.3} {:>10.3}\n",
                label,
                h["count"],
                h["p50_ms"].as_f64().unwrap_or(0.0),
                h["p99_ms"].as_f64().unwrap_or(0.0),
                h["max_ms"].as_f64().unwrap_or(0.0),
            ));
        }
    }
    if let Some(exemplars) = s.get("exemplars").and_then(Value::as_array) {
        out.push_str(&format!(
            "{:<8} {:<8} {:<10} {:>9} {:<12}\n",
            "TRACE", "BACKEND", "LEVEL", "TOTAL MS", "SLOWEST"
        ));
        for ex in exemplars {
            out.push_str(&format!(
                "{:<8} {:<8} {:<10} {:>9.3} {:<12}\n",
                ex["trace"],
                ex["backend"].as_str().unwrap_or("?"),
                ex["level"].as_str().unwrap_or("?"),
                ex["total_ms"].as_f64().unwrap_or(0.0),
                ex["slowest_stage"].as_str().unwrap_or("?"),
            ));
        }
    }
    out
}

/// `--check`: series must be well-formed with zero ring drops; the trace
/// (if given) must parse with a non-empty `traceEvents`.
fn check(args: &Args, text: &str) -> ExitCode {
    let summary = match rsd_obs::timeseries::summarize_series(text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("obs_top: malformed series {}: {e}", args.series);
            return ExitCode::from(3);
        }
    };
    let dropped = summary["series"]["ring"]["dropped"]
        .as_u64()
        .unwrap_or(u64::MAX);
    if dropped > 0 {
        eprintln!(
            "obs_top: ring dropped {dropped} events in {} (raise RSD_OBS_RING_CAP or lower RSD_OBS_TICK_MS)",
            args.series
        );
        return ExitCode::from(4);
    }
    // Health gate: a latched SLO burn or a still-stalled stage in the
    // final snapshot is a failed run even with clean quantiles. Series
    // written before the health/slo keys existed simply lack them and
    // pass, keeping old baselines checkable.
    let health = summary["series"]["health"]["status"].as_str();
    let burns = summary["series"]["slo"]["burn_events"]
        .as_u64()
        .unwrap_or(0);
    if health == Some("degraded") || burns > 0 {
        eprintln!(
            "obs_top: degraded run in {}: health {}, {} slo.burn event(s)",
            args.series,
            health.unwrap_or("unknown"),
            burns
        );
        return ExitCode::from(6);
    }
    if let Some(trace_path) = &args.trace {
        let trace_text = match std::fs::read_to_string(trace_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs_top: cannot read trace {trace_path}: {e}");
                return ExitCode::from(5);
            }
        };
        let doc: Value = match serde_json::from_str(&trace_text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("obs_top: trace {trace_path} is not valid JSON: {e}");
                return ExitCode::from(5);
            }
        };
        match doc["traceEvents"].as_array() {
            Some(events) if !events.is_empty() => {}
            _ => {
                eprintln!("obs_top: trace {trace_path} has no traceEvents");
                return ExitCode::from(5);
            }
        }
    }
    println!(
        "ok: {} ticks, {} published, 0 dropped{}",
        summary["series"]["ticks"],
        summary["series"]["ring"]["published"],
        if args.trace.is_some() {
            ", trace well-formed"
        } else {
            ""
        }
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.follow {
        let mut last_len = 0usize;
        loop {
            if let Ok(text) = std::fs::read_to_string(&args.series) {
                if text.len() != last_len {
                    last_len = text.len();
                    if let Ok(summary) = rsd_obs::timeseries::summarize_series(&text) {
                        // Clear-screen escape then the fresh block.
                        print!("\x1b[2J\x1b[H{}", render(&summary));
                        use std::io::Write;
                        let _ = std::io::stdout().flush();
                    }
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(500));
        }
    }

    let text = match std::fs::read_to_string(&args.series) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs_top: cannot read {}: {e}", args.series);
            return ExitCode::from(2);
        }
    };

    if args.check {
        return check(&args, &text);
    }

    match rsd_obs::timeseries::summarize_series(&text) {
        Ok(summary) => {
            print!("{}", render(&summary));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_top: malformed series {}: {e}", args.series);
            ExitCode::from(3)
        }
    }
}
