//! Table I: class distribution of the built dataset.

use rsd_bench::{BinHarness, Prepared};
use rsd_dataset::stats::class_distribution;
use rsd_obs::Value;

fn main() {
    let mut h = BinHarness::start("table1");
    let prepared = Prepared::from_env();
    println!(
        "Table I — Data Distribution (scale {:?}, seed {})",
        prepared.scale, prepared.seed
    );
    println!("{:<12} {:>8} {:>12}", "Category", "Count", "Percentage");
    println!("{}", "-".repeat(34));
    let rows = {
        let _s = rsd_obs::Span::enter("bench.evaluate");
        class_distribution(&prepared.dataset)
    };
    for row in rows {
        println!(
            "{:<12} {:>8} {:>11.2}%",
            row.category, row.count, row.percentage
        );
    }
    println!("{}", "-".repeat(34));
    println!("{:<12} {:>8}", "Total", prepared.dataset.n_posts());
    println!();
    println!("Paper reference: Attempt 809 (5.54%), Behavior 2056 (14.07%), Ideation 7133 (48.81%), Indicator 4615 (31.58%), total 14,613");

    h.run
        .set("posts", Value::Int(prepared.dataset.n_posts() as i128))
        .set("users", Value::Int(prepared.dataset.n_users() as i128));
    h.finish();
}
