//! Table I: class distribution of the built dataset.

use rsd_bench::{seed_from_env, Prepared, Scale, Telemetry};
use rsd_dataset::stats::class_distribution;
use rsd_obs::Value;

fn main() {
    let scale = Scale::from_env();
    let mut run = rsd_obs::RunReport::new("table1", scale.name(), seed_from_env());
    let mut telemetry = Telemetry::start("table1", scale);
    let prepared = Prepared::from_env();
    println!(
        "Table I — Data Distribution (scale {:?}, seed {})",
        prepared.scale, prepared.seed
    );
    println!("{:<12} {:>8} {:>12}", "Category", "Count", "Percentage");
    println!("{}", "-".repeat(34));
    let rows = {
        let _s = rsd_obs::Span::enter("bench.evaluate");
        class_distribution(&prepared.dataset)
    };
    for row in rows {
        println!(
            "{:<12} {:>8} {:>11.2}%",
            row.category, row.count, row.percentage
        );
    }
    println!("{}", "-".repeat(34));
    println!("{:<12} {:>8}", "Total", prepared.dataset.n_posts());
    println!();
    println!("Paper reference: Attempt 809 (5.54%), Behavior 2056 (14.07%), Ideation 7133 (48.81%), Indicator 4615 (31.58%), total 14,613");

    run.set("posts", Value::Int(prepared.dataset.n_posts() as i128))
        .set("users", Value::Int(prepared.dataset.n_users() as i128));
    telemetry.finish();
    run.write_profile().expect("write folded profile");
    run.write().expect("write run report");
    rsd_obs::flush();
}
