//! Export the built dataset as JSONL and CSV release artifacts (the form
//! the real RSD-15K ships in), after running the §IV privacy audit.

use rsd_bench::Prepared;
use rsd_dataset::{io, privacy};

fn main() {
    let prepared = Prepared::from_env();
    let audit = privacy::audit(&prepared.dataset);
    assert!(
        audit.passed(),
        "privacy audit failed; refusing to export: {:?}",
        audit.findings
    );
    let dir = std::env::var("RSD_EXPORT_DIR").unwrap_or_else(|_| "export".to_string());
    std::fs::create_dir_all(&dir).expect("create export dir");
    let jsonl = format!("{dir}/rsd15k.jsonl");
    let csv = format!("{dir}/rsd15k.csv");
    io::save(&prepared.dataset, &jsonl).expect("write jsonl");
    let file = std::fs::File::create(&csv).expect("create csv");
    io::to_csv(&prepared.dataset, file).expect("write csv");
    println!(
        "exported {} posts / {} users (privacy audit: {} posts scanned, clean)",
        prepared.dataset.n_posts(),
        prepared.dataset.n_users(),
        audit.posts_scanned
    );
    println!("  {jsonl}");
    println!("  {csv}");
}
