//! Export the built dataset as JSONL and CSV release artifacts (the form
//! the real RSD-15K ships in), after running the §IV privacy audit. A
//! `rsd15k.meta.json` sidecar records provenance plus the run's telemetry
//! (per-stage timings, counters, throughput) under `run_report`.

use rsd_bench::{BinHarness, Prepared};
use rsd_dataset::{io, privacy};
use rsd_obs::{Map, Value};

fn main() {
    let mut h = BinHarness::start("export");
    let prepared = Prepared::from_env();
    let audit = privacy::audit(&prepared.dataset);
    assert!(
        audit.passed(),
        "privacy audit failed; refusing to export: {:?}",
        audit.findings
    );
    let dir = std::env::var("RSD_EXPORT_DIR").unwrap_or_else(|_| "export".to_string());
    std::fs::create_dir_all(&dir).expect("create export dir");
    let jsonl = format!("{dir}/rsd15k.jsonl");
    let csv = format!("{dir}/rsd15k.csv");
    let meta = format!("{dir}/rsd15k.meta.json");
    io::save(&prepared.dataset, &jsonl).expect("write jsonl");
    let file = std::fs::File::create(&csv).expect("create csv");
    io::to_csv(&prepared.dataset, file).expect("write csv");

    h.run
        .set("posts", Value::Int(prepared.dataset.n_posts() as i128))
        .set("users", Value::Int(prepared.dataset.n_users() as i128))
        .set(
            "privacy_posts_scanned",
            Value::Int(audit.posts_scanned as i128),
        );
    let mut meta_obj = Map::new();
    meta_obj.insert("dataset", Value::from("rsd15k"));
    meta_obj.insert("scale", Value::from(prepared.scale.name()));
    meta_obj.insert("seed", Value::Int(prepared.seed as i128));
    meta_obj.insert("files", {
        let mut f = Map::new();
        f.insert("jsonl", Value::from(jsonl.as_str()));
        f.insert("csv", Value::from(csv.as_str()));
        Value::Object(f)
    });
    meta_obj.insert("run_report", h.run.to_value());
    std::fs::write(
        &meta,
        format!("{}\n", Value::Object(meta_obj).to_json_pretty()),
    )
    .expect("write meta json");

    println!(
        "exported {} posts / {} users (privacy audit: {} posts scanned, clean)",
        prepared.dataset.n_posts(),
        prepared.dataset.n_users(),
        audit.posts_scanned
    );
    println!("  {jsonl}");
    println!("  {csv}");
    println!("  {meta}");
    h.finish();
}
