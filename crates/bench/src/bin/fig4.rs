//! Fig. 4: risk-level distribution for the 20 most active users
//! (stacked ASCII bars; identifiers removed, as in the paper).

use rsd_bench::Prepared;
use rsd_corpus::RiskLevel;
use rsd_dataset::stats::top_user_risk_profiles;

fn main() {
    let prepared = Prepared::from_env();
    println!("Fig. 4 — Risk Level Distribution for Most Active Users (Top 20)");
    println!("legend: I=Indicator  D=Ideation  B=Behavior  A=Attempt");
    let profiles = top_user_risk_profiles(&prepared.dataset, 20);
    for (rank, p) in profiles.iter().enumerate() {
        let mut bar = String::new();
        let glyphs = ['I', 'D', 'B', 'A'];
        for level in RiskLevel::ALL {
            bar.extend(std::iter::repeat_n(
                glyphs[level.index()],
                p.class_counts[level.index()],
            ));
        }
        println!("user #{:<2} ({:>3} posts) | {bar}", rank + 1, p.total);
    }
}
