//! Reproduction harness: shared plumbing for the per-table/per-figure
//! binaries and the Criterion benches.
//!
//! Every binary follows the same shape: build (or reuse) the dataset at
//! the requested scale, run the experiment, print rows in the paper's
//! layout. Scale is controlled by `RSD_SCALE`:
//!
//! * `paper` — full scale (76,186 raw users → 1,265 annotated users,
//!   ≈14.6k posts). Minutes of wall-clock on one core.
//! * `mid` *(default)* — ≈1/4 of the annotated users with identical
//!   distributional shape; tens of seconds per model.
//! * `small` — smoke-test scale for CI.
//!
//! `RSD_SEED` overrides the default seed (2026).

use std::time::Instant;

use rsd_dataset::{BuildConfig, BuildReport, DatasetBuilder, DatasetSplits, Rsd15k, SplitConfig};
use rsd_models::pretrain::PretrainConfig;
use rsd_models::{
    BenchData, BiLstmConfig, HiGruConfig, PlmConfig, PlmKind, TrainConfig, XgboostConfig,
};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full paper scale.
    Paper,
    /// Quarter-ish scale (default).
    Mid,
    /// Smoke-test scale.
    Small,
}

impl Scale {
    /// Parse a scale name. `smoke` is an alias for `small`, matching the
    /// CI invocation.
    pub fn parse(name: &str) -> Result<Scale, String> {
        match name {
            "paper" => Ok(Scale::Paper),
            "mid" => Ok(Scale::Mid),
            "small" | "smoke" => Ok(Scale::Small),
            other => Err(format!(
                "unknown RSD_SCALE value {other:?}; accepted values: paper, mid, small, smoke"
            )),
        }
    }

    /// Read from `RSD_SCALE` (unset or empty means `mid`). Unknown values
    /// abort instead of silently falling back — a typoed scale must never
    /// quietly run a different experiment.
    pub fn from_env() -> Scale {
        match std::env::var("RSD_SCALE") {
            Err(_) => Scale::Mid,
            Ok(raw) if raw.is_empty() => Scale::Mid,
            Ok(raw) => match Scale::parse(&raw) {
                Ok(scale) => scale,
                Err(message) => panic!("{message}"),
            },
        }
    }

    /// Stable lowercase name, used in report paths.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Mid => "mid",
            Scale::Small => "small",
        }
    }

    /// The dataset build configuration for this scale.
    pub fn build_config(self, seed: u64) -> BuildConfig {
        match self {
            Scale::Paper => BuildConfig::paper(seed),
            Scale::Mid => BuildConfig::scaled(seed, 24_000, 400),
            Scale::Small => BuildConfig::scaled(seed, 2_500, 48),
        }
    }

    /// Pretraining-pool size for the PLM baselines.
    pub fn pretrain_texts(self) -> usize {
        match self {
            Scale::Paper => 4_000,
            Scale::Mid => 1_500,
            Scale::Small => 150,
        }
    }
}

/// Seed from `RSD_SEED` (default 2026).
pub fn seed_from_env() -> u64 {
    std::env::var("RSD_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2026)
}

/// Continuous-telemetry lifecycle for a bench binary: holds the
/// time-series driver ([`rsd_obs::timeseries`]) when `RSD_OBS_TICK_MS`
/// or `RSD_OBS_TRACE` requests it, and the live introspection endpoint
/// ([`rsd_obs::http`]) when `RSD_OBS_HTTP` names a port. Create it
/// right after parsing scale/seed and call [`Telemetry::finish`]
/// *before* writing the run report, so the final `obs.ring.*` gauges
/// and latency quantiles land in the report's registry snapshot.
pub struct Telemetry {
    guard: Option<rsd_obs::timeseries::SeriesGuard>,
    http: Option<rsd_obs::http::HttpGuard>,
}

impl Telemetry {
    /// Start the driver for `bin` at `scale` if the environment asks for
    /// continuous telemetry; otherwise a no-op handle.
    pub fn start(bin: &str, scale: Scale) -> Telemetry {
        Telemetry {
            guard: rsd_obs::timeseries::start(bin, scale.name()),
            http: rsd_obs::http::start_from_env(),
        }
    }

    /// Stop the driver (flushing the final snapshot and trace export)
    /// and report where the artifacts went on stderr. The live endpoint
    /// stops last, after the final series tick has been published, so a
    /// poller watching `/snapshot` sees the run's closing state.
    pub fn finish(&mut self) {
        if let Some(guard) = self.guard.take() {
            let outputs = guard.finish();
            if let Some(path) = &outputs.series {
                eprintln!("series: {}", path.display());
            }
            if let Some(path) = &outputs.trace {
                eprintln!("trace: {}", path.display());
            }
        }
        self.http.take();
    }
}

/// One-stop lifecycle for a report-writing bench binary: parses
/// scale/seed, opens the [`rsd_obs::RunReport`], and starts continuous
/// telemetry — in the order every binary needs them. Binaries `set`
/// result fields on [`BinHarness::run`] and call [`BinHarness::finish`]
/// last, which stops the driver *before* the report write so the final
/// ring gauges and latency quantiles land in the registry snapshot.
pub struct BinHarness {
    /// The run report for this invocation; `set` result fields on it.
    /// Public so binaries can also embed [`rsd_obs::RunReport::to_value`]
    /// into their own artifacts (the export sidecar does).
    pub run: rsd_obs::RunReport,
    /// Scale parsed from `RSD_SCALE`.
    pub scale: Scale,
    /// Seed parsed from `RSD_SEED`.
    pub seed: u64,
    telemetry: Telemetry,
}

impl BinHarness {
    /// Start the harness for binary `bin`.
    pub fn start(bin: &'static str) -> BinHarness {
        let scale = Scale::from_env();
        let seed = seed_from_env();
        let run = rsd_obs::RunReport::new(bin, scale.name(), seed);
        let telemetry = Telemetry::start(bin, scale);
        BinHarness {
            run,
            scale,
            seed,
            telemetry,
        }
    }

    /// Stop the telemetry driver ahead of [`BinHarness::finish`].
    /// Idempotent. For binaries where late work (e.g. allocator gauge
    /// publication) must land between the final series snapshot and the
    /// report write.
    pub fn finish_telemetry(&mut self) {
        self.telemetry.finish();
    }

    /// Finish telemetry, write the folded profile and run report, and
    /// flush the NDJSON sink. Panics on I/O errors — the right default
    /// for the table binaries.
    pub fn finish(self) {
        self.try_finish().expect("write run report");
    }

    /// Fallible [`BinHarness::finish`] for binaries that bubble errors.
    pub fn try_finish(mut self) -> std::io::Result<()> {
        self.telemetry.finish();
        self.run.write_profile()?;
        self.run.write()?;
        rsd_obs::flush();
        Ok(())
    }
}

/// A prepared experiment environment.
pub struct Prepared {
    /// The built dataset.
    pub dataset: Rsd15k,
    /// User-disjoint splits (window = 5).
    pub splits: DatasetSplits,
    /// Unlabelled pool for pretraining.
    pub unlabeled: Vec<String>,
    /// Build-stage report (kappa, preprocessing, crawl stats).
    pub report: BuildReport,
    /// Scale used.
    pub scale: Scale,
    /// Seed used.
    pub seed: u64,
}

impl Prepared {
    /// Build everything for the current env-configured scale/seed.
    pub fn from_env() -> Prepared {
        let scale = Scale::from_env();
        let seed = seed_from_env();
        Self::build(scale, seed)
    }

    /// Build at an explicit scale/seed.
    pub fn build(scale: Scale, seed: u64) -> Prepared {
        let _prepare_span = rsd_obs::Span::enter("bench.prepare");
        let t0 = Instant::now();
        rsd_obs::event(
            "bench.prepare.start",
            &[
                ("scale", rsd_obs::Value::from(scale.name())),
                ("seed", rsd_obs::Value::Int(seed as i128)),
            ],
        );
        let (dataset, unlabeled, report) = DatasetBuilder::new(scale.build_config(seed))
            .build_with_pool()
            .expect("dataset build failed");
        let splits = DatasetSplits::new(
            &dataset,
            SplitConfig {
                seed,
                ..Default::default()
            },
        )
        .expect("split failed");
        rsd_obs::event(
            "bench.prepare.done",
            &[
                ("posts", rsd_obs::Value::Int(dataset.n_posts() as i128)),
                ("users", rsd_obs::Value::Int(dataset.n_users() as i128)),
                ("unlabeled", rsd_obs::Value::Int(unlabeled.len() as i128)),
                (
                    "elapsed_ms",
                    rsd_obs::Value::Float(t0.elapsed().as_secs_f64() * 1e3),
                ),
            ],
        );
        Prepared {
            dataset,
            splits,
            unlabeled,
            report,
            scale,
            seed,
        }
    }

    /// Borrow as [`BenchData`].
    pub fn bench_data(&self) -> BenchData<'_> {
        BenchData {
            dataset: &self.dataset,
            splits: &self.splits,
            unlabeled: &self.unlabeled,
            seed: self.seed,
        }
    }
}

/// Table III model configurations for a scale.
pub struct Table3Configs {
    /// XGBoost baseline.
    pub xgboost: XgboostConfig,
    /// BiLSTM baseline.
    pub bilstm: BiLstmConfig,
    /// HiGRU baseline.
    pub higru: HiGruConfig,
    /// RoBERTa-style PLM.
    pub roberta: PlmConfig,
    /// DeBERTa-style PLM.
    pub deberta: PlmConfig,
}

/// Build the per-scale model configurations.
pub fn table3_configs(scale: Scale) -> Table3Configs {
    let (mlm_epochs, nn_epochs) = match scale {
        Scale::Paper => (4, 14),
        Scale::Mid => (4, 14),
        Scale::Small => (1, 3),
    };
    let pretrain_texts = scale.pretrain_texts();

    let plm = |kind: PlmKind| PlmConfig {
        pretrain_texts,
        pretrain: PretrainConfig {
            epochs: mlm_epochs,
            lr: 1.5e-3,
            ..Default::default()
        },
        train: TrainConfig {
            epochs: nn_epochs,
            lr: 8e-4,
            patience: 5,
            ..Default::default()
        },
        ..PlmConfig::base(kind)
    };

    Table3Configs {
        xgboost: XgboostConfig::default(),
        bilstm: BiLstmConfig {
            train: TrainConfig {
                epochs: nn_epochs,
                lr: 2e-3,
                patience: 3,
                ..Default::default()
            },
            ..Default::default()
        },
        higru: HiGruConfig {
            train: TrainConfig {
                epochs: nn_epochs,
                lr: 2e-3,
                patience: 3,
                ..Default::default()
            },
            ..Default::default()
        },
        roberta: plm(PlmKind::Roberta),
        deberta: plm(PlmKind::Deberta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse_accepts_known_and_rejects_typos() {
        assert_eq!(Scale::parse("paper"), Ok(Scale::Paper));
        assert_eq!(Scale::parse("mid"), Ok(Scale::Mid));
        assert_eq!(Scale::parse("small"), Ok(Scale::Small));
        assert_eq!(Scale::parse("smoke"), Ok(Scale::Small));
        let err = Scale::parse("midd").unwrap_err();
        assert!(
            err.contains("midd") && err.contains("accepted values"),
            "{err}"
        );
    }

    #[test]
    fn small_scale_prepares() {
        let p = Prepared::build(Scale::Small, 1);
        assert!(p.dataset.n_posts() > 100);
        assert!(!p.unlabeled.is_empty());
        assert!(p.splits.is_user_disjoint());
    }
}
