//! The pool itself: persistent workers, an injector queue of chunked
//! jobs, and caller participation.
//!
//! A job is a borrowed `Fn(usize)` closure plus an atomic chunk cursor.
//! Workers (and the submitting thread) claim chunk indices with a
//! `fetch_add` and run them; the submitter blocks on a completion latch
//! until every chunk has finished, which is what makes the lifetime
//! erasure of the borrowed closure sound — the borrow cannot end while
//! any worker still holds it.
//!
//! Determinism contract: *which thread* runs a chunk is racy, but chunk
//! *boundaries* are computed by the caller from problem size alone (never
//! from the thread count), and each chunk writes disjoint output. Any
//! pool size — including the forced-serial scope — therefore produces
//! bit-identical results.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Upper bound on pool size, env override included.
pub const MAX_THREADS: usize = 64;

thread_local! {
    /// Set on pool worker threads: nested parallel calls run inline
    /// instead of re-entering the queue (no deadlock, no oversubscription).
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Depth of [`crate::run_serial`] scopes on this thread.
    static SERIAL_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    /// Pool installed by [`crate::with_local_pool`] for this thread.
    static LOCAL_POOL: std::cell::RefCell<Option<Arc<ThreadPool>>> =
        const { std::cell::RefCell::new(None) };
}

pub(crate) fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

pub(crate) fn serial_forced() -> bool {
    SERIAL_DEPTH.with(|d| d.get() > 0)
}

pub(crate) fn push_serial() {
    SERIAL_DEPTH.with(|d| d.set(d.get() + 1));
}

pub(crate) fn pop_serial() {
    SERIAL_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
}

pub(crate) fn swap_local_pool(pool: Option<Arc<ThreadPool>>) -> Option<Arc<ThreadPool>> {
    LOCAL_POOL.with(|p| std::mem::replace(&mut *p.borrow_mut(), pool))
}

pub(crate) fn local_pool() -> Option<Arc<ThreadPool>> {
    LOCAL_POOL.with(|p| p.borrow().clone())
}

/// A borrowed task pointer smuggled across threads. Soundness: the
/// submitting call blocks until `pending == 0`, so the referent outlives
/// every use.
#[derive(Clone, Copy)]
struct RawTask(&'static (dyn Fn(usize) + Sync));

struct Job {
    task: RawTask,
    n_chunks: usize,
    /// Next chunk index to claim.
    next: AtomicUsize,
    /// Chunks not yet finished.
    pending: AtomicUsize,
    /// Completion latch.
    done: Mutex<bool>,
    done_cv: Condvar,
    panicked: AtomicBool,
    /// The submitting thread's open-span stack, replayed as phantom
    /// frames around chunks that run on pool workers so their spans
    /// parent under the submitting span in the rsd-obs call tree.
    /// Empty when telemetry is off.
    ctx: rsd_obs::SpanContext,
}

impl Job {
    fn claim(&self) -> Option<usize> {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        (idx < self.n_chunks).then_some(idx)
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n_chunks
    }

    /// `apply_ctx` is true on worker threads only: the submitter's own
    /// stack already holds the real spans, so replaying the context
    /// there would double the path prefix.
    fn run_chunk(&self, idx: usize, apply_ctx: bool) {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if apply_ctx && !self.ctx.is_empty() {
                rsd_obs::with_context(&self.ctx, || (self.task.0)(idx));
            } else {
                (self.task.0)(idx);
            }
        }));
        if outcome.is_err() {
            self.panicked.store(true, Ordering::Release);
        }
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            *lock(&self.done) = true;
            self.done_cv.notify_all();
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
}

/// Mutex lock that shrugs off poisoning — a panicked chunk must not take
/// the pool down with it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A fixed-size pool of named worker threads.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers (clamped to `1..=MAX_THREADS`).
    /// A size of 1 spawns no workers at all: every run is inline.
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.clamp(1, MAX_THREADS);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = if threads > 1 {
            (0..threads)
                .map(|i| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("rsd-par-{i}"))
                        .spawn(move || worker_loop(&shared))
                        .expect("spawn rsd-par worker")
                })
                .collect()
        } else {
            Vec::new()
        };
        ThreadPool {
            shared,
            handles,
            threads,
        }
    }

    /// Number of threads that can execute chunks (workers; the submitting
    /// thread also participates).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(chunk)` for every chunk index in `0..n_chunks`, blocking
    /// until all have completed. Runs inline when the pool is size 1.
    /// Panics (after completion) if any chunk panicked.
    pub fn run(&self, n_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if n_chunks == 0 {
            return;
        }
        if self.threads <= 1 || n_chunks == 1 {
            for idx in 0..n_chunks {
                f(idx);
            }
            return;
        }
        // Erase the borrow; see the module docs for why this is sound.
        let task = RawTask(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        });
        let job = Arc::new(Job {
            task,
            n_chunks,
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(n_chunks),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panicked: AtomicBool::new(false),
            ctx: rsd_obs::current_context(),
        });
        lock(&self.shared.queue).push_back(Arc::clone(&job));
        self.shared.work_cv.notify_all();
        rsd_obs::counter_add("par.tasks", n_chunks as u64);

        // The submitter works too (its own stack already carries the
        // span context, so no replay here).
        while let Some(idx) = job.claim() {
            job.run_chunk(idx, false);
        }
        let mut done = lock(&job.done);
        while !*done {
            done = self
                .done_wait(done, &job)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        drop(done);
        if job.panicked.load(Ordering::Acquire) {
            panic!("rsd-par: a parallel chunk panicked");
        }
    }

    #[allow(clippy::type_complexity)]
    fn done_wait<'a>(
        &self,
        guard: MutexGuard<'a, bool>,
        job: &'a Job,
    ) -> Result<MutexGuard<'a, bool>, std::sync::PoisonError<MutexGuard<'a, bool>>> {
        job.done_cv.wait(guard)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    IN_WORKER.with(|w| w.set(true));
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                while q.front().is_some_and(|j| j.exhausted()) {
                    q.pop_front();
                }
                if let Some(j) = q.front() {
                    break Arc::clone(j);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = shared
                    .work_cv
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        while let Some(idx) = job.claim() {
            job.run_chunk(idx, true);
        }
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// Parse an `RSD_THREADS`-style value: absent/empty/`0` mean "auto"
/// (`available_parallelism`, capped), anything unparsable falls back to
/// auto as well.
pub fn parse_threads(raw: Option<&str>) -> usize {
    let auto = || {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(MAX_THREADS)
    };
    match raw.map(str::trim) {
        None | Some("") | Some("0") => auto(),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n.min(MAX_THREADS),
            _ => auto(),
        },
    }
}

/// The process-wide pool, created on first use. Size comes from
/// `RSD_THREADS` (see [`parse_threads`]); a `par.pool_size` gauge is
/// emitted at creation.
pub fn global_pool() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        let threads = parse_threads(std::env::var("RSD_THREADS").ok().as_deref());
        let pool = ThreadPool::new(threads);
        rsd_obs::gauge("par.pool_size", threads as f64);
        pool
    })
}
