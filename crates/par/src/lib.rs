//! `rsd-par` — the workspace's deterministic thread pool.
//!
//! A clean-room, std-only "work-stealing-lite" pool: one process-wide set
//! of workers (size from `RSD_THREADS`, default `available_parallelism`),
//! an injector queue of chunked index-range jobs, and caller
//! participation while waiting. No external crates.
//!
//! # Determinism guarantee
//!
//! Every primitive here decomposes work into chunks whose boundaries are
//! a pure function of the *problem size* (`len` and the caller's `grain`)
//! — never of the thread count. Each chunk writes disjoint output, and
//! every reduction folds per-chunk partials in ascending chunk order on
//! the calling thread. Consequently `RSD_THREADS=1`, `=4`, unset, and a
//! [`run_serial`] scope all produce **bit-identical** results; threads
//! only change *which* core executes a chunk and when.
//!
//! Callers must uphold the same rule: a `grain` passed to these functions
//! must not be derived from [`num_threads`].
//!
//! # Telemetry
//!
//! The pool emits a `par.pool_size` gauge at creation and counts
//! dispatched chunks in the `par.tasks` counter; NDJSON records carry a
//! `thread` field (see `rsd-obs`) so spans from pool workers are
//! attributable. Each job also captures the submitting thread's span
//! context and replays it on workers, so spans opened inside parallel
//! chunks parent under the submitting span in the rsd-obs call tree
//! instead of floating at top level.

mod pool;

pub use pool::{global_pool, parse_threads, ThreadPool, MAX_THREADS};

use std::ops::Range;
use std::sync::Arc;

/// Number of threads parallel sections may use on this thread: the local
/// pool installed by [`with_local_pool`], a [`run_serial`] scope (1), or
/// the global pool's size.
pub fn num_threads() -> usize {
    if pool::serial_forced() || pool::in_worker() {
        return 1;
    }
    match pool::local_pool() {
        Some(p) => p.threads(),
        None => global_pool().threads(),
    }
}

/// Run `f` with all rsd-par primitives forced serial on this thread
/// (nested scopes stack). The pool is untouched; chunks simply run inline
/// in ascending order — which, by the determinism contract, yields the
/// same bits as any parallel execution. Used by benches and tests as the
/// serial baseline.
pub fn run_serial<T>(f: impl FnOnce() -> T) -> T {
    pool::push_serial();
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            pool::pop_serial();
        }
    }
    let _guard = Guard;
    f()
}

/// Run `f` with parallel sections on this thread served by a temporary
/// pool of `threads` workers instead of the global pool — an in-process
/// stand-in for re-running with `RSD_THREADS=threads`. The pool is torn
/// down when the scope ends.
pub fn with_local_pool<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    struct Guard(Option<Arc<ThreadPool>>);
    impl Drop for Guard {
        fn drop(&mut self) {
            pool::swap_local_pool(self.0.take());
        }
    }
    let prev = pool::swap_local_pool(Some(Arc::new(ThreadPool::new(threads))));
    let _guard = Guard(prev);
    f()
}

/// Split `0..len` into chunks of `grain` indices and run `f` on each
/// chunk, in parallel when profitable. Chunk boundaries depend only on
/// `len` and `grain`. Runs inline when: the pool is size 1, there is a
/// single chunk, the caller is itself a pool worker (nested call), or a
/// [`run_serial`] scope is active.
pub fn parallel_for<F: Fn(Range<usize>) + Sync>(len: usize, grain: usize, f: F) {
    if len == 0 {
        return;
    }
    let grain = grain.clamp(1, len);
    let n_chunks = len.div_ceil(grain);
    let run_chunk = |chunk: usize| {
        let start = chunk * grain;
        f(start..(start + grain).min(len));
    };
    if n_chunks == 1 || pool::serial_forced() || pool::in_worker() {
        for c in 0..n_chunks {
            run_chunk(c);
        }
        return;
    }
    match pool::local_pool() {
        Some(p) => p.run(n_chunks, &run_chunk),
        None => global_pool().run(n_chunks, &run_chunk),
    }
}

/// Pointer wrapper so disjoint `&mut` chunks can be materialized on other
/// threads. Soundness: every use below hands each index range to exactly
/// one chunk.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the bare `*mut T` (edition-2021 disjoint
    /// capture would otherwise grab the field).
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Split `data` into disjoint chunks of `grain` elements and run
/// `f(chunk_start, chunk)` on each, in parallel when profitable.
pub fn parallel_chunks_mut<T: Send, F>(data: &mut [T], grain: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    let base = SendPtr(data.as_mut_ptr());
    parallel_for(len, grain, move |range| {
        // SAFETY: parallel_for chunks are disjoint subranges of 0..len.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(range.start), range.len()) };
        f(range.start, chunk);
    });
}

/// [`parallel_chunks_mut`] over two equal-length slices, chunked at the
/// same boundaries (for paired outputs like gradient/hessian arrays).
pub fn parallel_join_mut<A: Send, B: Send, F>(a: &mut [A], b: &mut [B], grain: usize, f: F)
where
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert_eq!(a.len(), b.len(), "parallel_join_mut length mismatch");
    let len = a.len();
    let pa = SendPtr(a.as_mut_ptr());
    let pb = SendPtr(b.as_mut_ptr());
    parallel_for(len, grain, move |range| {
        // SAFETY: disjoint subranges, one chunk per range (see above).
        let (ca, cb) = unsafe {
            (
                std::slice::from_raw_parts_mut(pa.get().add(range.start), range.len()),
                std::slice::from_raw_parts_mut(pb.get().add(range.start), range.len()),
            )
        };
        f(range.start, ca, cb);
    });
}

/// Map chunks of `0..len` to partial values in parallel, then fold the
/// partials **in ascending chunk order** on the calling thread. The fold
/// order is what keeps floating-point reductions independent of the
/// thread count. Returns `None` for `len == 0`.
pub fn parallel_reduce<R, M, F>(len: usize, grain: usize, map: M, mut fold: F) -> Option<R>
where
    R: Send,
    M: Fn(Range<usize>) -> R + Sync,
    F: FnMut(R, R) -> R,
{
    if len == 0 {
        return None;
    }
    let grain = grain.clamp(1, len);
    let n_chunks = len.div_ceil(grain);
    let mut parts: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n_chunks).collect();
    parallel_chunks_mut(&mut parts, 1, |chunk_idx, slot| {
        let start = chunk_idx * grain;
        slot[0] = Some(map(start..(start + grain).min(len)));
    });
    let mut iter = parts.into_iter().map(|p| p.expect("chunk executed"));
    let first = iter.next()?;
    Some(iter.fold(first, &mut fold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_chunk_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(1000, 7, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunks_mut_fills_disjoint_slices() {
        let mut data = vec![0usize; 503];
        parallel_chunks_mut(&mut data, 13, |start, chunk| {
            for (off, v) in chunk.iter_mut().enumerate() {
                *v = start + off;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn join_mut_chunks_align() {
        let mut a = vec![0usize; 257];
        let mut b = vec![0usize; 257];
        parallel_join_mut(&mut a, &mut b, 16, |start, ca, cb| {
            for (off, (x, y)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                *x = start + off;
                *y = 2 * (start + off);
            }
        });
        assert!(a.iter().enumerate().all(|(i, &v)| v == i));
        assert!(b.iter().enumerate().all(|(i, &v)| v == 2 * i));
    }

    #[test]
    fn reduce_order_is_thread_count_independent() {
        // An fp sum whose value depends on association order: if the fold
        // happened in claim order rather than chunk order, runs would
        // disagree with the serial scope.
        let xs: Vec<f32> = (0..10_000)
            .map(|i| ((i * 2_654_435_761_usize % 1000) as f32 - 500.0) * 1e-3)
            .collect();
        let sum = |r: std::ops::Range<usize>| xs[r].iter().copied().sum::<f32>();
        let par = parallel_reduce(xs.len(), 97, sum, |a, b| a + b).unwrap();
        let ser = run_serial(|| parallel_reduce(xs.len(), 97, sum, |a, b| a + b).unwrap());
        assert_eq!(par.to_bits(), ser.to_bits());
    }

    #[test]
    fn nested_calls_run_inline() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(8, 1, |outer| {
            for o in outer {
                parallel_for(8, 1, |inner| {
                    for i in inner {
                        hits[o * 8 + i].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn local_pool_runs_all_chunks_and_tears_down() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        with_local_pool(4, || {
            assert_eq!(num_threads(), 4);
            parallel_for(100, 3, |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_serial_reports_one_thread() {
        run_serial(|| assert_eq!(num_threads(), 1));
    }

    #[test]
    fn panics_propagate_to_submitter() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(16, &|chunk| {
                if chunk == 7 {
                    panic!("chunk 7 exploded");
                }
            });
        }));
        assert!(result.is_err());
        // Pool still usable after a panic.
        let count = AtomicUsize::new(0);
        pool.run(8, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn worker_spans_parent_under_submitting_span() {
        rsd_obs::capture(|| {
            let pool = ThreadPool::new(4);
            {
                let _submit = rsd_obs::Span::enter("par.test.submit");
                pool.run(64, &|_chunk| {
                    let _s = rsd_obs::Span::enter("par.test.chunk");
                    std::hint::black_box((0..5_000).sum::<u64>());
                });
            }
            // Every chunk span — whether it ran on the submitter (real
            // stack) or a worker (replayed context) — lands on the same
            // tree path, and none float at top level.
            let nested = rsd_obs::registry()
                .tree_stat("par.test.submit;par.test.chunk")
                .expect("chunk spans parent under the submitting span");
            assert_eq!(nested.count, 64);
            assert!(rsd_obs::registry().tree_stat("par.test.chunk").is_none());
        });
    }

    #[test]
    fn parse_threads_honors_override_and_falls_back() {
        assert_eq!(parse_threads(Some("4")), 4);
        assert_eq!(parse_threads(Some(" 2 ")), 2);
        assert_eq!(parse_threads(Some("999")), MAX_THREADS);
        let auto = parse_threads(None);
        assert!(auto >= 1);
        assert_eq!(parse_threads(Some("")), auto);
        assert_eq!(parse_threads(Some("0")), auto);
        assert_eq!(parse_threads(Some("banana")), auto);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        parallel_for(0, 8, |_| panic!("must not run"));
        assert!(parallel_reduce(0, 8, |_| 0u32, |a, b| a + b).is_none());
        let mut empty: Vec<u8> = Vec::new();
        parallel_chunks_mut(&mut empty, 4, |_, _| panic!("must not run"));
        parallel_for(5, 0, |r| assert!(r.len() == 1)); // grain clamped to >= 1
    }
}
