#![warn(missing_docs)]

//! Text preprocessing for RSD-15K (§II-A2 of the paper).
//!
//! The paper's pre-processing phase performs, in order:
//!
//! 1. removal of non-relevant posts (off-topic for the suicide-risk theme);
//! 2. duplicate removal;
//! 3. noise filtering — special characters, excessive punctuation,
//!    irrelevant links;
//! 4. tokenization and text normalization;
//! 5. chronological partitioning for time-series analysis.
//!
//! Each step is a module here: [`relevance`], [`dedup`], [`clean`],
//! [`tokenize`], and the orchestrating [`pipeline`]. On top of those sit
//! the representation layers the baselines share: [`vocab`] (token ↔ id
//! with special tokens for the neural models), [`tfidf`] (sparse TF-IDF
//! vectors for the XGBoost feature framework) and [`embeddings`]
//! (skip-gram word vectors, the fastText-style representation of the
//! paper's XGBoost reference [19]).

pub mod clean;
pub mod dedup;
pub mod embeddings;
pub mod pipeline;
pub mod relevance;
pub mod stopwords;
pub mod tfidf;
pub mod tokenize;
pub mod vocab;

pub use clean::clean_text;
pub use dedup::ChronoDedup;
pub use pipeline::{PostAnalysis, PostFate, PreprocessReport, Preprocessor};
pub use tfidf::{SparseVec, TfIdfVectorizer};
pub use tokenize::{sentences, tokenize};
pub use vocab::{SpecialToken, Vocabulary};
