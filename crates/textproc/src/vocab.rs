//! Token vocabulary shared by the neural baselines.
//!
//! Maps tokens to dense ids with the four special tokens transformer-style
//! models need: `[PAD]` (batch padding), `[UNK]` (out-of-vocabulary),
//! `[CLS]` (sequence representation for classification) and `[MASK]`
//! (masked-language-model pretraining). Built from a token-frequency pass
//! with a minimum-count threshold and an optional size cap.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::tokenize::tokenize;
use rsd_common::{Result, RsdError};

/// The reserved special tokens, in id order (`[PAD]` = 0, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecialToken {
    /// Padding token (id 0 — embeddings for it are masked out).
    Pad,
    /// Out-of-vocabulary token.
    Unk,
    /// Classification token prepended to sequences.
    Cls,
    /// Mask token for MLM pretraining.
    Mask,
}

impl SpecialToken {
    /// All special tokens, in id order.
    pub const ALL: [SpecialToken; 4] = [
        SpecialToken::Pad,
        SpecialToken::Unk,
        SpecialToken::Cls,
        SpecialToken::Mask,
    ];

    /// The id this special token always occupies.
    pub fn id(self) -> u32 {
        self as u32
    }

    /// Surface form (never produced by the tokenizer).
    pub fn surface(self) -> &'static str {
        match self {
            SpecialToken::Pad => "[PAD]",
            SpecialToken::Unk => "[UNK]",
            SpecialToken::Cls => "[CLS]",
            SpecialToken::Mask => "[MASK]",
        }
    }
}

/// An immutable token vocabulary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocabulary {
    token_to_id: HashMap<String, u32>,
    id_to_token: Vec<String>,
}

impl Vocabulary {
    /// Build from an iterator of cleaned documents.
    ///
    /// Tokens appearing fewer than `min_count` times are dropped; if
    /// `max_size` is `Some`, only the most frequent tokens are kept (ties
    /// broken alphabetically for determinism). Special tokens are always
    /// present and never counted against `max_size`.
    pub fn build<'a, I>(docs: I, min_count: usize, max_size: Option<usize>) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut freq: HashMap<String, usize> = HashMap::new();
        for doc in docs {
            for tok in tokenize(doc) {
                *freq.entry(tok.to_string()).or_insert(0) += 1;
            }
        }
        let mut entries: Vec<(String, usize)> = freq
            .into_iter()
            .filter(|(_, c)| *c >= min_count.max(1))
            .collect();
        // Sort by frequency descending then token ascending: deterministic.
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        if let Some(cap) = max_size {
            entries.truncate(cap);
        }

        let mut id_to_token: Vec<String> = SpecialToken::ALL
            .iter()
            .map(|s| s.surface().to_string())
            .collect();
        id_to_token.extend(entries.into_iter().map(|(t, _)| t));

        let token_to_id = id_to_token
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u32))
            .collect();

        Vocabulary {
            token_to_id,
            id_to_token,
        }
    }

    /// Total size including special tokens.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True if only the special tokens are present.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.len() <= SpecialToken::ALL.len()
    }

    /// Id for a token, falling back to `[UNK]`.
    pub fn id(&self, token: &str) -> u32 {
        self.token_to_id
            .get(token)
            .copied()
            .unwrap_or(SpecialToken::Unk.id())
    }

    /// Token for an id.
    pub fn token(&self, id: u32) -> Result<&str> {
        self.id_to_token
            .get(id as usize)
            .map(String::as_str)
            .ok_or_else(|| RsdError::not_found("token id", id))
    }

    /// Encode a cleaned document to ids (no specials added).
    pub fn encode(&self, cleaned: &str) -> Vec<u32> {
        tokenize(cleaned).iter().map(|t| self.id(t)).collect()
    }

    /// Encode with a leading `[CLS]`, truncated/padded to `max_len`.
    /// Returns `(ids, attention_mask)` where mask is 1.0 for real tokens.
    pub fn encode_for_model(&self, cleaned: &str, max_len: usize) -> (Vec<u32>, Vec<f32>) {
        assert!(max_len >= 2, "max_len must fit [CLS] plus one token");
        let mut ids = Vec::with_capacity(max_len);
        ids.push(SpecialToken::Cls.id());
        for t in tokenize(cleaned) {
            if ids.len() >= max_len {
                break;
            }
            ids.push(self.id(t));
        }
        let real = ids.len();
        ids.resize(max_len, SpecialToken::Pad.id());
        let mut mask = vec![0.0f32; max_len];
        for m in mask.iter_mut().take(real) {
            *m = 1.0;
        }
        (ids, mask)
    }

    /// Fraction of tokens in `cleaned` that map to `[UNK]`.
    pub fn oov_rate(&self, cleaned: &str) -> f64 {
        let toks = tokenize(cleaned);
        if toks.is_empty() {
            return 0.0;
        }
        let unk = toks
            .iter()
            .filter(|t| !self.token_to_id.contains_key(**t))
            .count();
        unk as f64 / toks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<&'static str> {
        vec![
            "i want to end it all",
            "i want to sleep",
            "end it end it",
            "rare",
        ]
    }

    #[test]
    fn specials_occupy_fixed_ids() {
        let v = Vocabulary::build(docs(), 1, None);
        assert_eq!(v.id("[PAD]"), 0);
        assert_eq!(v.token(0).unwrap(), "[PAD]");
        assert_eq!(v.token(1).unwrap(), "[UNK]");
        assert_eq!(v.token(2).unwrap(), "[CLS]");
        assert_eq!(v.token(3).unwrap(), "[MASK]");
    }

    #[test]
    fn min_count_filters() {
        let v = Vocabulary::build(docs(), 2, None);
        assert_eq!(v.id("rare"), SpecialToken::Unk.id());
        assert_ne!(v.id("want"), SpecialToken::Unk.id());
    }

    #[test]
    fn max_size_caps_by_frequency() {
        let v = Vocabulary::build(docs(), 1, Some(2));
        assert_eq!(v.len(), 4 + 2);
        // "it" (3) and "end" (3) are the most frequent.
        assert_ne!(v.id("it"), SpecialToken::Unk.id());
        assert_ne!(v.id("end"), SpecialToken::Unk.id());
        assert_eq!(v.id("want"), SpecialToken::Unk.id());
    }

    #[test]
    fn encode_round_trips_known_tokens() {
        let v = Vocabulary::build(docs(), 1, None);
        let ids = v.encode("i want to sleep");
        let toks: Vec<&str> = ids.iter().map(|&i| v.token(i).unwrap()).collect();
        assert_eq!(toks, vec!["i", "want", "to", "sleep"]);
    }

    #[test]
    fn encode_for_model_pads_and_masks() {
        let v = Vocabulary::build(docs(), 1, None);
        let (ids, mask) = v.encode_for_model("i want", 6);
        assert_eq!(ids.len(), 6);
        assert_eq!(ids[0], SpecialToken::Cls.id());
        assert_eq!(mask, vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
        assert_eq!(&ids[3..], &[0, 0, 0]);
    }

    #[test]
    fn encode_for_model_truncates() {
        let v = Vocabulary::build(docs(), 1, None);
        let (ids, mask) = v.encode_for_model("i want to end it all", 4);
        assert_eq!(ids.len(), 4);
        assert!(mask.iter().all(|&m| m == 1.0));
    }

    #[test]
    fn oov_rate_measured() {
        let v = Vocabulary::build(docs(), 1, None);
        assert_eq!(v.oov_rate("i want"), 0.0);
        assert_eq!(v.oov_rate("zebra quagga"), 1.0);
        assert!((v.oov_rate("i zebra") - 0.5).abs() < 1e-12);
        assert_eq!(v.oov_rate(""), 0.0);
    }

    #[test]
    fn deterministic_ids() {
        let a = Vocabulary::build(docs(), 1, None);
        let b = Vocabulary::build(docs(), 1, None);
        for tok in ["i", "want", "end", "it"] {
            assert_eq!(a.id(tok), b.id(tok));
        }
    }
}
