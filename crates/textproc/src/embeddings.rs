//! Skip-gram word embeddings with negative sampling.
//!
//! The paper's XGBoost baseline cites Ghosal & Jain's fastText + XGBoost
//! design ([19]); this module provides the equivalent self-trained dense
//! word representation: a word2vec-style skip-gram model with negative
//! sampling, trainable on the unannotated pool, plus document averaging
//! for downstream feature use. Pure Rust, deterministic, SGD-based.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::tokenize::tokenize;
use rsd_common::rng::{stream_rng, weighted_index};
use rsd_common::{Result, RsdError};

/// Skip-gram hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkipGramConfig {
    /// Embedding width.
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Epochs over the corpus.
    pub epochs: usize,
    /// Minimum token frequency to receive a vector.
    pub min_count: usize,
    /// Training seed.
    pub seed: u64,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        SkipGramConfig {
            dim: 32,
            window: 3,
            negatives: 5,
            lr: 0.025,
            epochs: 3,
            min_count: 2,
            seed: 0,
        }
    }
}

/// A trained embedding table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WordEmbeddings {
    dim: usize,
    vocab: HashMap<String, usize>,
    /// Input vectors, row per word.
    vectors: Vec<f32>,
}

impl WordEmbeddings {
    /// Train skip-gram embeddings on cleaned documents.
    pub fn train(docs: &[String], cfg: &SkipGramConfig) -> Result<WordEmbeddings> {
        if docs.is_empty() {
            return Err(RsdError::data("SkipGram: no documents"));
        }
        if cfg.dim == 0 || cfg.window == 0 {
            return Err(RsdError::config("dim/window", "must be positive"));
        }

        // Vocabulary and unigram counts.
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for doc in docs {
            for tok in tokenize(doc) {
                *counts.entry(tok).or_insert(0) += 1;
            }
        }
        let mut words: Vec<(&str, usize)> = counts
            .into_iter()
            .filter(|(_, c)| *c >= cfg.min_count.max(1))
            .collect();
        words.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        if words.is_empty() {
            return Err(RsdError::data("SkipGram: vocabulary empty after min_count"));
        }
        let vocab: HashMap<String, usize> = words
            .iter()
            .enumerate()
            .map(|(i, (w, _))| (w.to_string(), i))
            .collect();
        let v = vocab.len();

        // Negative-sampling distribution: unigram^0.75.
        let neg_weights: Vec<f64> = words.iter().map(|(_, c)| (*c as f64).powf(0.75)).collect();

        // Two tables, small random init.
        let mut rng: StdRng = stream_rng(cfg.seed, "skipgram.init");
        let mut input: Vec<f32> = (0..v * cfg.dim)
            .map(|_| (rng.gen::<f32>() - 0.5) / cfg.dim as f32)
            .collect();
        let mut output: Vec<f32> = vec![0.0; v * cfg.dim];

        // Pre-encode documents.
        let encoded: Vec<Vec<usize>> = docs
            .iter()
            .map(|d| {
                tokenize(d)
                    .into_iter()
                    .filter_map(|t| vocab.get(t).copied())
                    .collect()
            })
            .collect();

        let mut train_rng: StdRng = stream_rng(cfg.seed, "skipgram.train");
        for _epoch in 0..cfg.epochs {
            for doc in &encoded {
                for (pos, &center) in doc.iter().enumerate() {
                    let radius = 1 + (train_rng.gen::<usize>() % cfg.window);
                    let lo = pos.saturating_sub(radius);
                    let hi = (pos + radius + 1).min(doc.len());
                    for ctx_pos in lo..hi {
                        if ctx_pos == pos {
                            continue;
                        }
                        let context = doc[ctx_pos];
                        // One positive + k negative updates.
                        sgd_pair(
                            &mut input,
                            &mut output,
                            center,
                            context,
                            1.0,
                            cfg.dim,
                            cfg.lr,
                        );
                        for _ in 0..cfg.negatives {
                            let neg = weighted_index(&mut train_rng, &neg_weights);
                            if neg == context {
                                continue;
                            }
                            sgd_pair(&mut input, &mut output, center, neg, 0.0, cfg.dim, cfg.lr);
                        }
                    }
                }
            }
        }

        Ok(WordEmbeddings {
            dim: cfg.dim,
            vocab,
            vectors: input,
        })
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Vector for a word, if in vocabulary.
    pub fn vector(&self, word: &str) -> Option<&[f32]> {
        self.vocab
            .get(word)
            .map(|&i| &self.vectors[i * self.dim..(i + 1) * self.dim])
    }

    /// Mean of the vectors of in-vocabulary tokens (zeros if none) — the
    /// fastText-style document representation used as model features.
    pub fn embed_document(&self, cleaned: &str) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        let mut n = 0usize;
        for tok in tokenize(cleaned) {
            if let Some(v) = self.vector(tok) {
                for (o, &x) in out.iter_mut().zip(v) {
                    *o += x;
                }
                n += 1;
            }
        }
        if n > 0 {
            for o in &mut out {
                *o /= n as f32;
            }
        }
        out
    }

    /// Cosine similarity between two words' vectors (`None` if either is
    /// out of vocabulary).
    pub fn similarity(&self, a: &str, b: &str) -> Option<f32> {
        let va = self.vector(a)?;
        let vb = self.vector(b)?;
        let dot: f32 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
        let na: f32 = va.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = vb.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            return Some(0.0);
        }
        Some(dot / (na * nb))
    }
}

/// One positive/negative SGD step on a (center, target) pair.
fn sgd_pair(
    input: &mut [f32],
    output: &mut [f32],
    center: usize,
    target: usize,
    label: f32,
    dim: usize,
    lr: f32,
) {
    let ci = center * dim;
    let ti = target * dim;
    let mut dot = 0.0f32;
    for d in 0..dim {
        dot += input[ci + d] * output[ti + d];
    }
    let pred = 1.0 / (1.0 + (-dot).exp());
    let grad = (pred - label) * lr;
    for d in 0..dim {
        let gi = grad * output[ti + d];
        let go = grad * input[ci + d];
        input[ci + d] -= gi;
        output[ti + d] -= go;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy corpus with two disjoint topic clusters: {cat, dog, pet} and
    /// {stock, bond, market}. Words within a cluster co-occur; across
    /// clusters they never do.
    fn topic_corpus() -> Vec<String> {
        let mut docs = Vec::new();
        for _ in 0..120 {
            docs.push("the cat and dog are pet friends cat dog pet".to_string());
            docs.push("the stock and bond in market rise stock bond market".to_string());
        }
        docs
    }

    fn trained() -> WordEmbeddings {
        WordEmbeddings::train(
            &topic_corpus(),
            &SkipGramConfig {
                dim: 16,
                epochs: 4,
                seed: 7,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn within_cluster_similarity_exceeds_across() {
        let emb = trained();
        let same = emb.similarity("cat", "dog").unwrap();
        let cross = emb.similarity("cat", "bond").unwrap();
        assert!(
            same > cross + 0.2,
            "cat~dog {same} should exceed cat~bond {cross}"
        );
    }

    #[test]
    fn document_embedding_reflects_topic() {
        let emb = trained();
        let pet_doc = emb.embed_document("cat dog pet");
        let fin_doc = emb.embed_document("stock bond market");
        let cos = |a: &[f32], b: &[f32]| {
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb)
        };
        let pet_doc2 = emb.embed_document("dog pet");
        assert!(cos(&pet_doc, &pet_doc2) > cos(&pet_doc, &fin_doc));
    }

    #[test]
    fn oov_handling() {
        let emb = trained();
        assert!(emb.vector("zebra").is_none());
        assert!(emb.similarity("cat", "zebra").is_none());
        let z = emb.embed_document("zebra quagga");
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = trained();
        let b = trained();
        assert_eq!(a.vector("cat"), b.vector("cat"));
    }

    #[test]
    fn validation_errors() {
        assert!(WordEmbeddings::train(&[], &SkipGramConfig::default()).is_err());
        let docs = vec!["one two".to_string()];
        let mut cfg = SkipGramConfig::default();
        cfg.dim = 0;
        assert!(WordEmbeddings::train(&docs, &cfg).is_err());
        // min_count filters everything.
        let cfg = SkipGramConfig {
            min_count: 10,
            ..Default::default()
        };
        assert!(WordEmbeddings::train(&docs, &cfg).is_err());
    }

    #[test]
    fn min_count_respected() {
        let docs = vec!["common common common rare".to_string(); 3];
        let emb = WordEmbeddings::train(
            &docs,
            &SkipGramConfig {
                min_count: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(emb.vector("common").is_some());
        assert!(emb.vector("rare").is_none());
    }
}
