//! English stopword list used by the word-frequency analyses (Figs. 2–3)
//! and optionally by the TF-IDF vectorizer.

/// A compact English stopword list: function words that carry no
//  class-discriminative content for the word-cloud figures.
pub const STOPWORDS: &[&str] = &[
    "a",
    "about",
    "after",
    "again",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
    "im",
    "ive",
    "id",
    "dont",
    "cant",
    "wont",
    "didnt",
    "doesnt",
    "isnt",
    "wasnt",
    "couldnt",
    "shouldnt",
    "don't",
    "can't",
    "won't",
    "didn't",
    "doesn't",
    "isn't",
    "wasn't",
    "couldn't",
    "shouldn't",
    "i'm",
    "i've",
    "i'd",
    "it's",
    "that's",
];

/// Membership test (linear scan over a small static list is fine: the list
/// has ~150 entries and callers hit it once per token during figure
/// generation, not in any hot loop).
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.contains(&token)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_function_words_are_stopwords() {
        for w in ["the", "i", "and", "don't", "i'm"] {
            assert!(is_stopword(w), "{w}");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["suicide", "hospital", "alone", "note", "pills"] {
            assert!(!is_stopword(w), "{w}");
        }
    }

    #[test]
    fn list_is_lowercase_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for w in STOPWORDS {
            assert_eq!(*w, w.to_lowercase());
            assert!(seen.insert(w), "duplicate stopword {w}");
        }
    }
}
