//! Noise filtering and normalization (paper §II-A2, step 3–4).
//!
//! Removes URLs, stray special characters and punctuation runs, folds case
//! and whitespace. Cleaning is conservative: sentence-final punctuation is
//! preserved as a single `.` so sentence segmentation still works
//! downstream.

/// Clean one raw post body: strip links, collapse punctuation runs, drop
/// non-linguistic special characters, lowercase, and normalize whitespace.
pub fn clean_text(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for token in raw.split_whitespace() {
        if is_url(token) {
            continue;
        }
        let cleaned = clean_token(token);
        if cleaned.is_empty() {
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&cleaned);
    }
    out
}

/// True if the token looks like a URL or bare domain link.
pub fn is_url(token: &str) -> bool {
    let t = token.trim_matches(|c: char| c.is_ascii_punctuation());
    token.starts_with("http://")
        || token.starts_with("https://")
        || token.starts_with("www.")
        || t.starts_with("http://")
        || t.starts_with("https://")
        || t.starts_with("www.")
}

/// Clean a single whitespace-delimited token: lowercase, keep letters,
/// digits and intra-word apostrophes; collapse any trailing punctuation run
/// into at most one period.
fn clean_token(token: &str) -> String {
    let mut cleaned = String::with_capacity(token.len());
    let mut saw_terminal = false;
    for ch in token.chars() {
        if ch.is_alphanumeric() {
            for lower in ch.to_lowercase() {
                cleaned.push(lower);
            }
            saw_terminal = false;
        } else if ch == '\'' || ch == '’' {
            // Keep apostrophes only between word characters ("don't").
            if cleaned.ends_with(|c: char| c.is_alphanumeric()) {
                cleaned.push('\'');
            }
        } else if matches!(ch, '.' | '!' | '?') {
            saw_terminal = true;
        }
        // Everything else (~, #, *, emoji, commas, dashes) is dropped.
    }
    // Trim an apostrophe left dangling at the end.
    while cleaned.ends_with('\'') {
        cleaned.pop();
    }
    if saw_terminal && !cleaned.is_empty() {
        cleaned.push('.');
    }
    cleaned
}

/// Fraction of characters in a string that are alphanumeric or spaces —
/// used by quality heuristics to spot pure-noise posts.
pub fn linguistic_density(text: &str) -> f64 {
    if text.is_empty() {
        return 0.0;
    }
    let good = text
        .chars()
        .filter(|c| c.is_alphanumeric() || c.is_whitespace() || *c == '\'')
        .count();
    good as f64 / text.chars().count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_urls() {
        assert_eq!(
            clean_text("check this https://imgur.com/a/123 out"),
            "check this out"
        );
        assert_eq!(clean_text("www.example.com lonely"), "lonely");
        assert_eq!(clean_text("(https://a.b/c)"), "");
    }

    #[test]
    fn collapses_punctuation_runs() {
        assert_eq!(clean_text("help me!!!"), "help me.");
        assert_eq!(clean_text("why??  why!?"), "why. why.");
    }

    #[test]
    fn drops_special_characters() {
        assert_eq!(clean_text("so ~~ #### tired"), "so tired");
        assert_eq!(clean_text("a*b c#d"), "ab cd");
    }

    #[test]
    fn lowercases() {
        assert_eq!(clean_text("I CANNOT Sleep"), "i cannot sleep");
    }

    #[test]
    fn keeps_intra_word_apostrophes() {
        assert_eq!(clean_text("don't can't o'clock"), "don't can't o'clock");
        assert_eq!(clean_text("'''"), "");
        assert_eq!(clean_text("end'"), "end");
    }

    #[test]
    fn preserves_sentence_boundaries() {
        let cleaned = clean_text("first sentence. second one!!! third?");
        assert_eq!(cleaned, "first sentence. second one. third.");
    }

    #[test]
    fn normalizes_whitespace() {
        assert_eq!(clean_text("  a \t b \n c  "), "a b c");
    }

    #[test]
    fn idempotent() {
        let raw = "I survived!! ~~ https://x.y/z don't WORRY...";
        let once = clean_text(raw);
        let twice = clean_text(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn unicode_apostrophe_folds() {
        assert_eq!(clean_text("don’t"), "don't");
    }

    #[test]
    fn density_detects_noise() {
        assert!(linguistic_density("plain words here") > 0.95);
        assert!(linguistic_density("#### ~~ !!") < 0.5);
        assert_eq!(linguistic_density(""), 0.0);
    }
}
