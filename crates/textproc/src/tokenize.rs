//! Tokenization and sentence segmentation (paper §II-A2, step 4).
//!
//! Operates on *cleaned* text (see [`crate::clean`]): lowercase words with
//! optional intra-word apostrophes, sentences delimited by single periods.

/// Split cleaned text into word tokens. Apostrophes are kept inside words
/// (`don't`), periods and any residual non-alphanumerics split tokens.
pub fn tokenize(text: &str) -> Vec<&str> {
    text.split(|c: char| !(c.is_alphanumeric() || c == '\''))
        .map(|t| t.trim_matches('\''))
        .filter(|t| !t.is_empty())
        .collect()
}

/// Split cleaned text into sentences on `.` boundaries, trimming whitespace
/// and dropping empties.
pub fn sentences(text: &str) -> Vec<&str> {
    text.split('.')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

/// Count tokens without allocating the token vector.
pub fn token_count(text: &str) -> usize {
    text.split(|c: char| !(c.is_alphanumeric() || c == '\''))
        .filter(|t| !t.trim_matches('\'').is_empty())
        .count()
}

/// Iterator over word n-grams (as joined strings) of the given order.
pub fn ngrams(tokens: &[&str], n: usize) -> Vec<String> {
    if n == 0 || tokens.len() < n {
        return Vec::new();
    }
    tokens.windows(n).map(|w| w.join(" ")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokenization() {
        assert_eq!(
            tokenize("i want to end it all."),
            vec!["i", "want", "to", "end", "it", "all"]
        );
    }

    #[test]
    fn apostrophes_stay_in_words() {
        assert_eq!(tokenize("don't stop"), vec!["don't", "stop"]);
        assert_eq!(tokenize("'quoted'"), vec!["quoted"]);
    }

    #[test]
    fn empty_and_punct_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("...").is_empty());
    }

    #[test]
    fn sentence_split() {
        assert_eq!(
            sentences("first one. second one. "),
            vec!["first one", "second one"]
        );
        assert!(sentences("").is_empty());
    }

    #[test]
    fn token_count_matches_tokenize() {
        for text in ["a b c", "don't. stop me now.", "", "..", "one"] {
            assert_eq!(token_count(text), tokenize(text).len(), "{text:?}");
        }
    }

    #[test]
    fn bigrams() {
        let toks = tokenize("i want to die");
        assert_eq!(ngrams(&toks, 2), vec!["i want", "want to", "to die"]);
        assert!(ngrams(&toks, 5).is_empty());
        assert!(ngrams(&toks, 0).is_empty());
    }
}
