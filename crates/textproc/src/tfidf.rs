//! Sparse TF-IDF vectorization (the text dimension of the paper's XGBoost
//! feature framework, §III-A1).
//!
//! Classic smoothed formulation, matching scikit-learn's defaults so the
//! baseline is recognizable: `idf(t) = ln((1 + N) / (1 + df(t))) + 1`,
//! raw term counts for TF, and L2 normalization per document.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::tokenize::tokenize;
use rsd_common::{Result, RsdError};

/// A sparse vector: parallel `(index, value)` arrays sorted by index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SparseVec {
    /// Feature indices, strictly increasing.
    pub indices: Vec<u32>,
    /// Values parallel to `indices`.
    pub values: Vec<f32>,
}

impl SparseVec {
    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.values.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Dot product with another sparse vector (merge join).
    pub fn dot(&self, other: &SparseVec) -> f32 {
        let mut sum = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < self.indices.len() && j < other.indices.len() {
            match self.indices[i].cmp(&other.indices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += self.values[i] * other.values[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }

    /// Cosine similarity; 0.0 if either vector is zero.
    pub fn cosine(&self, other: &SparseVec) -> f32 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// Densify into a `dim`-length vector.
    pub fn to_dense(&self, dim: usize) -> Vec<f32> {
        let mut out = vec![0.0; dim];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            if (i as usize) < dim {
                out[i as usize] = v;
            }
        }
        out
    }
}

/// A fitted TF-IDF vectorizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfIdfVectorizer {
    term_to_index: HashMap<String, u32>,
    idf: Vec<f32>,
    n_docs: usize,
}

impl TfIdfVectorizer {
    /// Fit on cleaned documents. Terms with document frequency below
    /// `min_df` are dropped; `max_features` keeps the highest-df terms
    /// (ties alphabetical) for determinism.
    pub fn fit<'a, I>(docs: I, min_df: usize, max_features: Option<usize>) -> Result<Self>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut df: HashMap<String, usize> = HashMap::new();
        let mut n_docs = 0usize;
        for doc in docs {
            n_docs += 1;
            let mut seen: Vec<&str> = tokenize(doc);
            seen.sort_unstable();
            seen.dedup();
            for t in seen {
                *df.entry(t.to_string()).or_insert(0) += 1;
            }
        }
        if n_docs == 0 {
            return Err(RsdError::data("TfIdfVectorizer: no documents"));
        }
        let mut entries: Vec<(String, usize)> = df
            .into_iter()
            .filter(|(_, c)| *c >= min_df.max(1))
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        if let Some(cap) = max_features {
            entries.truncate(cap);
        }
        // Re-sort alphabetically so indices are stable and ordered.
        entries.sort_by(|a, b| a.0.cmp(&b.0));

        let mut term_to_index = HashMap::with_capacity(entries.len());
        let mut idf = Vec::with_capacity(entries.len());
        for (i, (term, dfc)) in entries.into_iter().enumerate() {
            term_to_index.insert(term, i as u32);
            idf.push((((1 + n_docs) as f32) / ((1 + dfc) as f32)).ln() + 1.0);
        }
        Ok(TfIdfVectorizer {
            term_to_index,
            idf,
            n_docs,
        })
    }

    /// Vocabulary size.
    pub fn dim(&self) -> usize {
        self.idf.len()
    }

    /// Number of documents seen at fit time.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Transform one cleaned document into an L2-normalized sparse vector.
    pub fn transform(&self, doc: &str) -> SparseVec {
        let mut counts: HashMap<u32, f32> = HashMap::new();
        for t in tokenize(doc) {
            if let Some(&idx) = self.term_to_index.get(t) {
                *counts.entry(idx).or_insert(0.0) += 1.0;
            }
        }
        let mut pairs: Vec<(u32, f32)> = counts
            .into_iter()
            .map(|(i, tf)| (i, tf * self.idf[i as usize]))
            .collect();
        pairs.sort_unstable_by_key(|&(i, _)| i);

        let norm: f32 = pairs.iter().map(|(_, v)| v * v).sum::<f32>().sqrt();
        let mut vec = SparseVec::default();
        for (i, v) in pairs {
            vec.indices.push(i);
            vec.values.push(if norm > 0.0 { v / norm } else { v });
        }
        vec
    }

    /// Index of a term if it is in the fitted vocabulary.
    pub fn term_index(&self, term: &str) -> Option<u32> {
        self.term_to_index.get(term).copied()
    }

    /// Terms in index order (inverse of [`TfIdfVectorizer::term_index`]).
    pub fn terms(&self) -> Vec<&str> {
        let mut out = vec![""; self.term_to_index.len()];
        for (term, &idx) in &self.term_to_index {
            out[idx as usize] = term.as_str();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit_basic() -> TfIdfVectorizer {
        TfIdfVectorizer::fit(vec!["the cat sat", "the dog sat", "the bird flew"], 1, None).unwrap()
    }

    #[test]
    fn fit_rejects_empty_corpus() {
        assert!(TfIdfVectorizer::fit(Vec::<&str>::new(), 1, None).is_err());
    }

    #[test]
    fn transforms_are_l2_normalized() {
        let v = fit_basic();
        let x = v.transform("the cat sat");
        assert!((x.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rare_terms_get_higher_idf() {
        let v = fit_basic();
        let common = v.transform("the");
        let rare = v.transform("bird");
        // Both are single-term docs → normalized to 1, so compare raw idf.
        let the_idx = v.term_index("the").unwrap() as usize;
        let bird_idx = v.term_index("bird").unwrap() as usize;
        assert!(v.idf[bird_idx] > v.idf[the_idx]);
        assert_eq!(common.nnz(), 1);
        assert_eq!(rare.nnz(), 1);
    }

    #[test]
    fn unseen_terms_ignored() {
        let v = fit_basic();
        let x = v.transform("zebra quagga");
        assert_eq!(x.nnz(), 0);
        assert_eq!(x.norm(), 0.0);
    }

    #[test]
    fn min_df_filters() {
        let v = TfIdfVectorizer::fit(vec!["a b", "a c", "a d"], 2, None).unwrap();
        assert!(v.term_index("a").is_some());
        assert!(v.term_index("b").is_none());
    }

    #[test]
    fn max_features_keeps_highest_df() {
        let v = TfIdfVectorizer::fit(vec!["a b", "a c", "a b"], 1, Some(2)).unwrap();
        assert_eq!(v.dim(), 2);
        assert!(v.term_index("a").is_some());
        assert!(v.term_index("b").is_some());
        assert!(v.term_index("c").is_none());
    }

    #[test]
    fn cosine_similarity_sensible() {
        let v = fit_basic();
        let a = v.transform("the cat sat");
        let b = v.transform("the cat sat");
        let c = v.transform("bird flew");
        assert!((a.cosine(&b) - 1.0).abs() < 1e-6);
        assert!(a.cosine(&c) < 0.3);
        assert_eq!(a.cosine(&SparseVec::default()), 0.0);
    }

    #[test]
    fn sparse_dot_merge_join() {
        let a = SparseVec {
            indices: vec![0, 2, 5],
            values: vec![1.0, 2.0, 3.0],
        };
        let b = SparseVec {
            indices: vec![2, 5, 7],
            values: vec![4.0, 5.0, 6.0],
        };
        assert_eq!(a.dot(&b), 2.0 * 4.0 + 3.0 * 5.0);
    }

    #[test]
    fn to_dense_places_values() {
        let a = SparseVec {
            indices: vec![1, 3],
            values: vec![0.5, 0.25],
        };
        assert_eq!(a.to_dense(5), vec![0.0, 0.5, 0.0, 0.25, 0.0]);
        // Out-of-range indices are dropped, not panicking.
        assert_eq!(a.to_dense(2), vec![0.0, 0.5]);
    }

    #[test]
    fn indices_strictly_increasing() {
        let v = fit_basic();
        let x = v.transform("the dog sat the dog");
        for w in x.indices.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
