//! Duplicate removal (paper §II-A2, step 2).
//!
//! Duplicates are detected on *normalized* bodies (cleaned text), so a
//! repost that differs only in injected noise — an extra link, punctuation
//! runs, casing — still collapses onto its original. First occurrence (by
//! supplied order, which the pipeline keeps chronological) wins.

use std::collections::HashMap;

use crate::tokenize::tokenize;
use rsd_common::rng::fnv1a;

/// Canonical form used for duplicate comparison: the token stream joined by
/// single spaces, so residual punctuation differences don't defeat dedup.
pub fn canonical(cleaned: &str) -> String {
    tokenize(cleaned).join(" ")
}

/// Stable 64-bit fingerprint of a cleaned body (over its canonical form).
pub fn fingerprint(cleaned: &str) -> u64 {
    fnv1a(canonical(cleaned).as_bytes())
}

/// Given cleaned bodies in chronological order, return for each item
/// `Some(first_index)` if it duplicates an earlier item, else `None`.
pub fn find_duplicates(cleaned_bodies: &[String]) -> Vec<Option<usize>> {
    let canon: Vec<String> = cleaned_bodies.iter().map(|b| canonical(b)).collect();
    let mut first_seen: HashMap<u64, usize> = HashMap::with_capacity(canon.len());
    let mut out = Vec::with_capacity(canon.len());
    for (idx, body) in canon.iter().enumerate() {
        let fp = fnv1a(body.as_bytes());
        match first_seen.get(&fp) {
            // Hash collision guard: verify actual equality before marking.
            Some(&orig) if canon[orig] == *body => out.push(Some(orig)),
            _ => {
                first_seen.entry(fp).or_insert(idx);
                out.push(None);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn exact_duplicates_found() {
        let bodies = s(&["a b c", "d e f", "a b c", "a b c"]);
        assert_eq!(find_duplicates(&bodies), vec![None, None, Some(0), Some(0)]);
    }

    #[test]
    fn no_duplicates_all_none() {
        let bodies = s(&["one", "two", "three"]);
        assert!(find_duplicates(&bodies).iter().all(Option::is_none));
    }

    #[test]
    fn first_occurrence_wins() {
        let bodies = s(&["x", "x", "x"]);
        assert_eq!(find_duplicates(&bodies), vec![None, Some(0), Some(0)]);
    }

    #[test]
    fn empty_input() {
        assert!(find_duplicates(&[]).is_empty());
    }

    #[test]
    fn normalization_makes_noisy_reposts_collapse() {
        use crate::clean::clean_text;
        let original = "i wrote the note last night. nobody noticed.";
        let noisy_repost = "I wrote the note last night!! nobody noticed. https://x.y/z";
        let bodies = vec![clean_text(original), clean_text(noisy_repost)];
        assert_eq!(find_duplicates(&bodies), vec![None, Some(0)]);
    }
}
