//! Duplicate removal (paper §II-A2, step 2).
//!
//! Duplicates are detected on *normalized* bodies (cleaned text), so a
//! repost that differs only in injected noise — an extra link, punctuation
//! runs, casing — still collapses onto its original. First occurrence (by
//! supplied order, which the pipeline keeps chronological) wins.

use std::collections::HashMap;

use crate::tokenize::tokenize;
use rsd_common::rng::fnv1a;

/// Canonical form used for duplicate comparison: the token stream joined by
/// single spaces, so residual punctuation differences don't defeat dedup.
pub fn canonical(cleaned: &str) -> String {
    tokenize(cleaned).join(" ")
}

/// Stable 64-bit fingerprint of a cleaned body (over its canonical form).
pub fn fingerprint(cleaned: &str) -> u64 {
    fnv1a(canonical(cleaned).as_bytes())
}

/// Given cleaned bodies in chronological order, return for each item
/// `Some(first_index)` if it duplicates an earlier item, else `None`.
pub fn find_duplicates(cleaned_bodies: &[String]) -> Vec<Option<usize>> {
    let canon: Vec<String> = cleaned_bodies.iter().map(|b| canonical(b)).collect();
    let mut dedup = ChronoDedup::with_capacity(canon.len());
    canon
        .iter()
        .map(|body| dedup.push(fnv1a(body.as_bytes()), |orig| canon[orig] == *body))
        .collect()
}

/// Incremental first-occurrence detector over a chronological stream.
///
/// This is [`find_duplicates`] factored into push form so the streaming
/// build can run the *same* dedup decision procedure over globally merged
/// shards: items are pushed in chronological order, each with its
/// canonical-form fingerprint and an equality probe used as the hash
/// collision guard. Decision semantics are identical, including the
/// collision corner case (a colliding-but-different body is kept and does
/// **not** displace the first-seen index for that fingerprint).
#[derive(Debug, Default)]
pub struct ChronoDedup {
    first_seen: HashMap<u64, usize>,
    next: usize,
}

impl ChronoDedup {
    /// Empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty detector with pre-sized table.
    pub fn with_capacity(n: usize) -> Self {
        ChronoDedup {
            first_seen: HashMap::with_capacity(n),
            next: 0,
        }
    }

    /// Record the next item (index assigned in push order). `fp` is its
    /// canonical-form fingerprint; `same_as(orig)` must report whether the
    /// item's canonical form equals that of the earlier item `orig`.
    /// Returns `Some(first_index)` if the item duplicates an earlier one.
    pub fn push(&mut self, fp: u64, same_as: impl FnOnce(usize) -> bool) -> Option<usize> {
        let idx = self.next;
        self.next += 1;
        match self.first_seen.get(&fp) {
            // Hash collision guard: verify actual equality before marking.
            Some(&orig) if same_as(orig) => Some(orig),
            _ => {
                self.first_seen.entry(fp).or_insert(idx);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn exact_duplicates_found() {
        let bodies = s(&["a b c", "d e f", "a b c", "a b c"]);
        assert_eq!(find_duplicates(&bodies), vec![None, None, Some(0), Some(0)]);
    }

    #[test]
    fn no_duplicates_all_none() {
        let bodies = s(&["one", "two", "three"]);
        assert!(find_duplicates(&bodies).iter().all(Option::is_none));
    }

    #[test]
    fn first_occurrence_wins() {
        let bodies = s(&["x", "x", "x"]);
        assert_eq!(find_duplicates(&bodies), vec![None, Some(0), Some(0)]);
    }

    #[test]
    fn empty_input() {
        assert!(find_duplicates(&[]).is_empty());
    }

    #[test]
    fn chrono_dedup_matches_batch_semantics_on_collisions() {
        // Two distinct bodies sharing a fingerprint: the second survives
        // and must NOT displace the first-seen index, so a later true
        // duplicate of the first body still maps to index 0.
        let mut d = ChronoDedup::new();
        let canon = ["alpha", "beta", "alpha"];
        let shared_fp = 42u64;
        assert_eq!(d.push(shared_fp, |o| canon[o] == canon[0]), None);
        assert_eq!(d.push(shared_fp, |o| canon[o] == canon[1]), None);
        assert_eq!(d.push(shared_fp, |o| canon[o] == canon[2]), Some(0));
    }

    #[test]
    fn normalization_makes_noisy_reposts_collapse() {
        use crate::clean::clean_text;
        let original = "i wrote the note last night. nobody noticed.";
        let noisy_repost = "I wrote the note last night!! nobody noticed. https://x.y/z";
        let bodies = vec![clean_text(original), clean_text(noisy_repost)];
        assert_eq!(find_duplicates(&bodies), vec![None, Some(0)]);
    }
}
