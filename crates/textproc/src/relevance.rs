//! Relevance filtering (paper §II-A2, step 1: "removing non-relevant
//! posts, such as those not related to the suicide risk theme").
//!
//! A lexicon-overlap heuristic: a post is considered on-topic when it
//! contains at least one term from a seed lexicon of distress / support /
//! crisis vocabulary, or enough first-person emotional framing. The
//! heuristic never consults generator ground truth; its precision/recall
//! against that ground truth is measured in tests and reported by the
//! pipeline.

use crate::tokenize::tokenize;

/// Seed lexicon of on-topic (distress/support/crisis) vocabulary.
///
/// Deliberately *abstract* terms only — this mirrors moderation-style
/// keyword screens rather than any operational content.
pub const THEME_LEXICON: &[&str] = &[
    // crisis vocabulary
    "suicide",
    "suicidal",
    "die",
    "dying",
    "death",
    "kill",
    "attempt",
    "attempted",
    "overdose",
    "pills",
    "note",
    "goodbye",
    "goodbyes",
    "hospital",
    "er",
    "scars",
    "cutting",
    "hurting",
    "harm",
    "bridge",
    "survived",
    "wake",
    "waking",
    "woke",
    "existing",
    "disappear",
    "end",
    "living",
    "tried",
    "doctors",
    // preparatory-act vocabulary
    "bottle",
    "bought",
    "collecting",
    "saved",
    "drawer",
    "rehearsing",
    "drove",
    "gave",
    "passwords",
    "affairs",
    "cleaned",
    "list",
    "found",
    "hidden",
    "took",
    "imagining",
    // distress vocabulary
    "hopeless",
    "worthless",
    "empty",
    "numb",
    "exhausted",
    "trapped",
    "broken",
    "alone",
    "lonely",
    "crying",
    "cried",
    "tired",
    "drained",
    "hollow",
    "overwhelmed",
    "therapy",
    "meds",
    "depressed",
    "depression",
    "anxious",
    "anxiety",
    "burned",
    "invisible",
    // support-seeking vocabulary
    "help",
    "support",
    "warning",
    "signs",
    "worried",
    "terrified",
    "safe",
    "crisis",
];

/// Minimum lexicon hits for a post to count as on-topic.
pub const MIN_HITS: usize = 1;

/// Number of lexicon hits in a cleaned text.
pub fn theme_hits(cleaned: &str) -> usize {
    tokenize(cleaned)
        .iter()
        .filter(|t| THEME_LEXICON.contains(&t.trim_matches('\'')))
        .count()
}

/// Relevance decision for one cleaned post body.
pub fn is_relevant(cleaned: &str) -> bool {
    theme_hits(cleaned) >= MIN_HITS
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsd_corpus::lexicon::OFF_TOPIC_SENTENCES;
    use rsd_corpus::textgen::{render_post, TextGenConfig};
    use rsd_corpus::RiskLevel;

    #[test]
    fn crisis_posts_are_relevant() {
        assert!(is_relevant("i want to end it all i feel hopeless"));
        assert!(is_relevant("my brother attempted and i am terrified"));
    }

    #[test]
    fn off_topic_bank_is_irrelevant() {
        for s in OFF_TOPIC_SENTENCES {
            assert!(!is_relevant(s), "off-topic sentence flagged relevant: {s}");
        }
    }

    #[test]
    fn hits_counted_per_token() {
        assert_eq!(theme_hits("suicide suicide help"), 3);
        assert_eq!(theme_hits("nothing here matches"), 0);
    }

    #[test]
    fn generated_on_topic_posts_mostly_pass() {
        // Recall against generator ground truth should be high; the frame
        // banks embed lexicon terms with high probability.
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = TextGenConfig::default();
        let mut pass = 0;
        let n = 400;
        for i in 0..n {
            let level = RiskLevel::ALL[i % 4];
            let body = render_post(level, 3.5, &cfg, &mut rng);
            let cleaned = crate::clean::clean_text(&body);
            if is_relevant(&cleaned) {
                pass += 1;
            }
        }
        let recall = pass as f64 / n as f64;
        assert!(recall > 0.9, "relevance recall too low: {recall}");
    }

    #[test]
    fn requires_clean_lowercase_input() {
        // The filter runs after cleaning; uppercase raw text would miss.
        assert!(!is_relevant("SUICIDE"));
        assert!(is_relevant(&crate::clean::clean_text("SUICIDE")));
    }
}
