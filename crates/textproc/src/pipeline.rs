//! The orchestrating preprocessing pipeline (paper §II-A2).
//!
//! Applies the paper's steps in order — clean, relevance-filter,
//! deduplicate, length-filter — over bodies supplied in chronological
//! order, and reports what was removed at each stage. The pipeline is
//! corpus-agnostic: it sees only text, never generator ground truth, so
//! its precision/recall can be honestly measured against that ground truth
//! by callers.

use serde::{Deserialize, Serialize};

use crate::clean::clean_text;
use crate::dedup::{canonical, find_duplicates};
use crate::relevance::is_relevant;
use crate::tokenize::token_count;

/// Pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Preprocessor {
    /// Posts with fewer cleaned tokens than this are dropped as noise.
    pub min_tokens: usize,
    /// Whether to apply the relevance filter (step 1).
    pub filter_irrelevant: bool,
    /// Whether to apply duplicate removal (step 2).
    pub remove_duplicates: bool,
}

impl Default for Preprocessor {
    fn default() -> Self {
        Preprocessor {
            min_tokens: 3,
            filter_irrelevant: true,
            remove_duplicates: true,
        }
    }
}

/// Per-stage removal accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreprocessReport {
    /// Inputs seen.
    pub total: usize,
    /// Removed by the relevance filter.
    pub removed_irrelevant: usize,
    /// Removed as duplicates of an earlier post.
    pub removed_duplicates: usize,
    /// Removed for being shorter than `min_tokens` after cleaning.
    pub removed_too_short: usize,
    /// Survivors.
    pub kept: usize,
}

/// Result of preprocessing a batch of bodies.
#[derive(Debug, Clone)]
pub struct PreprocessOutcome {
    /// Cleaned text for every input (including removed ones, for audit).
    pub cleaned: Vec<String>,
    /// `keep[i]` — post `i` survived all filters.
    pub keep: Vec<bool>,
    /// Stage accounting.
    pub report: PreprocessReport,
}

/// Everything the pipeline derives for a single post, minus the dedup
/// decision — that one needs cross-post chronological context, which the
/// streaming build supplies globally via [`crate::dedup::ChronoDedup`].
#[derive(Debug, Clone)]
pub struct PostAnalysis {
    /// The cleaned body.
    pub cleaned: String,
    /// Canonical (token-joined) form used for duplicate comparison.
    pub canon: String,
    /// Passes the relevance filter (always `true` when the filter is
    /// disabled, matching batch semantics).
    pub relevant: bool,
    /// Cleaned token count.
    pub tokens: usize,
}

/// What happened to a post, in the batch pipeline's stage order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostFate {
    /// Survived every filter.
    Kept,
    /// Removed by the relevance filter.
    Irrelevant,
    /// Removed as a duplicate of an earlier post.
    Duplicate,
    /// Removed for having fewer than `min_tokens` cleaned tokens.
    TooShort,
}

impl Preprocessor {
    /// Run the pipeline over raw bodies (chronological order expected: the
    /// dedup stage keeps first occurrences). Accepts any string-like
    /// slice, so callers can pass borrowed bodies without cloning the
    /// corpus.
    pub fn run<S: AsRef<str>>(&self, raw_bodies: &[S]) -> PreprocessOutcome {
        let _pipeline = rsd_obs::Span::enter("textproc.pipeline");
        let cleaned: Vec<String> = {
            let _s = rsd_obs::Span::enter("textproc.pipeline.clean");
            raw_bodies.iter().map(|b| clean_text(b.as_ref())).collect()
        };
        let mut keep = vec![true; cleaned.len()];
        let mut report = PreprocessReport {
            total: cleaned.len(),
            ..Default::default()
        };

        if self.filter_irrelevant {
            let _s = rsd_obs::Span::enter("textproc.pipeline.relevance");
            for (i, c) in cleaned.iter().enumerate() {
                if keep[i] && !is_relevant(c) {
                    keep[i] = false;
                    report.removed_irrelevant += 1;
                }
            }
        }

        if self.remove_duplicates {
            let _s = rsd_obs::Span::enter("textproc.pipeline.dedup");
            // Dedup runs over all posts (including irrelevant ones) so a
            // relevant repost of a removed original is still caught.
            for (i, dup) in find_duplicates(&cleaned).iter().enumerate() {
                if keep[i] && dup.is_some() {
                    keep[i] = false;
                    report.removed_duplicates += 1;
                }
            }
        }

        {
            let _s = rsd_obs::Span::enter("textproc.pipeline.length_filter");
            for (i, c) in cleaned.iter().enumerate() {
                if keep[i] && token_count(c) < self.min_tokens {
                    keep[i] = false;
                    report.removed_too_short += 1;
                }
            }
        }

        report.kept = keep.iter().filter(|&&k| k).count();
        rsd_obs::counter_add("textproc.posts_in", report.total as u64);
        rsd_obs::counter_add("textproc.posts_kept", report.kept as u64);
        rsd_obs::counter_add(
            "textproc.posts_removed",
            (report.removed_irrelevant + report.removed_duplicates + report.removed_too_short)
                as u64,
        );
        PreprocessOutcome {
            cleaned,
            keep,
            report,
        }
    }

    /// Analyze one raw body: clean it and precompute everything the keep
    /// decision needs except the (global, cross-post) dedup verdict.
    pub fn analyze(&self, raw_body: &str) -> PostAnalysis {
        let cleaned = clean_text(raw_body);
        let canon = canonical(&cleaned);
        let relevant = !self.filter_irrelevant || is_relevant(&cleaned);
        let tokens = token_count(&cleaned);
        PostAnalysis {
            cleaned,
            canon,
            relevant,
            tokens,
        }
    }

    /// Combine a [`PostAnalysis`] with its dedup verdict into the post's
    /// fate, replicating the batch stage order (relevance → dedup →
    /// length) and its removal accounting exactly.
    pub fn classify(&self, analysis: &PostAnalysis, duplicate: bool) -> PostFate {
        self.classify_parts(analysis.relevant, analysis.tokens, duplicate)
    }

    /// [`Preprocessor::classify`] for callers that persisted the analysis
    /// fields (relevance verdict and token count) without the texts.
    pub fn classify_parts(&self, relevant: bool, tokens: usize, duplicate: bool) -> PostFate {
        if !relevant {
            PostFate::Irrelevant
        } else if self.remove_duplicates && duplicate {
            PostFate::Duplicate
        } else if tokens < self.min_tokens {
            PostFate::TooShort
        } else {
            PostFate::Kept
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bodies(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn report_accounts_for_every_removal() {
        let raw = bodies(&[
            "i want to end it all tonight",           // kept
            "patch notes nerfed my favorite loadout", // irrelevant
            "i want to end it all tonight",           // duplicate
            "suicide",                                // too short
        ]);
        let out = Preprocessor::default().run(&raw);
        assert_eq!(out.report.total, 4);
        assert_eq!(out.report.removed_irrelevant, 1);
        assert_eq!(out.report.removed_duplicates, 1);
        assert_eq!(out.report.removed_too_short, 1);
        assert_eq!(out.report.kept, 1);
        assert_eq!(out.keep, vec![true, false, false, false]);
    }

    #[test]
    fn stages_can_be_disabled() {
        let raw = bodies(&["the pizza place downtown finally reopened today"]);
        let pp = Preprocessor {
            filter_irrelevant: false,
            ..Default::default()
        };
        let out = pp.run(&raw);
        assert_eq!(out.report.kept, 1);
    }

    #[test]
    fn dedup_sees_noisy_variants() {
        let raw = bodies(&[
            "i wrote the note last night and i feel hopeless",
            "I wrote the note last night and i feel HOPELESS!! https://a.b/c",
        ]);
        let out = Preprocessor::default().run(&raw);
        assert_eq!(out.report.removed_duplicates, 1);
        assert_eq!(out.report.kept, 1);
    }

    #[test]
    fn empty_input() {
        let out = Preprocessor::default().run::<String>(&[]);
        assert_eq!(out.report, PreprocessReport::default());
        assert!(out.cleaned.is_empty());
    }

    #[test]
    fn run_accepts_borrowed_bodies() {
        let raw = ["i want to end it all tonight"];
        let owned = bodies(&raw);
        let from_borrowed = Preprocessor::default().run(&raw);
        let from_owned = Preprocessor::default().run(&owned);
        assert_eq!(from_borrowed.cleaned, from_owned.cleaned);
        assert_eq!(from_borrowed.keep, from_owned.keep);
        assert_eq!(from_borrowed.report, from_owned.report);
    }

    #[test]
    fn analyze_plus_classify_matches_run() {
        use crate::dedup::{find_duplicates, ChronoDedup};
        use rsd_common::rng::fnv1a;
        let raw = bodies(&[
            "i want to end it all tonight",
            "patch notes nerfed my favorite loadout",
            "i want to end it all tonight",
            "suicide",
            "I want to END it all tonight!!",
        ]);
        let pp = Preprocessor::default();
        let batch = pp.run(&raw);
        let dups = find_duplicates(&batch.cleaned);

        let analyses: Vec<PostAnalysis> = raw.iter().map(|b| pp.analyze(b)).collect();
        let mut dedup = ChronoDedup::new();
        for (i, a) in analyses.iter().enumerate() {
            assert_eq!(a.cleaned, batch.cleaned[i]);
            let dup = dedup
                .push(fnv1a(a.canon.as_bytes()), |o| analyses[o].canon == a.canon)
                .is_some();
            assert_eq!(dup, dups[i].is_some(), "post {i}");
            let fate = pp.classify(a, dup);
            assert_eq!(fate == PostFate::Kept, batch.keep[i], "post {i}");
        }
    }

    #[test]
    fn cleaned_retained_for_removed_posts() {
        let raw = bodies(&["selling my old graphics card dm me"]);
        let out = Preprocessor::default().run(&raw);
        assert!(!out.keep[0]);
        assert_eq!(out.cleaned[0], "selling my old graphics card dm me");
    }

    #[test]
    fn kept_sum_is_consistent() {
        let raw = bodies(&[
            "i survived my attempt last year and i am still here",
            "my fantasy league is an absolute disaster",
            "i survived my attempt last year and i am still here",
            "help",
            "i keep thinking about wanting to disappear for good",
        ]);
        let out = Preprocessor::default().run(&raw);
        let r = out.report;
        assert_eq!(
            r.total,
            r.kept + r.removed_irrelevant + r.removed_duplicates + r.removed_too_short
        );
    }
}
