//! Thread-safe metrics registry: counters, gauges, fixed-bucket
//! histograms with quantile readout, and per-label span aggregates.

use parking_lot::Mutex;
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::time::Duration;

/// Number of histogram buckets per decade. The bucket ratio is
/// `10^(1/20) ≈ 1.122`, so quantile estimates carry at most ~6% relative
/// error — plenty for wall-clock and throughput distributions.
const BUCKETS_PER_DECADE: usize = 20;
/// Lowest representable histogram value (1 ns when observing seconds).
const HIST_MIN: f64 = 1e-9;
/// Decades covered above [`HIST_MIN`].
const DECADES: usize = 18;
/// Total bucket count (plus implicit under/overflow clamping).
const N_BUCKETS: usize = BUCKETS_PER_DECADE * DECADES;

/// Log-spaced fixed-bucket histogram over `[1e-9, 1e9)`.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// Bucket index for a value, clamped into range.
    fn bucket(value: f64) -> usize {
        if value <= HIST_MIN {
            return 0;
        }
        let idx = (BUCKETS_PER_DECADE as f64 * (value / HIST_MIN).log10()).floor();
        (idx as usize).min(N_BUCKETS - 1)
    }

    /// Geometric midpoint of a bucket, the quantile estimate for values
    /// that land in it.
    fn bucket_mid(idx: usize) -> f64 {
        HIST_MIN * 10f64.powf((idx as f64 + 0.5) / BUCKETS_PER_DECADE as f64)
    }

    /// Record one observation. Non-finite values are dropped.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.counts[Self::bucket(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by cumulative walk,
    /// clamped to the observed `[min, max]`. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_mid(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Summary as a JSON object (count, sum, min/max, p50/p90/p99).
    pub fn summary(&self) -> Value {
        let mut m = Map::new();
        m.insert("count", Value::Int(self.count as i128));
        m.insert("sum", Value::Float(self.sum));
        if self.count > 0 {
            m.insert("min", Value::Float(self.min));
            m.insert("max", Value::Float(self.max));
            m.insert("mean", Value::Float(self.sum / self.count as f64));
            for (name, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                if let Some(v) = self.quantile(q) {
                    m.insert(name, Value::Float(v));
                }
            }
        }
        Value::Object(m)
    }
}

/// Aggregate over all completed spans with one label.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanStat {
    /// Completed span count.
    pub count: u64,
    /// Total wall-clock across spans.
    pub total_ns: u128,
    /// Longest single span.
    pub max_ns: u128,
    /// Deepest nesting level observed (0 = top level).
    pub max_depth: u32,
}

impl SpanStat {
    fn summary(&self) -> Value {
        let mut m = Map::new();
        m.insert("count", Value::Int(self.count as i128));
        m.insert("total_ms", Value::Float(self.total_ns as f64 / 1e6));
        if self.count > 0 {
            m.insert(
                "mean_ms",
                Value::Float(self.total_ns as f64 / 1e6 / self.count as f64),
            );
        }
        m.insert("max_ms", Value::Float(self.max_ns as f64 / 1e6));
        m.insert("max_depth", Value::Int(i128::from(self.max_depth)));
        Value::Object(m)
    }
}

/// Aggregate over all completed spans sharing one call-tree *path*
/// (the `;`-joined label stack, collapsed-stack convention). Unlike the
/// flat [`SpanStat`], a label appearing under two different parents gets
/// two tree entries, which is what makes self-vs-child attribution and
/// flamegraph export possible.
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeStat {
    /// Completed span count at this path.
    pub count: u64,
    /// Total wall-clock across spans at this path.
    pub total_ns: u128,
    /// Wall-clock not attributed to child spans.
    pub self_ns: u128,
    /// Longest single span.
    pub max_ns: u128,
    /// Bytes allocated while spans at this path were open (0 without a
    /// counting allocator).
    pub alloc_bytes: u64,
    /// Allocation not attributed to child spans.
    pub self_alloc_bytes: u64,
}

impl TreeStat {
    fn summary(&self) -> Value {
        let mut m = Map::new();
        m.insert("count", Value::Int(self.count as i128));
        m.insert("total_ms", Value::Float(self.total_ns as f64 / 1e6));
        m.insert("self_ms", Value::Float(self.self_ns as f64 / 1e6));
        m.insert("max_ms", Value::Float(self.max_ns as f64 / 1e6));
        if self.alloc_bytes > 0 {
            m.insert("alloc_bytes", Value::Int(i128::from(self.alloc_bytes)));
            m.insert(
                "self_alloc_bytes",
                Value::Int(i128::from(self.self_alloc_bytes)),
            );
        }
        Value::Object(m)
    }
}

/// Cumulative totals for one pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageStat {
    /// Records processed.
    pub items: u64,
    /// Bytes processed.
    pub bytes: u64,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: BTreeMap<&'static str, SpanStat>,
    stages: BTreeMap<&'static str, StageStat>,
    tree: BTreeMap<String, TreeStat>,
}

/// Thread-safe metric store. One global instance lives behind
/// [`crate::registry`]; standalone instances are constructible for tests.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add to a monotonic counter.
    pub fn counter_add(&self, label: &'static str, n: u64) {
        *self.inner.lock().counters.entry(label).or_insert(0) += n;
    }

    /// Read a counter (0 when never touched).
    pub fn counter(&self, label: &str) -> u64 {
        self.inner.lock().counters.get(label).copied().unwrap_or(0)
    }

    /// Set a gauge to its latest value.
    pub fn gauge_set(&self, label: &'static str, value: f64) {
        self.inner.lock().gauges.insert(label, value);
    }

    /// Read a gauge.
    pub fn gauge(&self, label: &str) -> Option<f64> {
        self.inner.lock().gauges.get(label).copied()
    }

    /// Record an observation into a histogram.
    pub fn observe(&self, label: &'static str, value: f64) {
        self.inner
            .lock()
            .histograms
            .entry(label)
            .or_default()
            .observe(value);
    }

    /// Estimate a histogram quantile.
    pub fn histogram_quantile(&self, label: &str, q: f64) -> Option<f64> {
        self.inner.lock().histograms.get(label)?.quantile(q)
    }

    /// Fold one completed span into its label's aggregate.
    pub fn record_span(&self, label: &'static str, elapsed: Duration, depth: u32) {
        let ns = elapsed.as_nanos();
        let mut inner = self.inner.lock();
        let stat = inner.spans.entry(label).or_default();
        stat.count += 1;
        stat.total_ns += ns;
        stat.max_ns = stat.max_ns.max(ns);
        stat.max_depth = stat.max_depth.max(depth);
    }

    /// Read a span aggregate.
    pub fn span_stat(&self, label: &str) -> Option<SpanStat> {
        self.inner.lock().spans.get(label).copied()
    }

    /// Add to a stage's cumulative item/byte totals.
    pub fn stage_add(&self, label: &'static str, items: u64, bytes: u64) {
        let mut inner = self.inner.lock();
        let stat = inner.stages.entry(label).or_default();
        stat.items += items;
        stat.bytes += bytes;
    }

    /// Read a stage's cumulative totals.
    pub fn stage_stat(&self, label: &str) -> Option<StageStat> {
        self.inner.lock().stages.get(label).copied()
    }

    /// Fold one completed span into the call-tree aggregate for its
    /// full stack path.
    pub fn record_tree(
        &self,
        path: &str,
        total_ns: u64,
        self_ns: u64,
        alloc_bytes: u64,
        self_alloc_bytes: u64,
    ) {
        let mut inner = self.inner.lock();
        // Avoid allocating the owned key on the hot repeat-visit path.
        if !inner.tree.contains_key(path) {
            inner.tree.insert(path.to_string(), TreeStat::default());
        }
        let stat = inner.tree.get_mut(path).expect("just inserted");
        stat.count += 1;
        stat.total_ns += u128::from(total_ns);
        stat.self_ns += u128::from(self_ns);
        stat.max_ns = stat.max_ns.max(u128::from(total_ns));
        stat.alloc_bytes += alloc_bytes;
        stat.self_alloc_bytes += self_alloc_bytes;
    }

    /// Read one call-tree aggregate by its `;`-joined path.
    pub fn tree_stat(&self, path: &str) -> Option<TreeStat> {
        self.inner.lock().tree.get(path).copied()
    }

    /// Snapshot the whole call tree, sorted by path.
    pub fn tree(&self) -> Vec<(String, TreeStat)> {
        self.inner
            .lock()
            .tree
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Dump everything as one JSON object with `counters` / `gauges` /
    /// `histograms` / `spans` sections.
    pub fn snapshot(&self) -> Value {
        let inner = self.inner.lock();
        let mut counters = Map::new();
        for (k, v) in &inner.counters {
            counters.insert(*k, Value::Int(i128::from(*v)));
        }
        let mut gauges = Map::new();
        for (k, v) in &inner.gauges {
            gauges.insert(*k, Value::Float(*v));
        }
        let mut histograms = Map::new();
        for (k, h) in &inner.histograms {
            histograms.insert(*k, h.summary());
        }
        let mut spans = Map::new();
        for (k, s) in &inner.spans {
            spans.insert(*k, s.summary());
        }
        let mut stages = Map::new();
        for (k, s) in &inner.stages {
            let mut m = Map::new();
            m.insert("items", Value::Int(i128::from(s.items)));
            m.insert("bytes", Value::Int(i128::from(s.bytes)));
            stages.insert(*k, Value::Object(m));
        }
        let mut tree = Map::new();
        for (k, s) in &inner.tree {
            tree.insert(k.as_str(), s.summary());
        }
        let mut out = Map::new();
        out.insert("counters", Value::Object(counters));
        out.insert("gauges", Value::Object(gauges));
        out.insert("histograms", Value::Object(histograms));
        out.insert("spans", Value::Object(spans));
        if !stages.is_empty() {
            out.insert("stages", Value::Object(stages));
        }
        out.insert("tree", Value::Object(tree));
        Value::Object(out)
    }

    /// Drop every recorded metric (used by the test capture harness so
    /// cases see only their own activity).
    pub fn reset(&self) {
        *self.inner.lock() = Inner::default();
    }
}
