//! NDJSON event sink: one JSON object per line, destination selected at
//! init time (`stderr`, a file path, an in-memory buffer for tests, or
//! off).

use parking_lot::Mutex;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::Arc;

/// Where NDJSON event lines go.
#[derive(Debug)]
pub enum Sink {
    /// Drop everything (registry aggregation still runs).
    Off,
    /// One line per event on stderr.
    Stderr,
    /// Buffered writes into a file.
    File(BufWriter<File>),
    /// Shared in-memory buffer, used by [`crate::capture`].
    Memory(Arc<Mutex<Vec<u8>>>),
}

impl Sink {
    /// Write one NDJSON line (the newline is appended here). IO errors
    /// are swallowed: telemetry must never take down the pipeline.
    pub fn write_line(&mut self, line: &str) {
        match self {
            Sink::Off => {}
            Sink::Stderr => {
                let stderr = std::io::stderr();
                let mut guard = stderr.lock();
                let _ = writeln!(guard, "{line}");
            }
            Sink::File(w) => {
                let _ = writeln!(w, "{line}");
            }
            Sink::Memory(buf) => {
                let mut buf = buf.lock();
                buf.extend_from_slice(line.as_bytes());
                buf.push(b'\n');
            }
        }
    }

    /// Flush buffered output (meaningful for the file sink).
    pub fn flush(&mut self) {
        if let Sink::File(w) = self {
            let _ = w.flush();
        }
    }

    /// Whether events should be serialized at all.
    pub fn is_active(&self) -> bool {
        !matches!(self, Sink::Off)
    }
}
