//! SLO burn-rate monitoring over the request latency histograms.
//!
//! Classic multi-window error-budget tracking: the operator declares a
//! latency target (`RSD_SLO_P99_MS`) and an error budget
//! (`RSD_SLO_BUDGET`, the fraction of requests allowed to exceed the
//! target; default 1%). Every series tick the driver feeds the
//! cumulative `(total, over-target)` request counts from the
//! `serve.request` histogram into a [`BurnMonitor`], which computes the
//! budget burn rate over a trailing **fast** (5 s) and **slow** (60 s)
//! window. The run is *burning* only when both exceed 1× — the fast
//! window makes detection prompt, the slow window keeps a single
//! stray tick from paging.
//!
//! A burning tick emits an `slo.burn` event plus a `{"kind":"slo_burn"}`
//! series line, increments the process-wide [`burn_events`] counter,
//! and latches [`degraded`] — which flips the live `/health` endpoint
//! to 503 and makes `obs_top --check` exit 6. The latch is deliberate:
//! a soak that burned its budget *at any point* failed, even if the
//! tail of the run recovered.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Latency-target knob (ms). Setting it arms the monitor; `0`/`off`
/// disables.
pub const KNOB_P99: &str = "RSD_SLO_P99_MS";
/// Error-budget knob: allowed fraction of requests over target, in
/// `(0, 1)`. Default 0.01.
pub const KNOB_BUDGET: &str = "RSD_SLO_BUDGET";

/// Fast detection window.
pub const FAST_WINDOW_MS: u64 = 5_000;
/// Slow confirmation window.
pub const SLOW_WINDOW_MS: u64 = 60_000;
const DEFAULT_BUDGET: f64 = 0.01;

/// Parsed SLO declaration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Latency target in milliseconds.
    pub target_p99_ms: f64,
    /// Allowed fraction of requests over target.
    pub budget: f64,
}

impl SloConfig {
    /// The target in nanoseconds, for histogram threshold counting.
    pub fn target_ns(&self) -> u64 {
        (self.target_p99_ms * 1e6) as u64
    }
}

/// Read the SLO declaration from the environment. `None` when
/// `RSD_SLO_P99_MS` is unset or disabled; garbage in either knob aborts
/// naming the knob.
pub fn config_from_env() -> Option<SloConfig> {
    let raw = std::env::var(KNOB_P99).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() || trimmed == "0" || trimmed == "off" {
        return None;
    }
    let target_p99_ms = crate::knob::positive_float(KNOB_P99, Some(raw), 0.0);
    let budget = crate::knob::positive_float_env(KNOB_BUDGET, DEFAULT_BUDGET);
    assert!(
        budget < 1.0,
        "invalid {KNOB_BUDGET} value {budget}; expected a fraction in (0, 1)"
    );
    Some(SloConfig {
        target_p99_ms,
        budget,
    })
}

#[derive(Debug, Clone, Copy)]
struct Cumulative {
    t_ms: u64,
    total: u64,
    bad: u64,
}

/// One tick's burn verdict.
#[derive(Debug, Clone, Copy)]
pub struct BurnSample {
    /// Budget burn rate over the trailing fast window (1.0 = burning
    /// exactly at budget).
    pub fast_burn: f64,
    /// Budget burn rate over the trailing slow window.
    pub slow_burn: f64,
    /// True when both windows burn above 1×.
    pub burning: bool,
}

/// Multi-window burn-rate tracker fed cumulative counts once per tick.
///
/// Windows clamp to the available history: early in a run both windows
/// span from t=0, so a cold start with a bad first second still trips.
#[derive(Debug)]
pub struct BurnMonitor {
    cfg: SloConfig,
    samples: VecDeque<Cumulative>,
}

impl BurnMonitor {
    /// Monitor for one SLO declaration.
    pub fn new(cfg: SloConfig) -> BurnMonitor {
        BurnMonitor {
            cfg,
            samples: VecDeque::new(),
        }
    }

    /// The declaration this monitor enforces.
    pub fn config(&self) -> SloConfig {
        self.cfg
    }

    /// Feed the cumulative `(total, over-target)` counts observed by
    /// time `t_ms` (ms since run start) and get the windowed verdict.
    pub fn observe(&mut self, t_ms: u64, total: u64, bad: u64) -> BurnSample {
        self.samples.push_back(Cumulative { t_ms, total, bad });
        let fast_burn = self.window_burn(t_ms, FAST_WINDOW_MS);
        let slow_burn = self.window_burn(t_ms, SLOW_WINDOW_MS);
        // Trim history that can no longer anchor the slow window; keep
        // one sample at/beyond the boundary so deltas stay exact.
        while self.samples.len() > 2 && self.samples[1].t_ms + SLOW_WINDOW_MS <= t_ms {
            self.samples.pop_front();
        }
        BurnSample {
            fast_burn,
            slow_burn,
            burning: fast_burn > 1.0 && slow_burn > 1.0,
        }
    }

    /// Burn rate over the trailing window ending at `now_ms`: the
    /// fraction of requests over target within the window, divided by
    /// the budget. Zero when the window saw no requests.
    fn window_burn(&self, now_ms: u64, window_ms: u64) -> f64 {
        let latest = match self.samples.back() {
            Some(s) => *s,
            None => return 0.0,
        };
        let cutoff = now_ms.saturating_sub(window_ms);
        // Newest sample at or before the cutoff anchors the delta; if
        // the run is younger than the window, anchor at zero (run start).
        let base = self
            .samples
            .iter()
            .rev()
            .find(|s| s.t_ms <= cutoff)
            .copied()
            .unwrap_or(Cumulative {
                t_ms: 0,
                total: 0,
                bad: 0,
            });
        let d_total = latest.total.saturating_sub(base.total);
        if d_total == 0 {
            return 0.0;
        }
        let d_bad = latest.bad.saturating_sub(base.bad);
        (d_bad as f64 / d_total as f64) / self.cfg.budget
    }
}

/// Count of burning ticks so far (process-wide).
static BURN_EVENTS: AtomicU64 = AtomicU64::new(0);
/// Latched once any tick burns; read by `/health` and `obs_top --check`.
static DEGRADED: AtomicBool = AtomicBool::new(false);

/// How many ticks have burned so far in this process.
pub fn burn_events() -> u64 {
    BURN_EVENTS.load(Ordering::Relaxed)
}

/// True once any tick has burned (latched for the life of the process).
pub fn degraded() -> bool {
    DEGRADED.load(Ordering::Relaxed)
}

/// Register one burning tick: bump the counter and latch degradation.
/// Called by the time-series driver.
pub fn record_burn() {
    BURN_EVENTS.fetch_add(1, Ordering::Relaxed);
    DEGRADED.store(true, Ordering::Relaxed);
}

/// Clear the burn latch and counter (test isolation only).
pub fn reset() {
    BURN_EVENTS.store(0, Ordering::Relaxed);
    DEGRADED.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: SloConfig = SloConfig {
        target_p99_ms: 250.0,
        budget: 0.05,
    };

    #[test]
    fn target_converts_to_ns() {
        assert_eq!(CFG.target_ns(), 250_000_000);
    }

    #[test]
    fn healthy_traffic_never_burns() {
        let mut m = BurnMonitor::new(CFG);
        for tick in 1..=100u64 {
            // 2% of requests over target: well inside the 5% budget.
            let total = tick * 1_000;
            let sample = m.observe(tick * 100, total, total / 50);
            assert!(!sample.burning, "tick {tick}: {sample:?}");
            assert!(sample.fast_burn <= 1.0);
        }
    }

    #[test]
    fn sustained_breach_burns_both_windows() {
        let mut m = BurnMonitor::new(CFG);
        let mut last = BurnSample {
            fast_burn: 0.0,
            slow_burn: 0.0,
            burning: false,
        };
        for tick in 1..=20u64 {
            // Half of all requests over target: 10x the budget.
            let total = tick * 500;
            last = m.observe(tick * 100, total, total / 2);
        }
        assert!(last.burning, "{last:?}");
        assert!(last.fast_burn > 5.0);
        assert!(last.slow_burn > 5.0);
    }

    #[test]
    fn short_blip_after_long_health_does_not_burn_the_slow_window() {
        let mut m = BurnMonitor::new(CFG);
        // 120 s of clean traffic at 1k req/s…
        let mut total = 0u64;
        for tick in 1..=120u64 {
            total = tick * 1_000;
            m.observe(tick * 1_000, total, 0);
        }
        // …then a 2 s blip where every request breaches.
        let sample = m.observe(122_000, total + 2_000, 2_000);
        assert!(sample.fast_burn > 1.0, "{sample:?}");
        assert!(sample.slow_burn < 1.0, "{sample:?}");
        assert!(!sample.burning);
    }

    #[test]
    fn cold_start_windows_clamp_to_run_start() {
        let mut m = BurnMonitor::new(CFG);
        // 200 ms into the run, everything is breaching: both windows
        // clamp to t=0 and the monitor trips immediately.
        let sample = m.observe(200, 100, 100);
        assert!(sample.burning, "{sample:?}");
    }

    #[test]
    fn idle_windows_report_zero_burn() {
        let mut m = BurnMonitor::new(CFG);
        let sample = m.observe(1_000, 0, 0);
        assert_eq!(sample.fast_burn, 0.0);
        assert!(!sample.burning);
    }

    #[test]
    fn history_trim_keeps_slow_window_anchor() {
        let mut m = BurnMonitor::new(CFG);
        for tick in 1..=400u64 {
            m.observe(tick * 1_000, tick * 100, 0);
        }
        // ~60 s of anchored history + the boundary sample, not 400.
        assert!(m.samples.len() <= 63, "kept {}", m.samples.len());
        // The anchor still spans the full slow window.
        assert!(m.samples[0].t_ms + SLOW_WINDOW_MS <= 400_000);
    }

    #[test]
    fn env_parse_arms_and_validates() {
        // Direct parse helpers (env-free): unset → None handled by
        // config_from_env's var lookup; here check the numeric paths.
        assert_eq!(
            crate::knob::positive_float(KNOB_P99, Some("250".into()), 0.0),
            250.0
        );
        let err = std::panic::catch_unwind(|| {
            crate::knob::positive_float(KNOB_P99, Some("fast".into()), 0.0)
        })
        .expect_err("garbage must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains(KNOB_P99), "names the knob: {msg}");
    }
}
