//! Report differ: compares two RunReport / BENCH JSON artifacts leaf by
//! leaf, classifying every metric path into a tolerance class and
//! flagging regressions. This is the engine behind the `obs_diff` bench
//! bin and the `scripts/ci.sh` perf/quality gate.
//!
//! Classes, decided from the key path alone:
//!
//! - **Skip** — machine- or run-dependent identity (meta blocks,
//!   timestamps, thread ordinals, host core counts, chunk counters):
//!   never compared.
//! - **Quality** — paper-replication metrics (κ, accuracy, F1, …),
//!   config echoes, and discrete counts: must match exactly (floats
//!   within `quality_eps`). Any drift is a regression regardless of
//!   direction — these are replication invariants, not performance.
//!   Wall-clock leaves embedded in config echoes (per-model fit times
//!   in table rows) are the exception: they can never repeat exactly
//!   and gate as Time instead.
//! - **Time** — wall-clock leaves (`*_ms`, percentiles, durations):
//!   candidate may not exceed `baseline * (1 + time_ratio)`; leaves
//!   below `min_time_ms` are noise and ignored.
//! - **Quantile** — HDR latency quantiles (`p50_ms` … `p999_ms`, from
//!   the continuous-telemetry layer): each quantile carries its own
//!   tolerance ratio — tails are noisier, so p999 gets more headroom
//!   than p50 — with a shared `min_quantile_ms` noise floor.
//! - **Memory** — byte/peak/resident leaves: candidate may not exceed
//!   `baseline * (1 + mem_ratio)` once above `min_mem_bytes`.
//! - **Speedup** — bigger-is-better ratios (`*speedup*`,
//!   `*throughput*`, `*_per_s`): candidate may not fall below
//!   `baseline * (1 - time_ratio)`.
//! - **Info** — everything else: reported on mismatch only at the
//!   verbose level, never a regression.
//!
//! Every regression finding names the offending path and both values.
//! [`summarize`]-style inputs work too: the `obs_diff` bin feeds
//! `.series.ndjson` files through
//! [`crate::timeseries::summarize_series`] before diffing.

use serde_json::Value;

/// Per-class tolerances for [`diff_reports`].
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// Allowed relative increase for Time leaves (and decrease for
    /// Speedup leaves). CI default 0.15.
    pub time_ratio: f64,
    /// Allowed relative increase for Memory leaves.
    pub mem_ratio: f64,
    /// Time leaves where the *baseline* is under this many ms are
    /// treated as noise and skipped.
    pub min_time_ms: f64,
    /// Memory leaves where both sides are under this many bytes are
    /// skipped.
    pub min_mem_bytes: f64,
    /// Absolute epsilon for float Quality leaves.
    pub quality_eps: f64,
    /// Allowed relative increase per latency quantile, `[p50, p90, p99,
    /// p999]`. Tails are noisier, so defaults widen with the quantile.
    pub quantile_ratios: [f64; 4],
    /// Quantile leaves where both sides are under this many ms are
    /// noise and skipped.
    pub min_quantile_ms: f64,
    /// Gate on Time/Quantile/Speedup leaves at all (CI on a loaded
    /// machine may disable timing and keep the quality gate).
    pub check_time: bool,
}

impl Default for Tolerances {
    fn default() -> Tolerances {
        Tolerances {
            time_ratio: 0.15,
            mem_ratio: 0.30,
            min_time_ms: 50.0,
            min_mem_bytes: (1 << 20) as f64,
            quality_eps: 1e-6,
            quantile_ratios: [0.15, 0.20, 0.25, 0.40],
            min_quantile_ms: 1.0,
            check_time: true,
        }
    }
}

impl Tolerances {
    /// The tolerance ratio for a quantile leaf segment (`"p50_ms"` …).
    pub fn quantile_ratio(&self, segment: &str) -> f64 {
        match quantile_index(segment) {
            Some(i) => self.quantile_ratios[i],
            None => self.time_ratio,
        }
    }
}

/// Index into [`Tolerances::quantile_ratios`] for a quantile leaf
/// segment, `None` for non-quantile segments.
fn quantile_index(segment: &str) -> Option<usize> {
    match segment {
        "p50_ms" => Some(0),
        "p90_ms" => Some(1),
        "p99_ms" => Some(2),
        "p999_ms" => Some(3),
        _ => None,
    }
}

/// Metric class a path resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    Skip,
    Quality,
    Time,
    Quantile,
    Memory,
    Speedup,
    Info,
}

/// One comparison outcome worth reporting.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Dotted key path (`metrics.spans.dataset.build.total_ms`).
    pub path: String,
    pub class: Class,
    /// Whether this finding fails the gate.
    pub regression: bool,
    /// Human-readable explanation.
    pub detail: String,
}

/// Result of diffing two artifacts.
#[derive(Debug, Default)]
pub struct DiffResult {
    pub findings: Vec<Finding>,
    /// Leaves actually compared (after Skip filtering).
    pub compared: usize,
}

impl DiffResult {
    /// Whether any finding fails the gate.
    pub fn regressed(&self) -> bool {
        self.findings.iter().any(|f| f.regression)
    }
}

/// Keys (single path segments) that identify machine- or run-dependent
/// values: never compared.
const SKIP_SEGMENTS: &[&str] = &[
    "meta",
    "note",
    "notes",
    "generated_by",
    "ts_ms",
    "started_at",
    "thread",
    "host_cores",
    "pool_size",
    "shards_in_flight",
    "reps",
    "git_rev",
    // Which requests land in the slow-exemplar reservoir is inherently
    // run-dependent; the quantiles they explain are gated separately.
    "exemplars",
];

/// Path substrings for per-run scheduling counters that legitimately
/// vary with thread count and machine.
const SKIP_SUBSTRINGS: &[&str] = &["par.tasks", "par.pool", "alloc.allocations"];

/// Segment substrings marking bigger-is-better ratio leaves.
const SPEEDUP_MARKS: &[&str] = &["speedup", "throughput", "per_s"];

/// Segment substrings marking memory leaves.
const MEM_MARKS: &[&str] = &["bytes", "resident", "peak_live", "rss"];

/// Segment substrings marking replication-quality leaves.
const QUALITY_MARKS: &[&str] = &[
    "kappa",
    "accuracy",
    "f1",
    "precision",
    "recall",
    "alpha",
    "agreement",
    "percent",
    "support",
    // SLO verdicts: a clean baseline must stay clean — any burn count
    // or degraded flag drifting from the baseline is a regression.
    "burn",
    "degraded",
];

/// Exact segment names for discrete counts that must not drift.
const COUNT_SEGMENTS: &[&str] = &[
    "count", "counts", "posts", "users", "shards", "items", "rows", "labels", "n",
];

/// Identity keys compared exactly (including strings).
const IDENTITY_SEGMENTS: &[&str] = &["bin", "scale", "seed", "mode", "kernel", "dim", "status"];

/// Segment suffixes/substrings marking wall-clock leaves.
fn is_time_segment(seg: &str) -> bool {
    seg.ends_with("_ms")
        || seg.ends_with("_secs")
        || seg.ends_with("_ns")
        || seg == "elapsed"
        || seg.contains("duration")
        || matches!(seg, "p50" | "p90" | "p99" | "mean" | "min" | "max" | "sum")
}

/// Classify a dotted path. The *last* matching rule among the specific
/// classes wins over Info; Skip beats everything.
pub fn classify(path: &str) -> Class {
    let lower = path.to_ascii_lowercase();
    let segs: Vec<&str> = lower.split('.').collect();
    if segs.iter().any(|s| SKIP_SEGMENTS.contains(s))
        || SKIP_SUBSTRINGS.iter().any(|m| lower.contains(m))
    {
        return Class::Skip;
    }
    if quantile_index(segs.last().unwrap_or(&"")).is_some() {
        return Class::Quantile;
    }
    if segs
        .iter()
        .any(|s| SPEEDUP_MARKS.iter().any(|m| s.contains(m)))
    {
        return Class::Speedup;
    }
    if segs.iter().any(|s| MEM_MARKS.iter().any(|m| s.contains(m))) {
        return Class::Memory;
    }
    let last = segs.last().unwrap_or(&"");
    if segs
        .iter()
        .any(|s| QUALITY_MARKS.iter().any(|m| s.contains(m)))
        || IDENTITY_SEGMENTS.contains(last)
        || COUNT_SEGMENTS.contains(last)
    {
        return Class::Quality;
    }
    if segs.first() == Some(&"config")
        || segs.first() == Some(&"tables")
        || segs.get(1) == Some(&"counters")
    {
        // Config echoes are replication invariants — except wall-clock
        // leaves embedded in them (per-model fit times in table rows),
        // which can never repeat exactly and gate as Time below.
        if !is_time_segment(last) {
            return Class::Quality;
        }
    }
    if segs.iter().any(|s| is_time_segment(s)) {
        return Class::Time;
    }
    Class::Info
}

fn as_num(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn fmt_leaf(v: &Value) -> String {
    v.to_json()
}

/// Leaf formatting for missing-key findings, truncated so a vanished
/// subtree doesn't dump its whole JSON into the gate output.
fn fmt_leaf_short(v: &Value) -> String {
    let s = v.to_json();
    if s.len() <= 120 {
        return s;
    }
    let cut = s
        .char_indices()
        .take_while(|(i, _)| *i < 117)
        .last()
        .map(|(i, c)| i + c.len_utf8())
        .unwrap_or(0);
    format!("{}...", &s[..cut])
}

/// Compare one leaf pair under its class; push a finding if noteworthy.
fn compare_leaf(path: &str, base: &Value, cand: &Value, tol: &Tolerances, out: &mut DiffResult) {
    let class = classify(path);
    if class == Class::Skip {
        return;
    }
    out.compared += 1;
    match class {
        Class::Quality => {
            let equal = match (as_num(base), as_num(cand)) {
                (Some(b), Some(c)) => (b - c).abs() <= tol.quality_eps,
                _ => base == cand,
            };
            if !equal {
                out.findings.push(Finding {
                    path: path.to_string(),
                    class,
                    regression: true,
                    detail: format!(
                        "quality drift: baseline {} != candidate {}",
                        fmt_leaf(base),
                        fmt_leaf(cand)
                    ),
                });
            }
        }
        Class::Time | Class::Quantile | Class::Speedup | Class::Memory => {
            let (Some(b), Some(c)) = (as_num(base), as_num(cand)) else {
                if base != cand {
                    out.findings.push(Finding {
                        path: path.to_string(),
                        class,
                        regression: false,
                        detail: format!(
                            "non-numeric change: {} -> {}",
                            fmt_leaf(base),
                            fmt_leaf(cand)
                        ),
                    });
                }
                return;
            };
            let (floor, allowed, bad, what) = match class {
                Class::Time => {
                    if !tol.check_time {
                        return;
                    }
                    let allowed = b * (1.0 + tol.time_ratio);
                    (tol.min_time_ms, allowed, c > allowed, "slower")
                }
                Class::Quantile => {
                    if !tol.check_time {
                        return;
                    }
                    let seg = path.rsplit('.').next().unwrap_or("");
                    let allowed = b * (1.0 + tol.quantile_ratio(seg));
                    (tol.min_quantile_ms, allowed, c > allowed, "slower quantile")
                }
                Class::Speedup => {
                    if !tol.check_time {
                        return;
                    }
                    let allowed = b * (1.0 - tol.time_ratio);
                    (0.0, allowed, c < allowed, "lost speedup")
                }
                _ => {
                    let allowed = b * (1.0 + tol.mem_ratio);
                    (tol.min_mem_bytes, allowed, c > allowed, "more memory")
                }
            };
            if b < floor && c < floor {
                return; // below the noise floor on both sides
            }
            if bad {
                let ratio = if b != 0.0 { c / b } else { f64::INFINITY };
                out.findings.push(Finding {
                    path: path.to_string(),
                    class,
                    regression: true,
                    detail: format!(
                        "{what}: baseline {b:.3} -> candidate {c:.3} ({ratio:.2}x, allowed {allowed:.3})"
                    ),
                });
            }
        }
        Class::Info => {
            if base != cand {
                out.findings.push(Finding {
                    path: path.to_string(),
                    class,
                    regression: false,
                    detail: format!("changed: {} -> {}", fmt_leaf(base), fmt_leaf(cand)),
                });
            }
        }
        Class::Skip => unreachable!(),
    }
}

fn walk(path: &str, base: &Value, cand: &Value, tol: &Tolerances, out: &mut DiffResult) {
    if classify(path) == Class::Skip && !path.is_empty() {
        return;
    }
    match (base, cand) {
        (Value::Object(bm), Value::Object(cm)) => {
            for (k, bv) in bm.iter() {
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                match cm.get(k) {
                    Some(cv) => walk(&sub, bv, cv, tol, out),
                    None => {
                        if classify(&sub) != Class::Skip {
                            out.findings.push(Finding {
                                path: sub,
                                class: Class::Quality,
                                regression: true,
                                detail: format!(
                                    "present in baseline ({}), missing in candidate",
                                    fmt_leaf_short(bv)
                                ),
                            });
                        }
                    }
                }
            }
        }
        (Value::Array(ba), Value::Array(ca)) => {
            if ba.len() != ca.len() {
                out.findings.push(Finding {
                    path: path.to_string(),
                    class: Class::Quality,
                    regression: true,
                    detail: format!("array length {} -> {}", ba.len(), ca.len()),
                });
                return;
            }
            for (i, (bv, cv)) in ba.iter().zip(ca.iter()).enumerate() {
                walk(&format!("{path}.{i}"), bv, cv, tol, out);
            }
        }
        _ => compare_leaf(path, base, cand, tol, out),
    }
}

/// Diff two parsed report artifacts. Keys present only in the candidate
/// are additions and never regress; keys present only in the baseline
/// regress (a metric silently disappearing is how gates rot).
pub fn diff_reports(baseline: &Value, candidate: &Value, tol: &Tolerances) -> DiffResult {
    let mut out = DiffResult::default();
    walk("", baseline, candidate, tol, &mut out);
    out
}

/// Functionally rewrite `v`, applying `f` to every leaf (passed its
/// dotted path). Used by the self-test injector; the vendored `Value`
/// has no mutable traversal.
fn map_leaves(path: &str, v: &Value, f: &mut impl FnMut(&str, &Value) -> Value) -> Value {
    match v {
        Value::Object(m) => {
            let mut out = serde_json::Map::new();
            for (k, child) in m.iter() {
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                out.insert(k.as_str(), map_leaves(&sub, child, f));
            }
            Value::Object(out)
        }
        Value::Array(a) => Value::Array(
            a.iter()
                .enumerate()
                .map(|(i, child)| map_leaves(&format!("{path}.{i}"), child, f))
                .collect(),
        ),
        leaf => f(path, leaf),
    }
}

/// Outcome of [`inject_regressions`]: what was actually perturbed.
#[derive(Debug, Default)]
pub struct Injection {
    /// Path whose time was doubled, if any Time leaf qualified.
    pub time_path: Option<String>,
    /// Path whose quality value was perturbed, if any.
    pub quality_path: Option<String>,
    /// Tail-latency quantile (p99/p999) that was inflated, if any.
    pub quantile_path: Option<String>,
}

/// Produce a copy of `report` with an injected 2x slowdown on the first
/// gate-eligible Time leaf, a drift on the first float Quality leaf, and
/// an inflated tail (p99/p999) on the first latency quantile — the
/// `obs_diff --self-test` fixture proving each gate class trips.
pub fn inject_regressions(report: &Value, tol: &Tolerances) -> (Value, Injection) {
    let mut inj = Injection::default();
    let injected = map_leaves("", report, &mut |path, leaf| {
        match classify(path) {
            Class::Time if inj.time_path.is_none() => {
                if let Some(n) = as_num(leaf) {
                    // Must clear the noise floor or the gate rightly
                    // ignores it.
                    if n >= tol.min_time_ms {
                        inj.time_path = Some(path.to_string());
                        return Value::Float(n * 2.0);
                    }
                }
            }
            Class::Quantile if inj.quantile_path.is_none() => {
                let seg = path.rsplit('.').next().unwrap_or("");
                // Target the tail: a p99 drift is what the continuous
                // layer exists to catch.
                if matches!(seg, "p99_ms" | "p999_ms") {
                    if let Some(n) = as_num(leaf) {
                        // Clears both the noise floor and every
                        // per-quantile tolerance band.
                        inj.quantile_path = Some(path.to_string());
                        return Value::Float(n * 2.0 + tol.min_quantile_ms * 2.0 + 1.0);
                    }
                }
            }
            Class::Quality if inj.quality_path.is_none() => {
                if let Value::Float(f) = leaf {
                    inj.quality_path = Some(path.to_string());
                    return Value::Float(f + 10.0 * tol.quality_eps.max(1e-6) + 0.01);
                }
            }
            _ => {}
        }
        leaf.clone()
    });
    (injected, inj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn report() -> Value {
        // The vendored json! macro does not recurse into bare object
        // literals, hence the nested json!() calls.
        json!({
            "bin": "table1",
            "scale": "small",
            "seed": 2026,
            "elapsed_ms": 812.5,
            "meta": json!({"host_cores": 8, "git_rev": "abc1234"}),
            "config": json!({"models": 4}),
            "metrics": json!({
                "counters": json!({"dataset.posts": 120000}),
                "gauges": json!({
                    "pipeline.peak_resident_posts": 9000.0,
                    "alloc.peak_live_bytes": 52428800.0
                }),
                "spans": json!({
                    "dataset.build": json!({"count": 1, "total_ms": 512.0, "max_ms": 512.0})
                }),
                "tree": json!({
                    "bench.run;dataset.build":
                        json!({"count": 1, "total_ms": 512.0, "self_ms": 100.0})
                })
            }),
            "tables": json!({"lr": json!({"accuracy": 0.8132, "f1": 0.7991})}),
            "kappa": 0.7206
        })
    }

    #[test]
    fn identical_reports_pass() {
        let r = report();
        let d = diff_reports(&r, &r, &Tolerances::default());
        assert!(!d.regressed(), "findings: {:?}", d.findings);
        assert!(d.compared > 5);
    }

    #[test]
    fn time_regression_trips_and_tolerance_holds() {
        let base = report();
        let tol = Tolerances::default();
        // +10% stays inside the 15% band…
        let mut ok = DiffResult::default();
        compare_leaf("elapsed_ms", &json!(812.5), &json!(893.0), &tol, &mut ok);
        assert!(!ok.regressed());
        // …2x does not.
        let (slow, inj) = inject_regressions(&base, &tol);
        assert!(inj.time_path.is_some());
        let d = diff_reports(&base, &slow, &tol);
        assert!(d.regressed());
        assert!(d
            .findings
            .iter()
            .any(|f| f.class == Class::Time && f.regression));
    }

    #[test]
    fn quality_drift_trips_even_when_tiny_and_in_the_good_direction() {
        let base = report();
        let mut cand = base.clone();
        // κ "improving" is still drift: replication metrics are exact.
        if let Value::Object(m) = &mut cand {
            m.insert("kappa", json!(0.7306));
        }
        let d = diff_reports(&base, &cand, &Tolerances::default());
        assert!(d.regressed());
        assert!(d.findings.iter().any(|f| f.path == "kappa"));
    }

    #[test]
    fn machine_dependent_leaves_are_skipped() {
        let base = report();
        let mut cand = base.clone();
        if let Value::Object(m) = &mut cand {
            m.insert("meta", json!({"host_cores": 1, "git_rev": "zzz9999"}));
        }
        let d = diff_reports(&base, &cand, &Tolerances::default());
        assert!(!d.regressed(), "findings: {:?}", d.findings);
    }

    #[test]
    fn missing_baseline_metric_regresses() {
        let base = report();
        let mut cand = base.clone();
        if let Value::Object(m) = &mut cand {
            m.remove("kappa");
        }
        let d = diff_reports(&base, &cand, &Tolerances::default());
        assert!(d.regressed());
    }

    #[test]
    fn memory_and_speedup_classes_gate_directionally() {
        let tol = Tolerances::default();
        let mut r = DiffResult::default();
        // Memory: +50% over a 50 MiB baseline trips (tolerance 30%).
        compare_leaf(
            "metrics.gauges.alloc.peak_live_bytes",
            &json!(52428800.0),
            &json!(78643200.0),
            &tol,
            &mut r,
        );
        assert!(r.regressed());
        // Speedup: falling from 2.5x to 1.2x trips; rising never does.
        let mut s = DiffResult::default();
        compare_leaf("matmul.speedup", &json!(2.5), &json!(1.2), &tol, &mut s);
        assert!(s.regressed());
        let mut s2 = DiffResult::default();
        compare_leaf("matmul.speedup", &json!(2.5), &json!(3.5), &tol, &mut s2);
        assert!(!s2.regressed());
    }

    #[test]
    fn quantile_class_gates_per_quantile() {
        let tol = Tolerances::default();
        assert_eq!(classify("latency.pipeline.shard.p99_ms"), Class::Quantile);
        assert_eq!(
            classify("series.latency.models.train.batch.p999_ms"),
            Class::Quantile
        );
        // Bare registry quantiles keep their historical Time class.
        assert_eq!(classify("metrics.histograms.dist.p99"), Class::Time);

        // p50 drift beyond 15% trips…
        let mut r = DiffResult::default();
        compare_leaf("latency.x.p50_ms", &json!(10.0), &json!(12.0), &tol, &mut r);
        assert!(r.regressed());
        // …while the same +20% on p999 sits inside its 40% band.
        let mut r2 = DiffResult::default();
        compare_leaf(
            "latency.x.p999_ms",
            &json!(10.0),
            &json!(12.0),
            &tol,
            &mut r2,
        );
        assert!(!r2.regressed(), "findings: {:?}", r2.findings);
        // Sub-floor quantiles are noise on both sides.
        let mut r3 = DiffResult::default();
        compare_leaf("latency.x.p99_ms", &json!(0.2), &json!(0.9), &tol, &mut r3);
        assert!(!r3.regressed());
    }

    #[test]
    fn config_time_leaves_gate_as_time_not_quality() {
        // Config echoes are exact replication invariants…
        assert_eq!(classify("config.qps"), Class::Quality);
        assert_eq!(classify("config.models.0.accuracy"), Class::Quality);
        // …except wall-clock leaves inside them, which can never repeat
        // exactly across runs and take the ratio gate instead.
        assert_eq!(classify("config.models.0.elapsed_ms"), Class::Time);
        assert_eq!(classify("tables.table4.fit_secs"), Class::Time);

        let tol = Tolerances::default();
        // A faster candidate fit passes…
        let mut ok = DiffResult::default();
        compare_leaf(
            "config.models.1.elapsed_ms",
            &json!(5500.0),
            &json!(4700.0),
            &tol,
            &mut ok,
        );
        assert!(!ok.regressed(), "findings: {:?}", ok.findings);
        // …a 2x slower one still trips.
        let mut bad = DiffResult::default();
        compare_leaf(
            "config.models.1.elapsed_ms",
            &json!(5500.0),
            &json!(11000.0),
            &tol,
            &mut bad,
        );
        assert!(bad.regressed());
    }

    #[test]
    fn injector_inflates_a_tail_quantile() {
        let tol = Tolerances::default();
        let base = json!({
            "series": json!({
                "latency": json!({
                    "pipeline.shard": json!({
                        "count": 16, "p50_ms": 3.0, "p90_ms": 4.0,
                        "p99_ms": 4.5, "p999_ms": 4.5
                    })
                })
            })
        });
        let (cand, inj) = inject_regressions(&base, &tol);
        let qpath = inj.quantile_path.expect("tail quantile injected");
        assert!(qpath.ends_with("p99_ms") || qpath.ends_with("p999_ms"));
        let d = diff_reports(&base, &cand, &tol);
        assert!(d
            .findings
            .iter()
            .any(|f| f.class == Class::Quantile && f.regression && f.path == qpath));
    }

    #[test]
    fn throughput_rates_gate_as_speedup() {
        assert_eq!(
            classify("series.stages.pipeline.shards.items_per_s"),
            Class::Speedup
        );
        assert_eq!(
            classify("series.stages.pipeline.shards.bytes_per_s"),
            Class::Speedup
        );
        let tol = Tolerances::default();
        let mut r = DiffResult::default();
        compare_leaf(
            "series.stages.s.items_per_s",
            &json!(1000.0),
            &json!(500.0),
            &tol,
            &mut r,
        );
        assert!(r.regressed());
    }

    #[test]
    fn slo_and_exemplar_paths_classify_for_the_gate() {
        // Burn counts and degradation verdicts are replication-exact:
        // a clean baseline must stay clean.
        assert_eq!(classify("series.slo.burn_events"), Class::Quality);
        assert_eq!(classify("series.slo.degraded"), Class::Quality);
        assert_eq!(classify("series.health.status"), Class::Quality);
        assert_eq!(classify("slo.burn_events"), Class::Quality);
        // The SLO *target* is a wall-clock-shaped constant: ratio-gated,
        // never confused with a measured p99 quantile.
        assert_eq!(classify("series.slo.target_p99_ms"), Class::Time);
        // Exemplar contents are run-dependent and skipped wholesale.
        assert_eq!(classify("series.exemplars.0.total_ms"), Class::Skip);
        assert_eq!(classify("exemplars.2.stages.score_ms"), Class::Skip);
        // Tagged histogram families keep their tags inside one path
        // segment, so suffix classification still lands.
        assert_eq!(
            classify("series.latency.serve.request|gbdt|Indicator.p99_ms"),
            Class::Quantile
        );
        assert_eq!(
            classify("series.latency.serve.request|gbdt|Indicator.count"),
            Class::Quality
        );

        // A candidate whose burn count drifts from the clean baseline
        // regresses even though both are "just counters".
        let base = json!({"series": json!({"slo": json!({"burn_events": 0, "degraded": false})})});
        let cand = json!({"series": json!({"slo": json!({"burn_events": 3, "degraded": true})})});
        let d = diff_reports(&base, &cand, &Tolerances::default());
        assert!(d.regressed());
        assert_eq!(
            d.findings.iter().filter(|f| f.regression).count(),
            2,
            "findings: {:?}",
            d.findings
        );
    }

    #[test]
    fn missing_key_detail_names_the_baseline_value() {
        let base = report();
        let mut cand = base.clone();
        if let Value::Object(m) = &mut cand {
            m.remove("kappa");
        }
        let d = diff_reports(&base, &cand, &Tolerances::default());
        let f = d
            .findings
            .iter()
            .find(|f| f.path == "kappa")
            .expect("missing-key finding");
        assert!(
            f.detail.contains("0.7206"),
            "detail must carry the baseline value: {}",
            f.detail
        );
    }

    #[test]
    fn check_time_false_disables_only_timing() {
        let base = report();
        let tol = Tolerances {
            check_time: false,
            ..Tolerances::default()
        };
        let (slow, _) = inject_regressions(&base, &Tolerances::default());
        // The injector also perturbs a quality leaf, so strip that out by
        // diffing a pure-time perturbation.
        let mut r = DiffResult::default();
        compare_leaf("elapsed_ms", &json!(812.5), &json!(5000.0), &tol, &mut r);
        assert!(!r.regressed());
        let d = diff_reports(&base, &slow, &tol);
        // Quality drift still trips with timing off.
        assert!(d.regressed());
        assert!(d
            .findings
            .iter()
            .all(|f| f.class != Class::Time || !f.regression));
    }
}
