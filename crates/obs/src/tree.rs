//! Collapsed-stack ("folded") profile export.
//!
//! The folded format is the interchange convention of `flamegraph.pl`
//! and inferno: one line per unique call stack, frames joined by `;`,
//! followed by a space and an integer sample count. We emit **self-time
//! in microseconds** as the count, so `flamegraph.pl < x.folded`
//! renders frame widths proportional to self-time and parent frames
//! are widened by their children exactly as the tools expect.

use crate::TreeStat;

/// Render a call tree as folded lines (`path self_us\n`), sorted by
/// path so the output is byte-identical regardless of input order —
/// diffable across runs and stable under parallel span collection.
/// Entries whose self-time rounds to zero microseconds are kept
/// (count 0 lines are legal and preserve tree structure for parsers).
pub fn render_folded(tree: &[(String, TreeStat)]) -> String {
    let mut ordered: Vec<&(String, TreeStat)> = tree.iter().collect();
    ordered.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    for (path, stat) in ordered {
        out.push_str(path);
        out.push(' ');
        out.push_str(&(stat.self_ns / 1_000).to_string());
        out.push('\n');
    }
    out
}

/// Parse folded lines back into `(path, self_us)` pairs. Used by the
/// round-trip test and `obs_diff`'s profile mode; tolerant of blank
/// lines, strict about everything else.
pub fn parse_folded(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (path, count) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no count separator: {line:?}", idx + 1))?;
        if path.is_empty() {
            return Err(format!("line {}: empty stack path", idx + 1));
        }
        let count: u64 = count
            .parse()
            .map_err(|e| format!("line {}: bad count {count:?}: {e}", idx + 1))?;
        out.push((path.to_string(), count));
    }
    Ok(out)
}

/// Write the **global** registry's call tree as a folded profile at
/// `path`. Returns the number of stack lines written.
pub fn write_folded_to(path: &std::path::Path) -> std::io::Result<usize> {
    let tree = crate::registry().tree();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, render_folded(&tree))?;
    Ok(tree.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(self_ns: u128) -> TreeStat {
        TreeStat {
            count: 1,
            total_ns: self_ns,
            self_ns,
            max_ns: self_ns,
            alloc_bytes: 0,
            self_alloc_bytes: 0,
        }
    }

    #[test]
    fn folded_round_trips() {
        let tree = vec![
            ("a".to_string(), stat(5_000_000)),
            ("a;b".to_string(), stat(1_500_000)),
            ("a;b;leaf with space".to_string(), stat(999)),
        ];
        let text = render_folded(&tree);
        let parsed = parse_folded(&text).unwrap();
        assert_eq!(
            parsed,
            vec![
                ("a".to_string(), 5_000),
                ("a;b".to_string(), 1_500),
                // 999 ns rounds down to 0 us but the stack line survives.
                ("a;b;leaf with space".to_string(), 0),
            ]
        );
    }

    #[test]
    fn folded_output_is_sorted_golden() {
        // Deliberately shuffled input: output must be byte-exact and
        // path-sorted no matter how the tree slice was ordered.
        let tree = vec![
            ("pipeline;merge".to_string(), stat(2_000_000)),
            ("bench".to_string(), stat(7_000_000)),
            ("pipeline".to_string(), stat(4_000_000)),
            ("bench;load".to_string(), stat(1_000_000)),
        ];
        let golden = "bench 7000\nbench;load 1000\npipeline 4000\npipeline;merge 2000\n";
        assert_eq!(render_folded(&tree), golden);

        let mut reversed = tree.clone();
        reversed.reverse();
        assert_eq!(render_folded(&reversed), golden);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_folded("no-count-here").is_err());
        assert!(parse_folded("path notanumber").is_err());
        assert!(parse_folded(" 42").is_err());
        assert!(parse_folded("ok 1\n\n  \nalso;ok 2\n").unwrap().len() == 2);
    }
}
