//! Environment-knob parsing with hard errors on invalid values.
//!
//! The `RSD_SCALE` precedent: a typo'd knob must abort with its own name
//! in the message, never silently fall back to a default — a run that
//! ignores the operator's `RSD_OBS_TICK_MS=5O` is worse than no run.

/// The values that explicitly disable an optional knob.
fn is_disabled(raw: &str) -> bool {
    raw.is_empty() || raw == "0" || raw == "off"
}

/// Parse `raw` (from env var `var`) as a positive integer. `None` and
/// the explicit disable spellings (`""`, `"0"`, `"off"`) yield `None`;
/// anything else must parse as a positive integer or the process aborts
/// naming the knob.
pub fn optional_positive(var: &str, raw: Option<String>) -> Option<u64> {
    let raw = raw?;
    if is_disabled(&raw) {
        return None;
    }
    match raw.trim().parse::<u64>() {
        Ok(n) if n > 0 => Some(n),
        _ => panic!(
            "invalid {var} value {raw:?}; expected a positive integer \
             (or \"0\"/\"off\" to disable)"
        ),
    }
}

/// [`optional_positive`] reading the environment directly.
pub fn optional_positive_env(var: &str) -> Option<u64> {
    optional_positive(var, std::env::var(var).ok())
}

/// Like [`optional_positive`], but disabled/unset resolves to `default`.
pub fn positive_or_default(var: &str, raw: Option<String>, default: u64) -> u64 {
    optional_positive(var, raw).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_and_disable_spellings_yield_none() {
        assert_eq!(optional_positive("K", None), None);
        for off in ["", "0", "off"] {
            assert_eq!(optional_positive("K", Some(off.to_string())), None);
        }
    }

    #[test]
    fn valid_values_parse() {
        assert_eq!(optional_positive("K", Some("50".into())), Some(50));
        assert_eq!(optional_positive("K", Some(" 250 ".into())), Some(250));
        assert_eq!(positive_or_default("K", None, 7), 7);
        assert_eq!(positive_or_default("K", Some("off".into()), 7), 7);
        assert_eq!(positive_or_default("K", Some("3".into()), 7), 3);
    }

    #[test]
    fn garbage_hard_errors_with_the_knob_named() {
        for bad in ["banana", "5O", "-3", "1.5", "0x10"] {
            let err = std::panic::catch_unwind(|| {
                optional_positive("RSD_OBS_TICK_MS", Some(bad.to_string()))
            })
            .expect_err("must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(
                msg.contains("RSD_OBS_TICK_MS"),
                "panic must name the knob for {bad:?}: {msg}"
            );
        }
    }
}
