//! Environment-knob parsing with hard errors on invalid values.
//!
//! The `RSD_SCALE` precedent: a typo'd knob must abort with its own name
//! in the message, never silently fall back to a default — a run that
//! ignores the operator's `RSD_OBS_TICK_MS=5O` is worse than no run.

/// The values that explicitly disable an optional knob.
fn is_disabled(raw: &str) -> bool {
    raw.is_empty() || raw == "0" || raw == "off"
}

/// Parse `raw` (from env var `var`) as a positive integer. `None` and
/// the explicit disable spellings (`""`, `"0"`, `"off"`) yield `None`;
/// anything else must parse as a positive integer or the process aborts
/// naming the knob.
pub fn optional_positive(var: &str, raw: Option<String>) -> Option<u64> {
    let raw = raw?;
    if is_disabled(&raw) {
        return None;
    }
    match raw.trim().parse::<u64>() {
        Ok(n) if n > 0 => Some(n),
        _ => panic!(
            "invalid {var} value {raw:?}; expected a positive integer \
             (or \"0\"/\"off\" to disable)"
        ),
    }
}

/// [`optional_positive`] reading the environment directly.
pub fn optional_positive_env(var: &str) -> Option<u64> {
    optional_positive(var, std::env::var(var).ok())
}

/// Like [`optional_positive`], but disabled/unset resolves to `default`.
pub fn positive_or_default(var: &str, raw: Option<String>, default: u64) -> u64 {
    optional_positive(var, raw).unwrap_or(default)
}

/// Parse `raw` (from env var `var`) as one of `choices`. Unset or empty
/// resolves to `default`; anything else must match a choice exactly
/// (after trimming) or the process aborts naming the knob *and* the
/// valid spellings.
pub fn choice(
    var: &str,
    raw: Option<String>,
    choices: &[&'static str],
    default: &'static str,
) -> &'static str {
    debug_assert!(choices.contains(&default));
    let Some(raw) = raw else { return default };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return default;
    }
    match choices.iter().find(|&&c| c == trimmed) {
        Some(&c) => c,
        None => panic!(
            "invalid {var} value {raw:?}; expected one of {}",
            choices.join(" | ")
        ),
    }
}

/// [`choice`] reading the environment directly.
pub fn choice_env(var: &str, choices: &[&'static str], default: &'static str) -> &'static str {
    choice(var, std::env::var(var).ok(), choices, default)
}

/// Parse `raw` (from env var `var`) as a positive finite float. Unset or
/// empty resolves to `default`; anything else must parse as a float
/// `> 0` or the process aborts naming the knob.
pub fn positive_float(var: &str, raw: Option<String>, default: f64) -> f64 {
    let Some(raw) = raw else { return default };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return default;
    }
    match trimmed.parse::<f64>() {
        Ok(v) if v > 0.0 && v.is_finite() => v,
        _ => panic!("invalid {var} value {raw:?}; expected a positive number"),
    }
}

/// [`positive_float`] reading the environment directly.
pub fn positive_float_env(var: &str, default: f64) -> f64 {
    positive_float(var, std::env::var(var).ok(), default)
}

/// Parse `raw` (from env var `var`) as a TCP port. Unset and the
/// disable spellings (`""`, `"0"`, `"off"`) yield `None`; anything else
/// must parse as a port in `1..=65535` or the process aborts naming the
/// knob.
pub fn port(var: &str, raw: Option<String>) -> Option<u16> {
    let raw = raw?;
    if is_disabled(&raw) {
        return None;
    }
    match raw.trim().parse::<u16>() {
        Ok(p) if p > 0 => Some(p),
        _ => panic!(
            "invalid {var} value {raw:?}; expected a TCP port in 1..=65535 \
             (or \"0\"/\"off\" to disable)"
        ),
    }
}

/// [`port`] reading the environment directly.
pub fn port_env(var: &str) -> Option<u16> {
    port(var, std::env::var(var).ok())
}

/// Parse `raw` (from env var `var`) as an integer in `lo..=hi`. Unset
/// or empty resolves to `default`; anything else must parse inside the
/// bounds or the process aborts naming the knob *and* the valid range.
pub fn bounded_usize(
    var: &str,
    raw: Option<String>,
    lo: usize,
    hi: usize,
    default: usize,
) -> usize {
    debug_assert!((lo..=hi).contains(&default));
    let Some(raw) = raw else { return default };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return default;
    }
    match trimmed.parse::<usize>() {
        Ok(n) if (lo..=hi).contains(&n) => n,
        _ => panic!("invalid {var} value {raw:?}; expected an integer in {lo}..={hi}"),
    }
}

/// [`bounded_usize`] reading the environment directly.
pub fn bounded_usize_env(var: &str, lo: usize, hi: usize, default: usize) -> usize {
    bounded_usize(var, std::env::var(var).ok(), lo, hi, default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_and_disable_spellings_yield_none() {
        assert_eq!(optional_positive("K", None), None);
        for off in ["", "0", "off"] {
            assert_eq!(optional_positive("K", Some(off.to_string())), None);
        }
    }

    #[test]
    fn valid_values_parse() {
        assert_eq!(optional_positive("K", Some("50".into())), Some(50));
        assert_eq!(optional_positive("K", Some(" 250 ".into())), Some(250));
        assert_eq!(positive_or_default("K", None, 7), 7);
        assert_eq!(positive_or_default("K", Some("off".into()), 7), 7);
        assert_eq!(positive_or_default("K", Some("3".into()), 7), 3);
    }

    #[test]
    fn choice_accepts_listed_values_and_defaults_when_unset() {
        const MODELS: &[&str] = &["gbdt", "plm-f32", "plm-int8"];
        assert_eq!(choice("K", None, MODELS, "gbdt"), "gbdt");
        assert_eq!(choice("K", Some("".into()), MODELS, "gbdt"), "gbdt");
        assert_eq!(choice("K", Some("  ".into()), MODELS, "gbdt"), "gbdt");
        assert_eq!(
            choice("K", Some("plm-int8".into()), MODELS, "gbdt"),
            "plm-int8"
        );
        assert_eq!(
            choice("K", Some(" plm-f32 ".into()), MODELS, "gbdt"),
            "plm-f32"
        );
    }

    #[test]
    fn choice_garbage_names_the_knob_and_the_valid_spellings() {
        for bad in ["plm", "PLM-INT8", "int8", "xgboost"] {
            let err = std::panic::catch_unwind(|| {
                choice(
                    "RSD_SERVE_MODEL",
                    Some(bad.to_string()),
                    &["gbdt", "plm-f32", "plm-int8"],
                    "gbdt",
                )
            })
            .expect_err("must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("RSD_SERVE_MODEL"), "names the knob: {msg}");
            assert!(msg.contains("plm-int8"), "lists the choices: {msg}");
        }
    }

    #[test]
    fn positive_float_parses_and_defaults() {
        assert_eq!(positive_float("K", None, 0.05), 0.05);
        assert_eq!(positive_float("K", Some("".into()), 0.05), 0.05);
        assert_eq!(positive_float("K", Some("2.5".into()), 0.05), 2.5);
        assert_eq!(positive_float("K", Some(" 99 ".into()), 0.0), 99.0);
        for bad in ["banana", "-1.5", "0", "0.0", "inf", "NaN"] {
            let err = std::panic::catch_unwind(|| {
                positive_float("RSD_QUANT_EPS", Some(bad.to_string()), 0.05)
            })
            .expect_err("must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(
                msg.contains("RSD_QUANT_EPS"),
                "names the knob for {bad:?}: {msg}"
            );
        }
    }

    #[test]
    fn port_parses_disables_and_hard_errors() {
        assert_eq!(port("K", None), None);
        for off in ["", "0", "off"] {
            assert_eq!(port("K", Some(off.to_string())), None);
        }
        assert_eq!(port("K", Some("9100".into())), Some(9100));
        assert_eq!(port("K", Some(" 65535 ".into())), Some(65535));
        for bad in ["banana", "-1", "65536", "80.0"] {
            let err = std::panic::catch_unwind(|| port("RSD_OBS_HTTP", Some(bad.to_string())))
                .expect_err("must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(
                msg.contains("RSD_OBS_HTTP") && msg.contains("65535"),
                "names the knob and range for {bad:?}: {msg}"
            );
        }
    }

    #[test]
    fn bounded_usize_defaults_bounds_and_hard_errors() {
        assert_eq!(bounded_usize("K", None, 1, 1024, 4), 4);
        assert_eq!(bounded_usize("K", Some("".into()), 1, 1024, 4), 4);
        assert_eq!(bounded_usize("K", Some(" 16 ".into()), 1, 1024, 4), 16);
        assert_eq!(bounded_usize("K", Some("1024".into()), 1, 1024, 4), 1024);
        for bad in ["0", "1025", "banana", "-2"] {
            let err = std::panic::catch_unwind(|| {
                bounded_usize("RSD_OBS_EXEMPLARS", Some(bad.to_string()), 1, 1024, 4)
            })
            .expect_err("must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(
                msg.contains("RSD_OBS_EXEMPLARS") && msg.contains("1..=1024"),
                "names the knob and range for {bad:?}: {msg}"
            );
        }
    }

    #[test]
    fn garbage_hard_errors_with_the_knob_named() {
        for bad in ["banana", "5O", "-3", "1.5", "0x10"] {
            let err = std::panic::catch_unwind(|| {
                optional_positive("RSD_OBS_TICK_MS", Some(bad.to_string()))
            })
            .expect_err("must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(
                msg.contains("RSD_OBS_TICK_MS"),
                "panic must name the knob for {bad:?}: {msg}"
            );
        }
    }
}
