//! Request-scoped tracing contexts for the serving tier.
//!
//! A [`ReqCtx`] is minted at `RiskService` ingress and rides the request
//! through the bounded channels, window-store apply, micro-batch
//! formation, scoring, and result emission. Each hop attributes
//! wall-clock to one of five [`Stage`] slots; at emission
//! [`ReqCtx::finish`] publishes the breakdown into the tag-aware
//! histogram families ([`crate::hist::observe_tagged`], sharded per
//! backend × risk level) and offers the full breakdown to the exemplar
//! reservoir ([`crate::exemplar`]) so the slowest requests survive with
//! their per-stage attribution intact instead of vanishing into
//! aggregate quantiles.
//!
//! Construction invariant: the serving tier closes each context with
//! [`ReqCtx::close_residual`], which books the gap between wall-clock
//! end-to-end time and the instrumented stages into [`Stage::Drain`].
//! The five slots therefore always reassemble the end-to-end latency
//! exactly (`total_ns == sum(stages)` — pinned by the proptests below),
//! and any histogram-level disagreement is bounded by the HDR bucket
//! error alone.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::hist::TagKey;

/// Histogram family label for end-to-end request latency. The untagged
/// `serve.request` family keeps recording alongside the tagged shards,
/// so pre-existing dashboards and baselines stay comparable.
pub const REQUEST_FAMILY: &str = "serve.request";

/// Level tag for a request whose risk level is not known yet (a context
/// finished before scoring — e.g. a drain-path drop).
pub const LEVEL_PENDING: &str = "unscored";

/// The pipeline hops a request's latency is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Ingress-channel wait: submit until the worker pops the envelope.
    Queue,
    /// Micro-batch formation: pop until the batch dispatches.
    BatchWait,
    /// `UserWindowStore` apply: sliding-window update for this post.
    Window,
    /// Model scoring (per-request share of the micro-batch).
    Score,
    /// Residual emit path: result stitching and channel hand-off.
    Drain,
}

impl Stage {
    /// Number of stages (the breakdown array length).
    pub const COUNT: usize = 5;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Queue,
        Stage::BatchWait,
        Stage::Window,
        Stage::Score,
        Stage::Drain,
    ];

    /// Position of this stage in breakdown arrays.
    pub fn index(self) -> usize {
        match self {
            Stage::Queue => 0,
            Stage::BatchWait => 1,
            Stage::Window => 2,
            Stage::Score => 3,
            Stage::Drain => 4,
        }
    }

    /// Short name used in exemplar JSON and tables.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::BatchWait => "batch_wait",
            Stage::Window => "window",
            Stage::Score => "score",
            Stage::Drain => "drain",
        }
    }

    /// Tagged histogram family this stage records into.
    pub fn family(self) -> &'static str {
        match self {
            Stage::Queue => "serve.stage.queue",
            Stage::BatchWait => "serve.stage.batch_wait",
            Stage::Window => "serve.stage.window",
            Stage::Score => "serve.stage.score",
            Stage::Drain => "serve.stage.drain",
        }
    }
}

/// Process-wide trace-id source. Monotonic within a run; ids are for
/// correlating exemplars with logs, not for cross-run identity.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Request-scoped trace context: identity, tags, and the per-stage
/// latency breakdown accrued as the request moves through the service.
#[derive(Debug)]
pub struct ReqCtx {
    trace_id: u64,
    ingress: Instant,
    last_mark: Instant,
    backend: &'static str,
    level: &'static str,
    stages: [u64; Stage::COUNT],
}

impl ReqCtx {
    /// Mint a fresh context at ingress, tagged with the scoring backend
    /// (`ServeModel::name()`). The ingress instant doubles as the first
    /// attribution mark.
    pub fn mint(backend: &'static str) -> ReqCtx {
        let now = Instant::now();
        ReqCtx {
            trace_id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            ingress: now,
            last_mark: now,
            backend,
            level: LEVEL_PENDING,
            stages: [0; Stage::COUNT],
        }
    }

    /// This request's trace id (monotonic within the process).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The instant the context was minted (service ingress).
    pub fn ingress(&self) -> Instant {
        self.ingress
    }

    /// The scoring-backend tag.
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// The risk-level tag ([`LEVEL_PENDING`] until scored).
    pub fn level(&self) -> &'static str {
        self.level
    }

    /// Tag the context with the scored risk level (`RiskLevel::name()`).
    pub fn set_level(&mut self, level: &'static str) {
        self.level = level;
    }

    /// Attribute `ns` to `stage` directly (used when the duration was
    /// measured elsewhere, e.g. inside the window-store apply).
    pub fn record(&mut self, stage: Stage, ns: u64) {
        self.stages[stage.index()] += ns;
    }

    /// Attribute the wall-clock since the previous mark (or mint) to
    /// `stage`, then move the mark to now.
    pub fn advance(&mut self, stage: Stage) {
        let now = Instant::now();
        let ns = now.duration_since(self.last_mark).as_nanos() as u64;
        self.record(stage, ns);
        self.last_mark = now;
    }

    /// Nanoseconds attributed to one stage so far.
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.stages[stage.index()]
    }

    /// The full breakdown, indexed by [`Stage::index`].
    pub fn stages(&self) -> [u64; Stage::COUNT] {
        self.stages
    }

    /// Sum of all stage slots. After [`ReqCtx::close_residual`] this is
    /// exactly the end-to-end latency.
    pub fn total_ns(&self) -> u64 {
        self.stages.iter().sum()
    }

    /// Book the residual between `elapsed_ns` (measured end-to-end
    /// latency) and the instrumented stages into [`Stage::Drain`], so
    /// the breakdown sums to the end-to-end figure exactly. Saturates
    /// at zero if instrumentation over-counted.
    pub fn close_residual(&mut self, elapsed_ns: u64) {
        let booked = self.total_ns();
        self.record(Stage::Drain, elapsed_ns.saturating_sub(booked));
    }

    /// Publish the breakdown: one sample per tagged family (end-to-end
    /// plus each stage, all under `backend × level`) and an offer to the
    /// exemplar reservoir. No-op while the telemetry ring is disarmed,
    /// mirroring [`crate::latency_ns`].
    pub fn finish(self) {
        if !crate::ring::armed() {
            return;
        }
        let total = self.total_ns();
        crate::hist::observe_tagged(
            TagKey {
                label: REQUEST_FAMILY,
                backend: self.backend,
                level: self.level,
            },
            total,
        );
        for stage in Stage::ALL {
            crate::hist::observe_tagged(
                TagKey {
                    label: stage.family(),
                    backend: self.backend,
                    level: self.level,
                },
                self.stages[stage.index()],
            );
        }
        crate::exemplar::offer(crate::exemplar::Exemplar {
            trace_id: self.trace_id,
            backend: self.backend,
            level: self.level,
            total_ns: total,
            stages: self.stages,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::{HdrHist, MAX_RELATIVE_ERROR};
    use proptest::prelude::*;

    #[test]
    fn stage_order_and_indices_agree() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
    }

    #[test]
    fn trace_ids_are_unique_and_monotonic() {
        let a = ReqCtx::mint("gbdt");
        let b = ReqCtx::mint("gbdt");
        assert!(b.trace_id() > a.trace_id());
    }

    #[test]
    fn close_residual_books_the_gap_into_drain() {
        let mut ctx = ReqCtx::mint("gbdt");
        ctx.record(Stage::Queue, 100);
        ctx.record(Stage::Score, 250);
        ctx.close_residual(1_000);
        assert_eq!(ctx.stage_ns(Stage::Drain), 650);
        assert_eq!(ctx.total_ns(), 1_000);
        // Over-counted instrumentation saturates instead of wrapping.
        let mut over = ReqCtx::mint("gbdt");
        over.record(Stage::Queue, 2_000);
        over.close_residual(1_000);
        assert_eq!(over.stage_ns(Stage::Drain), 0);
    }

    proptest! {
        /// The tentpole invariant: per-stage breakdowns reassemble the
        /// end-to-end latency — exactly at the context level, and within
        /// the documented HDR bucket error once histogram-quantized.
        fn breakdown_sums_to_end_to_end_within_bucket_error(
            reqs in proptest::collection::vec(
                (
                    (0u64..200_000, 0u64..50_000),
                    (0u64..400_000, 0u64..2_000_000, 0u64..30_000),
                ),
                1..64,
            )
        ) {
            let mut total_hist = HdrHist::new();
            let mut stage_hists = [
                HdrHist::new(), HdrHist::new(), HdrHist::new(),
                HdrHist::new(), HdrHist::new(),
            ];
            for &((q, b), (w, s, d)) in &reqs {
                let mut ctx = ReqCtx::mint("gbdt");
                ctx.record(Stage::Queue, q);
                ctx.record(Stage::BatchWait, b);
                ctx.record(Stage::Window, w);
                ctx.record(Stage::Score, s);
                let end_to_end = q + b + w + s + d;
                ctx.close_residual(end_to_end);
                // Exact at the context level.
                prop_assert_eq!(ctx.stage_ns(Stage::Drain), d);
                prop_assert_eq!(ctx.total_ns(), end_to_end);
                total_hist.record(end_to_end);
                for stage in Stage::ALL {
                    stage_hists[stage.index()].record(ctx.stage_ns(stage));
                }
            }
            // Histogram sums are exact (u128 accumulation), so the
            // stage decomposition survives aggregation losslessly.
            let stage_sum: u128 = stage_hists.iter().map(|h| h.sum()).sum();
            prop_assert_eq!(total_hist.sum(), stage_sum);
            // And the quantized tail is within the documented bound of
            // the true max end-to-end latency.
            let true_max = reqs
                .iter()
                .map(|&((q, b), (w, s, d))| q + b + w + s + d)
                .max()
                .unwrap();
            let seen_max = total_hist.quantile(1.0).unwrap();
            let tol = (true_max as f64 * MAX_RELATIVE_ERROR).ceil() as u64 + 1;
            prop_assert!(
                seen_max.abs_diff(true_max) <= tol,
                "quantized max {} vs true {} (tol {})", seen_max, true_max, tol
            );
        }
    }
}
