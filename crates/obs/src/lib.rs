//! `rsd-obs` — workspace-wide telemetry for the RSD-15K reproduction.
//!
//! Five pieces, all opt-in at runtime:
//!
//! - a global thread-safe [`Registry`] (counters, gauges, log-bucket
//!   histograms with p50/p90/p99, per-label span aggregates, and a
//!   hierarchical span **tree** keyed by collapsed-stack paths);
//! - RAII [`Span`] timers (`Span::enter("annotation.campaign.day")`)
//!   that maintain a per-thread stack and fold wall-clock, self-time,
//!   nesting depth, and allocation deltas into the registry, streaming
//!   NDJSON records to the active sink;
//! - an opt-in counting allocator ([`alloc::CountingAlloc`]) feeding
//!   bytes-allocated/peak-live gauges and per-span memory attribution;
//! - [`RunReport`], the final JSON artifact bench binaries write to
//!   `bench_runs/<scale>/<bin>.report.json` (plus a
//!   flamegraph-compatible `<bin>.folded` profile under
//!   `RSD_OBS_PROFILE=1`);
//! - a report differ ([`diff`]) behind the `obs_diff` bench bin that
//!   gates CI on time/memory/quality regressions between runs.
//!
//! On top of these, the serving tier gets request-scoped observability:
//! [`reqctx::ReqCtx`] trace contexts with per-stage latency breakdowns
//! recorded into tagged histogram families ([`hist::observe_tagged`]),
//! an [`exemplar`] reservoir of the slowest requests, an [`slo`]
//! burn-rate monitor over the request histograms, and a std-only live
//! introspection endpoint ([`http`], `RSD_OBS_HTTP=<port>`) serving
//! `/metrics`, `/health`, and `/snapshot`.
//!
//! Selection happens through two environment variables: `RSD_OBS`
//! (`off`/unset default — every entry point is a single atomic load and
//! branch, no allocation or lock; `stderr`; or a file path receiving the
//! NDJSON stream) and `RSD_OBS_PROFILE=1`, which turns the registry on
//! even without a sink so span trees and folded profiles can be captured
//! with no NDJSON cost. Telemetry never writes to stdout, so table
//! output stays byte-identical whether or not it is enabled.

pub mod alloc;
pub mod diff;
pub mod exemplar;
pub mod hist;
pub mod http;
pub mod knob;
mod registry;
mod report;
pub mod reqctx;
pub mod ring;
mod sink;
pub mod slo;
mod span;
pub mod timeseries;
pub mod trace_export;
mod tree;

pub use registry::{Histogram, Registry, SpanStat, StageStat, TreeStat};
pub use report::{run_meta, RunReport};
pub use reqctx::{ReqCtx, Stage};
pub use span::{current_context, with_context, Span, SpanContext};
pub use tree::{parse_folded, render_folded};

/// Re-exported so instrumented crates can build tagged records without
/// depending on `serde_json` themselves.
pub use serde_json::{Map, Value};

use parking_lot::Mutex;
use sink::Sink;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Tri-state enable flag: 0 = not yet resolved from the environment,
/// 1 = disabled, 2 = enabled. Everything hot checks this first.
static FLAG: AtomicU8 = AtomicU8::new(0);
const FLAG_UNKNOWN: u8 = 0;
const FLAG_OFF: u8 = 1;
const FLAG_ON: u8 = 2;

struct Global {
    registry: Registry,
    sink: Mutex<Sink>,
    epoch: Instant,
}

static GLOBAL: OnceLock<Global> = OnceLock::new();

/// Human-readable description of the mode that actually won
/// initialization (explicit [`init`] calls can differ from the
/// environment), surfaced as `meta.obs_mode` in run reports.
static MODE_DESC: OnceLock<String> = OnceLock::new();

/// The latched mode as a string: `off`, `silent`, `stderr`, or
/// `file:<path>`. Resolves from the environment if nothing initialized
/// telemetry yet.
pub fn mode_desc() -> String {
    if FLAG.load(Ordering::Acquire) == FLAG_UNKNOWN {
        enabled();
    }
    MODE_DESC
        .get()
        .cloned()
        .unwrap_or_else(|| "off".to_string())
}

/// Sink destination requested at init time.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Registry off, sink off — the zero-overhead default.
    Off,
    /// Registry on, sink off: spans/counters/trees aggregate in memory
    /// (for folded profiles and report metrics) without any NDJSON
    /// stream. Selected when `RSD_OBS_PROFILE=1` but `RSD_OBS` is off.
    Silent,
    /// NDJSON records to stderr.
    Stderr,
    /// NDJSON records appended to a file (created/truncated at init).
    File(PathBuf),
}

impl Mode {
    /// Parse the `RSD_OBS` convention: `off`/empty → [`Mode::Off`]
    /// (or [`Mode::Silent`] when `RSD_OBS_PROFILE` asks for profiling),
    /// `stderr` → [`Mode::Stderr`], anything else is a file path.
    pub fn from_env() -> Mode {
        match std::env::var("RSD_OBS") {
            Err(_) => Mode::off_or_silent(),
            Ok(v) if v.is_empty() || v == "off" || v == "0" => Mode::off_or_silent(),
            Ok(v) if v == "stderr" => Mode::Stderr,
            Ok(path) => Mode::File(PathBuf::from(path)),
        }
    }

    fn off_or_silent() -> Mode {
        if profile_enabled() {
            Mode::Silent
        } else {
            Mode::Off
        }
    }
}

/// Whether `RSD_OBS_PROFILE` requests profiling (truthy values: anything
/// but unset/empty/`0`/`off`). Resolved once; kernel-level spans in hot
/// loops check this so their overhead exists only in profiling runs.
pub fn profile_enabled() -> bool {
    static PROFILE: OnceLock<bool> = OnceLock::new();
    *PROFILE.get_or_init(|| {
        std::env::var("RSD_OBS_PROFILE")
            .map(|v| !(v.is_empty() || v == "0" || v == "off"))
            .unwrap_or(false)
    })
}

fn global() -> &'static Global {
    GLOBAL.get_or_init(|| Global {
        registry: Registry::new(),
        sink: Mutex::new(Sink::Off),
        epoch: Instant::now(),
    })
}

/// Initialize telemetry with an explicit mode. The first initialization
/// (explicit or lazy via [`enabled`]) wins; later calls are no-ops.
/// Returns whether telemetry ended up enabled.
pub fn init(mode: Mode) -> bool {
    if FLAG.load(Ordering::Acquire) != FLAG_UNKNOWN {
        return enabled();
    }
    let g = global();
    let (flag, desc) = {
        let mut sink = g.sink.lock();
        // Respect a sink some racing initializer installed first.
        if sink.is_active() {
            (FLAG_ON, "on".to_string())
        } else {
            match mode {
                Mode::Off => (FLAG_OFF, "off".to_string()),
                // Registry on, sink stays Sink::Off: spans aggregate but
                // nothing streams.
                Mode::Silent => (FLAG_ON, "silent".to_string()),
                Mode::Stderr => {
                    *sink = Sink::Stderr;
                    (FLAG_ON, "stderr".to_string())
                }
                Mode::File(path) => match std::fs::File::create(&path) {
                    Ok(f) => {
                        *sink = Sink::File(std::io::BufWriter::new(f));
                        (FLAG_ON, format!("file:{}", path.display()))
                    }
                    Err(e) => {
                        eprintln!(
                            "rsd-obs: cannot open RSD_OBS sink {}: {e}; telemetry disabled",
                            path.display()
                        );
                        (FLAG_OFF, "off".to_string())
                    }
                },
            }
        }
    };
    let _ = MODE_DESC.set(desc);
    // Arm allocation counting together with the rest of telemetry, so an
    // installed CountingAlloc stays free when RSD_OBS is off.
    alloc::set_counting(flag == FLAG_ON);
    FLAG.store(flag, Ordering::Release);
    flag == FLAG_ON
}

/// Whether telemetry is on. The hot path for every instrumented site:
/// once resolved this is a single atomic load plus branch.
#[inline]
pub fn enabled() -> bool {
    match FLAG.load(Ordering::Acquire) {
        FLAG_OFF => false,
        FLAG_ON => true,
        _ => init(Mode::from_env()),
    }
}

/// The global registry (created on first use).
pub fn registry() -> &'static Registry {
    &global().registry
}

/// Nanoseconds since the telemetry epoch (the first touch of the global
/// state). Ring events and trace timestamps share this clock.
pub fn epoch_ns() -> u64 {
    global().epoch.elapsed().as_nanos() as u64
}

/// Force the registry on without installing a sink, even if telemetry
/// already latched off. Used by the continuous-telemetry driver
/// ([`timeseries::start`]): `RSD_OBS_TICK_MS`/`RSD_OBS_TRACE` must
/// produce span and ring data even when `RSD_OBS` is unset.
pub(crate) fn ensure_registry() {
    if FLAG.load(Ordering::Acquire) == FLAG_ON {
        return;
    }
    global();
    let _ = MODE_DESC.set("silent".to_string());
    // Deliberately NOT arming alloc counting here: counting every
    // allocation costs ~25% wall-clock on allocation-heavy builds,
    // while the continuous layer must stay within a few percent of
    // telemetry-off. Allocation gauges appear in series snapshots only
    // when an explicit `RSD_OBS` mode armed the counter (or a test
    // armed it directly); the `alloc` section is conditional on
    // `alloc::active()` either way.
    FLAG.store(FLAG_ON, Ordering::Release);
}

/// Monotonic ordinal source for [`thread_ord`].
static NEXT_THREAD_ORD: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

thread_local! {
    static THREAD_ORD: u64 = NEXT_THREAD_ORD.fetch_add(1, Ordering::Relaxed);
}

/// A small stable ordinal for the calling thread (0 for whichever thread
/// touches telemetry first, usually main). Every NDJSON record carries it
/// as the `thread` field so spans emitted from pool workers are
/// attributable to a specific thread.
pub fn thread_ord() -> u64 {
    THREAD_ORD.with(|t| *t)
}

/// Serialize one NDJSON record to the active sink.
fn emit_record(kind: &str, label: &str, fields: &[(&'static str, Value)]) {
    let Some(g) = GLOBAL.get() else {
        return;
    };
    let thread = thread_ord();
    let mut sink = g.sink.lock();
    if !sink.is_active() {
        return;
    }
    let mut m = Map::new();
    m.insert("ts_ms", Value::Float(g.epoch.elapsed().as_secs_f64() * 1e3));
    m.insert("kind", Value::String(kind.to_string()));
    m.insert("label", Value::String(label.to_string()));
    m.insert("thread", Value::Int(i128::from(thread)));
    for (k, v) in fields {
        m.insert(*k, v.clone());
    }
    sink.write_line(&Value::Object(m).to_json());
}

/// Add to a counter. Counters aggregate silently (they surface in
/// [`snapshot`] and run reports, not as per-increment NDJSON lines).
pub fn counter_add(label: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    registry().counter_add(label, n);
    ring::publish(ring::EventKind::Counter, label, n, 0);
}

/// Report progress for a pipeline stage: `items` records and `bytes`
/// processed since the last call. Aggregates into the registry's stage
/// totals and, when the continuous layer is armed, publishes a ring
/// event the time-series driver turns into windowed `items_per_s` /
/// `bytes_per_s` rates.
pub fn stage_progress(label: &'static str, items: u64, bytes: u64) {
    if !enabled() {
        return;
    }
    registry().stage_add(label, items, bytes);
    ring::publish(ring::EventKind::StageProgress, label, items, bytes);
}

/// Register a stage with the stall watchdog: while registered (and not
/// yet finished), the time-series driver emits a `stall` event if the
/// stage reports no progress for `RSD_OBS_STALL_TICKS` consecutive
/// ticks.
pub fn stage_register(label: &'static str) {
    if !enabled() {
        return;
    }
    ring::publish(ring::EventKind::StageRegister, label, 0, 0);
}

/// Mark a registered stage as finished (leaves the stall watchdog).
pub fn stage_finish(label: &'static str) {
    if !enabled() {
        return;
    }
    ring::publish(ring::EventKind::StageFinish, label, 0, 0);
}

/// Record a latency observation (nanoseconds) into the sharded HDR
/// histogram registry. Only active while the continuous layer is armed,
/// so hot paths pay one atomic load otherwise.
pub fn latency_ns(label: &'static str, ns: u64) {
    if !ring::armed() {
        return;
    }
    hist::observe_ns(label, ns);
}

/// Set a gauge and emit a `gauge` NDJSON record.
pub fn gauge(label: &'static str, value: f64) {
    gauge_tagged(label, value, &[]);
}

/// [`gauge`] with extra record fields (e.g. the epoch a training-loss
/// gauge belongs to).
pub fn gauge_tagged(label: &'static str, value: f64, fields: &[(&'static str, Value)]) {
    if !enabled() {
        return;
    }
    registry().gauge_set(label, value);
    ring::publish(ring::EventKind::Gauge, label, value.to_bits(), 0);
    let mut all = Vec::with_capacity(fields.len() + 1);
    all.push(("value", Value::Float(value)));
    all.extend_from_slice(fields);
    emit_record("gauge", label, &all);
}

/// Record a histogram observation (seconds, items, whatever — one unit
/// per label).
pub fn observe(label: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    registry().observe(label, value);
}

/// Emit a free-form `event` NDJSON record.
pub fn event(label: &'static str, fields: &[(&'static str, Value)]) {
    if !enabled() {
        return;
    }
    emit_record("event", label, fields);
}

/// Measurement a dropping [`Span`] guard hands to the registry and sink.
pub(crate) struct SpanRecord {
    pub label: &'static str,
    /// Innermost enclosing span label, if any (includes phantom context
    /// frames installed by [`with_context`]).
    pub parent: Option<&'static str>,
    /// Full `;`-joined label stack, collapsed-stack style.
    pub path: String,
    pub elapsed: Duration,
    /// Wall-clock not attributed to child spans.
    pub self_ns: u64,
    pub depth: u32,
    /// Bytes allocated while the span was open (0 without a counting
    /// allocator).
    pub alloc_total: u64,
    /// Allocation not attributed to child spans.
    pub alloc_self: u64,
}

/// Called by [`Span`] guards on drop.
pub(crate) fn finish_span(rec: SpanRecord) {
    let g = global();
    if ring::armed() {
        let dur_ns = rec.elapsed.as_nanos() as u64;
        ring::publish(ring::EventKind::SpanEnd, rec.label, dur_ns, rec.self_ns);
        hist::observe_ns(rec.label, dur_ns);
    }
    g.registry.record_span(rec.label, rec.elapsed, rec.depth);
    g.registry.record_tree(
        &rec.path,
        rec.elapsed.as_nanos() as u64,
        rec.self_ns,
        rec.alloc_total,
        rec.alloc_self,
    );
    let mut fields = vec![
        ("ms", Value::Float(rec.elapsed.as_secs_f64() * 1e3)),
        ("self_ms", Value::Float(rec.self_ns as f64 / 1e6)),
        ("depth", Value::Int(i128::from(rec.depth))),
    ];
    if let Some(parent) = rec.parent {
        fields.push(("parent", Value::String(parent.to_string())));
    }
    if alloc::active() {
        fields.push(("alloc_bytes", Value::Int(i128::from(rec.alloc_total))));
    }
    emit_record("span", rec.label, &fields);
}

/// Snapshot the global registry as JSON.
pub fn snapshot() -> Value {
    match GLOBAL.get() {
        Some(g) => g.registry.snapshot(),
        None => Registry::new().snapshot(),
    }
}

/// Flush the sink (file sinks buffer). Bench binaries call this before
/// exiting.
pub fn flush() {
    if let Some(g) = GLOBAL.get() {
        g.sink.lock().flush();
    }
}

/// Serializes [`capture`] blocks so concurrent tests don't interleave
/// their event streams.
static CAPTURE_LOCK: Mutex<()> = Mutex::new(());

/// Test harness: run `f` with telemetry forced on and the sink swapped
/// to an in-memory buffer, then return the parsed NDJSON records. The
/// global registry is reset on entry so assertions see only `f`'s
/// activity. Captures are serialized process-wide.
pub fn capture<F: FnOnce()>(f: F) -> Vec<Value> {
    let _guard = CAPTURE_LOCK.lock();
    let g = global();
    let buf = Arc::new(Mutex::new(Vec::new()));
    let prev_flag = FLAG.swap(FLAG_ON, Ordering::AcqRel);
    let prev_sink = std::mem::replace(&mut *g.sink.lock(), Sink::Memory(Arc::clone(&buf)));
    g.registry.reset();
    hist::reset();
    exemplar::reset();

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));

    *g.sink.lock() = prev_sink;
    FLAG.store(
        if prev_flag == FLAG_UNKNOWN {
            FLAG_UNKNOWN
        } else {
            prev_flag
        },
        Ordering::Release,
    );
    if let Err(panic) = outcome {
        std::panic::resume_unwind(panic);
    }

    let bytes = buf.lock().clone();
    String::from_utf8(bytes)
        .expect("NDJSON sink produced invalid UTF-8")
        .lines()
        .map(|line| {
            serde_json::from_str(line)
                .unwrap_or_else(|e| panic!("unparseable NDJSON line {line:?}: {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn histogram_quantiles_match_uniform_distribution() {
        let mut h = Histogram::default();
        for i in 1..=10_000 {
            h.observe(f64::from(i));
        }
        assert_eq!(h.count(), 10_000);
        for (q, expected) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q).unwrap();
            let rel = (got - expected).abs() / expected;
            assert!(rel < 0.15, "q{q}: got {got}, expected ~{expected}");
        }
    }

    #[test]
    fn histogram_quantiles_exact_for_constant_distribution() {
        let mut h = Histogram::default();
        for _ in 0..100 {
            h.observe(0.125);
        }
        // min == max == value, so clamping pins every quantile exactly.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(0.125));
        }
        assert!((h.sum() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_spans_many_orders_of_magnitude() {
        let mut h = Histogram::default();
        // 90% tiny values, 10% huge: p50 near 1e-6, p99 near 1e3.
        for _ in 0..900 {
            h.observe(1e-6);
        }
        for _ in 0..100 {
            h.observe(1e3);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((1e-7..1e-5).contains(&p50), "p50 {p50}");
        assert!((1e2..=1e3).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn counters_and_gauges_are_exact_under_contention() {
        let reg = StdArc::new(Registry::new());
        let threads: u32 = 8;
        let per_thread: u32 = 10_000;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let reg = StdArc::clone(&reg);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        reg.counter_add("contended", 1);
                        reg.gauge_set("last", f64::from(t * per_thread + i));
                        reg.observe("dist", 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("contended"), u64::from(threads * per_thread));
        assert!(reg.gauge("last").is_some());
        assert_eq!(
            reg.snapshot()["histograms"]["dist"]["count"],
            u64::from(threads * per_thread)
        );
    }

    #[test]
    fn span_nesting_aggregates_depth_and_counts() {
        let events = capture(|| {
            let _outer = Span::enter("nest.outer");
            for _ in 0..3 {
                let _inner = Span::enter("nest.inner");
                let _leaf = Span::enter("nest.leaf");
            }
            let outer_stat_missing = registry().span_stat("nest.outer").is_none();
            assert!(outer_stat_missing, "outer span must still be open here");
        });
        let outer = registry().span_stat("nest.outer");
        // The registry was reset by any later capture; read from events
        // instead, which are immune to cross-test interleaving.
        let spans: Vec<_> = events.iter().filter(|e| e["kind"] == "span").collect();
        let count_label = |label: &str| spans.iter().filter(|e| e["label"] == label).count();
        assert_eq!(count_label("nest.outer"), 1);
        assert_eq!(count_label("nest.inner"), 3);
        assert_eq!(count_label("nest.leaf"), 3);
        let depth_of = |label: &str| {
            spans
                .iter()
                .find(|e| e["label"] == label)
                .map(|e| e["depth"].as_i64().unwrap())
                .unwrap()
        };
        assert_eq!(depth_of("nest.outer"), 0);
        assert_eq!(depth_of("nest.inner"), 1);
        assert_eq!(depth_of("nest.leaf"), 2);
        // Aggregate view still holds if no other capture ran since.
        if let Some(stat) = outer {
            assert_eq!(stat.count, 1);
            assert_eq!(stat.max_depth, 0);
        }
    }

    #[test]
    fn span_tree_attributes_self_and_child_time() {
        capture(|| {
            {
                let _outer = Span::enter("tree.outer");
                for _ in 0..2 {
                    let _inner = Span::enter("tree.inner");
                    std::hint::black_box((0..20_000).sum::<u64>());
                }
                std::hint::black_box((0..20_000).sum::<u64>());
            }
            let outer = registry().tree_stat("tree.outer").expect("outer path");
            let inner = registry()
                .tree_stat("tree.outer;tree.inner")
                .expect("inner path keyed under parent");
            assert_eq!(outer.count, 1);
            assert_eq!(inner.count, 2);
            // Self-time excludes children: outer.self + inner.total
            // reassembles outer.total (inner spans are the only children).
            assert!(outer.self_ns <= outer.total_ns);
            let reassembled = outer.self_ns + inner.total_ns;
            let drift = reassembled.abs_diff(outer.total_ns);
            assert!(
                drift < outer.total_ns / 2 + 1_000_000,
                "self+child ({reassembled}) should approximate total ({})",
                outer.total_ns
            );
            // The same label at top level would be a different path.
            assert!(registry().tree_stat("tree.inner").is_none());
        });
    }

    #[test]
    fn span_record_carries_parent_and_self_ms() {
        let events = capture(|| {
            let _a = Span::enter("edge.parent");
            let _b = Span::enter("edge.child");
        });
        let child = events
            .iter()
            .find(|e| e["label"] == "edge.child")
            .expect("child span record");
        assert_eq!(child["parent"], "edge.parent");
        assert!(child["self_ms"].as_f64().unwrap() <= child["ms"].as_f64().unwrap() + 1e-9);
        let parent = events
            .iter()
            .find(|e| e["label"] == "edge.parent")
            .expect("parent span record");
        assert!(parent["parent"].is_null());
    }

    #[test]
    fn panicking_span_unwinds_stack_cleanly() {
        capture(|| {
            let result = std::panic::catch_unwind(|| {
                let _outer = Span::enter("panic.outer");
                let _inner = Span::enter("panic.inner");
                panic!("stage exploded");
            });
            assert!(result.is_err());
            // Both guards dropped during unwinding, so a fresh span sits
            // at depth 0 with an unprefixed tree path.
            let after = Span::enter("panic.after");
            assert_eq!(after.depth(), Some(0));
            drop(after);
            assert!(registry().tree_stat("panic.after").is_some());
            assert!(registry().tree_stat("panic.outer;panic.inner").is_some());
        });
    }

    #[test]
    fn context_propagation_parents_cross_thread_spans() {
        capture(|| {
            let ctx = {
                let _submit = Span::enter("ctx.submit");
                current_context()
            };
            assert!(!ctx.is_empty());
            // Simulate a pool worker replaying the submitter's stack.
            std::thread::scope(|s| {
                s.spawn(|| {
                    with_context(&ctx, || {
                        let worker = Span::enter("ctx.work");
                        assert_eq!(worker.depth(), Some(1));
                    });
                    // Phantom frames are gone after the scope.
                    let free = Span::enter("ctx.free");
                    assert_eq!(free.depth(), Some(0));
                })
                .join()
                .unwrap();
            });
            assert!(registry().tree_stat("ctx.submit;ctx.work").is_some());
            // Phantom frames record no timing of their own: only the real
            // submit span contributed to that path.
            assert_eq!(registry().tree_stat("ctx.submit").unwrap().count, 1);
        });
    }

    #[test]
    fn ndjson_sink_round_trips_schema() {
        let events = capture(|| {
            counter_add("rt.counter", 7);
            gauge_tagged("rt.gauge", 1.5, &[("epoch", Value::Int(3))]);
            event(
                "rt.event",
                &[("items", Value::Int(42)), ("ok", Value::Bool(true))],
            );
            let _s = Span::enter("rt.span");
        });
        assert!(!events.is_empty());
        for e in &events {
            assert!(e["ts_ms"].as_f64().is_some(), "ts_ms missing in {e}");
            assert!(e["kind"].as_str().is_some(), "kind missing in {e}");
            assert!(e["label"].as_str().is_some(), "label missing in {e}");
            assert!(e["thread"].as_i64().is_some(), "thread missing in {e}");
        }
        // Everything in this capture ran on one thread, so the ordinal is
        // constant across records.
        let ords: std::collections::BTreeSet<i64> = events
            .iter()
            .map(|e| e["thread"].as_i64().unwrap())
            .collect();
        assert_eq!(ords.len(), 1);
        assert_eq!(*ords.iter().next().unwrap() as u64, thread_ord());
        let gauge_rec = events
            .iter()
            .find(|e| e["label"] == "rt.gauge")
            .expect("gauge record present");
        assert_eq!(gauge_rec["kind"], "gauge");
        assert_eq!(gauge_rec["value"], 1.5f64);
        assert_eq!(gauge_rec["epoch"], 3u32);
        let event_rec = events
            .iter()
            .find(|e| e["label"] == "rt.event")
            .expect("event record present");
        assert_eq!(event_rec["items"], 42u32);
        assert_eq!(event_rec["ok"], true);
        let span_rec = events
            .iter()
            .find(|e| e["label"] == "rt.span")
            .expect("span record present");
        assert!(span_rec["ms"].as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn capture_resets_registry_between_uses() {
        capture(|| counter_add("reset.probe", 5));
        let events = capture(|| {
            assert_eq!(registry().counter("reset.probe"), 0);
            counter_add("reset.probe", 2);
        });
        // Counters don't stream records; the capture itself must be clean.
        assert!(events.iter().all(|e| e["kind"] != "counter"));
    }

    #[test]
    fn run_report_embeds_metrics_snapshot() {
        capture(|| {
            counter_add("report.widgets", 11);
            let mut report = RunReport::new("unit_test", "small", 2026);
            report.set("models", Value::Int(4));
            let v = report.to_value();
            assert_eq!(v["bin"], "unit_test");
            assert_eq!(v["scale"], "small");
            assert_eq!(v["seed"], 2026u64);
            assert!(v["elapsed_ms"].as_f64().unwrap() >= 0.0);
            assert_eq!(v["config"]["models"], 4u32);
            assert_eq!(v["metrics"]["counters"]["report.widgets"], 11u32);
        });
    }
}
