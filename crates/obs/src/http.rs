//! Std-only live introspection endpoint.
//!
//! `RSD_OBS_HTTP=<port>` binds `127.0.0.1:<port>` on one
//! `std::net::TcpListener` thread — no HTTP dependency, no async
//! runtime, ~nothing on the hot path. Three routes:
//!
//! * `/metrics` — text exposition of the registry (counters, gauges)
//!   and the merged HDR histograms, tagged families included.
//! * `/health` — JSON stall-watchdog + ring-drop + SLO status; `200`
//!   when healthy, `503` once degraded (a latched SLO burn or a
//!   currently-stalled stage).
//! * `/snapshot` — the latest time-series tick as JSON, exactly as
//!   written to `.series.ndjson` (404 before the first tick).
//!
//! The time-series driver publishes each tick here ([`publish_tick`]),
//! so the endpoint serves prepared strings and never touches driver
//! state. The listener is non-blocking with a 20 ms accept poll so
//! [`HttpGuard`] can stop it promptly at shutdown.

use parking_lot::Mutex;
use serde_json::{Map, Value};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Endpoint port knob. Unset/`0`/`off` keeps the endpoint down.
pub const KNOB: &str = "RSD_OBS_HTTP";

fn last_tick_slot() -> &'static Mutex<Option<String>> {
    static SLOT: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn stalled_slot() -> &'static Mutex<Vec<String>> {
    static SLOT: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(Vec::new()))
}

/// Publish the latest series tick (its NDJSON line) for `/snapshot`.
/// Called by the time-series driver once per tick.
pub fn publish_tick(json: String) {
    *last_tick_slot().lock() = Some(json);
}

/// The most recently published tick, if any.
pub fn latest_tick() -> Option<String> {
    last_tick_slot().lock().clone()
}

/// Publish the set of currently-stalled stage labels for `/health`.
pub fn set_stalled(stages: Vec<String>) {
    *stalled_slot().lock() = stages;
}

/// Currently-stalled stage labels as last published.
pub fn stalled() -> Vec<String> {
    stalled_slot().lock().clone()
}

/// `/health` verdict and body: degraded when the SLO burn latch is set
/// or any pipeline stage is currently stalled.
pub fn health_value() -> (bool, Value) {
    let stalled = stalled();
    let degraded = crate::slo::degraded() || !stalled.is_empty();
    let ring = crate::ring::global();
    let mut m = Map::new();
    m.insert(
        "status",
        Value::String(if degraded { "degraded" } else { "ok" }.to_string()),
    );
    let mut ring_m = Map::new();
    ring_m.insert("published", Value::Int(ring.published() as i128));
    ring_m.insert("dropped", Value::Int(ring.dropped() as i128));
    m.insert("ring", Value::Object(ring_m));
    m.insert(
        "stalled",
        Value::Array(stalled.into_iter().map(Value::String).collect()),
    );
    let mut slo_m = Map::new();
    slo_m.insert("burn_events", Value::Int(crate::slo::burn_events() as i128));
    slo_m.insert("degraded", Value::Bool(crate::slo::degraded()));
    m.insert("slo", Value::Object(slo_m));
    (degraded, Value::Object(m))
}

/// One histogram's exposition lines under a shared label set.
fn hist_lines(out: &mut String, labels: &str, hist: &crate::hist::HdrHist) {
    out.push_str(&format!("rsd_latency_count{{{labels}}} {}\n", hist.count()));
    for (stat, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99), ("max", 1.0)] {
        if let Some(ns) = hist.quantile(q) {
            out.push_str(&format!(
                "rsd_latency_ms{{{labels},stat=\"{stat}\"}} {:.6}\n",
                ns as f64 / 1e6
            ));
        }
    }
}

/// `/metrics` body: counters, gauges, ring state, and every merged
/// histogram (untagged and tagged) in a Prometheus-flavoured text form.
pub fn metrics_text() -> String {
    let mut out = String::new();
    let snap = crate::snapshot();
    for (section, metric) in [("counters", "rsd_counter"), ("gauges", "rsd_gauge")] {
        if let Some(map) = snap.get(section).and_then(Value::as_object) {
            for (name, value) in map.iter() {
                if let Some(v) = value.as_f64() {
                    out.push_str(&format!("{metric}{{name=\"{name}\"}} {v}\n"));
                }
            }
        }
    }
    let ring = crate::ring::global();
    out.push_str(&format!("rsd_ring_published {}\n", ring.published()));
    out.push_str(&format!("rsd_ring_dropped {}\n", ring.dropped()));
    out.push_str(&format!(
        "rsd_slo_burn_events {}\n",
        crate::slo::burn_events()
    ));
    for (label, hist) in crate::hist::merged() {
        hist_lines(&mut out, &format!("name=\"{label}\""), &hist);
    }
    for (key, hist) in crate::hist::merged_tagged() {
        let labels = format!(
            "name=\"{}\",backend=\"{}\",level=\"{}\"",
            key.label, key.backend, key.level
        );
        hist_lines(&mut out, &labels, &hist);
    }
    out
}

/// Route one request path to `(status, content-type, body)`.
pub fn route(path: &str) -> (u16, &'static str, String) {
    match path {
        "/metrics" => (200, "text/plain; version=0.0.4", metrics_text()),
        "/health" => {
            let (degraded, body) = health_value();
            let status = if degraded { 503 } else { 200 };
            (status, "application/json", body.to_json())
        }
        "/snapshot" => match latest_tick() {
            Some(tick) => (200, "application/json", tick),
            None => (
                404,
                "application/json",
                "{\"error\":\"no series tick published yet\"}".to_string(),
            ),
        },
        _ => (
            404,
            "application/json",
            "{\"error\":\"unknown path; try /metrics, /health, /snapshot\"}".to_string(),
        ),
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        503 => "Service Unavailable",
        _ => "Not Found",
    }
}

fn handle_conn(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_nodelay(true).ok();
    let mut buf = [0u8; 4096];
    let mut len = 0usize;
    // Read until the header terminator; requests here are tiny GETs.
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let req = String::from_utf8_lossy(&buf[..len]);
    let path = req.split_whitespace().nth(1).unwrap_or("/");
    let (status, ctype, body) = route(path);
    let header = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {ctype}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Handle on the running endpoint; dropping it stops the listener
/// thread (within one accept poll).
#[derive(Debug)]
pub struct HttpGuard {
    port: u16,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HttpGuard {
    /// The bound port (useful with an ephemeral port 0 bind in tests).
    pub fn port(&self) -> u16 {
        self.port
    }
}

impl Drop for HttpGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Start the endpoint when `RSD_OBS_HTTP` names a port.
pub fn start_from_env() -> Option<HttpGuard> {
    crate::knob::port_env(KNOB).map(start)
}

/// Bind `127.0.0.1:port` (0 picks an ephemeral port) and serve until
/// the guard drops. Forces the registry on — asking for the endpoint is
/// asking for telemetry.
pub fn start(port: u16) -> HttpGuard {
    crate::ensure_registry();
    let listener = TcpListener::bind(("127.0.0.1", port))
        .unwrap_or_else(|e| panic!("{KNOB}: cannot bind 127.0.0.1:{port}: {e}"));
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    let port = listener.local_addr().map(|a| a.port()).unwrap_or(port);
    let stop = Arc::new(AtomicBool::new(false));
    let stop_thread = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("rsd-obs-http".to_string())
        .spawn(move || {
            while !stop_thread.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = handle_conn(stream);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        })
        .expect("spawn rsd-obs-http");
    eprintln!("rsd-obs: introspection endpoint on 127.0.0.1:{port} (/metrics /health /snapshot)");
    HttpGuard {
        port,
        stop,
        handle: Some(handle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(port: u16, path: &str) -> String {
        let mut s = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        write!(
            s,
            "GET {path} HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n"
        )
        .expect("write request");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read response");
        out
    }

    #[test]
    fn routes_cover_metrics_health_snapshot_and_404() {
        let (status, _, body) = route("/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("rsd_ring_published"));
        let (status, ctype, body) = route("/health");
        // Other tests may have latched a burn in this process; accept
        // either verdict but require a consistent body.
        assert!(status == 200 || status == 503);
        assert_eq!(ctype, "application/json");
        assert!(body.contains("\"status\""));
        let (status, _, body) = route("/nope");
        assert_eq!(status, 404);
        assert!(body.contains("unknown path"));
    }

    #[test]
    fn snapshot_serves_the_latest_published_tick() {
        publish_tick("{\"kind\":\"tick\",\"tick\":7}".to_string());
        let (status, _, body) = route("/snapshot");
        assert_eq!(status, 200);
        assert!(body.contains("\"tick\":7") || body.contains("\"kind\":\"tick\""));
    }

    #[test]
    fn endpoint_serves_over_a_real_socket() {
        let guard = start(0); // ephemeral port: no knob, no collisions
        let resp = get(guard.port(), "/health");
        assert!(resp.starts_with("HTTP/1.1"), "{resp}");
        assert!(resp.contains("\"status\""), "{resp}");
        assert!(resp.contains("Content-Length"), "{resp}");
        let metrics = get(guard.port(), "/metrics");
        assert!(metrics.contains("rsd_ring_published"), "{metrics}");
        drop(guard); // must join the listener thread without hanging
    }

    #[test]
    fn health_reports_stalled_stages_as_degraded() {
        // Stall state is process-global; set and restore around the
        // assertion to stay independent of test order.
        set_stalled(vec!["serve.scored".to_string()]);
        let (degraded, body) = health_value();
        assert!(degraded);
        assert_eq!(body["status"].as_str(), Some("degraded"));
        assert!(body["stalled"][0].as_str() == Some("serve.scored"));
        set_stalled(Vec::new());
    }
}
