//! Bounded lock-free MPSC event ring.
//!
//! Hot paths (span drops, counters, stage progress) publish compact
//! [`RingEvent`]s here instead of serializing NDJSON inline; the
//! time-series driver ([`crate::timeseries`]) drains the ring on its
//! tick. Publishing is a handful of relaxed/acq-rel atomics — O(ns) —
//! and never blocks: when the ring is full the event is **dropped and
//! counted** ([`EventRing::dropped`]), because telemetry must shed load
//! rather than apply backpressure to the pipeline.
//!
//! The layout is the classic sequence-numbered slot array (Vyukov's
//! bounded queue, used MPSC here): each slot carries a sequence atomic
//! that encodes whether it is free for the producer generation or ready
//! for the consumer. Producers claim a ticket with a CAS on `head`;
//! the (single) consumer walks `tail`. Capacity comes from
//! `RSD_OBS_RING_CAP` (rounded up to a power of two, default 65536).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Default slot count (power of two).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// What a ring event describes. Kept intentionally small: every variant
/// maps onto the same fixed payload words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: `a` = duration ns, `b` = self-time ns.
    SpanEnd,
    /// A counter increment: `a` = delta.
    Counter,
    /// A gauge update: `a` = `f64::to_bits` of the value.
    Gauge,
    /// Pipeline-stage progress: `a` = items, `b` = bytes.
    StageProgress,
    /// A stage announced itself to the stall watchdog.
    StageRegister,
    /// A stage finished (leaves the stall watchdog's care).
    StageFinish,
}

/// One fixed-size telemetry event. No heap, `Copy`, label is a
/// `&'static str` so publishing allocates nothing.
#[derive(Debug, Clone, Copy)]
pub struct RingEvent {
    /// Nanoseconds since the telemetry epoch at publish time (for spans:
    /// the span *end*).
    pub t_ns: u64,
    /// Primary payload word (see [`EventKind`]).
    pub a: u64,
    /// Secondary payload word.
    pub b: u64,
    /// Metric label.
    pub label: &'static str,
    /// Publishing thread's ordinal ([`crate::thread_ord`]).
    pub thread: u32,
    pub kind: EventKind,
}

struct Slot {
    seq: AtomicU64,
    event: UnsafeCell<MaybeUninit<RingEvent>>,
}

/// The ring buffer. Producers are lock-free; draining assumes a single
/// consumer at a time (the time-series driver; tests serialize).
pub struct EventRing {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
    tail: AtomicU64,
    dropped: AtomicU64,
    published: AtomicU64,
}

// SAFETY: slot contents are published/consumed under the per-slot `seq`
// protocol (release store after write, acquire load before read), so no
// slot is read while being written.
unsafe impl Sync for EventRing {}
unsafe impl Send for EventRing {}

impl EventRing {
    /// Ring with `capacity` slots, rounded up to a power of two (min 8).
    pub fn with_capacity(capacity: usize) -> EventRing {
        let cap = capacity.max(8).next_power_of_two() as u64;
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicU64::new(i),
                event: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        EventRing {
            slots,
            mask: cap - 1,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            published: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Publish one event. Returns `false` (and counts a drop) when the
    /// ring is full. Lock-free: a failed CAS retries with the fresh
    /// head; a full ring bails immediately.
    pub fn push(&self, event: RingEvent) -> bool {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(head & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == head {
                // Slot free for this generation: claim the ticket.
                match self.head.compare_exchange_weak(
                    head,
                    head + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the ticket claim gives this producer
                        // exclusive write access until the release store.
                        unsafe { (*slot.event.get()).write(event) };
                        slot.seq.store(head + 1, Ordering::Release);
                        self.published.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                    Err(actual) => head = actual,
                }
            } else if seq < head {
                // Consumer hasn't freed this slot: ring is full.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                // Another producer claimed this ticket; advance.
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Drain every ready event into `f`, in publish order. Single
    /// consumer only. Returns the number of events drained.
    pub fn drain(&self, mut f: impl FnMut(RingEvent)) -> usize {
        let mut tail = self.tail.load(Ordering::Relaxed);
        let mut n = 0;
        loop {
            let slot = &self.slots[(tail & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq != tail + 1 {
                break; // next slot not yet published
            }
            // SAFETY: seq == tail+1 means the producer finished writing;
            // we are the only consumer.
            let event = unsafe { (*slot.event.get()).assume_init() };
            // Free the slot for the next generation of producers.
            slot.seq.store(tail + self.mask + 1, Ordering::Release);
            tail += 1;
            n += 1;
            f(event);
        }
        self.tail.store(tail, Ordering::Relaxed);
        n
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events successfully published.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }
}

/// Whether the continuous-telemetry layer is armed (a time-series driver
/// or trace exporter is consuming). Publishers check this first; when
/// off, publishing is a single relaxed load and branch.
static ARMED: AtomicBool = AtomicBool::new(false);

static RING: OnceLock<EventRing> = OnceLock::new();

/// The global ring (created on first use; capacity from
/// `RSD_OBS_RING_CAP` — an invalid value hard-errors naming the knob).
pub fn global() -> &'static EventRing {
    RING.get_or_init(|| {
        let cap = crate::knob::positive_or_default(
            "RSD_OBS_RING_CAP",
            std::env::var("RSD_OBS_RING_CAP").ok(),
            DEFAULT_CAPACITY as u64,
        ) as usize;
        EventRing::with_capacity(cap)
    })
}

/// Arm or disarm continuous publishing. Armed by
/// [`crate::timeseries::start`]; disarmed when the driver stops.
pub fn set_armed(on: bool) {
    ARMED.store(on, Ordering::Release);
}

/// Whether publishers should push into the ring.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// Publish into the global ring if armed. The disarmed path costs one
/// atomic load.
#[inline]
pub fn publish(kind: EventKind, label: &'static str, a: u64, b: u64) {
    if !armed() {
        return;
    }
    let event = RingEvent {
        t_ns: crate::epoch_ns(),
        a,
        b,
        label,
        thread: crate::thread_ord() as u32,
        kind,
    };
    global().push(event);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(a: u64) -> RingEvent {
        RingEvent {
            t_ns: a,
            a,
            b: 0,
            label: "test",
            thread: 0,
            kind: EventKind::Counter,
        }
    }

    #[test]
    fn fifo_order_and_capacity_rounding() {
        let ring = EventRing::with_capacity(10); // rounds to 16
        assert_eq!(ring.capacity(), 16);
        for i in 0..5 {
            assert!(ring.push(ev(i)));
        }
        let mut got = Vec::new();
        ring.drain(|e| got.push(e.a));
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_drops_and_counts_without_blocking() {
        let ring = EventRing::with_capacity(8);
        for i in 0..8 {
            assert!(ring.push(ev(i)));
        }
        assert!(!ring.push(ev(99)));
        assert!(!ring.push(ev(100)));
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.published(), 8);
        // Draining frees slots for another full generation.
        let mut got = Vec::new();
        ring.drain(|e| got.push(e.a));
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert!(ring.push(ev(8)));
        let mut next = Vec::new();
        ring.drain(|e| next.push(e.a));
        assert_eq!(next, vec![8]);
    }

    #[test]
    fn concurrent_producers_lose_nothing_within_capacity() {
        let ring = std::sync::Arc::new(EventRing::with_capacity(1 << 14));
        let threads = 8u64;
        let per_thread = 1_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let ring = std::sync::Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..per_thread {
                        assert!(ring.push(ev(t * per_thread + i)));
                    }
                });
            }
        });
        let mut got = Vec::new();
        ring.drain(|e| got.push(e.a));
        assert_eq!(got.len() as u64, threads * per_thread);
        assert_eq!(ring.dropped(), 0);
        // Every published value arrives exactly once.
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len() as u64, threads * per_thread);
    }

    #[test]
    fn interleaved_produce_drain_sustains_beyond_capacity() {
        let ring = EventRing::with_capacity(8);
        let mut total = 0u64;
        for round in 0..100u64 {
            for i in 0..6 {
                assert!(ring.push(ev(round * 6 + i)));
            }
            ring.drain(|_| total += 1);
        }
        assert_eq!(total, 600);
        assert_eq!(ring.dropped(), 0);
    }
}
